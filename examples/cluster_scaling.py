#!/usr/bin/env python3
"""Elastic scaling to multiple hosts (paper §7).

Sprayer sprays *within* a host; across hosts, flows must stay put. This
example runs a growing open-loop workload against a Sprayer cluster,
scales out from two hosts to three under load, and shows (a) flows are
never split across hosts, (b) only a fraction of flow state migrates,
and (c) the new host picks up traffic immediately.

Run:  python examples/cluster_scaling.py
"""

import random

from repro.cluster import ClusterMiddlebox
from repro.experiments.format import format_table
from repro.net import ACK, SYN, make_tcp_packet
from repro.nfs import NatNf
from repro.sim import MILLISECOND, Simulator
from repro.trafficgen.flows import random_tcp_flows


def main() -> None:
    sim = Simulator()

    def external_ip_of(host: str) -> int:
        return 0x0B000000 | (int(host[4:]) + 1)

    # sticky_flows: a NAT's port allocations cannot migrate piecemeal,
    # so existing connections drain on their original host and only new
    # connections use the expanded ring — the production pattern.
    cluster = ClusterMiddlebox(
        sim,
        nf_factory=lambda host: NatNf(external_ip=external_ip_of(host)),
        num_hosts=2,
        sticky_flows=True,
    )
    # Each host NATs behind its own external address; return traffic to
    # that address must come back to the same host.
    for host in cluster.hosts:
        cluster.pin_address(external_ip_of(host), host)
    cluster.set_egress(lambda p: None)
    rng = random.Random(99)
    flows = random_tcp_flows(60, rng)

    def push(packets_per_flow: int) -> None:
        for flow in flows:
            for seq in range(packets_per_flow):
                cluster.receive(
                    make_tcp_packet(flow, flags=ACK, seq=seq,
                                    tcp_checksum=rng.getrandbits(16)),
                    sim.now,
                )
            sim.run(until=sim.now + MILLISECOND)

    # Open all connections, push some load on two hosts.
    for flow in flows:
        cluster.receive(
            make_tcp_packet(flow, flags=SYN, tcp_checksum=rng.getrandbits(16)), sim.now
        )
        sim.run(until=sim.now + MILLISECOND // 2)
    push(10)
    before = cluster.summary()

    # Scale out under load; existing connections stay put (sticky).
    entries = sum(e.flow_state.total_entries() for e in cluster.engines.values())
    new_host = cluster.scale_out()
    cluster.pin_address(external_ip_of(new_host), new_host)
    push(10)
    # New connections arriving after scale-out land on all three hosts.
    new_flows = random_tcp_flows(30, random.Random(7))
    for flow in new_flows:
        cluster.receive(
            make_tcp_packet(flow, flags=SYN, tcp_checksum=rng.getrandbits(16)), sim.now
        )
        sim.run(until=sim.now + MILLISECOND // 2)
    after = cluster.summary()

    hosts = cluster.hosts
    rows = [
        {"stage": "2 hosts",
         **{h: before["per_host_dispatched"].get(h, 0) for h in hosts}},
        {"stage": f"3 hosts (+{new_host})",
         **{h: after["per_host_dispatched"].get(h, 0) for h in hosts}},
    ]
    print(format_table(rows, columns=["stage"] + hosts, title="Packets dispatched per host"))
    print(f"\nflow-state entries: {entries}; migrated on scale-out: "
          f"{cluster.stats.migrated_entries} (sticky flows drain in place)")
    landed = sum(1 for f in new_flows if cluster.host_for(f) == new_host)
    print(f"new connections landing on {new_host}: {landed}/{len(new_flows)}; "
          "every flow lives on exactly one host (both directions).")


if __name__ == "__main__":
    main()
