#!/usr/bin/env python3
"""Traffic-trace analysis: the paper's §2 motivation, regenerated.

Builds the calibrated synthetic backbone trace and reproduces the two
measurements that motivate packet spraying:

1. Figure 1 — elephants and mice: a sliver of flows (>10 MB) carries
   most of the bytes.
2. Figure 2 — tiny instantaneous concurrency: within a 150 µs window
   (a middlebox's time horizon) only a handful of flows have packets,
   so per-flow RSS cannot fill 8+ cores most of the time.

Also compares against the sparser "enterprise" preset (the paper found
its lab gateway and the M57 corpus even sparser than the backbone).

Run:  python examples/trace_analysis.py
"""

import random

from repro.experiments.format import format_table
from repro.metrics.cdf import quantile
from repro.sim.timeunits import MICROSECOND
from repro.trafficgen.trace import SyntheticBackboneTrace


def concurrency_row(label, trace, min_size=0.0, samples=1200):
    counts = sorted(trace.concurrent_flows(samples=samples, min_size_bytes=min_size))
    return {
        "trace / population": label,
        "median": quantile(counts, 0.5),
        "p90": quantile(counts, 0.9),
        "p99": quantile(counts, 0.99),
    }


def main() -> None:
    backbone = SyntheticBackboneTrace(random.Random(7), duration_s=5.0)
    enterprise = SyntheticBackboneTrace.enterprise(random.Random(7), duration_s=5.0)

    sizes = backbone.flow_sizes()
    big = [size for size in sizes if size >= 10e6]
    print("== Figure 1: elephants and mice ==")
    print(f"flows: {len(sizes)}, of which >10 MB: {len(big)} "
          f"({100 * len(big) / len(sizes):.2f}%)")
    print(f"bytes carried by >10 MB flows: "
          f"{100 * backbone.bytes_fraction_above(10e6):.1f}%  (paper: >75%)")
    rows = [
        {"size": f"{size:.0e}", "flows_cdf": f, "bytes_cdf": b}
        for (size, f), (_size, b) in zip(
            backbone.size_cdfs(points=8)["flows"][:8],
            backbone.size_cdfs(points=8)["bytes"][:8],
        )
    ]
    print(format_table(rows))

    print("\n== Figure 2: concurrent flows per 150 us window ==")
    rows = [
        concurrency_row("backbone / all flows", backbone),
        concurrency_row("backbone / >10 MB", backbone, min_size=10e6),
        concurrency_row("enterprise / all flows", enterprise),
    ]
    print(format_table(rows))
    window_us = 150 * MICROSECOND / MICROSECOND
    print(
        f"\nWithin {window_us:.0f} us, the median backbone window holds only a few\n"
        "flows — an 8-core middlebox steered per-flow leaves most cores idle."
    )


if __name__ == "__main__":
    main()
