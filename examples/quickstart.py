#!/usr/bin/env python3
"""Quickstart: a NAT middlebox on Sprayer in ~40 lines.

Builds the simulated 8-core middlebox, runs the paper's Figure 5 NAT
under Sprayer steering, pushes a handful of TCP connections through it,
and prints what happened — including the property that makes Sprayer
interesting: a single flow's packets were processed on *all* cores.

Run:  python examples/quickstart.py
"""

import random

from repro.core import MiddleboxConfig, MiddleboxEngine
from repro.net import ACK, SYN, FiveTuple, ip_to_str, make_tcp_packet
from repro.nfs import NatNf
from repro.sim import MILLISECOND, Simulator


def main() -> None:
    sim = Simulator()
    nat = NatNf(external_ip=0x0B000001)  # 11.0.0.1
    engine = MiddleboxEngine(
        sim, nat, MiddleboxConfig(mode="sprayer", num_cores=8)
    )
    forwarded = []
    engine.set_egress(forwarded.append)

    rng = random.Random(1)
    flows = [
        FiveTuple(0x0A000001 + i, 0x0A010001, 40000 + i, 80, 6) for i in range(4)
    ]
    for flow in flows:
        # Open the connection (SYN is a *connection packet*: Sprayer
        # steers it to the flow's designated core, where the NAT
        # allocates a port and installs both translation directions).
        engine.receive(
            make_tcp_packet(flow, flags=SYN, tcp_checksum=rng.getrandbits(16)), sim.now
        )
        sim.run(until=sim.now + MILLISECOND)
        # Data packets (*regular packets*) are sprayed across all cores;
        # each core reads the translation from the designated core.
        for seq in range(64):
            engine.receive(
                make_tcp_packet(flow, flags=ACK, seq=seq,
                                tcp_checksum=rng.getrandbits(16)),
                sim.now,
            )
        sim.run(until=sim.now + 5 * MILLISECOND)

    print("NAT translations installed:", nat.translations_active)
    for packet in forwarded[:1]:
        print(
            f"first packet rewritten to "
            f"{ip_to_str(packet.five_tuple.src_ip)}:{packet.five_tuple.src_port}"
        )
    per_core = engine.host.per_core_forwarded()
    print("packets forwarded per core:", per_core)
    print("cores used:", sum(1 for count in per_core if count), "of", len(per_core))
    print("connection packets redirected through rings:", engine.stats.transfers)
    summary = engine.summary()
    print(f"total forwarded: {summary['forwarded']}, NF drops: {summary['nf_drops']}")


if __name__ == "__main__":
    main()
