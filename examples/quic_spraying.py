#!/usr/bin/env python3
"""Spraying UDP: the QUIC opportunity (paper §7, last paragraph).

By default Sprayer only sprays TCP — reordering can hurt UDP apps like
VoIP. But "QUIC ... runs on top of UDP and by design is more resilient
to packet reordering than TCP", so a middlebox can be told to spray
QUIC's port too. This example runs one bulk QUIC-like connection
through the 8-core middlebox twice — UDP on RSS vs. UDP-443 sprayed —
with an expensive NF, and shows the single-flow multi-core win carrying
over to UDP.

Run:  python examples/quic_spraying.py
"""

import random

from repro.core import MiddleboxConfig, MiddleboxEngine
from repro.experiments.format import format_table
from repro.net import FiveTuple
from repro.net.five_tuple import PROTO_UDP
from repro.nfs import SyntheticNf
from repro.nic.link import Link
from repro.sim import MICROSECOND, MILLISECOND, SECOND, Simulator
from repro.tcpstack.quic import QuicLikeReceiver, QuicLikeSender
from repro.trafficgen.flows import CLIENT_NET, SERVER_NET, is_toward_server

QUIC_FLOW = FiveTuple(CLIENT_NET | 9, SERVER_NET | 9, 51000, 443, PROTO_UDP)
NF_CYCLES = 10000
DURATION = 80 * MILLISECOND


def run(spray_udp: bool) -> dict:
    sim = Simulator()
    engine = MiddleboxEngine(
        sim,
        SyntheticNf(busy_cycles=NF_CYCLES),
        MiddleboxConfig(
            mode="sprayer",
            num_cores=8,
            spray_udp_ports=(443,) if spray_udp else (),
        ),
    )
    rng = random.Random(21)
    c2m = Link(sim, 10e9, 1 * MICROSECOND, sink=lambda p, t: engine.receive(p, t))
    s2m = Link(sim, 10e9, 1 * MICROSECOND, sink=lambda p, t: engine.receive(p, t))
    receiver = QuicLikeReceiver(sim, s2m, rng)
    sender = QuicLikeSender(sim, QUIC_FLOW, c2m, rng)
    m2s = Link(sim, 10e9, 1 * MICROSECOND, sink=lambda p, t: receiver.receive(p, t))
    m2c = Link(sim, 10e9, 1 * MICROSECOND, sink=lambda p, t: sender.receive(p, t))
    engine.set_egress(
        lambda p: (m2s if is_toward_server(p.five_tuple.dst_ip) else m2c).send(p)
    )
    sender.start()
    sim.run(until=DURATION)
    delivered = receiver.delivered_segments(QUIC_FLOW)
    per_core = engine.host.per_core_forwarded()
    return {
        "udp_steering": "sprayed (port 443)" if spray_udp else "rss (default)",
        "goodput_gbps": delivered * 1200 * 8 / (DURATION / SECOND) / 1e9,
        "cores_used": sum(1 for c in per_core if c > 0),
        "reordered": receiver.reordered_arrivals,
        "pkt_threshold": sender.packet_threshold,
        "data_rexmits": sender.data_retransmissions,
    }


def main() -> None:
    rows = [run(False), run(True)]
    print(format_table(rows, title=f"QUIC-like flow through the middlebox ({NF_CYCLES} cycles/packet)"))
    print(
        "\nSpraying reorders the flow, but packet numbers are never reused,\n"
        "so the sender recognises reordering, widens its loss threshold,\n"
        "and keeps the multi-core throughput."
    )


if __name__ == "__main__":
    main()
