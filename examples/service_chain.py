#!/usr/bin/env python3
"""An NF service chain on Sprayer: firewall -> NAT -> monitor.

Middleboxes usually run chains, not single NFs (the NFP/ParaBox setting
from the paper's related work). This example composes three of the
library's NFs into a direction-aware run-to-completion chain — return
traffic traverses the chain in reverse, so the NAT un-translates before
the inside firewall matches — and runs real TCP connections through it
under Sprayer.

Run:  python examples/service_chain.py
"""

import random

from repro.core import MiddleboxConfig, MiddleboxEngine, NfChain
from repro.experiments.format import format_table
from repro.nfs import FirewallNf, NatNf, TrafficMonitorNf
from repro.nfs.firewall import AclRule
from repro.sim import MILLISECOND, Simulator
from repro.trafficgen.flows import is_toward_server
from repro.trafficgen.iperf import TcpTestbed


def main() -> None:
    sim = Simulator()
    firewall = FirewallNf(acl=[AclRule(action="permit", dst_port=5201)])
    nat = NatNf(external_ip=0x0B000001)
    monitor = TrafficMonitorNf()
    chain = NfChain(
        [firewall, nat, monitor],
        direction_fn=lambda p: is_toward_server(p.five_tuple.dst_ip),
    )
    engine = MiddleboxEngine(sim, chain, MiddleboxConfig(mode="sprayer", num_cores=8))
    testbed = TcpTestbed(sim, engine, num_flows=4, rng=random.Random(5))
    result = testbed.run(duration=60 * MILLISECOND, warmup=30 * MILLISECOND)

    print(f"chain: {chain.name}")
    rows = [
        {
            "metric": "goodput (Gbps)",
            "value": f"{result.total_goodput_gbps:.2f}",
        },
        {"metric": "connections admitted (firewall)", "value": firewall.connections_admitted},
        {"metric": "translations active (nat)", "value": nat.translations_active},
        {"metric": "connections tracked (monitor)", "value": monitor.connections_opened},
        {"metric": "flow-table entries (all stages)",
         "value": engine.flow_state.total_entries()},
        {"metric": "cores used",
         "value": sum(1 for c in engine.host.per_core_forwarded() if c > 0)},
    ]
    print(format_table(rows))
    totals = monitor.aggregate(chain.stage_contexts(engine.contexts, monitor))
    print(f"\nmonitor shards aggregated: {totals['packets']} packets, "
          f"{totals['bytes'] / 1e6:.1f} MB across both directions")
    print("every stage kept its own per-flow state; all writes stayed on "
          "designated cores (enforcement was on).")


if __name__ == "__main__":
    main()
