#!/usr/bin/env python3
"""Writing your own NF on Sprayer's programming model (paper §3.4).

This walks through the full API surface with a small but real NF: a
per-connection byte quota enforcer. It keeps a quota entry per
connection (created at SYN on the designated core — Table 2's
``insert_local_flow``), decrements a *sharded* per-core usage counter
for every data packet (the relaxed-consistency statistics pattern), and
drops packets of connections whose aggregated usage exceeds the quota.

The same NF runs unmodified under every steering policy; the script
runs it under RSS, Sprayer, and the programmable-NIC extension.

Run:  python examples/custom_nf.py
"""

import random

from repro.core import MiddleboxConfig, MiddleboxEngine, NetworkFunction
from repro.experiments.format import format_table
from repro.net import ACK, SYN, FiveTuple, make_tcp_packet
from repro.sim import MILLISECOND, Simulator


class QuotaNf(NetworkFunction):
    """Drop connections that exceed a per-connection byte quota."""

    name = "quota"

    def __init__(self, quota_bytes: int):
        self.quota_bytes = quota_bytes
        self.admitted = 0
        self.quota_drops = 0

    def init(self, ctx):
        # Per-core shard of usage counters (aggregated lazily).
        ctx.local["usage"] = {}

    def connection_packets(self, packets, ctx):
        for packet in packets:
            if packet.flags & SYN and not packet.flags & ACK:
                flow = packet.five_tuple
                if ctx.get_local_flow(flow) is None:
                    quota = {"limit": self.quota_bytes}
                    ctx.insert_local_flow(flow, quota)
                    ctx.insert_local_flow(flow.reversed(), quota)
                    self.admitted += 1

    def regular_packets(self, packets, ctx):
        entries = ctx.get_flows([p.five_tuple for p in packets])
        usage = ctx.local["usage"]
        for packet, entry in zip(packets, entries):
            if entry is None:
                ctx.drop(packet)
                continue
            key = packet.five_tuple.canonical()
            usage[key] = usage.get(key, 0) + packet.frame_len
            ctx.write_global("quota_usage", relaxed=True)  # sharded stats
            # NOTE: each core sees only its shard; the enforcement point
            # compares the *local* shard against a per-core slice of the
            # quota — the looser-consistency trade-off from §3.4.
            per_core_budget = entry["limit"] / len(ctx.engine.contexts)
            if usage[key] > per_core_budget:
                self.quota_drops += 1
                ctx.drop(packet)

    def total_usage(self, contexts):
        merged = {}
        for ctx in contexts:
            for key, value in ctx.local["usage"].items():
                merged[key] = merged.get(key, 0) + value
        return merged


def run(mode: str) -> dict:
    sim = Simulator()
    nf = QuotaNf(quota_bytes=120_000)
    engine = MiddleboxEngine(sim, nf, MiddleboxConfig(mode=mode, num_cores=8))
    delivered = []
    engine.set_egress(delivered.append)
    rng = random.Random(3)
    flow = FiveTuple(0x0A000005, 0x0A010005, 40000, 443, 6)
    engine.receive(make_tcp_packet(flow, flags=SYN, tcp_checksum=rng.getrandbits(16)), sim.now)
    sim.run(until=sim.now + MILLISECOND)
    for seq in range(200):  # 200 * 1518 B ≈ 2.5x the quota
        packet = make_tcp_packet(
            flow, flags=ACK, seq=seq, payload_len=1448,
            tcp_checksum=rng.getrandbits(16),
        )
        engine.receive(packet, sim.now)
        if seq % 32 == 31:
            sim.run(until=sim.now + MILLISECOND)
    sim.run(until=sim.now + 10 * MILLISECOND)
    usage = nf.total_usage(engine.contexts)
    return {
        "mode": mode,
        "delivered": len(delivered),
        "quota_drops": nf.quota_drops,
        "bytes_counted": sum(usage.values()),
        "cores_with_shards": sum(1 for c in engine.contexts if c.local["usage"]),
    }


def main() -> None:
    rows = [run(mode) for mode in ("rss", "sprayer", "prognic")]
    print(format_table(rows, title="QuotaNf under three steering policies"))
    print(
        "\nSame NF code, three policies: under RSS the shard lives on one\n"
        "core; under spraying the counters shard across all cores and the\n"
        "quota is enforced against per-core slices (relaxed consistency)."
    )


if __name__ == "__main__":
    main()
