#!/usr/bin/env python3
"""A NAT middlebox carrying real TCP traffic: RSS vs. Sprayer.

Recreates the paper's motivating scenario with an actual NF (not the
synthetic one): a source NAT translating client connections, driven by
closed-loop TCP senders through the simulated testbed. With one hot
flow, RSS pins the whole connection to one core while Sprayer uses all
eight — the difference is the paper's headline.

Run:  python examples/nat_middlebox.py
"""

import random

from repro.core import MiddleboxConfig, MiddleboxEngine
from repro.experiments.format import format_table
from repro.nfs import NatNf
from repro.sim import MILLISECOND, Simulator
from repro.trafficgen.iperf import TcpTestbed

#: Per-packet work the NAT does besides translation (emulating payload
#: touches, logging, etc.) — makes the single-core limit bite.
EXTRA_WORK_CYCLES = 6000


class BusyNat(NatNf):
    """The Figure 5 NAT plus a configurable per-packet busy loop."""

    def regular_packets(self, packets, ctx):
        super().regular_packets(packets, ctx)
        ctx.consume_cycles(EXTRA_WORK_CYCLES * len(packets))


def run(mode: str, num_flows: int) -> dict:
    sim = Simulator()
    nat = BusyNat(external_ip=0x0B000001)
    engine = MiddleboxEngine(sim, nat, MiddleboxConfig(mode=mode, num_cores=8))
    testbed = TcpTestbed(sim, engine, num_flows=num_flows, rng=random.Random(77))
    result = testbed.run(duration=100 * MILLISECOND, warmup=50 * MILLISECOND)
    per_core = engine.host.per_core_forwarded()
    return {
        "mode": mode,
        "flows": num_flows,
        "goodput_gbps": result.total_goodput_gbps,
        "cores_used": sum(1 for count in per_core if count > 0),
        "translations": nat.translations_active,
        "retransmissions": result.retransmissions,
    }


def main() -> None:
    rows = []
    for num_flows in (1, 4):
        for mode in ("rss", "sprayer"):
            rows.append(run(mode, num_flows))
    print(format_table(rows, title=f"NAT middlebox, {EXTRA_WORK_CYCLES} extra cycles/packet"))
    single = {row["mode"]: row for row in rows if row["flows"] == 1}
    speedup = single["sprayer"]["goodput_gbps"] / max(1e-9, single["rss"]["goodput_gbps"])
    print(f"\nSingle-flow speedup from spraying: {speedup:.1f}x")


if __name__ == "__main__":
    main()
