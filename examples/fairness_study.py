#!/usr/bin/env python3
"""Fairness study: hash collisions vs. spraying (the paper's Figure 9).

Runs competing TCP flows through the middlebox under RSS and Sprayer
and reports per-flow goodputs and Jain's fairness index. Under RSS,
whichever flows collide on a core split that core's capacity while
lone flows keep a whole core — visible directly in the per-flow list.

Run:  python examples/fairness_study.py
"""

import random

from repro.core import MiddleboxConfig, MiddleboxEngine
from repro.experiments.format import format_table
from repro.metrics import jain_index
from repro.nfs import SyntheticNf
from repro.sim import MILLISECOND, Simulator
from repro.trafficgen.iperf import TcpTestbed


def run(mode: str, num_flows: int, seed: int):
    sim = Simulator()
    engine = MiddleboxEngine(
        sim, SyntheticNf(busy_cycles=10000), MiddleboxConfig(mode=mode, num_cores=8)
    )
    testbed = TcpTestbed(sim, engine, num_flows=num_flows, rng=random.Random(seed))
    result = testbed.run(duration=120 * MILLISECOND, warmup=60 * MILLISECOND)
    goodputs = sorted(result.per_flow_goodput_bps.values(), reverse=True)
    cores = {
        engine.designated_core(s.flow.five_tuple) for s in testbed.senders
    }
    return goodputs, jain_index(goodputs), len(cores)


def main() -> None:
    num_flows, seed = 8, 424
    rows = []
    for mode in ("rss", "sprayer"):
        goodputs, jain, distinct_cores = run(mode, num_flows, seed)
        rows.append(
            {
                "mode": mode,
                "jain_index": jain,
                "total_gbps": sum(goodputs) / 1e9,
                "best_flow_mbps": goodputs[0] / 1e6,
                "worst_flow_mbps": goodputs[-1] / 1e6,
                "cores_hit_by_hash": distinct_cores,
            }
        )
    print(format_table(rows, title=f"Fairness with {num_flows} competing flows (10k cycles/packet)"))
    print(
        "\nUnder RSS, flows that share a hash bucket share one core; under\n"
        "Sprayer every flow runs on all cores, so goodputs equalize."
    )


if __name__ == "__main__":
    main()
