"""Table 1 bench: state scope and access pattern of popular NFs.

Prints the paper's taxonomy with a runtime-verification column: each
implemented NF is actually driven through the Sprayer engine with
writing-partition enforcement on, so a declared access pattern that the
implementation violates would fail here.
"""

from conftest import record_rows

from repro.experiments.table1 import run_table1


def test_table1_access_patterns(benchmark):
    rows = benchmark.pedantic(lambda: run_table1(verify=True), rounds=1, iterations=1)
    record_rows(
        benchmark, rows,
        "Table 1: state scope and access pattern of popular stateful NFs",
    )
    verified = [row for row in rows if row["verified"] != "-"]
    assert verified, "no NF was runtime-verified"
    assert all(row["verified"] == "ok" for row in verified)
