"""Ablation: Sprayer's flow-state abstractions vs a StatelessNF store (§6).

"StatelessNF could potentially replace Sprayer's flow state
abstractions ... Moreover, accessing remote states increases latency
and requires extra CPU cycles [45]." This bench runs the same sprayed
workload with both backends and quantifies that critique: with a
remote store, *every* per-packet state read is a round trip, so the
sustainable processing rate drops by the ratio of the remote-access
cost to a local lookup.
"""

import random

from conftest import record_rows

from repro.core import MiddleboxConfig, MiddleboxEngine
from repro.net import ACK, SYN, make_tcp_packet
from repro.nfs import SyntheticNf
from repro.sim import MILLISECOND, Simulator
from repro.trafficgen.flows import random_tcp_flows

PACKETS_PER_FLOW = 40
FLOWS = 32


def run_backend(backend: str) -> dict:
    sim = Simulator()
    engine = MiddleboxEngine(
        sim,
        SyntheticNf(busy_cycles=1000),
        MiddleboxConfig(mode="sprayer", num_cores=8, state_backend=backend),
    )
    engine.set_egress(lambda p: None)
    rng = random.Random(3)
    for flow in random_tcp_flows(FLOWS, rng):
        engine.receive(
            make_tcp_packet(flow, flags=SYN, tcp_checksum=rng.getrandbits(16)), sim.now
        )
        sim.run(until=sim.now + MILLISECOND // 2)
        for seq in range(PACKETS_PER_FLOW):
            engine.receive(
                make_tcp_packet(flow, flags=ACK, seq=seq,
                                tcp_checksum=rng.getrandbits(16)),
                sim.now,
            )
        sim.run(until=sim.now + MILLISECOND)
    sim.run(until=sim.now + 20 * MILLISECOND)
    packets = max(1, engine.stats.packets_forwarded)
    cycles = sum(core.stats.busy_cycles for core in engine.host.cores)
    row = {
        "backend": backend,
        "cycles_per_packet": cycles / packets,
        "effective_mpps_per_core": 2.0e9 / (cycles / packets) / 1e6,
    }
    if backend == "remote":
        row["remote_accesses"] = engine.flow_state.remote_accesses
    return row


def test_remote_state_costs_per_packet_round_trips(benchmark):
    rows = benchmark.pedantic(
        lambda: [run_backend("partitioned"), run_backend("remote")],
        rounds=1,
        iterations=1,
    )
    record_rows(
        benchmark, rows,
        "Ablation: Sprayer flow state vs StatelessNF-style remote store",
    )
    partitioned, remote = rows
    # Every data packet did a remote read; the connection packets wrote.
    assert remote["remote_accesses"] >= FLOWS * PACKETS_PER_FLOW
    # The paper's critique, quantified: the remote store costs far more
    # CPU per packet (here dominated by ~2000-cycle round trips vs a
    # ~30-cycle warm local lookup).
    assert remote["cycles_per_packet"] > 1.5 * partitioned["cycles_per_packet"]