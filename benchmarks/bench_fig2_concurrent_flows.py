"""Figure 2 bench: concurrent flows per 150 µs window.

Paper numbers: all flows — median 4, p99 14; flows >10 MB — median 1,
p99 6. The synthetic trace is calibrated to land in those bands.
"""

from conftest import record_rows

from repro.experiments.fig2 import run_fig2


def test_fig2_concurrent_flows(benchmark):
    rows = benchmark.pedantic(
        lambda: run_fig2(seed=1, duration_s=4.0, samples=1200), rounds=1, iterations=1
    )
    record_rows(benchmark, rows, "Figure 2: concurrent flows per 150 us window")
    all_flows = next(r for r in rows if r["population"] == "all flows")
    big = next(r for r in rows if r["population"] == "> 10 MB")
    assert 2 <= all_flows["median"] <= 9  # paper: 4
    assert 6 <= all_flows["p99"] <= 25  # paper: 14
    assert big["median"] <= 4  # paper: 1
    assert big["p99"] <= 9  # paper: 6
    assert big["median"] <= all_flows["median"]
