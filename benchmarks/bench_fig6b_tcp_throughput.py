"""Figure 6(b) bench: single-connection TCP throughput vs. cycles/packet.

Paper shapes asserted: both systems at line-rate goodput for a trivial
NF; RSS collapses once one core cannot carry the connection; Sprayer
holds near line rate across the whole sweep (small reordering tax at
the right edge).
"""

import pytest
from conftest import record_rows

from repro.experiments.fig6 import fig6b_sweep
from repro.experiments.runner import SweepRunner
from repro.sim.timeunits import MILLISECOND

SWEEP = fig6b_sweep(cycles_sweep=(0, 5000, 10000), duration=80 * MILLISECOND)


def test_fig6b_tcp_throughput(benchmark):
    rows = benchmark.pedantic(
        lambda: SWEEP.run(SweepRunner()),
        rounds=1,
        iterations=1,
    )
    record_rows(benchmark, rows, "Figure 6(b): TCP throughput (Gbps) vs cycles/packet")
    by_cycles = {row["cycles"]: row for row in rows}
    assert by_cycles[0]["rss_gbps"] == pytest.approx(9.4, abs=0.4)
    assert by_cycles[0]["sprayer_gbps"] == pytest.approx(9.4, abs=0.4)
    assert by_cycles[10000]["sprayer_gbps"] > 7.5
    assert by_cycles[10000]["rss_gbps"] < 2.5
    assert by_cycles[5000]["sprayer_gbps"] > 3 * by_cycles[5000]["rss_gbps"]
