"""Figure 7(a) bench: processing rate vs. number of flows at 10k cycles.

Paper shapes asserted: Sprayer flat regardless of flow count; RSS
scales roughly linearly with flows until all cores are covered.
"""

import pytest
from conftest import record_rows

from repro.experiments.fig7 import fig7a_sweep
from repro.experiments.runner import SweepRunner
from repro.sim.timeunits import MILLISECOND

SWEEP = fig7a_sweep(flow_sweep=(1, 4, 16, 64), duration=6 * MILLISECOND,
                    warmup=2 * MILLISECOND)


def test_fig7a_rate_vs_flows(benchmark):
    rows = benchmark.pedantic(
        lambda: SWEEP.run(SweepRunner()),
        rounds=1,
        iterations=1,
    )
    record_rows(benchmark, rows, "Figure 7(a): processing rate (Mpps) vs #flows")
    sprayer = [row["sprayer_mpps"] for row in rows]
    assert max(sprayer) == pytest.approx(min(sprayer), rel=0.05)  # flat
    by_flows = {row["flows"]: row for row in rows}
    assert by_flows[1]["rss_mpps"] == pytest.approx(0.197, rel=0.15)
    assert by_flows[64]["rss_mpps"] == pytest.approx(by_flows[64]["sprayer_mpps"], rel=0.15)
