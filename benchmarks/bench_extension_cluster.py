"""Extension bench: multi-host scaling (§7).

Aggregate processing capacity should grow ~linearly with hosts when
the workload has enough flows to spread: each host is a full 8-core
Sprayer middlebox, and the consistent-hash front end keeps every flow
(and its state) on one host.
"""

import random

from conftest import record_rows

from repro.cluster import ClusterMiddlebox
from repro.net import ACK, SYN, make_tcp_packet
from repro.nfs import SyntheticNf
from repro.sim import MILLISECOND, SECOND, Simulator
from repro.trafficgen.flows import random_tcp_flows

NF_CYCLES = 10000
FLOWS = 64
#: Offered aggregate load, well above a single host's ~1.57 Mpps.
OFFERED_PPS = 5.0e6
DURATION = 6 * MILLISECOND
WARMUP = 2 * MILLISECOND


def run_hosts(num_hosts: int) -> dict:
    sim = Simulator()
    cluster = ClusterMiddlebox(
        sim, lambda host: SyntheticNf(busy_cycles=NF_CYCLES), num_hosts=num_hosts
    )
    forwarded = {"count": 0, "measuring": False}

    def egress(packet):
        if forwarded["measuring"]:
            forwarded["count"] += 1

    cluster.set_egress(egress)
    rng = random.Random(17)
    flows = random_tcp_flows(FLOWS, rng)
    for flow in flows:
        cluster.receive(
            make_tcp_packet(flow, flags=SYN, tcp_checksum=rng.getrandbits(16)), sim.now
        )
    sim.run(until=MILLISECOND)

    # Open-loop data at OFFERED_PPS, round-robin over flows.
    interval = round(SECOND / OFFERED_PPS) * len(flows)
    seq = {flow: 0 for flow in flows}

    def burst():
        now = sim.now
        for flow in flows:
            packet = make_tcp_packet(
                flow, flags=ACK, seq=seq[flow], tcp_checksum=rng.getrandbits(16)
            )
            seq[flow] += 1
            cluster.receive(packet, now)
        if now < DURATION:
            sim.after(interval, burst)

    sim.after(0, burst)
    sim.run(until=WARMUP)
    forwarded["measuring"] = True
    sim.run(until=DURATION)
    window_s = (DURATION - WARMUP) / SECOND
    return {
        "hosts": num_hosts,
        "rate_mpps": forwarded["count"] / window_s / 1e6,
    }


def test_cluster_scales_capacity(benchmark):
    rows = benchmark.pedantic(
        lambda: [run_hosts(n) for n in (1, 2, 4)], rounds=1, iterations=1
    )
    record_rows(benchmark, rows, "Extension: aggregate rate vs cluster size (10k cycles)")
    by_hosts = {row["hosts"]: row["rate_mpps"] for row in rows}
    # One host saturates at ~1.57 Mpps; two hosts nearly double it; four
    # hosts carry the whole 5 Mpps offered load.
    assert by_hosts[1] < 1.7
    assert by_hosts[2] > 1.7 * by_hosts[1] * 0.85
    assert by_hosts[4] > by_hosts[2]
