"""Ablation: why the designated-core hash must be symmetric (§3.2).

"By default, we use a hash function that maps upstream and downstream
flows from the same TCP connection to the same designated core." This
bench shows what breaks otherwise: an NF that installs state for both
directions from one SYN (the paper's NAT pattern, Figure 5 lines
24-25) violates the writing partition as soon as the reverse direction
hashes elsewhere — which, with an asymmetric hash on C cores, happens
for ~(C-1)/C of connections.
"""

import random

import pytest
from conftest import record_rows

from repro.core import MiddleboxConfig, MiddleboxEngine, WritingPartitionError
from repro.core.nf import NetworkFunction
from repro.net import SYN, make_tcp_packet
from repro.sim import MILLISECOND, Simulator
from repro.steering import make_policy
from repro.trafficgen.flows import random_tcp_flows

CONNECTIONS = 256


class BothSidesNf(NetworkFunction):
    """Installs state for both directions on the first SYN (Fig. 5)."""

    name = "both-sides"

    def connection_packets(self, packets, ctx):
        for packet in packets:
            if packet.flags & SYN:
                ctx.insert_local_flow(packet.five_tuple, {})
                ctx.insert_local_flow(packet.five_tuple.reversed(), {})


def count_direction_mismatches(symmetric: bool) -> dict:
    """How many connections' two directions get different designated cores."""
    config = MiddleboxConfig(
        mode="sprayer", num_cores=8, symmetric_designation=symmetric
    )
    policy = make_policy("sprayer", config)
    policy.build_nic()
    rng = random.Random(13)
    mismatches = sum(
        1
        for flow in random_tcp_flows(CONNECTIONS, rng)
        if policy.designated_core(flow) != policy.designated_core(flow.reversed())
    )
    return {
        "designation_hash": "symmetric" if symmetric else "asymmetric",
        "connections": CONNECTIONS,
        "direction_mismatches": mismatches,
    }


def test_symmetric_designation_required(benchmark):
    rows = benchmark.pedantic(
        lambda: [count_direction_mismatches(True), count_direction_mismatches(False)],
        rounds=1,
        iterations=1,
    )
    record_rows(benchmark, rows, "Ablation: symmetric vs asymmetric designated-core hash")
    symmetric, asymmetric = rows
    assert symmetric["direction_mismatches"] == 0
    # Asymmetric: ~7/8 of reverse directions land on another core.
    assert asymmetric["direction_mismatches"] > CONNECTIONS // 2

    # And the consequence at runtime: the Figure 5 pattern raises a
    # writing-partition violation under the asymmetric hash.
    sim = Simulator()
    engine = MiddleboxEngine(
        sim,
        BothSidesNf(),
        MiddleboxConfig(mode="sprayer", num_cores=8, symmetric_designation=False),
    )
    engine.set_egress(lambda p: None)
    rng = random.Random(13)
    with pytest.raises(WritingPartitionError):
        for flow in random_tcp_flows(64, rng):
            engine.receive(
                make_tcp_packet(flow, flags=SYN, tcp_checksum=rng.getrandbits(16)),
                sim.now,
            )
            sim.run(until=sim.now + MILLISECOND)
