"""Extension bench: other TCP implementations under Sprayer.

The paper's §5 summary leaves open "how well Sprayer interacts with
other TCP implementations". This bench answers it for the two CC
families the model implements: CUBIC (the paper's testbed) and NewReno
(more loss-sensitive — every spurious fast retransmit halves, not
x0.7). Both run a single flow at 10k cycles under RSS and Sprayer.
"""

from conftest import record_rows

from repro.experiments.harness import run_tcp
from repro.sim.timeunits import MILLISECOND
from repro.tcpstack.cubic import CubicCongestionControl
from repro.tcpstack.reno import RenoCongestionControl

CC_FACTORIES = {
    "cubic": lambda: CubicCongestionControl(),
    "reno": lambda: RenoCongestionControl(),
}


def run(cc_name: str, mode: str) -> dict:
    result = run_tcp(
        mode,
        10000,
        num_flows=1,
        duration=100 * MILLISECOND,
        cc_factory=CC_FACTORIES[cc_name],
        seed=11,
    )
    return {
        "cc": cc_name,
        "mode": mode,
        "goodput_gbps": result.total_goodput_gbps,
        "spurious": result.spurious_recoveries,
        "timeouts": result.timeouts,
    }


def test_sprayer_with_other_tcp_implementations(benchmark):
    rows = benchmark.pedantic(
        lambda: [run(cc, mode) for cc in ("cubic", "reno") for mode in ("rss", "sprayer")],
        rounds=1,
        iterations=1,
    )
    record_rows(benchmark, rows, "Extension: CC flavours under RSS vs Sprayer (1 flow, 10k cycles)")
    by_key = {(row["cc"], row["mode"]): row for row in rows}
    # Sprayer's single-flow win holds for both CC flavours.
    for cc in ("cubic", "reno"):
        assert (
            by_key[(cc, "sprayer")]["goodput_gbps"]
            > 3 * by_key[(cc, "rss")]["goodput_gbps"]
        )
    # And neither collapses into timeout loops under spraying.
    assert by_key[("cubic", "sprayer")]["timeouts"] == 0
    assert by_key[("reno", "sprayer")]["timeouts"] == 0