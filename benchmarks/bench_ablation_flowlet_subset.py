"""Ablation: spraying granularity (§7 — flowlets, bounded subsets).

One 10k-cycle flow under four steering granularities. The trade-off
the paper hypothesizes: coarser spraying (flowlets, small subsets)
reorders less but parallelizes less; per-packet spraying maximizes
both. Measured: goodput, out-of-order arrivals at the receiver, and
the sender's final adaptive dupthresh.
"""

import random

from conftest import record_rows

from repro.core import MiddleboxConfig, MiddleboxEngine
from repro.nfs import SyntheticNf
from repro.sim import MILLISECOND, Simulator
from repro.trafficgen.iperf import TcpTestbed

MODES = ("rss", "flowlet", "subset", "sprayer")


def run_mode(mode: str):
    sim = Simulator()
    engine = MiddleboxEngine(
        sim,
        SyntheticNf(busy_cycles=10000),
        MiddleboxConfig(mode=mode, num_cores=8, subset_size=2),
    )
    testbed = TcpTestbed(sim, engine, num_flows=1, rng=random.Random(11))
    result = testbed.run(duration=80 * MILLISECOND, warmup=40 * MILLISECOND)
    return {
        "mode": mode,
        "goodput_gbps": result.total_goodput_gbps,
        "reordered_arrivals": testbed.server.reorder_arrivals,
        "final_dupthresh": testbed.senders[0].dupthresh,
    }


def test_spraying_granularity_tradeoff(benchmark):
    rows = benchmark.pedantic(
        lambda: [run_mode(mode) for mode in MODES], rounds=1, iterations=1
    )
    record_rows(benchmark, rows, "Ablation: spraying granularity (single flow, 10k cycles)")
    by_mode = {row["mode"]: row for row in rows}
    # Throughput: rss < {flowlet, subset} < sprayer.
    assert by_mode["sprayer"]["goodput_gbps"] > by_mode["flowlet"]["goodput_gbps"]
    assert by_mode["sprayer"]["goodput_gbps"] > by_mode["subset"]["goodput_gbps"]
    assert by_mode["flowlet"]["goodput_gbps"] > by_mode["rss"]["goodput_gbps"]
    assert by_mode["subset"]["goodput_gbps"] > by_mode["rss"]["goodput_gbps"]
    # Reordering: rss none; coarser spraying reorders less than full.
    assert by_mode["rss"]["reordered_arrivals"] == 0
    assert by_mode["flowlet"]["reordered_arrivals"] < by_mode["sprayer"]["reordered_arrivals"]
