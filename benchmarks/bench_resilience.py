"""Figure R bench: resilience under a mid-run 10x core slowdown.

Paper shape asserted (§7's resilience argument): when one core
degrades, Sprayer re-sprays data packets over the healthy cores with a
single Flow Director reprogram, so it keeps strictly more throughput
AND a strictly lower p99 than RSS, whose hashed-to-the-sick-core flows
queue up and tail-drop for the whole fault window.
"""

from conftest import record_rows

from repro.experiments.figr import run_figr
from repro.sim.timeunits import MILLISECOND


def test_figr_resilience(benchmark):
    rows, timeline = benchmark.pedantic(
        lambda: run_figr(duration=8 * MILLISECOND, warmup=2 * MILLISECOND,
                         fault_at=3 * MILLISECOND, fault_until=6 * MILLISECOND),
        rounds=1,
        iterations=1,
    )
    record_rows(benchmark, rows, "Figure R: mid-run 10x core slowdown")
    by_mode = {row["mode"]: row for row in rows}
    sprayer, rss = by_mode["sprayer"], by_mode["rss"]
    assert sprayer["fwd_mpps"] > rss["fwd_mpps"]
    assert sprayer["p99_us"] < rss["p99_us"]
    assert rss["p99_us"] > 10 * sprayer["p99_us"]
    assert rss["queue_drops"] > 0 and sprayer["queue_drops"] == 0
    # Flowlet's gap-based spraying cannot move in-flight flowlets, so
    # under constant per-flow load it degrades like RSS.
    assert by_mode["flowlet"]["p99_us"] > 10 * sprayer["p99_us"]
