"""Ablation: designated cores vs. naive spraying with shared state (§3.2).

The paper's core design argument: blindly spraying connection packets
forces a shared, locked flow table whose cache lines bounce between
cores. This bench drives the same open/close-heavy workload through
both designs and compares lock/invalidation traffic and cycles spent.
"""

import random

from conftest import record_rows

from repro.core import MiddleboxConfig, MiddleboxEngine
from repro.core.nf import NetworkFunction
from repro.net import ACK, FIN, SYN, make_tcp_packet
from repro.sim import MILLISECOND, Simulator
from repro.trafficgen.flows import random_tcp_flows

CONNECTIONS = 200


class OpenCloseNf(NetworkFunction):
    """Writes flow state on SYN and on FIN — a NAT/firewall skeleton."""

    name = "open-close"

    def connection_packets(self, packets, ctx):
        for packet in packets:
            if packet.flags & SYN:
                ctx.insert_local_flow(packet.five_tuple, {"open": True})
            else:
                entry = ctx.get_local_flow(packet.five_tuple)
                if entry is not None:
                    entry["open"] = False

    def regular_packets(self, packets, ctx):
        ctx.get_flows([p.five_tuple for p in packets])


def run_mode(mode: str):
    sim = Simulator()
    engine = MiddleboxEngine(sim, OpenCloseNf(), MiddleboxConfig(mode=mode, num_cores=8))
    engine.set_egress(lambda p: None)
    rng = random.Random(7)
    for flow in random_tcp_flows(CONNECTIONS, rng):
        engine.receive(make_tcp_packet(flow, flags=SYN, tcp_checksum=rng.getrandbits(16)), sim.now)
        sim.run(until=sim.now + MILLISECOND // 4)
        for seq in range(4):
            engine.receive(
                make_tcp_packet(flow, flags=ACK, seq=seq, tcp_checksum=rng.getrandbits(16)),
                sim.now,
            )
        engine.receive(
            make_tcp_packet(flow, flags=FIN | ACK, tcp_checksum=rng.getrandbits(16)), sim.now
        )
        sim.run(until=sim.now + MILLISECOND // 4)
    sim.run(until=sim.now + 10 * MILLISECOND)
    coherence = engine.coherence.stats
    total_packets = max(1, engine.stats.packets_forwarded)
    total_cycles = sum(core.stats.busy_cycles for core in engine.host.cores)
    return {
        "mode": mode,
        "locks": getattr(engine.flow_state, "lock_acquisitions", 0),
        "invalidating_writes": coherence.invalidating_writes,
        "remote_reads": coherence.remote_reads,
        "cycles_per_packet": total_cycles / total_packets,
    }


def test_designated_cores_avoid_state_bouncing(benchmark):
    rows = benchmark.pedantic(
        lambda: [run_mode("sprayer"), run_mode("naive")], rounds=1, iterations=1
    )
    record_rows(
        benchmark, rows,
        "Ablation: single-writer flow state (sprayer) vs shared locked table (naive)",
    )
    sprayer, naive = rows
    # Sprayer needs no synchronization primitives at all; naive spraying
    # locks the shared table on *every* state access (and our lock is
    # uncontended — a lower bound; real contention scales with cores).
    assert sprayer["locks"] == 0
    assert naive["locks"] > CONNECTIONS * 4
    # Both pay reader-copy invalidations when the closing write lands;
    # naive pays at least as many (ownership can also bounce), plus the
    # locks, so its per-packet cycle cost is strictly higher.
    assert naive["invalidating_writes"] >= sprayer["invalidating_writes"]
    assert naive["cycles_per_packet"] > sprayer["cycles_per_packet"]
