"""Extension bench: QUIC over sprayed UDP (§7, last paragraph).

A single QUIC-like connection through the 10k-cycle middlebox: RSS
steering pins it to one core (~1 Gbps of 1200 B datagrams); spraying
UDP-443 gives it all eight cores, and the transport's fresh packet
numbers + adaptive packet threshold absorb the reordering.
"""

import random

from conftest import record_rows

from repro.core import MiddleboxConfig, MiddleboxEngine
from repro.net import FiveTuple
from repro.net.five_tuple import PROTO_UDP
from repro.nfs import SyntheticNf
from repro.nic.link import Link
from repro.sim import MICROSECOND, MILLISECOND, SECOND, Simulator
from repro.tcpstack.quic import QuicLikeReceiver, QuicLikeSender
from repro.trafficgen.flows import CLIENT_NET, SERVER_NET, is_toward_server

QUIC_FLOW = FiveTuple(CLIENT_NET | 9, SERVER_NET | 9, 51000, 443, PROTO_UDP)
DURATION = 50 * MILLISECOND


def run(spray_udp: bool) -> dict:
    sim = Simulator()
    engine = MiddleboxEngine(
        sim,
        SyntheticNf(busy_cycles=10000),
        MiddleboxConfig(
            mode="sprayer", num_cores=8,
            spray_udp_ports=(443,) if spray_udp else (),
        ),
    )
    rng = random.Random(21)
    c2m = Link(sim, 10e9, 1 * MICROSECOND, sink=lambda p, t: engine.receive(p, t))
    s2m = Link(sim, 10e9, 1 * MICROSECOND, sink=lambda p, t: engine.receive(p, t))
    receiver = QuicLikeReceiver(sim, s2m, rng)
    sender = QuicLikeSender(sim, QUIC_FLOW, c2m, rng)
    m2s = Link(sim, 10e9, 1 * MICROSECOND, sink=lambda p, t: receiver.receive(p, t))
    m2c = Link(sim, 10e9, 1 * MICROSECOND, sink=lambda p, t: sender.receive(p, t))
    engine.set_egress(
        lambda p: (m2s if is_toward_server(p.five_tuple.dst_ip) else m2c).send(p)
    )
    sender.start()
    sim.run(until=DURATION)
    delivered = receiver.delivered_segments(QUIC_FLOW)
    per_core = engine.host.per_core_forwarded()
    return {
        "udp_steering": "sprayed-443" if spray_udp else "rss",
        "goodput_gbps": delivered * 1200 * 8 / (DURATION / SECOND) / 1e9,
        "cores_used": sum(1 for c in per_core if c > 0),
        "ptos": sender.ptos,
        "pkt_threshold": sender.packet_threshold,
    }


def test_quic_spraying_multiplies_single_flow_throughput(benchmark):
    rows = benchmark.pedantic(lambda: [run(False), run(True)], rounds=1, iterations=1)
    record_rows(benchmark, rows, "Extension: QUIC-like flow, RSS vs sprayed UDP-443")
    rss, sprayed = rows
    assert rss["cores_used"] == 1
    assert sprayed["cores_used"] == 8
    assert sprayed["goodput_gbps"] > 3 * rss["goodput_gbps"]
    assert sprayed["ptos"] == 0  # reordering absorbed, no stalls
    assert sprayed["pkt_threshold"] > 3  # the adaptation did the absorbing