"""Figure 8 bench: p99 RTT at 70% load, single flow.

Paper shape asserted: Sprayer's tail latency sits below RSS's, with
the gap widening as the per-packet cost grows — a sprayed flow's
packets are processed in parallel instead of queueing on one core.
"""

from conftest import record_rows

from repro.experiments.fig8 import run_fig8
from repro.sim.timeunits import MILLISECOND

SWEEP = (0, 5000, 10000)


def test_fig8_p99_latency(benchmark):
    rows = benchmark.pedantic(
        lambda: run_fig8(cycles_sweep=SWEEP, duration=8 * MILLISECOND,
                         warmup=2 * MILLISECOND),
        rounds=1,
        iterations=1,
    )
    record_rows(benchmark, rows, "Figure 8: p99 RTT (us) at 70% load")
    for row in rows[1:]:  # beyond the trivial-NF point
        assert row["sprayer_p99_us"] < row["rss_p99_us"]
    gaps = [row["rss_p99_us"] - row["sprayer_p99_us"] for row in rows]
    assert gaps[-1] > gaps[0]  # the gap grows with NF cost
