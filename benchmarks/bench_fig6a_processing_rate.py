"""Figure 6(a) bench: processing rate vs. cycles/packet, single flow.

Paper shapes asserted: Sprayer pinned near the 82599's ~10 Mpps Flow
Director cap at low per-packet cost; RSS limited to one core
throughout; at 10,000 cycles Sprayer ~8x RSS (~1.6 vs ~0.2 Mpps).
"""

import pytest
from conftest import record_rows

from repro.experiments.fig6 import fig6a_sweep
from repro.experiments.runner import SweepRunner
from repro.sim.timeunits import MILLISECOND

SWEEP = fig6a_sweep(cycles_sweep=(0, 2500, 5000, 10000),
                    duration=6 * MILLISECOND, warmup=2 * MILLISECOND)


def test_fig6a_processing_rate(benchmark):
    rows = benchmark.pedantic(
        lambda: SWEEP.run(SweepRunner()),
        rounds=1,
        iterations=1,
    )
    record_rows(benchmark, rows, "Figure 6(a): processing rate (Mpps) vs cycles/packet")
    by_cycles = {row["cycles"]: row for row in rows}
    assert by_cycles[0]["sprayer_mpps"] == pytest.approx(10.5, rel=0.1)
    assert by_cycles[10000]["rss_mpps"] == pytest.approx(0.197, rel=0.1)
    assert by_cycles[10000]["sprayer_mpps"] == pytest.approx(
        8 * by_cycles[10000]["rss_mpps"], rel=0.1
    )
    # RSS decreasing monotonically with NF cost.
    rss = [row["rss_mpps"] for row in rows]
    assert rss == sorted(rss, reverse=True)
