"""Figure 9 bench: Jain's fairness index vs. number of flows.

Paper shape asserted: Sprayer's index stays near 1.0 (all flows share
all cores), while RSS's depends on how the hash distributes flows over
cores and dips below.
"""

from conftest import record_rows

from repro.experiments.fig9 import run_fig9
from repro.sim.timeunits import MILLISECOND

FLOWS = (4, 8, 16)


def test_fig9_fairness(benchmark):
    rows = benchmark.pedantic(
        lambda: run_fig9(flow_sweep=FLOWS, duration=100 * MILLISECOND, seeds=(1, 2)),
        rounds=1,
        iterations=1,
    )
    record_rows(benchmark, rows, "Figure 9: Jain's fairness index vs #flows")
    for row in rows:
        assert row["sprayer_jain"] > 0.85
        # RSS may tie on lucky seeds but must never beat Sprayer clearly.
        assert row["sprayer_jain"] >= row["rss_jain"] - 0.05
    # Somewhere in the sweep RSS shows real collision unfairness.
    assert min(row["rss_min"] for row in rows) < 0.9
