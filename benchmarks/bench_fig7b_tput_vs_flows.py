"""Figure 7(b) bench: TCP throughput vs. number of flows at 10k cycles.

Paper shapes asserted: Sprayer roughly flat; RSS "considerably worse
throughput for a small number of flows and a slightly better throughput
for a sufficiently large number of flows" — i.e. the curves cross.
"""

from conftest import record_rows

from repro.experiments.fig7 import fig7b_sweep
from repro.experiments.runner import SweepRunner
from repro.sim.timeunits import MILLISECOND

SWEEP = fig7b_sweep(flow_sweep=(1, 4, 16), duration=100 * MILLISECOND)


def test_fig7b_tput_vs_flows(benchmark):
    rows = benchmark.pedantic(
        lambda: SWEEP.run(SweepRunner()),
        rounds=1,
        iterations=1,
    )
    record_rows(benchmark, rows, "Figure 7(b): TCP throughput (Gbps) vs #flows")
    by_flows = {row["flows"]: row for row in rows}
    # Few flows: Sprayer wins big.
    assert by_flows[1]["sprayer_gbps"] > 4 * by_flows[1]["rss_gbps"]
    # Many flows: RSS catches up (within 15% / crossing over).
    assert by_flows[16]["rss_gbps"] > 0.85 * by_flows[16]["sprayer_gbps"]
    # Sprayer consistent across flow counts.
    sprayer = [row["sprayer_gbps"] for row in rows]
    assert min(sprayer) > 0.85 * max(sprayer)
