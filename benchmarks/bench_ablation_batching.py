"""Ablation: batch size (§3.3 — "we use batches of packets whenever possible").

Per-batch fixed costs (rx poll, tx flush, ring ops) amortize across the
batch; with a trivial NF they dominate, so the single-core forwarding
rate rises visibly with the batch size. With an expensive NF the effect
vanishes — which is why the paper's 10k-cycle experiments are batch-
insensitive.
"""

from conftest import record_rows

from repro.experiments.runner import SweepRunner
from repro.experiments.spec import Series, Sweep
from repro.sim.timeunits import MILLISECOND

#: batch_size is an engine config kwarg, so the axis lands in the
#: scenario's params; the two curves are NF-cost series on RSS.
SWEEP = Sweep(
    name="ablation_batching",
    kind="open_loop",
    axis="batch_size",
    values=(1, 4, 32),
    series=(
        Series.make("mpps_trivial_nf", nf_cycles=0),
        Series.make("mpps_10k_nf", nf_cycles=10000),
    ),
    metric="rate_mpps",
    base=dict(mode="rss", duration=4 * MILLISECOND, warmup=1 * MILLISECOND),
)


def test_batching_amortizes_fixed_costs(benchmark):
    rows = benchmark.pedantic(lambda: SWEEP.run(SweepRunner()), rounds=1, iterations=1)
    record_rows(benchmark, rows, "Ablation: batch size vs single-core forwarding rate")
    trivial = [row["mpps_trivial_nf"] for row in rows]
    heavy = [row["mpps_10k_nf"] for row in rows]
    # Trivial NF: batching matters (>15% from batch 1 to 32).
    assert trivial[-1] > 1.15 * trivial[0]
    # Heavy NF: batching is in the noise (<2%).
    assert abs(heavy[-1] - heavy[0]) / heavy[0] < 0.02
