"""Ablation: batch size (§3.3 — "we use batches of packets whenever possible").

Per-batch fixed costs (rx poll, tx flush, ring ops) amortize across the
batch; with a trivial NF they dominate, so the single-core forwarding
rate rises visibly with the batch size. With an expensive NF the effect
vanishes — which is why the paper's 10k-cycle experiments are batch-
insensitive.
"""

from conftest import record_rows

from repro.experiments.harness import run_open_loop
from repro.sim.timeunits import MILLISECOND

BATCHES = (1, 4, 32)


def run_point(batch_size: int, nf_cycles: int):
    result = run_open_loop(
        "rss",
        nf_cycles,
        duration=4 * MILLISECOND,
        warmup=1 * MILLISECOND,
        batch_size=batch_size,
    )
    return result.rate_mpps


def test_batching_amortizes_fixed_costs(benchmark):
    def sweep():
        rows = []
        for batch in BATCHES:
            rows.append(
                {
                    "batch_size": batch,
                    "mpps_trivial_nf": run_point(batch, 0),
                    "mpps_10k_nf": run_point(batch, 10000),
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record_rows(benchmark, rows, "Ablation: batch size vs single-core forwarding rate")
    trivial = [row["mpps_trivial_nf"] for row in rows]
    heavy = [row["mpps_10k_nf"] for row in rows]
    # Trivial NF: batching matters (>15% from batch 1 to 32).
    assert trivial[-1] > 1.15 * trivial[0]
    # Heavy NF: batching is in the noise (<2%).
    assert abs(heavy[-1] - heavy[0]) / heavy[0] < 0.02
