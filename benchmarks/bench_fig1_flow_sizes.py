"""Figure 1 bench: flow-size CDF and byte distribution.

Regenerates both curves of the paper's Figure 1 from the calibrated
synthetic backbone trace and checks the headline: >10 MB flows carry
the majority of bytes while being a tiny fraction of flows.
"""

from conftest import record_rows

from repro.experiments.fig1 import headline, run_fig1


def test_fig1_flow_size_distribution(benchmark):
    rows = benchmark.pedantic(
        lambda: run_fig1(seed=1, duration_s=3.0), rounds=1, iterations=1
    )
    stats = headline(seed=1, duration_s=3.0)
    rows.append(
        {
            "size_bytes": ">10MB share",
            "flows_cdf": stats["flow_fraction_over_10MB"],
            "bytes_cdf": stats["bytes_fraction_over_10MB"],
        }
    )
    record_rows(benchmark, rows, "Figure 1: CDF of flow sizes / bytes over sizes")
    # Paper: >10 MB flows account for >75 % of the traffic. The small
    # bench trace is noisier than the 48 h capture; require the
    # elephants-dominate property with slack.
    assert stats["bytes_fraction_over_10MB"] > 0.55
    assert stats["flow_fraction_over_10MB"] < 0.02
