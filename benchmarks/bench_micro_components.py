"""Microbenchmarks of the hot-path components (real wall-clock timings).

Unlike the figure benches (which regenerate the paper's data in
simulated time), these measure the Python implementation itself:
Toeplitz hashing, flow-table operations, Aho-Corasick scanning, the
checksum, and raw simulator event throughput.
"""

import random

from repro.core.flow_state import FlowTable
from repro.net import FiveTuple
from repro.net.checksum import internet_checksum
from repro.nfs.dpi import AhoCorasick
from repro.nic.rss import DEFAULT_RSS_KEY, rss_input_bytes, toeplitz_hash
from repro.sim import Simulator

FLOW = FiveTuple(0x0A000001, 0x0A010001, 40000, 80, 6)


def test_toeplitz_hash_speed(benchmark):
    data = rss_input_bytes(FLOW)
    result = benchmark(toeplitz_hash, DEFAULT_RSS_KEY, data)
    assert result == toeplitz_hash(DEFAULT_RSS_KEY, data)


def test_flow_table_insert_get(benchmark):
    rng = random.Random(1)
    flows = [
        FiveTuple(rng.getrandbits(32), rng.getrandbits(32), rng.getrandbits(16),
                  rng.getrandbits(16), 6)
        for _ in range(1024)
    ]

    def workload():
        table = FlowTable(0)
        for flow in flows:
            table.insert(flow, flow.src_port)
        hits = sum(1 for flow in flows if table.get(flow) is not None)
        return hits

    assert benchmark(workload) == 1024


def test_aho_corasick_scan_throughput(benchmark):
    rng = random.Random(2)
    automaton = AhoCorasick([b"attack", b"virus", b"malware", b"exploit"])
    payload = bytes(rng.randrange(97, 123) for _ in range(4096))

    def scan():
        state, matches = automaton.scan(0, payload)
        return state

    benchmark(scan)


def test_internet_checksum_speed(benchmark):
    data = bytes(range(256)) * 6  # a 1536-byte frame
    benchmark(internet_checksum, data)


def test_simulator_event_throughput(benchmark):
    def run_10k_events():
        sim = Simulator()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 10_000:
                sim.after(1000, tick)

        sim.after(0, tick)
        sim.run()
        return count[0]

    assert benchmark(run_10k_events) == 10_000
