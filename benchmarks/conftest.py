"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures (at
reduced but shape-preserving parameters), prints the resulting rows in
the same layout the paper reports, and stores them in pytest-benchmark's
``extra_info`` so they land in any saved benchmark JSON.

Persistence goes through :class:`repro.perf.io.TableLog`, the same io
module the ``python -m repro.perf`` harness uses, so every benchmark
artifact the repo produces is written by one code path.
"""

from __future__ import annotations

import pathlib
import sys
from typing import Dict, List, Sequence

from repro.experiments.format import format_table
from repro.perf.io import TableLog

#: Every record_rows call appends its table here (pytest's fd-level
#: capture swallows stdout for passing tests, and the tables should
#: survive a plain `pytest benchmarks/ --benchmark-only` run). The
#: TableLog truncates on the session's first write.
TABLES_PATH = pathlib.Path(__file__).with_name("latest_tables.txt")
_table_log = TableLog(TABLES_PATH)


def record_rows(benchmark, rows: List[Dict], title: str, columns: Sequence[str] = None):
    """Attach experiment rows to the benchmark, print them, and persist
    them to ``benchmarks/latest_tables.txt``."""
    benchmark.extra_info["title"] = title
    benchmark.extra_info["rows"] = rows
    text = format_table(rows, columns=columns, title=title)
    sys.stdout.write("\n" + text + "\n")  # visible with `pytest -s`
    _table_log.add(text, title=title)
