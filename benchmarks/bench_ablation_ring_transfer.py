"""Ablation: software ring transfers vs. programmable-NIC steering (§7).

The paper: "We could program NICs to direct connection packets to
designated cores, reducing some of Sprayer's overhead." This bench
quantifies that overhead with a connection-heavy workload (many short
connections — the worst case for redirection): Sprayer pays ring
transfers for ~7/8 of connection packets; the prognic model pays none.
"""

import random

from conftest import record_rows

from repro.core import MiddleboxConfig, MiddleboxEngine
from repro.net import ACK, FIN, SYN, make_tcp_packet
from repro.nfs import SyntheticNf
from repro.sim import MILLISECOND, Simulator
from repro.trafficgen.flows import random_tcp_flows

CONNECTIONS = 300
DATA_PER_CONNECTION = 2  # short flows: connection packets dominate


def run_mode(mode: str):
    sim = Simulator()
    nf = SyntheticNf(busy_cycles=0)
    engine = MiddleboxEngine(sim, nf, MiddleboxConfig(mode=mode, num_cores=8))
    engine.set_egress(lambda p: None)
    rng = random.Random(42)
    flows = random_tcp_flows(CONNECTIONS, rng)
    for flow in flows:
        engine.receive(make_tcp_packet(flow, flags=SYN, tcp_checksum=rng.getrandbits(16)), sim.now)
        sim.run(until=sim.now + MILLISECOND // 4)
        for seq in range(DATA_PER_CONNECTION):
            engine.receive(
                make_tcp_packet(flow, flags=ACK, seq=seq, tcp_checksum=rng.getrandbits(16)),
                sim.now,
            )
        engine.receive(
            make_tcp_packet(flow, flags=FIN | ACK, tcp_checksum=rng.getrandbits(16)), sim.now
        )
        sim.run(until=sim.now + MILLISECOND // 4)
    sim.run(until=sim.now + 10 * MILLISECOND)
    total_packets = engine.stats.packets_forwarded
    total_cycles = sum(core.stats.busy_cycles for core in engine.host.cores)
    return {
        "mode": mode,
        "forwarded": total_packets,
        "transfers": engine.stats.transfers,
        "cycles_per_packet": total_cycles / max(1, total_packets),
    }


def test_ring_transfer_overhead(benchmark):
    rows = benchmark.pedantic(
        lambda: [run_mode("sprayer"), run_mode("prognic")], rounds=1, iterations=1
    )
    record_rows(
        benchmark, rows,
        "Ablation: connection-packet steering (software rings vs programmable NIC)",
    )
    sprayer, prognic = rows
    # Sprayer redirects ~7/8 of the connection packets (2 per connection).
    assert sprayer["transfers"] > CONNECTIONS
    assert prognic["transfers"] == 0
    # Hardware steering shaves per-packet cycles on this workload.
    assert prognic["cycles_per_packet"] < sprayer["cycles_per_packet"]
