"""Static analysis for the Sprayer reproduction (``python -m repro.lint``).

The paper's correctness argument — the *writing partition*, one writer
core per flow (§3.2) — and the repo's byte-identical-determinism test
suites are properties of the whole codebase, not of any one module.
This package checks them statically: an AST lint engine
(:mod:`repro.lint.engine`) runs Sprayer-specific rules
(:mod:`repro.lint.rules`, SPR001-SPR005) over the tree, with per-line
and per-file suppression via ``# repro-lint: disable=CODE``.

The runtime half of the same story lives in :mod:`repro.checks`
(ownership auditing and determinism digests on live engines); DESIGN.md
"Static analysis and runtime checkers" documents both layers together.
"""

from repro.lint.base import RULES, FileContext, Rule, Suppressions, Violation
from repro.lint.engine import LintEngine, iter_python_files

__all__ = [
    "RULES",
    "FileContext",
    "Rule",
    "Suppressions",
    "Violation",
    "LintEngine",
    "iter_python_files",
]
