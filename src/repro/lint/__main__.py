"""``python -m repro.lint`` — run the Sprayer lint rules over the tree.

Usage::

    python -m repro.lint                 # lints ./src and ./tests if present
    python -m repro.lint src tests       # explicit paths (files or dirs)
    python -m repro.lint src --json      # machine-readable output
    python -m repro.lint --list-rules    # rule codes, titles, rationale
    python -m repro.lint src --select SPR002,SPR005
    python -m repro.lint src --ignore SPR003
    python -m repro.lint --profiles src/repro/nfs   # inferred access table
    python -m repro.lint --profiles --json src/repro/nfs

Exit status: 0 clean, 1 violations found, 2 usage error. ``--profiles``
prints the dataflow pass's inferred access-pattern table instead of
linting; it exits 0 whenever the sources parse (inference output is a
report, not a verdict — the verdict is rule SPR007).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.lint.base import RULES
from repro.lint.engine import LintEngine


def _codes(text: Optional[str]) -> Optional[List[str]]:
    if not text:
        return None
    return [part.strip() for part in text.split(",") if part.strip()]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Static checks for the writing partition and simulation purity.",
    )
    parser.add_argument(
        "paths", nargs="*", metavar="PATH",
        help="files or directories to lint (default: ./src and ./tests)",
    )
    parser.add_argument("--json", action="store_true", help="JSON output")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print every rule's code, title, and rationale, then exit",
    )
    parser.add_argument(
        "--select", metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--ignore", metavar="CODES",
        help="comma-separated rule codes to skip",
    )
    parser.add_argument(
        "--profiles", action="store_true",
        help="print the inferred access-pattern table for every NF class "
             "under PATH (text, or JSON with --json), then exit",
    )
    return parser


def _profiles_report(paths: List[str], as_json: bool) -> str:
    import json

    from repro.lint.dataflow import infer_paths_with_errors

    profiles, errors = infer_paths_with_errors(paths)
    if as_json:
        return json.dumps(
            {"profiles": [p.to_dict() for p in profiles], "errors": errors},
            indent=2,
        )
    if not profiles:
        skipped = [f"skipped (unparsable): {error}" for error in errors]
        return "\n".join(["(no NF classes found)"] + skipped)
    header = (
        f"{'class':<26} {'pf/pkt':>6} {'pf/ev':>6} {'gl/pkt':>6} {'gl/ev':>6} "
        f"{'relaxed':>7} {'desig':>5}  location"
    )
    lines = [header, "-" * len(header)]
    for p in profiles:
        s = p.summary
        lines.append(
            f"{p.nf_class:<26} {s.per_flow_packet:>6} {s.per_flow_event:>6} "
            f"{s.global_packet:>6} {s.global_event:>6} "
            f"{str(s.relaxed_only):>7} {str(s.designated_only):>5}  "
            f"{p.path}:{p.line}"
        )
        for hint in p.hints:
            lines.append(f"    note: {hint}")
    for error in errors:
        lines.append(f"skipped (unparsable): {error}")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    try:
        args = build_parser().parse_args(argv)
    except SystemExit as error:
        return int(error.code or 0)
    if args.list_rules:
        for code in sorted(RULES):
            rule = RULES[code]
            print(f"{code}: {rule.title}")
            print(f"    {rule.rationale}")
        return 0
    paths = args.paths or [p for p in ("src", "tests") if Path(p).is_dir()] or ["."]
    if args.profiles:
        print(_profiles_report(paths, args.json))
        return 0
    try:
        engine = LintEngine(select=_codes(args.select), ignore=_codes(args.ignore))
    except ValueError as error:
        print(error, file=sys.stderr)
        return 2
    violations = engine.lint_paths(paths)
    print(engine.report_json(violations) if args.json else engine.report_text(violations))
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main())
