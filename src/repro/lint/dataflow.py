"""Static state-access inference for NF classes (the dataflow pass).

The paper's Table 1 classifies every NF by *how it touches its state*:
per state item, a scope (per-flow vs global) and an access pattern per
packet and per flow event (R / RW / -). The registry
(:mod:`repro.nfs.registry`) declares those patterns by hand; this
module *infers* them from the NF's source, so the declaration can be
cross-checked (lint rule SPR007) and so the chain planner
(:mod:`repro.plan`) can synthesize a steering policy from what the code
actually does rather than from what a comment claims.

The inference walks each ``NetworkFunction`` subclass and classifies
every state access reachable from its hooks:

- **per-flow accesses** are calls on the sanctioned Table 2 surface:
  ``ctx.insert_local_flow`` / ``ctx.remove_local_flow`` /
  ``ctx.get_local_flow`` are *writes* (``get_local_flow`` returns a
  modifiable entry, which is a write under the paper's semantics — the
  same convention the runtime :class:`~repro.checks.OwnershipAuditor`
  applies), ``ctx.get_flow`` / ``ctx.get_flows`` are reads. The
  unrolled forms (``*.flow_state.insert_local`` etc., as used by the
  hot-path synthetic NF) are recognized too.
- **global accesses** are ``ctx.read_global`` / ``ctx.write_global``
  calls — the API through which shared-structure costs are charged.
  The ``relaxed=True`` flag (per-core shards, commuting writes) is
  extracted per call, as is whether the *key* of a global write embeds
  a per-packet variable (a "flow-keyed" global: per-flow state in
  global clothing, which steering affinity can make core-local).
- accesses are attributed to the **packet path** (``regular_packets``
  and an overridden ``process_batch``) or the **event path**
  (``connection_packets``; when not overridden, the base-class
  fall-through routes events into ``regular_packets``), with self-call
  chains resolved transitively.
- a write guarded by ``if ctx.designated_core(flow) == ctx.core_id:``
  is *designated-only*: it happens per packet but never off the flow's
  designated core, so the writing partition still holds (the
  out-of-order DPI's drain pattern).

Everything is an AST heuristic over names, like the other lint rules:
``ctx``-conventioned parameters, attribute chains, no type inference.
Bare instance-attribute mutation (``self.hits += 1``) is deliberately
*not* an access — counters and caches off the ctx API carry no modelled
cost — but it is surfaced as a hint so ``--profiles`` readers can see
unpriced state.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import PurePath
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

# -- access lattice ---------------------------------------------------------

READ = "R"
READ_WRITE = "RW"
NONE = "-"

_RANK = {NONE: 0, READ: 1, READ_WRITE: 2}


def max_access(a: str, b: str) -> str:
    """Join on the - < R < RW lattice."""
    return a if _RANK[a] >= _RANK[b] else b


#: Table 2 calls that are flow-state *writes* (modifiable access = write,
#: mirroring the runtime ownership auditor).
_FLOW_WRITE_CALLS = frozenset({"insert_local_flow", "remove_local_flow", "get_local_flow"})
#: Table 2 calls that are flow-state *reads*.
_FLOW_READ_CALLS = frozenset({"get_flow", "get_flows"})
#: The unrolled flow-state manager surface (``*.flow_state.<op>``).
_RAW_WRITE_CALLS = frozenset({"insert_local", "remove_local", "get_local"})
_RAW_READ_CALLS = frozenset({"get", "get_many"})

#: The NF hook names, and how they map onto Table 1 columns.
_PACKET_HOOKS = ("regular_packets", "process_batch")
_EVENT_HOOK = "connection_packets"


def _is_ctx_name(expr: ast.AST) -> bool:
    """Does ``expr`` look like the NF context parameter (by convention)?"""
    if isinstance(expr, ast.Name):
        return expr.id in ("ctx", "context", "scoped") or expr.id.endswith("_ctx")
    return False


@dataclass(frozen=True)
class StateAccess:
    """One inferred state access: where, what, and under which guard."""

    scope: str  # "flow" | "global"
    op: str  # R | RW
    #: True when the access sits under a designated-core guard.
    guarded: bool = False
    #: Global accesses only: the relaxed (sharded/commuting) flag.
    relaxed: bool = False
    #: Global accesses only: the key embeds a per-packet variable.
    flow_keyed: bool = False
    #: Source form, for hints/debugging ("ctx.get_flows", ...).
    via: str = ""


@dataclass(frozen=True)
class AccessSummary:
    """Table 1 columns, folded: what one NF does to its state.

    The two event columns are *folded*: a per-packet access also happens
    while a flow event is being handled (connection packets are packets
    too — the paper's NAT forwards the SYN-ACK through its regular
    path), so the event column records the join of both. The same fold
    is applied to declared profiles by :func:`declared_summary`, which
    makes the comparison convention symmetric.
    """

    per_flow_packet: str = NONE
    per_flow_event: str = NONE
    global_packet: str = NONE
    global_event: str = NONE
    #: Every per-packet global *write* is relaxed (commutes via shards).
    relaxed_only: bool = True
    #: Per-packet flow writes exist and all sit under a designated-core
    #: guard (the out-of-order DPI drain pattern).
    designated_only: bool = False
    #: Some per-packet non-relaxed global write keys on a per-packet
    #: variable (per-flow state stored globally — dpi's shared
    #: automata). Not part of the declared/inferred comparison; the
    #: planner uses it to prefer flow affinity.
    flow_keyed_global_writes: bool = False

    @property
    def updates_flow_state_per_packet(self) -> bool:
        return self.per_flow_packet == READ_WRITE

    def to_dict(self) -> Dict[str, object]:
        return {
            "per_flow_packet": self.per_flow_packet,
            "per_flow_event": self.per_flow_event,
            "global_packet": self.global_packet,
            "global_event": self.global_event,
            "relaxed_only": self.relaxed_only,
            "designated_only": self.designated_only,
            "flow_keyed_global_writes": self.flow_keyed_global_writes,
        }


#: The summary fields SPR007 compares (flow_keyed is planner metadata).
COMPARED_FIELDS = (
    "per_flow_packet",
    "per_flow_event",
    "global_packet",
    "global_event",
    "relaxed_only",
    "designated_only",
)


@dataclass(frozen=True)
class InferredProfile:
    """The inference result for one NF class."""

    nf_class: str
    path: str
    line: int
    #: Dotted module ("repro.nfs.nat") when derivable from the path.
    module: Optional[str]
    stateless: bool
    summary: AccessSummary
    #: Sorted, human-readable observations (unpriced instance state,
    #: writes through read-only handles, ...).
    hints: Tuple[str, ...] = ()

    def to_dict(self) -> Dict[str, object]:
        return {
            "nf_class": self.nf_class,
            "path": self.path,
            "line": self.line,
            "module": self.module,
            "stateless": self.stateless,
            "summary": self.summary.to_dict(),
            "hints": list(self.hints),
        }


# -- per-class analysis -----------------------------------------------------


class _ClassAnalysis:
    """Walks one NF class and accumulates accesses per hook."""

    def __init__(self, node: ast.ClassDef):
        self.node = node
        self.methods: Dict[str, ast.FunctionDef] = {
            item.name: item
            for item in node.body
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        self.hints: Set[str] = set()
        self._instance_mutations: Set[str] = set()
        #: Names bound to read-only entries (``x = ctx.get_flow(...)``),
        #: per analyzed method — writing through them is a hint.
        self._readonly_written: Set[str] = set()

    # -- public ------------------------------------------------------------

    def accesses(self, method_name: str) -> List[StateAccess]:
        """All state accesses reachable from ``method_name``."""
        out: List[StateAccess] = []
        self._collect(method_name, guard=False, stack=(), out=out)
        return out

    def class_attr_true(self, attr: str) -> bool:
        for item in self.node.body:
            if isinstance(item, ast.Assign):
                targets = [t.id for t in item.targets if isinstance(t, ast.Name)]
                if attr in targets and isinstance(item.value, ast.Constant):
                    return bool(item.value.value)
        return False

    def finish_hints(self) -> Tuple[str, ...]:
        if self._instance_mutations:
            names = ", ".join(sorted(self._instance_mutations))
            self.hints.add(
                f"instance state mutated off the ctx API (unpriced): {names}"
            )
        for name in sorted(self._readonly_written):
            self.hints.add(
                f"entry {name!r} from read-only get_flow/get_flows is written "
                f"— undefined behaviour off the designated core"
            )
        return tuple(sorted(self.hints))

    # -- walking -----------------------------------------------------------

    def _collect(
        self,
        method_name: str,
        guard: bool,
        stack: Tuple[str, ...],
        out: List[StateAccess],
    ) -> None:
        method = self.methods.get(method_name)
        if method is None or method_name in stack:
            return
        stack = stack + (method_name,)
        readonly_vars: Set[str] = set()
        for stmt in method.body:
            self._visit(stmt, guard, stack, out, readonly_vars)

    def _visit(
        self,
        node: ast.AST,
        guard: bool,
        stack: Tuple[str, ...],
        out: List[StateAccess],
        readonly_vars: Set[str],
    ) -> None:
        if isinstance(node, ast.If) and self._is_designated_guard(node.test):
            for child in node.body:
                self._visit(child, True, stack, out, readonly_vars)
            for child in node.orelse:
                self._visit(child, guard, stack, out, readonly_vars)
            return
        if isinstance(node, ast.Call):
            self._visit_call(node, guard, stack, out)
        elif isinstance(node, ast.Assign):
            self._note_assign(node, readonly_vars)
        elif isinstance(node, ast.AugAssign):
            self._note_mutation(node.target, readonly_vars)
        for child in ast.iter_child_nodes(node):
            self._visit(child, guard, stack, out, readonly_vars)

    def _visit_call(
        self,
        node: ast.Call,
        guard: bool,
        stack: Tuple[str, ...],
        out: List[StateAccess],
    ) -> None:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        attr = func.attr
        base = func.value
        base_text = _unparse(base)
        # Self-call: resolve transitively, propagating the guard.
        if isinstance(base, ast.Name) and base.id == "self" and attr in self.methods:
            self._collect(attr, guard, stack, out)
            return
        if _is_ctx_name(base):
            if attr in _FLOW_WRITE_CALLS:
                out.append(StateAccess("flow", READ_WRITE, guarded=guard, via=f"ctx.{attr}"))
            elif attr in _FLOW_READ_CALLS:
                out.append(StateAccess("flow", READ, guarded=guard, via=f"ctx.{attr}"))
            elif attr in ("read_global", "write_global"):
                op = READ if attr == "read_global" else READ_WRITE
                out.append(
                    StateAccess(
                        "global",
                        op,
                        guarded=guard,
                        relaxed=_relaxed_arg(node),
                        flow_keyed=_flow_keyed_arg(node),
                        via=f"ctx.{attr}",
                    )
                )
            return
        # The unrolled flow-state surface: ``engine.flow_state.<op>``.
        if base_text.endswith("flow_state"):
            if attr in _RAW_WRITE_CALLS:
                out.append(
                    StateAccess("flow", READ_WRITE, guarded=guard, via=f"flow_state.{attr}")
                )
            elif attr in _RAW_READ_CALLS:
                out.append(
                    StateAccess("flow", READ, guarded=guard, via=f"flow_state.{attr}")
                )

    # -- hints -------------------------------------------------------------

    def _note_assign(self, node: ast.Assign, readonly_vars: Set[str]) -> None:
        value = node.value
        if (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Attribute)
            and value.func.attr in _FLOW_READ_CALLS
            and _is_ctx_name(value.func.value)
        ):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    readonly_vars.add(target.id)
        for target in node.targets:
            self._note_mutation(target, readonly_vars)

    def _note_mutation(self, target: ast.AST, readonly_vars: Set[str]) -> None:
        if not isinstance(target, ast.Attribute):
            return
        base = target.value
        if isinstance(base, ast.Name):
            if base.id == "self":
                self._instance_mutations.add(target.attr)
            elif base.id in readonly_vars:
                self._readonly_written.add(base.id)

    @staticmethod
    def _is_designated_guard(test: ast.AST) -> bool:
        """``ctx.designated_core(flow) == ctx.core_id`` (either order)."""
        if not (
            isinstance(test, ast.Compare)
            and len(test.ops) == 1
            and isinstance(test.ops[0], ast.Eq)
        ):
            return False
        sides = [_unparse(test.left), _unparse(test.comparators[0])]
        has_designated = any("designated_core(" in side for side in sides)
        has_core_id = any(side.endswith("core_id") for side in sides)
        return has_designated and has_core_id


def _unparse(node: ast.AST) -> str:
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - unparse failures are exotic
        return ""


def _relaxed_arg(call: ast.Call) -> bool:
    for kw in call.keywords:
        if kw.arg == "relaxed" and isinstance(kw.value, ast.Constant):
            return bool(kw.value.value)
    if len(call.args) >= 2 and isinstance(call.args[1], ast.Constant):
        return bool(call.args[1].value)
    return False


def _flow_keyed_arg(call: ast.Call) -> bool:
    """Does the global key expression embed a per-packet variable?"""
    if not call.args:
        return False
    key = call.args[0]
    if isinstance(key, ast.Constant):
        return False
    return any(isinstance(sub, ast.Name) for sub in ast.walk(key))


# -- folding accesses into a summary ----------------------------------------


def _fold(accesses: Sequence[StateAccess], scope: str) -> str:
    result = NONE
    for access in accesses:
        if access.scope == scope:
            result = max_access(result, access.op)
    return result


def summarize(
    packet_accesses: Sequence[StateAccess],
    event_accesses: Sequence[StateAccess],
) -> AccessSummary:
    """Fold per-path access lists into Table 1 columns."""
    pf_packet = _fold(packet_accesses, "flow")
    gl_packet = _fold(packet_accesses, "global")
    pf_event = max_access(_fold(event_accesses, "flow"), pf_packet)
    gl_event = max_access(_fold(event_accesses, "global"), gl_packet)
    packet_global_writes = [
        a for a in packet_accesses if a.scope == "global" and a.op == READ_WRITE
    ]
    packet_flow_writes = [
        a for a in packet_accesses if a.scope == "flow" and a.op == READ_WRITE
    ]
    return AccessSummary(
        per_flow_packet=pf_packet,
        per_flow_event=pf_event,
        global_packet=gl_packet,
        global_event=gl_event,
        relaxed_only=all(a.relaxed for a in packet_global_writes),
        designated_only=bool(packet_flow_writes)
        and all(a.guarded for a in packet_flow_writes),
        flow_keyed_global_writes=any(
            a.flow_keyed and not a.relaxed for a in packet_global_writes
        ),
    )


# -- source-level entry points ----------------------------------------------


def _nf_classes(tree: ast.Module) -> List[ast.ClassDef]:
    """Classes subclassing NetworkFunction (directly or via a local NF)."""
    found: List[ast.ClassDef] = []
    local_nf_names: Set[str] = set()
    for node in tree.body:
        if not isinstance(node, ast.ClassDef):
            continue
        bases = [_unparse(base) for base in node.bases]
        is_nf = any(
            "NetworkFunction" in base or base in local_nf_names for base in bases
        )
        if is_nf:
            found.append(node)
            local_nf_names.add(node.name)
    return found


def module_name_for(path: str) -> Optional[str]:
    """Dotted module of a source path, rooted at the ``repro`` package."""
    parts = PurePath(path).parts
    try:
        start = len(parts) - 1 - parts[::-1].index("repro")
    except ValueError:
        return None
    tail = list(parts[start:])
    if not tail or not tail[-1].endswith(".py"):
        return None
    tail[-1] = tail[-1][: -len(".py")]
    if tail[-1] == "__init__":
        tail = tail[:-1]
    return ".".join(tail)


def infer_class(node: ast.ClassDef, path: str, module: Optional[str]) -> InferredProfile:
    """Infer one NF class's access summary from its AST."""
    analysis = _ClassAnalysis(node)
    has_connection = _EVENT_HOOK in analysis.methods
    packet: List[StateAccess] = []
    for hook in _PACKET_HOOKS:
        if hook in analysis.methods:
            packet.extend(analysis.accesses(hook))
    # Base-class fall-through: events route into regular_packets when
    # connection_packets is not overridden.
    event = (
        analysis.accesses(_EVENT_HOOK)
        if has_connection
        else analysis.accesses("regular_packets")
    )
    return InferredProfile(
        nf_class=node.name,
        path=path,
        line=node.lineno,
        module=module,
        stateless=analysis.class_attr_true("stateless"),
        summary=summarize(packet, event),
        hints=analysis.finish_hints(),
    )


def infer_source(
    source: str, path: str, module: Optional[str] = None
) -> List[InferredProfile]:
    """Inferred profiles of every NF class in one source file."""
    tree = ast.parse(source, filename=path)
    if module is None:
        module = module_name_for(path)
    return [infer_class(node, path, module) for node in _nf_classes(tree)]


def infer_paths_with_errors(
    paths: Iterable[str],
) -> Tuple[List[InferredProfile], List[str]]:
    """Inferred profiles of every NF class under ``paths``, plus a list
    of files that could not be read/parsed (the linter reports those as
    SPR000; inference just names them)."""
    from repro.lint.engine import iter_python_files

    profiles: List[InferredProfile] = []
    errors: List[str] = []
    for file_path in iter_python_files(list(paths)):
        try:
            source = file_path.read_text(encoding="utf-8")
            profiles.extend(infer_source(source, str(file_path)))
        except (OSError, SyntaxError) as error:
            errors.append(f"{file_path}: {error}")
    return profiles, errors


def infer_paths(paths: Iterable[str]) -> List[InferredProfile]:
    """Inferred profiles of every NF class under ``paths``."""
    return infer_paths_with_errors(paths)[0]


def infer_module(module: str) -> List[InferredProfile]:
    """Inferred profiles of an importable module (used by the planner)."""
    import importlib

    mod = importlib.import_module(module)
    path = getattr(mod, "__file__", None)
    if path is None:
        raise ValueError(f"module {module!r} has no source file")
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    return infer_source(source, path, module=module)


# -- declared-side folding and comparison -----------------------------------


def declared_summary(profile) -> AccessSummary:
    """Fold a registry :class:`~repro.nfs.registry.NfProfile` into the
    same shape the inference produces (same event-column fold)."""
    pf_packet = NONE
    pf_event = NONE
    gl_packet = NONE
    gl_event = NONE
    relaxed_only = True
    for decl in profile.states:
        if decl.scope == "Per-flow":
            pf_packet = max_access(pf_packet, decl.per_packet)
            pf_event = max_access(pf_event, decl.per_flow_event)
        else:
            gl_packet = max_access(gl_packet, decl.per_packet)
            gl_event = max_access(gl_event, decl.per_flow_event)
            if decl.per_packet == READ_WRITE and not getattr(decl, "relaxed", False):
                relaxed_only = False
    return AccessSummary(
        per_flow_packet=pf_packet,
        per_flow_event=max_access(pf_event, pf_packet),
        global_packet=gl_packet,
        global_event=max_access(gl_event, gl_packet),
        relaxed_only=relaxed_only,
        designated_only=getattr(profile, "per_packet_writes_designated_only", False),
    )


def compare_summaries(declared: AccessSummary, inferred: AccessSummary) -> List[str]:
    """Human-readable mismatch descriptions (empty = profiles agree)."""
    mismatches: List[str] = []
    for name in COMPARED_FIELDS:
        have, want = getattr(declared, name), getattr(inferred, name)
        if have != want:
            mismatches.append(f"{name}: declared {have!r}, inferred {want!r}")
    if declared.updates_flow_state_per_packet != inferred.updates_flow_state_per_packet:
        mismatches.append(
            f"updates_flow_state_per_packet: declared "
            f"{declared.updates_flow_state_per_packet}, inferred "
            f"{inferred.updates_flow_state_per_packet}"
        )
    return mismatches
