"""Sprayer-specific lint rules (SPR001-SPR007).

Each rule statically enforces one piece of the reproduction's
correctness story. The paper's central argument is the *writing
partition* — per-flow state has exactly one writer core, so spraying
needs no locks (§3.2) — and the repo's test suites additionally depend
on runs being byte-identical functions of the experiment seed. The
rules, with the property each protects:

=======  ==========================================================
SPR001   flow-state encapsulation (writing partition, static half)
SPR002   simulation purity: no wall clocks / unseeded entropy
SPR003   no unordered-set iteration feeding deterministic outputs
SPR004   steering policies that see SYN/FIN/RST must consult the
         designated-core hash (or route through a replication log)
SPR005   no silently swallowed exceptions (sim events vanish)
SPR006   batch-path modules keep the SoA spine columnar: no
         per-packet materialize_all() loops off the hot path
SPR007   registry declarations (Table 1 profiles) agree with the
         statically inferred access patterns of the NF source
=======  ==========================================================

All rules are AST heuristics: they read attribute chains and names, not
types, and are documented as such. A justified exception is suppressed
in place with ``# repro-lint: disable=CODE`` (see :mod:`repro.lint.base`).
"""

from __future__ import annotations

import ast
import re
from pathlib import PurePath
from typing import Dict, Iterator, Set, Tuple

from repro.lint.base import FileContext, Rule, Violation, register, unparse

# -- SPR001 ----------------------------------------------------------------

#: Attribute bases that look like a flow-state manager or flow table.
_FLOW_STATEY = re.compile(r"(flow_state|flowstate|flow_table|table)s?$", re.IGNORECASE)


@register
class FlowStateEncapsulation(Rule):
    """Direct access to flow-state internals outside ``repro/core``."""

    code = "SPR001"
    title = "flow-state internals touched outside repro/core"
    rationale = (
        "The writing partition (paper §3.2) is enforced by the Table 2 "
        "API in repro/core: every mutation goes through insert/remove/"
        "get_local, which check the designated core. Code that reaches "
        "into .entries or .tables bypasses the single-writer check and "
        "can corrupt state the designated core believes it owns; under "
        "state-compute replication the same goes for the per-core "
        ".replicas tables, whose only writer is the replay machinery. "
        "Control-plane code (migration, rebalancing, oracles) must use "
        "the sanctioned entries_snapshot()/evict()/adopt() API — or "
        "replica_snapshot(core_id) for a replicated backend — instead."
    )

    def applies(self, ctx: FileContext) -> bool:
        return ctx.in_repro and not ctx.in_core

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Attribute):
                continue
            base = unparse(node.value)
            suspicious = (
                node.attr in ("entries", "tables", "replicas")
                and _FLOW_STATEY.search(base)
            ) or (node.attr in ("table", "replicas") and base.endswith("flow_state"))
            if suspicious:
                yield ctx.violation(
                    self,
                    node,
                    f"direct access to flow-state internals "
                    f"({base}.{node.attr}) outside repro/core bypasses the "
                    f"single-writer API — use the Table 2 methods, the "
                    f"control-plane entries_snapshot()/evict()/adopt(), or "
                    f"replica_snapshot(core_id) for replicated state",
                )


# -- SPR002 ----------------------------------------------------------------

#: module -> banned attribute calls (None = every attribute is banned).
_BANNED_CALLS: Dict[str, Tuple[str, ...]] = {
    "time": ("time", "time_ns", "monotonic", "monotonic_ns"),
    "datetime": ("now", "utcnow", "today"),
    "os": ("urandom",),
}
#: ``from module import name`` pairs that smuggle the same primitives in.
_BANNED_FROM_IMPORTS = {
    "random": None,  # everything except Random
    "time": ("time", "time_ns", "monotonic", "monotonic_ns"),
    "os": ("urandom",),
}
_RANDOM_ALLOWED = ("Random",)  # the seedable class is the sanctioned path


@register
class SimulationPurity(Rule):
    """Wall clocks and unseeded entropy inside the simulator source."""

    code = "SPR002"
    title = "wall clock / unseeded RNG used instead of sim clock / seeded streams"
    rationale = (
        "Runs must be byte-identical functions of the experiment seed "
        "(the determinism test suite depends on it). random.* module "
        "functions draw from an unseeded global; time.time()/monotonic() "
        "and datetime.now() read the host's wall clock; os.urandom is "
        "raw entropy. Use repro.sim.rng.RngStreams (or a random.Random "
        "seeded from one) and the sim clock (sim.now / ctx.now). "
        "time.perf_counter is allowed: it measures the simulator itself "
        "(perf harness), never simulated behaviour."
    )

    def applies(self, ctx: FileContext) -> bool:
        return ctx.in_repro

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        aliases = self._module_aliases(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.level == 0:
                yield from self._check_import_from(ctx, node)
            elif isinstance(node, ast.Call):
                yield from self._check_call(ctx, node, aliases)

    def _module_aliases(self, tree: ast.AST) -> Dict[str, str]:
        """Local name -> canonical module, for ``import time as t`` forms."""
        aliases: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for item in node.names:
                    if item.name in ("random", "time", "datetime", "os"):
                        aliases[item.asname or item.name] = item.name
        return aliases

    def _check_import_from(
        self, ctx: FileContext, node: ast.ImportFrom
    ) -> Iterator[Violation]:
        banned = _BANNED_FROM_IMPORTS.get(node.module or "")
        if banned is None and (node.module or "") != "random":
            return
        for item in node.names:
            bad = (
                item.name not in _RANDOM_ALLOWED
                if node.module == "random"
                else item.name in (banned or ())
            )
            if bad:
                yield ctx.violation(
                    self,
                    node,
                    f"'from {node.module} import {item.name}' pulls in a "
                    f"wall clock or unseeded entropy source — use the "
                    f"sim clock / repro.sim.rng.RngStreams",
                )

    def _check_call(
        self, ctx: FileContext, node: ast.Call, aliases: Dict[str, str]
    ) -> Iterator[Violation]:
        func = node.func
        if not (isinstance(func, ast.Attribute) and isinstance(func.value, (ast.Name, ast.Attribute))):
            return
        # Resolve the module of a dotted call: random.x, time.x,
        # datetime.now, datetime.datetime.now, os.urandom.
        base = unparse(func.value)
        root = base.split(".", 1)[0]
        module = aliases.get(root, root)
        attr = func.attr
        if module == "random" and base in (root,) and attr not in _RANDOM_ALLOWED:
            hint = "repro.sim.rng.RngStreams (seeded per-component streams)"
        elif module == "time" and base in (root,) and attr in _BANNED_CALLS["time"]:
            hint = "the sim clock (sim.now / ctx.now) or time.perf_counter for host timing"
        elif module == "datetime" and attr in _BANNED_CALLS["datetime"]:
            hint = "the sim clock (sim.now); experiments stamp results from their seed"
        elif module == "os" and base in (root,) and attr in _BANNED_CALLS["os"]:
            hint = "repro.sim.rng.RngStreams"
        else:
            return
        yield ctx.violation(
            self,
            node,
            f"{base}.{attr}() breaks simulation purity (runs must be a "
            f"pure function of the seed) — use {hint}",
        )


# -- SPR003 ----------------------------------------------------------------


@register
class OrderedIteration(Rule):
    """Iteration over unordered collections without ``sorted(...)``."""

    code = "SPR003"
    title = "iteration over set()/dict.keys() without an explicit sorted(...)"
    rationale = (
        "Python sets iterate in hash order, which for str/bytes keys is "
        "salted per interpreter: a result row, telemetry dump, or sweep "
        "expansion built from bare set iteration differs across "
        "processes, breaking byte-identical reruns and the --jobs N "
        "process-pool backend. Explicit .keys() iteration is flagged "
        "with it because the call hides whether the receiver is a dict "
        "(insertion-ordered) or a set-like view; iterate the dict "
        "itself, or wrap either in sorted(...)."
    )

    def applies(self, ctx: FileContext) -> bool:
        return ctx.in_repro

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                yield from self._check_iter(ctx, node.iter)
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                for gen in node.generators:
                    yield from self._check_iter(ctx, gen.iter)

    def _check_iter(self, ctx: FileContext, expr: ast.AST) -> Iterator[Violation]:
        what = self._unordered_kind(expr)
        if what is not None:
            yield ctx.violation(
                self,
                expr,
                f"iterating {what} directly — hash order is not "
                f"deterministic across interpreters; wrap in sorted(...) "
                f"(or iterate the dict itself for insertion order)",
            )

    @staticmethod
    def _unordered_kind(expr: ast.AST) -> "str | None":
        if isinstance(expr, ast.Set):
            return "a set literal"
        if isinstance(expr, ast.Call):
            func = expr.func
            if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
                return f"{func.id}(...)"
            if isinstance(func, ast.Attribute) and func.attr == "keys":
                return f"{unparse(func.value)}.keys()"
        return None


# -- SPR004 ----------------------------------------------------------------

_FLAG_NAMES = {"SYN", "FIN", "RST"}
_FLAG_ATTRS = {"flags", "is_connection"}
_DESIGNATED_REFS = {
    "designated_core",
    "designated_map",
    "designated_fn",
    "DesignatedCoreMap",
    "core_for",
}
#: The other sanctioned route: a policy that replicates state routes
#: connection packets through its packet-history log instead of a
#: designated core (state-compute replication, the ``scr`` policy).
_REPLICATION_REFS = {
    "replication",
    "ScrReplication",
    "replicates_state",
    "replay",
    "replay_log",
}


@register
class SteeringConsultsDesignated(Rule):
    """Steering policies that see connection flags must use the hash."""

    code = "SPR004"
    title = "steering policy handles SYN/FIN/RST without the designated-core hash"
    rationale = (
        "Connection packets are the only packets that mutate flow state, "
        "so a policy that classifies them (checks SYN/FIN/RST or "
        "is_connection) must route them by the designated-core hash — "
        "anything else sends writes to a core that does not own the "
        "flow, violating the writing partition the moment state is "
        "touched. Two routes satisfy the rule: consulting the "
        "designated-core hash (Sprayer and friends), or routing "
        "connection packets through a replication log whose replay "
        "keeps every per-core replica a single-writer copy (the scr "
        "policy). Policies that never inspect flags (pure spraying, "
        "RSS) are exempt: the engine's redirect path consults the hash "
        "for them."
    )

    def applies(self, ctx: FileContext) -> bool:
        return ctx.in_repro

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            bases = [unparse(base) for base in node.bases]
            if not any(
                "SteeringPolicy" in base or base.endswith("Policy") for base in bases
            ):
                continue
            names, attrs = self._references(node)
            handles_flags = bool(_FLAG_NAMES & names) or bool(_FLAG_ATTRS & attrs)
            consults = bool(
                (_DESIGNATED_REFS | _REPLICATION_REFS) & (names | attrs)
            )
            if handles_flags and not consults:
                yield ctx.violation(
                    self,
                    node,
                    f"steering policy {node.name!r} inspects connection "
                    f"flags (SYN/FIN/RST) but never consults the "
                    f"designated-core hash nor a replication log — "
                    f"connection packets must reach their designated core "
                    f"(or be replayed onto every replica) or the writing "
                    f"partition breaks",
                )

    @staticmethod
    def _references(node: ast.ClassDef) -> Tuple[Set[str], Set[str]]:
        names: Set[str] = set()
        attrs: Set[str] = set()
        for child in ast.walk(node):
            if isinstance(child, ast.Name):
                names.add(child.id)
            elif isinstance(child, ast.Attribute):
                attrs.add(child.attr)
        return names, attrs


# -- SPR005 ----------------------------------------------------------------


@register
class SilentExceptionSwallow(Rule):
    """``except: pass`` — the event (and its packets) vanish silently."""

    code = "SPR005"
    title = "caught-and-dropped exception"
    rationale = (
        "Sim-event callbacks run inside the event loop: an exception "
        "swallowed with a bare pass makes the event — and every packet "
        "it carried — vanish without a counter, breaking the "
        "conservation ledger (rx == forwarded + drop classes) that the "
        "invariant tests audit. Handle the error, count it through a "
        "telemetry counter or drop class, or let it propagate."
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ExceptHandler) and self._swallows(node):
                caught = unparse(node.type) if node.type is not None else "everything"
                yield ctx.violation(
                    self,
                    node,
                    f"exception ({caught}) caught and dropped — events "
                    f"that die here vanish from the conservation ledger; "
                    f"handle, count, or re-raise",
                )

    @staticmethod
    def _swallows(handler: ast.ExceptHandler) -> bool:
        for stmt in handler.body:
            if isinstance(stmt, (ast.Pass, ast.Continue)):
                continue
            if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
                continue  # docstring or bare ... literal
            return False
        return True


# -- SPR006 ----------------------------------------------------------------

#: The modules that make up the SoA batch spine (generator burst ->
#: link -> NIC steering -> lazy settlement). Identified by their
#: trailing path segments so the rule works from any checkout root.
_BATCH_PATH_FILES = frozenset(
    {
        ("repro", "net", "batch.py"),
        ("repro", "nic", "link.py"),
        ("repro", "nic", "nic.py"),
        ("repro", "core", "batch_spine.py"),
        ("repro", "trafficgen", "moongen.py"),
    }
)


@register
class ColumnarBatchPath(Rule):
    """Per-packet loops over materialized batch rows on the batch path."""

    code = "SPR006"
    title = "per-packet materialize_all() loop inside a batch-path module"
    rationale = (
        "The batch spine's whole performance argument is that a burst "
        "stays columnar (struct-of-arrays) from the generator to the "
        "settlement point: steering, arrival stamping, and drop "
        "decisions are column operations, and scalar Packet objects "
        "are materialized lazily, one accepted row at a time. A loop "
        "over materialize_all() inside one of the spine's own modules "
        "re-boxes the whole burst into per-packet objects and silently "
        "reverts that module to scalar cost. Audited scalar fallbacks "
        "(e.g. a link in a fault-injection window, where Bernoulli "
        "draws must happen per packet in send order) are sanctioned "
        "with an inline '# repro-lint: disable=SPR006' so the "
        "reviewer's eye lands on every one of them."
    )

    def applies(self, ctx: FileContext) -> bool:
        return ctx.in_repro and tuple(PurePath(ctx.path).parts[-3:]) in _BATCH_PATH_FILES

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters = [node.iter]
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                iters = [gen.iter for gen in node.generators]
            else:
                continue
            for expr in iters:
                if (
                    isinstance(expr, ast.Call)
                    and isinstance(expr.func, ast.Attribute)
                    and expr.func.attr == "materialize_all"
                ):
                    yield ctx.violation(
                        self,
                        expr,
                        f"loop over {unparse(expr.func.value)}.materialize_all() "
                        f"re-boxes the burst into per-packet objects inside a "
                        f"batch-path module — operate on the batch's columns, "
                        f"or materialize rows lazily at the settlement point; "
                        f"an audited scalar fallback must carry an inline "
                        f"'# repro-lint: disable=SPR006'",
                    )


# -- SPR007 ----------------------------------------------------------------


@register
class DeclaredProfileMatchesInferred(Rule):
    """Registry NfProfile declarations drift from the NF's actual code."""

    code = "SPR007"
    title = "declared Table 1 profile disagrees with the inferred access pattern"
    rationale = (
        "The registry's NfProfile rows feed the Table 1 bench, the "
        "sprayer-compatibility verdict, and the chain planner's policy "
        "choice. A declaration that drifts from the code makes the "
        "planner synthesize a steering policy for an NF that no longer "
        "exists — e.g. spraying an NF that grew per-packet flow writes. "
        "The dataflow pass infers scope and per-packet/per-event access "
        "from the source (folded symmetrically: connection packets are "
        "packets too); this rule fires on any compared field that "
        "disagrees. A deliberate divergence — dpi declares the paper's "
        "logical per-flow automaton, which the implementation "
        "materializes as shared global state under spraying, the "
        "paper's very point — is suppressed in place with "
        "'# repro-lint: disable=SPR007' and a reason."
    )

    def _registered_modules(self):
        """implementation module -> (registry key, declared profile)."""
        from repro.nfs.registry import NF_PROFILES

        return {
            profile.implementation: (key, profile)
            for key, profile in NF_PROFILES.items()
            if profile.implementation is not None
        }

    def applies(self, ctx: FileContext) -> bool:
        if not ctx.in_repro:
            return False
        from repro.lint.dataflow import module_name_for

        return module_name_for(ctx.path) in self._registered_modules()

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        from repro.lint.dataflow import (
            compare_summaries,
            declared_summary,
            infer_class,
            module_name_for,
        )

        module = module_name_for(ctx.path)
        key, profile = self._registered_modules()[module]
        declared = declared_summary(profile)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            bases = [unparse(base) for base in node.bases]
            if not any("NetworkFunction" in base for base in bases):
                continue
            inferred = infer_class(node, ctx.path, module)
            mismatches = compare_summaries(declared, inferred.summary)
            if mismatches:
                yield ctx.violation(
                    self,
                    node,
                    f"declared profile {key!r} disagrees with what "
                    f"{node.name} actually does: {'; '.join(mismatches)} — "
                    f"fix the registry row (or suppress with a reason if "
                    f"the divergence is the point)",
                )
