"""Lint-engine primitives: violations, suppressions, file context, rules.

The engine (:mod:`repro.lint.engine`) parses each file once and hands
every rule the same :class:`FileContext`; rules are stateless visitors
that yield :class:`Violation` records. Rules register themselves into
:data:`RULES` at import time (importing :mod:`repro.lint.rules` fills
the registry), so ``python -m repro.lint`` and the test suite see the
same rule set.

Suppression syntax (documented in README.md § Static analysis):

- ``# repro-lint: disable=SPR001`` trailing a code line suppresses the
  named rule(s) on that line only;
- the same comment on a line of its own suppresses the rule(s) for the
  whole file;
- ``disable=all`` matches every rule.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import PurePath
from typing import Dict, Iterator, List, Set, Tuple


@dataclass(frozen=True)
class Violation:
    """One finding: a rule fired at a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


_SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\s]+)")


class Suppressions:
    """Parsed ``# repro-lint: disable=...`` comments of one file."""

    def __init__(self, source: str):
        #: Rule codes disabled for the whole file ("all" disables every rule).
        self.file_level: Set[str] = set()
        #: line number -> rule codes disabled on that line.
        self.by_line: Dict[int, Set[str]] = {}
        for lineno, text in enumerate(source.splitlines(), start=1):
            match = _SUPPRESS_RE.search(text)
            if match is None:
                continue
            codes = {
                code.strip().upper() if code.strip().lower() != "all" else "all"
                for code in match.group(1).split(",")
                if code.strip()
            }
            if text[: match.start()].strip():
                self.by_line.setdefault(lineno, set()).update(codes)
            else:
                self.file_level.update(codes)

    def suppressed(self, rule: str, line: int) -> bool:
        if "all" in self.file_level or rule in self.file_level:
            return True
        codes = self.by_line.get(line)
        return codes is not None and ("all" in codes or rule in codes)


class FileContext:
    """Everything a rule needs about one parsed file."""

    def __init__(self, path: str, source: str, tree: ast.AST):
        self.path = path
        self.source = source
        self.tree = tree
        parts: Tuple[str, ...] = PurePath(path).parts
        #: Inside the ``repro`` package (i.e. simulator source, not tests).
        self.in_repro = "repro" in parts
        #: Inside ``repro/core`` — the one place allowed to touch
        #: flow-state internals.
        self.in_core = any(
            parts[i] == "repro" and parts[i + 1] == "core"
            for i in range(len(parts) - 1)
        )

    def violation(self, rule: "Rule", node: ast.AST, message: str) -> Violation:
        return Violation(
            rule=rule.code,
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


class Rule:
    """Base class for lint rules; subclasses register via :func:`register`."""

    #: Stable rule code ("SPR001", ...), used in output and suppressions.
    code: str = "SPR000"
    #: One-line summary shown by ``--list-rules``.
    title: str = ""
    #: Why the rule exists, tied to the paper's correctness argument.
    rationale: str = ""

    def applies(self, ctx: FileContext) -> bool:
        """Whether this rule runs on ``ctx`` at all (path-based scoping)."""
        return True

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        raise NotImplementedError


#: code -> rule instance; filled by :func:`register` at import time.
RULES: Dict[str, Rule] = {}


def register(cls):
    """Class decorator adding one instance of ``cls`` to :data:`RULES`."""
    if cls.code in RULES:
        raise ValueError(f"duplicate lint rule code {cls.code!r}")
    RULES[cls.code] = cls()
    return cls


def unparse(node: ast.AST) -> str:
    """Best-effort source text of ``node`` (empty string on failure)."""
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - unparse failures are exotic
        return ""


def sort_violations(violations: List[Violation]) -> List[Violation]:
    """Canonical order: path, line, column, rule — deterministic output."""
    return sorted(violations, key=lambda v: (v.path, v.line, v.col, v.rule))
