"""The lint engine: file discovery, parsing, rule dispatch, output.

Deterministic by construction: files are visited in sorted order and
violations are reported in (path, line, col, rule) order, so CI diffs
and baselines are stable across machines.
"""

from __future__ import annotations

import ast
import json
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence

from repro.lint.base import (
    RULES,
    FileContext,
    Rule,
    Suppressions,
    Violation,
    sort_violations,
)

# Importing the rules module populates the RULES registry.
import repro.lint.rules  # noqa: F401  (import for side effect)

#: Rule code reported when a file cannot be parsed at all.
PARSE_ERROR = "SPR000"


def iter_python_files(paths: Sequence[str]) -> Iterator[Path]:
    """Every ``.py`` file under ``paths`` (files and directories), sorted."""
    seen = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            if candidate not in seen:
                seen.add(candidate)
                yield candidate


class LintEngine:
    """Runs a rule set over sources; ``select``/``ignore`` filter by code."""

    def __init__(
        self,
        rules: Optional[Dict[str, Rule]] = None,
        select: Optional[Sequence[str]] = None,
        ignore: Optional[Sequence[str]] = None,
    ):
        table = dict(RULES if rules is None else rules)
        if select:
            wanted = {code.upper() for code in select}
            unknown = wanted - set(table)
            if unknown:
                raise ValueError(f"unknown rule codes in --select: {sorted(unknown)}")
            table = {code: rule for code, rule in table.items() if code in wanted}
        if ignore:
            dropped = {code.upper() for code in ignore}
            unknown = dropped - set(RULES)
            if unknown:
                raise ValueError(f"unknown rule codes in --ignore: {sorted(unknown)}")
            table = {code: rule for code, rule in table.items() if code not in dropped}
        self.rules: List[Rule] = [table[code] for code in sorted(table)]
        self.files_checked = 0

    # -- single-source entry point (used by tests and lint_paths) ---------

    def lint_source(self, source: str, path: str) -> List[Violation]:
        """Lint one in-memory source; ``path`` scopes path-based rules."""
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as error:
            return [
                Violation(
                    rule=PARSE_ERROR,
                    path=path,
                    line=error.lineno or 1,
                    col=(error.offset or 1) - 1,
                    message=f"file does not parse: {error.msg}",
                )
            ]
        ctx = FileContext(path, source, tree)
        suppressions = Suppressions(source)
        found: List[Violation] = []
        for rule in self.rules:
            if not rule.applies(ctx):
                continue
            for violation in rule.check(ctx):
                if not suppressions.suppressed(violation.rule, violation.line):
                    found.append(violation)
        return sort_violations(found)

    def lint_paths(self, paths: Sequence[str]) -> List[Violation]:
        """Lint every ``.py`` file under ``paths``; unreadable files are
        reported as parse errors rather than aborting the run."""
        violations: List[Violation] = []
        self.files_checked = 0
        for path in iter_python_files(paths):
            display = str(path)
            try:
                source = path.read_text(encoding="utf-8")
            except OSError as error:
                violations.append(
                    Violation(PARSE_ERROR, display, 1, 0, f"cannot read file: {error}")
                )
                continue
            self.files_checked += 1
            violations.extend(self.lint_source(source, display))
        return sort_violations(violations)

    # -- output -----------------------------------------------------------

    def report_text(self, violations: List[Violation]) -> str:
        lines = [violation.format() for violation in violations]
        noun = "violation" if len(violations) == 1 else "violations"
        lines.append(
            f"{len(violations)} {noun} in {self.files_checked} files checked"
        )
        return "\n".join(lines)

    def report_json(self, violations: List[Violation]) -> str:
        document = {
            "files_checked": self.files_checked,
            "rules": [rule.code for rule in self.rules],
            "violations": [violation.to_dict() for violation in violations],
        }
        return json.dumps(document, indent=2, sort_keys=True)
