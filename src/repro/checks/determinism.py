"""Determinism auditing: per-core event-stream digests.

The reproduction's test suites rely on runs being byte-identical
functions of the experiment seed. The existing determinism tests
compare *end results* (rows, counters); this module compares the
*order of execution itself*: :class:`EventStreamRecorder` folds every
batch a core executes — ``(core, start time, duration, foreign count,
local count)`` — into a per-core chained CRC. Two runs that merely end
at the same totals by different paths (an off-by-one in the scheduler
tie-break, say) produce different digests, so divergence is caught at
the first differing batch boundary rather than laundered through
aggregation.

:func:`audit_determinism` is the harness: build-and-run the same
simulation twice (or more) in-process and compare digests, raising
:class:`DeterminismViolation` with the first differing core.
"""

from __future__ import annotations

import zlib
from typing import Any, Callable, List, Optional, Sequence, Union


class DeterminismViolation(RuntimeError):
    """Two supposedly identical runs produced different event streams."""

    def __init__(self, run_index: int, core_id: int, expected: int, got: int):
        super().__init__(run_index, core_id, expected, got)
        self.run_index = run_index
        self.core_id = core_id
        self.expected = expected
        self.got = got

    def __str__(self) -> str:
        return (
            f"run {self.run_index} diverged on core {self.core_id}: "
            f"event-stream digest {self.got:#010x} != baseline "
            f"{self.expected:#010x} — the simulation is not a pure "
            f"function of its seed"
        )


class EventStreamRecorder:
    """Chained CRC32 digest of each core's batch event stream.

    Installed by the engine (under ``strict_checks``) as a wrapper
    around each core's per-batch trace hook; composes with the
    telemetry tracer when both are on. Pure observation: nothing about
    the run changes, the digest is just folded forward per batch.
    """

    def __init__(self, num_cores: int):
        if num_cores < 1:
            raise ValueError(f"num_cores must be >= 1, got {num_cores}")
        self._digests: List[int] = [0] * num_cores
        self.batches = 0

    def hook(
        self,
        core_id: int,
        prev: Optional[Callable[[int, int, int, int, int], None]] = None,
    ) -> Callable[[int, int, int, int, int], None]:
        """A ``trace_batch``-shaped hook updating ``core_id``'s digest.

        ``prev`` (an already-installed hook, e.g. the telemetry
        tracer's) keeps firing after the digest update.
        """
        digests = self._digests

        def record(cid: int, start_ps: int, duration_ps: int, foreign: int, local: int) -> None:
            digests[core_id] = zlib.crc32(
                b"%d|%d|%d|%d|%d" % (cid, start_ps, duration_ps, foreign, local),
                digests[core_id],
            )
            self.batches += 1
            if prev is not None:
                prev(cid, start_ps, duration_ps, foreign, local)

        return record

    def digests(self) -> List[int]:
        """Per-core digest snapshot (CRC32 ints, core order)."""
        return list(self._digests)


def _digests_of(result: Union[Sequence[int], Any]) -> List[int]:
    """Accept raw digest lists, engines, or anything with ``.checks``."""
    if isinstance(result, (list, tuple)):
        return list(result)
    checks = getattr(result, "checks", result)
    digests = getattr(checks, "digests", None)
    if digests is None:
        raise TypeError(
            f"audit_determinism: run() must return per-core digests, an "
            f"engine with strict checks, or an EngineChecks — got "
            f"{type(result).__name__}"
        )
    return list(digests() if callable(digests) else digests)


def audit_determinism(
    run: Callable[[], Any], runs: int = 2
) -> List[int]:
    """Execute ``run()`` ``runs`` times and compare event-stream digests.

    ``run`` must build and execute one complete simulation from scratch
    (same seed each time) and return either the per-core digest list, a
    :class:`~repro.core.engine.MiddleboxEngine` built with
    ``strict_checks=True``, or its ``.checks``. Returns the agreed
    digests; raises :class:`DeterminismViolation` on the first
    divergence.
    """
    if runs < 2:
        raise ValueError(f"runs must be >= 2 to compare anything, got {runs}")
    baseline: Optional[List[int]] = None
    for index in range(runs):
        digests = _digests_of(run())
        if baseline is None:
            baseline = digests
        elif digests != baseline:
            for core_id, (expected, got) in enumerate(zip(baseline, digests)):
                if expected != got:
                    raise DeterminismViolation(index, core_id, expected, got)
            # Same prefix but different core counts.
            raise DeterminismViolation(
                index, min(len(baseline), len(digests)), -1, -1
            )
    assert baseline is not None
    return baseline
