"""Dynamic enforcement of the writing partition.

:class:`OwnershipAuditor` wraps any flow-state manager and shadows
every access with ``(core_id, flow_id, op, sim_time)``. The invariant
it enforces is the paper's single-writer discipline stated without
reference to any particular hash: *each flow has at most one writer
core at a time*. The first write claims the flow; any write from a
different core raises :class:`~repro.core.flow_state.OwnershipViolation`
(strict mode) or increments the violation counter (audit mode).

Because the rule is hash-free, the auditor covers the backends that
structurally *permit* cross-core writes — :class:`SharedFlowState`
(one locked table, the naive-spraying ablation) and
:class:`RemoteFlowState` (StatelessNF store) — where the static
designated-core check in ``PartitionedFlowState`` never runs. Under
the auditor, a naive-spraying run doesn't just pay lock costs: its
violations of the discipline become *visible*, either as a raise or as
a ``checks.ownership.violations`` count.

A *replicated* backend (``ScrFlowState``, marked ``replicated = True``)
is sanctioned differently: state-compute replication makes every core a
writer of its *own replica*, so the single-writer invariant holds per
``(core, flow)`` pair rather than per flow. The auditor keys its writer
map accordingly — replayed writes from every core are legitimate, while
the bookkeeping (counters, trail, ``release_writer_core``) still works.

The auditor observes and delegates; it never touches costs, cycles, or
results, so an audited run is byte-identical to an unaudited one (a
Hypothesis property in ``tests/test_checks.py`` pins this down).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Dict, Hashable, Iterable, List, Optional, Tuple

from repro.core.flow_state import OwnershipViolation

#: Bounded length of the shadow trail (the most recent accesses kept
#: for post-mortem inspection after a violation).
TRAIL_LIMIT = 4096


class OwnershipAuditor:
    """Proxy over a flow-state manager enforcing one writer core per flow.

    Parameters
    ----------
    inner:
        Any flow-state variant (partitioned, shared, remote) — anything
        with the Table 2 ``(result, cycles)`` methods.
    clock:
        Zero-argument sim-clock getter; stamps the shadow trail and any
        :class:`OwnershipViolation` with picosecond timestamps.
    strict:
        When True (the default), a second writer core raises; when
        False the violation is only counted, which is how the shared-
        and remote-state ablations are *measured* against the
        discipline rather than killed by it.
    """

    def __init__(
        self,
        inner: Any,
        clock: Optional[Callable[[], int]] = None,
        strict: bool = True,
    ):
        self.inner = inner
        self.clock = clock
        self.strict = strict
        #: Replicated backends (SCR) are audited per (core, flow): each
        #: core is the sole writer of its own replica, by construction.
        self.replicated = bool(getattr(inner, "replicated", False))
        #: flow_id -> the core that currently owns its writes (or, for
        #: replicated backends, (core_id, flow_id) -> core_id).
        self._writer: Dict[Hashable, int] = {}
        #: The shadow log: (core_id, flow_id, op, sim_time), bounded.
        self.trail: Deque[Tuple[int, Hashable, str, Optional[int]]] = deque(
            maxlen=TRAIL_LIMIT
        )
        self.reads = 0
        self.writes = 0
        self.violations = 0

    # -- auditing core -----------------------------------------------------

    def _now(self) -> Optional[int]:
        clock = self.clock
        return clock() if clock is not None else None

    def _audit_write(self, core_id: int, flow_id: Hashable, op: str) -> None:
        self.writes += 1
        now = self._now()
        self.trail.append((core_id, flow_id, op, now))
        key = (core_id, flow_id) if self.replicated else flow_id
        owner = self._writer.get(key)
        if owner is None:
            self._writer[key] = core_id
        elif owner != core_id:
            self.violations += 1
            if self.strict:
                raise OwnershipViolation(op, flow_id, core_id, owner, now)

    @property
    def flows_tracked(self) -> int:
        """Flows whose writer core is currently on record (for
        replicated backends: (core, flow) replica pairs)."""
        return len(self._writer)

    def release(self, flow_id: Hashable) -> None:
        """Forget a flow's writer (its state is gone; a new writer may claim)."""
        if self.replicated:
            doomed = [key for key in self._writer if key[1] == flow_id]
            for key in doomed:
                del self._writer[key]
        else:
            self._writer.pop(flow_id, None)

    def release_writer_core(self, core_id: int) -> int:
        """Forget every flow owned by ``core_id``; returns how many.

        Called by the engine when a core crashes: the dead core's
        designated flows are re-homed onto live cores and their state
        restarts from scratch there, so the new home's first write is a
        legitimate claim, not a violation.
        """
        doomed = [flow for flow, owner in self._writer.items() if owner == core_id]
        for flow in doomed:
            del self._writer[flow]
        return len(doomed)

    # -- Table 2 API (audited, then delegated verbatim) --------------------

    def insert_local(self, core_id: int, flow_id: Hashable, entry: Any) -> Tuple[Any, int]:
        self._audit_write(core_id, flow_id, "insert")
        return self.inner.insert_local(core_id, flow_id, entry)

    def remove_local(self, core_id: int, flow_id: Hashable) -> Tuple[bool, int]:
        self._audit_write(core_id, flow_id, "remove")
        result = self.inner.remove_local(core_id, flow_id)
        removed = result[0]
        if removed:
            # The flow's state is gone; whoever writes it next starts a
            # fresh single-writer epoch (e.g. designated-core re-homing).
            # Replicated backends only removed their own copy.
            if self.replicated:
                self._writer.pop((core_id, flow_id), None)
            else:
                self.release(flow_id)
        return result

    def get_local(self, core_id: int, flow_id: Hashable) -> Tuple[Optional[Any], int]:
        # A modifiable access is a write under the paper's semantics.
        self._audit_write(core_id, flow_id, "get_local (modifiable access)")
        return self.inner.get_local(core_id, flow_id)

    def get(self, core_id: int, flow_id: Hashable) -> Tuple[Optional[Any], int]:
        self.reads += 1
        self.trail.append((core_id, flow_id, "get", self._now()))
        return self.inner.get(core_id, flow_id)

    def get_many(
        self, core_id: int, flow_ids: Iterable[Hashable]
    ) -> Tuple[List[Optional[Any]], int]:
        flow_ids = list(flow_ids)
        self.reads += len(flow_ids)
        now = self._now()
        for flow_id in flow_ids:
            self.trail.append((core_id, flow_id, "get_many", now))
        return self.inner.get_many(core_id, flow_ids)

    # -- reporting / control plane (delegated) ----------------------------

    def total_entries(self) -> int:
        return self.inner.total_entries()

    def per_core_entries(self) -> List[int]:
        return self.inner.per_core_entries()

    def entries_snapshot(self) -> List[Tuple[Hashable, Any]]:
        return self.inner.entries_snapshot()

    def evict(self, flow_id: Hashable) -> Optional[Any]:
        self.release(flow_id)
        return self.inner.evict(flow_id)

    def adopt(self, flow_id: Hashable, entry: Any) -> None:
        # Migration re-homes the flow; its next dataplane write claims it.
        self.release(flow_id)
        self.inner.adopt(flow_id, entry)

    def __getattr__(self, name: str) -> Any:
        # Backend-specific attributes (lock_acquisitions, remote_accesses,
        # tables for telemetry probes, ...) pass straight through.
        return getattr(self.inner, name)
