"""Runtime correctness checkers (the dynamic half of ``repro.lint``).

Where :mod:`repro.lint` checks the writing partition and simulation
purity *statically* (AST rules over the source), this package checks
them *dynamically* on live engines:

- :class:`OwnershipAuditor` shadows every flow-state access and raises
  :class:`~repro.core.flow_state.OwnershipViolation` on any second
  writer core per flow — including on the shared/remote backends whose
  storage happily permits cross-core writes;
- :class:`EventStreamRecorder` + :func:`audit_determinism` digest each
  core's batch event stream so two same-seed runs can be compared
  batch-by-batch, not just result-by-result.

Both are armed with ``MiddleboxEngine(..., strict_checks=True)``, the
``strict_checks=True`` config field, or fleet-wide via
``python -m repro.experiments --strict-checks`` (environment variable
``REPRO_STRICT_CHECKS=1``, which reaches pool workers). The checkers
observe without perturbing: results are byte-identical with checks on
or off, and the telemetry registry gains a ``checks.*`` counter family
(``checks.ownership.reads/writes/flows/violations``,
``checks.stream.batches``).
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.checks.determinism import (
    DeterminismViolation,
    EventStreamRecorder,
    audit_determinism,
)
from repro.checks.ownership import OwnershipAuditor


class EngineChecks:
    """The (possibly disarmed) checker bundle attached to one engine.

    Always present as ``engine.checks`` so callers never probe for
    attribute existence; both members are ``None`` when the engine was
    built without ``strict_checks``.
    """

    __slots__ = ("ownership", "streams")

    def __init__(
        self,
        ownership: Optional[OwnershipAuditor] = None,
        streams: Optional[EventStreamRecorder] = None,
    ):
        self.ownership = ownership
        self.streams = streams

    @property
    def enabled(self) -> bool:
        return self.ownership is not None or self.streams is not None

    def digests(self) -> List[int]:
        """Per-core event-stream digests ([] when checks are disarmed)."""
        return self.streams.digests() if self.streams is not None else []

    def bind(self, registry: Any) -> None:
        """Publish the ``checks.*`` counter family into a telemetry registry."""
        ownership = self.ownership
        if ownership is not None:
            registry.bind("checks.ownership.reads", lambda: ownership.reads)
            registry.bind("checks.ownership.writes", lambda: ownership.writes)
            registry.bind("checks.ownership.flows", lambda: ownership.flows_tracked)
            registry.bind("checks.ownership.violations", lambda: ownership.violations)
        streams = self.streams
        if streams is not None:
            registry.bind("checks.stream.batches", lambda: streams.batches)


__all__ = [
    "OwnershipAuditor",
    "EventStreamRecorder",
    "DeterminismViolation",
    "audit_determinism",
    "EngineChecks",
]
