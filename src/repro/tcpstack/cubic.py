"""CUBIC congestion control (what the paper's testbed ran).

The window grows as the cubic ``W(t) = C*(t-K)^3 + W_max`` of the time
since the last reduction, with the TCP-friendly region of RFC 8312
ensuring it is never slower than an AIMD flow. The multiplicative
decrease factor is CUBIC's beta = 0.7.

Windows are in segments (floats internally; the sender floors when
deciding whether it may transmit).
"""

from __future__ import annotations

from repro.sim.timeunits import SECOND


class CubicCongestionControl:
    """RFC 8312-style CUBIC, segment-based."""

    C = 0.4  # cubic scaling constant, segments/second^3
    BETA = 0.7  # multiplicative decrease

    #: HyStart: leave slow start when RTT rises this much over the min.
    HYSTART_RTT_GROWTH = 1.25

    def __init__(
        self,
        initial_cwnd: float = 10.0,
        max_cwnd: float = 4096.0,
        hystart: bool = True,
    ):
        if initial_cwnd < 1:
            raise ValueError(f"initial_cwnd must be >= 1, got {initial_cwnd}")
        self.cwnd: float = initial_cwnd
        self.max_cwnd = max_cwnd
        self.hystart = hystart
        self.ssthresh: float = float("inf")
        self.w_max: float = 0.0
        self._k: float = 0.0
        self._epoch_start: int = -1
        self._min_rtt: float = float("inf")
        self.losses = 0
        self.timeouts = 0
        self.hystart_exits = 0

    @property
    def in_slow_start(self) -> bool:
        return self.cwnd < self.ssthresh

    def _enter_epoch(self, now: int) -> None:
        self._epoch_start = now
        if self.w_max > self.cwnd:
            self._k = ((self.w_max - self.cwnd) / self.C) ** (1 / 3)
        else:
            self._k = 0.0
            self.w_max = self.cwnd

    def on_rtt_sample(self, rtt_ps: int, now: int) -> None:
        """HyStart (Linux default): exit slow start when the RTT shows
        the queue building, before the overshoot becomes a loss burst."""
        if rtt_ps < self._min_rtt:
            self._min_rtt = rtt_ps
        if (
            self.hystart
            and self.in_slow_start
            and self.cwnd >= 16
            and self._min_rtt != float("inf")
            and rtt_ps > self._min_rtt * self.HYSTART_RTT_GROWTH
        ):
            self.ssthresh = self.cwnd
            self.hystart_exits += 1

    def on_ack(self, acked_segments: int, now: int, srtt_ps: float) -> None:
        """Grow the window for ``acked_segments`` newly ACKed segments."""
        if acked_segments <= 0:
            return
        if self.in_slow_start:
            self.cwnd = min(self.max_cwnd, self.cwnd + acked_segments)
            return
        if self._epoch_start < 0:
            self._enter_epoch(now)
        t = (now - self._epoch_start) / SECOND
        target = self.C * (t - self._k) ** 3 + self.w_max
        # TCP-friendly region (RFC 8312 §4.2): never grow slower than
        # an AIMD flow with beta=0.7 would — set cwnd to W_est directly.
        rtt_s = max(srtt_ps, 1.0) / SECOND
        w_est = self.w_max * self.BETA + (3 * (1 - self.BETA) / (1 + self.BETA)) * (
            t / rtt_s
        )
        if w_est > max(self.cwnd, target):
            self.cwnd = w_est
        elif target > self.cwnd:
            # Concave/convex region: (target - cwnd) / cwnd per ACKed
            # segment, so a full window of ACKs reaches the target.
            self.cwnd += min(
                acked_segments * (target - self.cwnd) / self.cwnd,
                acked_segments * 0.5,
            )
        else:
            self.cwnd += acked_segments * 0.01 / self.cwnd  # minimal probing
        self.cwnd = min(self.max_cwnd, self.cwnd)

    def on_loss(self, now: int) -> float:
        """Fast-retransmit reduction; returns the new ssthresh."""
        self.losses += 1
        self.w_max = self.cwnd
        self.cwnd = max(2.0, self.cwnd * self.BETA)
        self.ssthresh = self.cwnd
        self._epoch_start = -1
        return self.ssthresh

    def on_timeout(self, now: int) -> None:
        """RTO: collapse to one segment and re-enter slow start."""
        self.timeouts += 1
        self.w_max = self.cwnd
        self.ssthresh = max(2.0, self.cwnd / 2)
        self.cwnd = 1.0
        self._epoch_start = -1

    def undo(self, prior_cwnd: float, prior_ssthresh: float) -> None:
        """Revert a spurious reduction (DSACK-based undo)."""
        self.cwnd = max(self.cwnd, prior_cwnd)
        self.ssthresh = max(self.ssthresh, prior_ssthresh)
        if self.losses:
            self.losses -= 1
        self._epoch_start = -1
