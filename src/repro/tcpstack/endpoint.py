"""TCP sender/receiver endpoints.

A :class:`TcpSenderEndpoint` drives one connection's data direction
(iperf-style bulk transfer); a :class:`TcpReceiverEndpoint` terminates
any number of connections, generating SYN-ACKs, cumulative ACKs with
SACK blocks, DSACK duplicate reports, reordering-extent hints, and
delayed ACKs.

Segments are the unit: ``Packet.seq`` is a segment index and
``Packet.ack`` the next expected index. Handshake and teardown use real
SYN/FIN flags so middleboxes on the path observe genuine connection
packets. ACK metadata that real stacks carry in TCP options (timestamp
echo, SACK blocks, DSACK) rides in ``app_data``.

Loss recovery mirrors the Linux behaviour the paper's testbed ran,
because that is exactly what the reordering results hinge on:

- **SACK scoreboard** (RFC 6675-style): the receiver reports received
  blocks above the cumulative ACK; the sender computes the pipe and
  retransmits inferred-lost segments without collapsing the window.
- **Adaptive reordering threshold** (Linux ``tcp_reordering``): a
  segment is marked lost when SACKed data extends more than
  ``dupthresh`` segments above it. When a "lost" hole fills without a
  retransmission — or a DSACK reveals a spurious one — the threshold
  rises to the observed reordering extent + 1 (capped at 300). This is
  the mechanism that makes TCP tolerate Sprayer's spraying.
- **DSACK undo** of spurious congestion-window reductions.
- RFC 6298 RTO with exponential backoff as the last resort.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.net.five_tuple import FiveTuple
from repro.net.packet import Packet, make_tcp_packet
from repro.net.tcp_flags import ACK, FIN, SYN
from repro.nic.link import Link
from repro.sim.engine import EventHandle, Simulator
from repro.sim.timeunits import MICROSECOND, MILLISECOND


@dataclass
class TcpConfig:
    """Knobs shared by senders and receivers."""

    mss_payload: int = 1448
    data_frame_len: int = 1518
    ack_frame_len: int = 64
    initial_cwnd: float = 10.0
    max_cwnd: float = 4096.0
    #: ACK every Nth in-order segment (immediate on any disorder).
    delayed_ack: int = 2
    #: Flush a held delayed ACK after this long (ps).
    ack_delay_timeout: int = 200 * MICROSECOND
    initial_dupthresh: int = 3
    max_dupthresh: int = 300
    #: Adapt dupthresh to observed reordering (Linux tcp_reordering).
    adaptive_reordering: bool = True
    #: RTO floor. Linux uses 200 ms but also has TLP/RACK timers that
    #: fire long before it; without those, 20 ms is low enough to break
    #: genuine stalls quickly yet high enough not to fire spuriously
    #: when the bottleneck queue inflates RTTs to a few milliseconds.
    min_rto: int = 20 * MILLISECOND
    #: Max SACK ranges carried per ACK (real TCP fits 3-4 blocks).
    max_sack_ranges: int = 4
    #: Max transmissions per ACK event (the ACK clock; prevents the
    #: pipe-vs-cwnd gap at recovery entry from flooding the path).
    max_burst: int = 16


@dataclass
class TcpFlow:
    """Identity and lifetime bounds of one connection."""

    five_tuple: FiveTuple
    #: Stop after this many data segments (None = run until sim end).
    total_segments: Optional[int] = None
    #: Don't start before this simulation time.
    start_at: int = 0


class _AckMeta:
    """What a real stack carries in TCP options, modelled explicitly."""

    __slots__ = ("echo_ts", "echo_rexmit", "sack_ranges", "dsack_seq", "reorder_extent")

    def __init__(
        self,
        echo_ts: int,
        echo_rexmit: bool,
        sack_ranges: Tuple[Tuple[int, int], ...] = (),
        dsack_seq: Optional[int] = None,
        reorder_extent: int = 0,
    ):
        self.echo_ts = echo_ts
        self.echo_rexmit = echo_rexmit
        self.sack_ranges = sack_ranges
        self.dsack_seq = dsack_seq
        self.reorder_extent = reorder_extent


class TcpSenderEndpoint:
    """The client side: handshake, bulk data, congestion control."""

    def __init__(
        self,
        sim: Simulator,
        flow: TcpFlow,
        link: Link,
        congestion_control,
        rng: random.Random,
        config: Optional[TcpConfig] = None,
        on_done: Optional[Callable[["TcpSenderEndpoint"], None]] = None,
    ):
        from repro.tcpstack.rtt import RttEstimator

        self.sim = sim
        self.flow = flow
        self.link = link
        self.cc = congestion_control
        self.rng = rng
        self.config = config or TcpConfig()
        self.on_done = on_done
        self.rtt = RttEstimator(min_rto=self.config.min_rto)

        self.state = "closed"  # closed -> syn_sent -> established -> closing -> done
        self.next_seq = 0
        self.cum_acked = 0
        self.dupthresh = self.config.initial_dupthresh

        # SACK scoreboard (all entries >= cum_acked).
        self.sacked: Set[int] = set()
        self.lost: Set[int] = set()
        self.rexmitted: Set[int] = set()  # lost segments retransmitted this episode
        self._rexmit_time: Dict[int, int] = {}
        self._ever_rexmitted: Set[int] = set()

        self.recovery_point: Optional[int] = None
        self._recovery_is_rto = False
        self._undone_this_episode = False
        self._episode_losses = 0
        self._prior_cwnd = 0.0
        self._prior_ssthresh = 0.0
        self._rto_handle: Optional[EventHandle] = None
        self._rto_backoff = 1

        # statistics
        self.segments_sent = 0
        self.retransmissions = 0
        self.fast_recoveries = 0
        self.spurious_recoveries = 0
        self.timeouts = 0
        self.reorder_events = 0
        self.syn_time: int = -1
        self.established_time: int = -1
        self.fin_sent = False

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        """Schedule the SYN at the flow's start time."""
        self.sim.at(max(self.flow.start_at, self.sim.now), self._send_syn)

    def _send_syn(self) -> None:
        self.state = "syn_sent"
        self.syn_time = self.sim.now
        syn = self._make_packet(flags=SYN, seq=0, payload_len=0,
                                frame_len=self.config.ack_frame_len)
        self.link.send(syn)
        self._arm_rto()

    # -- receive path ---------------------------------------------------------

    def receive(self, packet: Packet, now: int) -> None:
        """Handle a packet addressed to this sender (SYN-ACK or ACK)."""
        if self.state == "syn_sent":
            if packet.flags & SYN and packet.flags & ACK:
                self.state = "established"
                self.established_time = now
                # The handshake is the first RTT sample (Karn: only if
                # the SYN was not retransmitted).
                if self._rto_backoff == 1 and self.syn_time >= 0:
                    self.rtt.on_sample(now - self.syn_time)
                self._rto_backoff = 1
                self._cancel_rto()
                self.link.send(
                    self._make_packet(flags=ACK, seq=0, payload_len=0,
                                      frame_len=self.config.ack_frame_len)
                )
                self._send_loop()
            return
        if self.state not in ("established", "closing"):
            return
        if not packet.flags & ACK:
            return
        self._process_ack(packet, now)

    def _process_ack(self, packet: Packet, now: int) -> None:
        meta: Optional[_AckMeta] = (
            packet.app_data if isinstance(packet.app_data, _AckMeta) else None
        )
        ack = packet.ack

        if meta is not None:
            if meta.dsack_seq is not None:
                self._on_dsack(meta)
            if meta.reorder_extent and self.config.adaptive_reordering:
                self._raise_dupthresh(meta.reorder_extent)
            for start, end in meta.sack_ranges:
                for seq in range(max(start, self.cum_acked), end):
                    if seq < self.next_seq:
                        self.sacked.add(seq)
                        # A SACKed segment is delivered: it is neither
                        # lost nor pending-retransmission.
                        self.lost.discard(seq)
                        self.rexmitted.discard(seq)

        if ack > self.cum_acked:
            self._on_new_ack(ack, meta, now)

        self._infer_losses()
        self._detect_lost_retransmissions(now)
        self._send_loop()
        self._maybe_finish()

    def _on_new_ack(self, ack: int, meta: Optional[_AckMeta], now: int) -> None:
        newly_acked = ack - self.cum_acked
        # Reordering inference: a hole we declared lost was cum-ACKed
        # although we never retransmitted it — pure reordering.
        if self.config.adaptive_reordering:
            for seq in range(self.cum_acked, ack):
                if seq in self.lost and seq not in self._ever_rexmitted:
                    self.reorder_events += 1
                    self._raise_dupthresh(self._fack() - seq)
                    break
        self.cum_acked = ack
        self._rto_backoff = 1
        self._prune_scoreboard()

        if self.recovery_point is not None and ack >= self.recovery_point:
            self.recovery_point = None
            self._recovery_is_rto = False
            self._undone_this_episode = False

        if meta is not None and not meta.echo_rexmit:
            sample = now - meta.echo_ts
            self.rtt.on_sample(sample)
            on_rtt = getattr(self.cc, "on_rtt_sample", None)
            if on_rtt is not None:
                on_rtt(sample, now)

        # Window growth: normal ACKs always grow; during an RTO episode
        # slow start regrows the window (Linux behaviour); during fast
        # recovery the window stays at the reduced level.
        if self.recovery_point is None or self._recovery_is_rto:
            self.cc.on_ack(newly_acked, now, self.rtt.smoothed_rtt)
        self._arm_rto()

    def _prune_scoreboard(self) -> None:
        cum = self.cum_acked
        self.sacked = {s for s in self.sacked if s >= cum}
        self.lost = {s for s in self.lost if s >= cum}
        self.rexmitted = {s for s in self.rexmitted if s >= cum}
        self._rexmit_time = {s: t for s, t in self._rexmit_time.items() if s >= cum}
        if len(self._ever_rexmitted) > 4096:
            self._ever_rexmitted = {s for s in self._ever_rexmitted if s >= cum - 1024}

    def _fack(self) -> int:
        """Forward-most SACKed segment + 1 (cum if nothing SACKed)."""
        return max(self.sacked) + 1 if self.sacked else self.cum_acked

    def _raise_dupthresh(self, extent: int) -> None:
        if extent <= 0:
            return
        self.dupthresh = min(self.config.max_dupthresh, max(self.dupthresh, extent + 1))

    def _infer_losses(self) -> None:
        """FACK-style: lost if SACKed data extends dupthresh above it."""
        fack = self._fack()
        newly_lost = False
        for seq in range(self.cum_acked, min(fack, self.next_seq)):
            if seq in self.sacked or seq in self.lost:
                continue
            if fack - seq >= self.dupthresh:
                self.lost.add(seq)
                self._episode_losses += 1
                newly_lost = True
        if newly_lost and self.recovery_point is None:
            self._enter_recovery(rto=False)

    def _detect_lost_retransmissions(self, now: int) -> None:
        """RACK-style: a retransmission unacknowledged for well over an
        RTT was itself dropped — make it eligible for retransmission
        again (otherwise a dropped rexmit stalls recovery until RTO)."""
        if not self.rexmitted:
            return
        timeout = max(
            int(self.rtt.srtt + 4 * self.rtt.rttvar), 200 * MICROSECOND
        )
        for seq in list(self.rexmitted):
            if seq in self.sacked:
                self.rexmitted.discard(seq)
                self._rexmit_time.pop(seq, None)
                continue
            sent_at = self._rexmit_time.get(seq, now)
            if now - sent_at > timeout:
                self.rexmitted.discard(seq)
                self._rexmit_time.pop(seq, None)

    def _enter_recovery(self, rto: bool) -> None:
        self._prior_cwnd = self.cc.cwnd
        self._prior_ssthresh = self.cc.ssthresh
        self.recovery_point = self.next_seq
        self._recovery_is_rto = rto
        self._undone_this_episode = False
        self._episode_losses = len(self.lost)
        self.rexmitted.clear()
        if rto:
            self.cc.on_timeout(self.sim.now)
        else:
            self.fast_recoveries += 1
            self.cc.on_loss(self.sim.now)

    def _on_dsack(self, meta: _AckMeta) -> None:
        """The receiver saw a duplicate: a retransmission was spurious."""
        seq = meta.dsack_seq
        if seq in self._ever_rexmitted:
            # Undo the window reduction only when the whole episode was
            # plausibly spurious: a reordering-induced recovery marks
            # only a segment or two lost. A mass-loss episode (slow
            # start overshoot, RTO) had genuine congestion — restoring
            # the old window there would re-flood the bottleneck.
            plausible_spurious = (
                not self._recovery_is_rto and self._episode_losses <= 2
            )
            if plausible_spurious and not self._undone_this_episode:
                self.spurious_recoveries += 1
                self.cc.undo(self._prior_cwnd, self._prior_ssthresh)
                self._undone_this_episode = True
            if self.config.adaptive_reordering and meta.reorder_extent > 0:
                self._raise_dupthresh(meta.reorder_extent)

    # -- transmit path -------------------------------------------------------

    def in_flight(self) -> int:
        return self.next_seq - self.cum_acked

    def _pipe(self) -> int:
        """RFC 6675-flavoured estimate of segments in the network."""
        return max(
            0,
            self.in_flight()
            - len(self.sacked)
            - len(self.lost)
            + len(self.rexmitted),
        )

    def _send_loop(self) -> None:
        if self.state != "established":
            return
        total = self.flow.total_segments
        window = int(self.cc.cwnd)
        budget = self.config.max_burst  # the ACK clock's burst bound
        while self._pipe() < window and budget > 0:
            pending_rexmit = self.lost - self.rexmitted
            if pending_rexmit:
                seq = min(pending_rexmit)
                self._send_segment(seq, rexmit=True)
                budget -= 1
                continue
            if total is not None and self.next_seq >= total:
                break
            if self.in_flight() >= self.config.max_cwnd:
                break
            self._send_segment(self.next_seq, rexmit=False)
            self.next_seq += 1
            budget -= 1
        self._maybe_send_fin()

    def _send_segment(self, seq: int, rexmit: bool) -> None:
        packet = self._make_packet(
            flags=ACK,
            seq=seq,
            payload_len=self.config.mss_payload,
            frame_len=self.config.data_frame_len,
        )
        packet.app_data = ("data", rexmit)
        self.link.send(packet)
        self.segments_sent += 1
        if rexmit:
            self.retransmissions += 1
            self.rexmitted.add(seq)
            self._rexmit_time[seq] = self.sim.now
            self._ever_rexmitted.add(seq)
        if self._rto_handle is None:
            self._arm_rto()

    def _make_packet(self, flags: int, seq: int, payload_len: int, frame_len: int) -> Packet:
        return make_tcp_packet(
            self.flow.five_tuple,
            flags=flags,
            seq=seq,
            ack=0,
            payload_len=payload_len,
            tcp_checksum=self.rng.getrandbits(16),
            created_at=self.sim.now,
            frame_len=frame_len,
        )

    # -- RTO ----------------------------------------------------------------

    def _arm_rto(self) -> None:
        self._cancel_rto()
        if self.state == "syn_sent" or self.in_flight() > 0:
            self._rto_handle = self.sim.after(
                self.rtt.rto * self._rto_backoff, self._on_rto
            )

    def _cancel_rto(self) -> None:
        if self._rto_handle is not None:
            self._rto_handle.cancel()
            self._rto_handle = None

    def _on_rto(self) -> None:
        self._rto_handle = None
        if self.state == "syn_sent":
            self.timeouts += 1
            self._send_syn()
            self._rto_backoff = min(64, self._rto_backoff * 2)
            return
        if self.in_flight() <= 0:
            return
        self.timeouts += 1
        # Everything un-SACKed in flight is presumed lost.
        self.lost = {
            s for s in range(self.cum_acked, self.next_seq) if s not in self.sacked
        }
        self._enter_recovery(rto=True)
        self._rto_backoff = min(64, self._rto_backoff * 2)
        self._send_loop()
        self._arm_rto()

    # -- teardown --------------------------------------------------------------

    def _maybe_send_fin(self) -> None:
        total = self.flow.total_segments
        if (
            total is not None
            and not self.fin_sent
            and self.next_seq >= total
            and self.cum_acked >= total
        ):
            self.fin_sent = True
            self.state = "closing"
            fin = self._make_packet(flags=FIN | ACK, seq=self.next_seq, payload_len=0,
                                    frame_len=self.config.ack_frame_len)
            self.link.send(fin)
            self._cancel_rto()

    def _maybe_finish(self) -> None:
        if self.state == "closing" and self.fin_sent:
            self.state = "done"
            if self.on_done is not None:
                self.on_done(self)


class _ReceiverFlowState:
    """Per-connection receive state at the server."""

    __slots__ = (
        "cum",
        "out_of_order",
        "highest_seen",
        "delivered_segments",
        "unacked_inorder",
        "duplicates",
        "fin_seen",
        "ack_timer",
        "last_data_packet",
        "sack_rotation",
    )

    def __init__(self) -> None:
        self.cum = 0
        self.out_of_order: Set[int] = set()
        self.highest_seen = -1
        self.delivered_segments = 0
        self.unacked_inorder = 0
        self.duplicates = 0
        self.fin_seen = False
        self.ack_timer: Optional[EventHandle] = None
        self.last_data_packet: Optional[Packet] = None
        self.sack_rotation = 0


class TcpReceiverEndpoint:
    """The server side: terminates any number of connections."""

    def __init__(
        self,
        sim: Simulator,
        link: Link,
        rng: random.Random,
        config: Optional[TcpConfig] = None,
    ):
        self.sim = sim
        self.link = link
        self.rng = rng
        self.config = config or TcpConfig()
        self.flows: Dict[FiveTuple, _ReceiverFlowState] = {}
        self.syns_accepted = 0
        self.total_duplicates = 0
        self.reorder_arrivals = 0

    # -- helpers ------------------------------------------------------------

    def _sack_ranges(self, state: _ReceiverFlowState) -> Tuple[Tuple[int, int], ...]:
        """Contiguous received blocks above cum.

        Real SACK options fit only ~4 blocks, and receivers rotate
        through their blocks across successive ACKs so the sender's
        scoreboard eventually learns all of them; we model that with a
        per-flow rotation offset. (Reporting only the highest blocks
        would starve the sender of knowledge about low blocks and cause
        storms of spurious retransmissions after bursty loss.)
        """
        if not state.out_of_order:
            return ()
        ranges: List[Tuple[int, int]] = []
        run_start: Optional[int] = None
        previous = None
        for seq in sorted(state.out_of_order):
            if run_start is None:
                run_start = seq
            elif seq != previous + 1:
                ranges.append((run_start, previous + 1))
                run_start = seq
            previous = seq
        ranges.append((run_start, previous + 1))
        limit = self.config.max_sack_ranges
        if len(ranges) <= limit:
            return tuple(ranges)
        offset = state.sack_rotation % len(ranges)
        state.sack_rotation += limit
        rotated = ranges[offset:] + ranges[:offset]
        return tuple(rotated[:limit])

    def _send_ack(
        self,
        data_packet: Packet,
        state: _ReceiverFlowState,
        dsack_seq: Optional[int] = None,
        reorder_extent: int = 0,
        flags: int = ACK,
    ) -> None:
        reverse = data_packet.five_tuple.reversed()
        ack = make_tcp_packet(
            reverse,
            flags=flags,
            seq=0,
            ack=state.cum,
            payload_len=0,
            tcp_checksum=self.rng.getrandbits(16),
            created_at=self.sim.now,
            frame_len=self.config.ack_frame_len,
        )
        is_rexmit = (
            isinstance(data_packet.app_data, tuple)
            and len(data_packet.app_data) == 2
            and bool(data_packet.app_data[1])
        )
        ack.app_data = _AckMeta(
            echo_ts=data_packet.created_at,
            echo_rexmit=is_rexmit,
            sack_ranges=self._sack_ranges(state),
            dsack_seq=dsack_seq,
            reorder_extent=reorder_extent,
        )
        state.unacked_inorder = 0
        if state.ack_timer is not None:
            state.ack_timer.cancel()
            state.ack_timer = None
        self.link.send(ack)

    # -- receive path -----------------------------------------------------------

    def receive(self, packet: Packet, now: int) -> None:
        flow = packet.five_tuple
        flags = packet.flags
        if flags & SYN and not flags & ACK:
            if flow not in self.flows:
                self.flows[flow] = _ReceiverFlowState()
                self.syns_accepted += 1
            state = self.flows[flow]
            self._send_ack(packet, state, flags=SYN | ACK)
            return
        state = self.flows.get(flow)
        if state is None:
            return  # not ours (e.g. stray packet after teardown)
        if flags & FIN:
            state.fin_seen = True
            self._send_ack(packet, state, flags=FIN | ACK)
            return
        if packet.payload_len == 0:
            return  # pure ACK (handshake completion)
        self._on_data(packet, state)

    def _on_data(self, packet: Packet, state: _ReceiverFlowState) -> None:
        seq = packet.seq
        if seq < state.cum or seq in state.out_of_order:
            # Duplicate: DSACK it so the sender can detect spuriousness.
            state.duplicates += 1
            self.total_duplicates += 1
            self._send_ack(packet, state, dsack_seq=seq)
            return
        filled_hole = seq == state.cum and state.highest_seen > seq
        state.highest_seen = max(state.highest_seen, seq)
        if seq == state.cum:
            state.cum += 1
            state.delivered_segments += 1
            while state.cum in state.out_of_order:
                state.out_of_order.discard(state.cum)
                state.cum += 1
                state.delivered_segments += 1
            if filled_hole:
                # A late packet closed the gap: report how far it was
                # overtaken so the sender can widen its dupthresh.
                extent = state.highest_seen - seq
                self.reorder_arrivals += 1
                self._send_ack(packet, state, reorder_extent=extent)
            else:
                state.unacked_inorder += 1
                if state.unacked_inorder >= self.config.delayed_ack or state.out_of_order:
                    self._send_ack(packet, state)
                else:
                    # Hold the ACK, but never indefinitely.
                    state.last_data_packet = packet
                    if state.ack_timer is None:
                        state.ack_timer = self.sim.after(
                            self.config.ack_delay_timeout, self._flush_ack, state
                        )
        else:
            # Out of order: immediate duplicate ACK (with SACK info).
            state.out_of_order.add(seq)
            self.reorder_arrivals += 1
            self._send_ack(packet, state)

    def _flush_ack(self, state: _ReceiverFlowState) -> None:
        state.ack_timer = None
        if state.unacked_inorder > 0 and state.last_data_packet is not None:
            self._send_ack(state.last_data_packet, state)

    # -- measurement -----------------------------------------------------------

    def delivered_segments(self, flow: FiveTuple) -> int:
        state = self.flows.get(flow)
        return state.delivered_segments if state else 0

    def delivered_bytes(self, flow: FiveTuple) -> int:
        return self.delivered_segments(flow) * self.config.mss_payload

    def total_delivered_segments(self) -> int:
        return sum(state.delivered_segments for state in self.flows.values())
