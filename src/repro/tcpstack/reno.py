"""NewReno AIMD congestion control (comparison baseline).

The paper's summary asks "how well Sprayer interacts with other TCP
implementations" — Reno's halving on loss makes it more sensitive to
spurious fast retransmits than CUBIC, so the ablation benches run both.
"""

from __future__ import annotations


class RenoCongestionControl:
    """Classic AIMD: +1/cwnd per ACK, halve on loss."""

    BETA = 0.5

    def __init__(self, initial_cwnd: float = 10.0, max_cwnd: float = 4096.0):
        if initial_cwnd < 1:
            raise ValueError(f"initial_cwnd must be >= 1, got {initial_cwnd}")
        self.cwnd: float = initial_cwnd
        self.max_cwnd = max_cwnd
        self.ssthresh: float = float("inf")
        self.losses = 0
        self.timeouts = 0

    @property
    def in_slow_start(self) -> bool:
        return self.cwnd < self.ssthresh

    def on_ack(self, acked_segments: int, now: int, srtt_ps: float) -> None:
        if acked_segments <= 0:
            return
        if self.in_slow_start:
            self.cwnd = min(self.max_cwnd, self.cwnd + acked_segments)
        else:
            self.cwnd = min(self.max_cwnd, self.cwnd + acked_segments / self.cwnd)

    def on_loss(self, now: int) -> float:
        self.losses += 1
        self.cwnd = max(2.0, self.cwnd * self.BETA)
        self.ssthresh = self.cwnd
        return self.ssthresh

    def on_timeout(self, now: int) -> None:
        self.timeouts += 1
        self.ssthresh = max(2.0, self.cwnd / 2)
        self.cwnd = 1.0

    def undo(self, prior_cwnd: float, prior_ssthresh: float) -> None:
        self.cwnd = max(self.cwnd, prior_cwnd)
        self.ssthresh = max(self.ssthresh, prior_ssthresh)
        if self.losses:
            self.losses -= 1
