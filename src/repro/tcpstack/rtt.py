"""RTT estimation and the retransmission timeout (RFC 6298)."""

from __future__ import annotations

from repro.sim.timeunits import MICROSECOND, MILLISECOND


class RttEstimator:
    """SRTT/RTTVAR smoothing with the standard gains.

    Times are integer picoseconds. ``min_rto`` defaults far below
    Linux's 200 ms because the simulated testbed's RTTs are tens of
    microseconds to a few milliseconds, and the model has no TLP/RACK
    timers — the RTO is the only stall-breaker.
    """

    ALPHA = 1 / 8
    BETA = 1 / 4
    K = 4

    def __init__(self, min_rto: int = 20 * MILLISECOND, max_rto: int = 1000 * MILLISECOND):
        if min_rto <= 0 or max_rto < min_rto:
            raise ValueError(f"bad RTO bounds [{min_rto}, {max_rto}]")
        self.min_rto = min_rto
        self.max_rto = max_rto
        self.srtt: float = 0.0
        self.rttvar: float = 0.0
        self.samples = 0
        self.latest_sample: int = 0

    def on_sample(self, rtt: int) -> None:
        """Feed one RTT measurement (Karn's rule: callers must not
        sample retransmitted segments)."""
        if rtt < 0:
            raise ValueError(f"negative RTT sample: {rtt}")
        self.latest_sample = rtt
        if self.samples == 0:
            self.srtt = float(rtt)
            self.rttvar = rtt / 2
        else:
            delta = abs(self.srtt - rtt)
            self.rttvar = (1 - self.BETA) * self.rttvar + self.BETA * delta
            self.srtt = (1 - self.ALPHA) * self.srtt + self.ALPHA * rtt
        self.samples += 1

    @property
    def rto(self) -> int:
        """Current retransmission timeout in picoseconds."""
        if self.samples == 0:
            # Pre-sample default: conservative but not catatonic. Real
            # stacks rarely hit this because the handshake provides the
            # first sample (the sender endpoint does the same).
            return self.min_rto * 3
        rto = self.srtt + self.K * self.rttvar
        return int(min(self.max_rto, max(self.min_rto, rto)))

    @property
    def smoothed_rtt(self) -> float:
        """Smoothed RTT (ps); 0 before the first sample."""
        return self.srtt
