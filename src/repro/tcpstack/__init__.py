"""An event-driven TCP model.

The paper's TCP results (Figures 6b, 7b, 9) hinge on one question: how
does a real congestion-controlled sender react to the packet reordering
that spraying introduces? This package models the Linux behaviour the
testbed ran — CUBIC congestion control, fast retransmit with an
*adaptive* duplicate-ACK reordering threshold (``tcp_reordering``),
DSACK-based undo of spurious recoveries, delayed ACKs, RFC 6298 RTO —
at segment granularity on the discrete-event simulator.

The model is deliberately not a byte-exact TCP: segments are the unit,
handshake and teardown use real SYN/FIN flags (so middleboxes see real
connection packets), and everything that matters to
reordering-vs-throughput dynamics is retained.
"""

from repro.tcpstack.cubic import CubicCongestionControl
from repro.tcpstack.endpoint import TcpFlow, TcpReceiverEndpoint, TcpSenderEndpoint
from repro.tcpstack.reno import RenoCongestionControl
from repro.tcpstack.rtt import RttEstimator

__all__ = [
    "CubicCongestionControl",
    "RenoCongestionControl",
    "RttEstimator",
    "TcpFlow",
    "TcpSenderEndpoint",
    "TcpReceiverEndpoint",
]
