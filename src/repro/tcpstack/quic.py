"""A QUIC-like transport over UDP (paper §7, last paragraph).

"QUIC, for example, runs on top of UDP and by design is more resilient
to packet reordering than TCP." The resilience comes from structural
properties this model keeps (after RFC 9002):

- **packet numbers are never reused**: retransmitted *data* rides in a
  fresh packet number, so there is no retransmission ambiguity and a
  late (reordered) packet can always be told apart from a lost one;
- loss is declared by a **packet threshold** (default 3) below the
  largest acknowledged packet number, and the threshold adapts upward
  when a "lost" packet's ACK later arrives (spurious loss ⇒ pure
  reordering), mirroring RFC 9002 §6.2's latitude;
- a **PTO** (probe timeout) replaces TCP's RTO: it sends a probe
  instead of collapsing state.

Congestion control is the RFC 9002 NewReno flavour (reuse of
:class:`repro.tcpstack.reno.RenoCongestionControl`), with at most one
window reduction per loss epoch.

The stream model matches the TCP endpoints': data is a sequence of
fixed-size segments identified by *offset*; goodput is measured in
contiguously delivered offsets.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.net.five_tuple import FiveTuple
from repro.net.packet import Packet, make_udp_packet
from repro.nic.link import Link
from repro.sim.engine import EventHandle, Simulator
from repro.sim.timeunits import MICROSECOND, MILLISECOND
from repro.tcpstack.reno import RenoCongestionControl
from repro.tcpstack.rtt import RttEstimator


@dataclass
class QuicConfig:
    """Knobs for the QUIC-like endpoints."""

    segment_payload: int = 1200  # QUIC's typical max datagram payload
    data_frame_len: int = 1278  # 1200 + UDP/IP/Ethernet headers + FCS
    ack_frame_len: int = 80
    initial_cwnd: float = 10.0
    max_cwnd: float = 4096.0
    packet_threshold: int = 3
    max_packet_threshold: int = 128
    adaptive_threshold: bool = True
    ack_every: int = 2
    ack_delay_timeout: int = 200 * MICROSECOND
    min_pto: int = 20 * MILLISECOND
    max_burst: int = 16
    #: How many ACK ranges ride in each ACK frame.
    max_ack_ranges: int = 8


class _AckedSet:
    """A grow-forever set of integers in O(window) memory: everything
    below ``floor`` is a member, plus a sparse set above it."""

    __slots__ = ("floor", "above", "count")

    def __init__(self) -> None:
        self.floor = 0
        self.above: Set[int] = set()
        self.count = 0

    def add(self, value: int) -> None:
        if self.__contains__(value):
            return
        self.above.add(value)
        while self.floor in self.above:
            self.above.discard(self.floor)
            self.floor += 1
        self.count += 1

    def __contains__(self, value: int) -> bool:
        return value < self.floor or value in self.above

    def __len__(self) -> int:
        return self.count


class _QuicAckFrame:
    """What a QUIC ACK frame carries (modelled explicitly)."""

    __slots__ = ("largest", "ranges", "echo_ts")

    def __init__(self, largest: int, ranges: Tuple[Tuple[int, int], ...], echo_ts: int):
        self.largest = largest
        self.ranges = ranges  # (start, end) packet-number ranges, inclusive-exclusive
        self.echo_ts = echo_ts


class QuicLikeSender:
    """Bulk data sender over one sprayed UDP flow."""

    def __init__(
        self,
        sim: Simulator,
        flow: FiveTuple,
        link: Link,
        rng: random.Random,
        config: Optional[QuicConfig] = None,
        total_segments: Optional[int] = None,
    ):
        if not flow.is_udp:
            raise ValueError(f"QUIC rides on UDP; got {flow}")
        self.sim = sim
        self.flow = flow
        self.link = link
        self.rng = rng
        self.config = config or QuicConfig()
        self.total_segments = total_segments
        self.cc = RenoCongestionControl(self.config.initial_cwnd, self.config.max_cwnd)
        self.rtt = RttEstimator(min_rto=self.config.min_pto)

        self.next_packet_number = 0
        self.next_offset = 0
        #: packet number -> (data offset, sent time)
        self.in_flight: Dict[int, Tuple[int, int]] = {}
        self.largest_acked = -1
        self.packet_threshold = self.config.packet_threshold
        #: Offsets needing (re)transmission.
        self._pending_offsets: List[int] = []
        self._acked_offsets = _AckedSet()
        #: pn -> offset for packets declared lost (to detect spuriousness).
        self._declared_lost: Dict[int, int] = {}
        self._loss_epoch_end = -1  # largest pn at last cwnd reduction
        self._pto_handle: Optional[EventHandle] = None
        self._pto_backoff = 1

        # statistics
        self.packets_sent = 0
        self.data_retransmissions = 0
        self.loss_epochs = 0
        self.spurious_losses = 0
        self.ptos = 0

    # -- transmit ------------------------------------------------------------

    def start(self) -> None:
        self._send_loop()

    def _offset_to_send(self) -> Optional[int]:
        if self._pending_offsets:
            return self._pending_offsets.pop(0)
        if self.total_segments is not None and self.next_offset >= self.total_segments:
            return None
        offset = self.next_offset
        self.next_offset += 1
        return offset

    def _send_loop(self) -> None:
        budget = self.config.max_burst
        while len(self.in_flight) < int(self.cc.cwnd) and budget > 0:
            offset = self._offset_to_send()
            if offset is None:
                break
            self._send_segment(offset)
            budget -= 1
        if self.in_flight and self._pto_handle is None:
            self._arm_pto()

    def _send_segment(self, offset: int) -> None:
        pn = self.next_packet_number
        self.next_packet_number += 1
        packet = make_udp_packet(
            self.flow,
            payload_len=self.config.segment_payload,
            created_at=self.sim.now,
            frame_len=self.config.data_frame_len,
            checksum=self.rng.getrandbits(16),
        )
        packet.seq = pn
        packet.app_data = ("quic-data", offset)
        self.in_flight[pn] = (offset, self.sim.now)
        self.packets_sent += 1
        self.link.send(packet)

    # -- receive (ACK frames) ---------------------------------------------------

    def receive(self, packet: Packet, now: int) -> None:
        frame = packet.app_data
        if not isinstance(frame, _QuicAckFrame):
            return
        newly_acked = 0
        for start, end in frame.ranges:
            # A contiguous range can cover the whole history; iterate the
            # (window-bounded) outstanding sets instead of the range.
            span = end - start
            if span > len(self.in_flight) + len(self._declared_lost):
                candidates = [p for p in self.in_flight if start <= p < end]
                candidates += [p for p in self._declared_lost if start <= p < end]
            else:
                candidates = list(range(start, end))
            for pn in candidates:
                entry = self.in_flight.pop(pn, None)
                if entry is not None:
                    offset, sent_time = entry
                    self._acked_offsets.add(offset)
                    newly_acked += 1
                    if pn == frame.largest:
                        self.rtt.on_sample(now - sent_time)
                elif pn in self._declared_lost:
                    # A "lost" packet got acknowledged: pure reordering.
                    self.spurious_losses += 1
                    offset = self._declared_lost.pop(pn)
                    if self.config.adaptive_threshold:
                        self.packet_threshold = min(
                            self.config.max_packet_threshold,
                            max(self.packet_threshold + 1,
                                frame.largest - pn + 1),
                        )
        if frame.largest > self.largest_acked:
            self.largest_acked = frame.largest
            self._pto_backoff = 1
        if newly_acked:
            self.cc.on_ack(newly_acked, now, self.rtt.smoothed_rtt)
        self._detect_losses(now)
        self._arm_pto()
        self._send_loop()

    def _detect_losses(self, now: int) -> None:
        threshold_pn = self.largest_acked - self.packet_threshold
        lost = [pn for pn in self.in_flight if pn <= threshold_pn]
        if not lost:
            return
        for pn in lost:
            offset, _sent = self.in_flight.pop(pn)
            self._declared_lost[pn] = offset
            if offset not in self._acked_offsets:
                self._pending_offsets.append(offset)
                self.data_retransmissions += 1
        # One window reduction per loss epoch (RFC 9002 §7.3.1).
        if max(lost) > self._loss_epoch_end:
            self.loss_epochs += 1
            self.cc.on_loss(now)
            self._loss_epoch_end = self.next_packet_number
        if len(self._declared_lost) > 4096:
            cutoff = self.largest_acked - 4096
            self._declared_lost = {
                pn: off for pn, off in self._declared_lost.items() if pn > cutoff
            }

    # -- PTO ----------------------------------------------------------------

    def _arm_pto(self) -> None:
        if self._pto_handle is not None:
            self._pto_handle.cancel()
            self._pto_handle = None
        if self.in_flight:
            self._pto_handle = self.sim.after(
                self.rtt.rto * self._pto_backoff, self._on_pto
            )

    def _on_pto(self) -> None:
        self._pto_handle = None
        if not self.in_flight:
            return
        self.ptos += 1
        self._pto_backoff = min(64, self._pto_backoff * 2)
        # Probe: retransmit the oldest unacked data in a new packet.
        oldest_pn = min(self.in_flight)
        offset, _sent = self.in_flight.pop(oldest_pn)
        self._declared_lost[oldest_pn] = offset
        if offset not in self._acked_offsets:
            self.data_retransmissions += 1
            self._send_segment(offset)
        self._arm_pto()

    @property
    def delivered_offsets(self) -> int:
        return len(self._acked_offsets)


class _PnSpace:
    """A compact received-set: contiguous floor + sparse window above.

    ``floor`` is the first number not yet contiguously received;
    ``above`` holds the (bounded, window-sized) numbers beyond it. This
    keeps per-packet bookkeeping O(window), not O(total received).
    """

    __slots__ = ("floor", "above", "largest", "count")

    def __init__(self) -> None:
        self.floor = 0
        self.above: Set[int] = set()
        self.largest = -1
        self.count = 0

    def add(self, value: int) -> bool:
        """Insert; returns False for duplicates."""
        if value < self.floor or value in self.above:
            return False
        self.above.add(value)
        while self.floor in self.above:
            self.above.discard(self.floor)
            self.floor += 1
        self.largest = max(self.largest, value)
        self.count += 1
        return True

    @property
    def has_gap(self) -> bool:
        return bool(self.above)

    def ranges(self, max_ranges: int) -> Tuple[Tuple[int, int], ...]:
        """Received blocks as (start, end) — the contiguous prefix plus
        the sparse blocks above, newest-biased like real ACK frames."""
        blocks: List[Tuple[int, int]] = []
        if self.floor > 0:
            blocks.append((0, self.floor))
        run_start = previous = None
        for value in sorted(self.above):
            if run_start is None:
                run_start = value
            elif value != previous + 1:
                blocks.append((run_start, previous + 1))
                run_start = value
            previous = value
        if run_start is not None:
            blocks.append((run_start, previous + 1))
        return tuple(blocks[-max_ranges:])


class _RecvFlowState:
    __slots__ = ("pns", "offsets", "unacked", "ack_timer")

    def __init__(self) -> None:
        self.pns = _PnSpace()
        self.offsets = _PnSpace()
        self.unacked = 0
        self.ack_timer: Optional[EventHandle] = None


class QuicLikeReceiver:
    """Receives data packets, emits ACK frames with ranges."""

    def __init__(
        self,
        sim: Simulator,
        link: Link,
        rng: random.Random,
        config: Optional[QuicConfig] = None,
    ):
        self.sim = sim
        self.link = link
        self.rng = rng
        self.config = config or QuicConfig()
        self._flows: Dict[FiveTuple, _RecvFlowState] = {}
        self.duplicates = 0
        self.reordered_arrivals = 0

    def receive(self, packet: Packet, now: int) -> None:
        if not (isinstance(packet.app_data, tuple) and packet.app_data[0] == "quic-data"):
            return
        flow = packet.five_tuple
        state = self._flows.setdefault(flow, _RecvFlowState())
        pn = packet.seq
        offset = packet.app_data[1]
        if pn < state.pns.largest:
            self.reordered_arrivals += 1
        fresh_pn = state.pns.add(pn)
        fresh_offset = state.offsets.add(offset)
        if fresh_pn and not fresh_offset:
            self.duplicates += 1  # redundant data retransmission
        state.unacked += 1
        if state.unacked >= self.config.ack_every or state.pns.has_gap:
            self._send_ack(flow, state, packet.created_at)
        elif state.ack_timer is None:
            state.ack_timer = self.sim.after(
                self.config.ack_delay_timeout, self._flush, flow, state, packet.created_at
            )

    def _flush(self, flow: FiveTuple, state: _RecvFlowState, echo_ts: int) -> None:
        state.ack_timer = None
        if state.unacked > 0:
            self._send_ack(flow, state, echo_ts)

    def _send_ack(self, flow: FiveTuple, state: _RecvFlowState, echo_ts: int) -> None:
        if state.ack_timer is not None:
            state.ack_timer.cancel()
            state.ack_timer = None
        state.unacked = 0
        ack = make_udp_packet(
            flow.reversed(),
            payload_len=0,
            created_at=self.sim.now,
            frame_len=self.config.ack_frame_len,
            checksum=self.rng.getrandbits(16),
        )
        ack.app_data = _QuicAckFrame(
            state.pns.largest, state.pns.ranges(self.config.max_ack_ranges), echo_ts
        )
        self.link.send(ack)

    def delivered_segments(self, flow: FiveTuple) -> int:
        state = self._flows.get(flow)
        return state.offsets.count if state else 0
