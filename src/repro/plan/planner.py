"""Plan synthesis: inferred access patterns -> steering policy.

The synthesis rules are the paper's taxonomy turned into code:

- **stateless / read-mostly / relaxed-writer** stages tolerate any
  placement: spraying maximizes load balance (§3, Figures 6-8), so a
  chain made only of these gets the ``sprayer`` policy.
- a **designated drainer** (per-packet flow writes, all guarded by the
  designated-core check — the out-of-order DPI) is spray-compatible by
  construction: the writing partition holds because the writes
  self-restrict to the owner core.
- a **per-packet flow writer** without that guard (classic DPI row)
  requires flow affinity — every packet of a flow on one core — which
  is RSS's contract (§7: spraying would make cores share state
  machines).
- a **write-hot global** stage (non-relaxed global writes per packet)
  splits on *what the key is*. Flow-keyed writes are per-flow state in
  global clothing: flow affinity makes them core-local, so the planner
  picks ``rss``. Anonymous write-hot globals (the RE packet cache) are
  contended under any placement; in a chain that also contains
  affinity-tolerant stages the planner picks ``flowlet`` — bursts stay
  on one core (coherence bounces amortize over a flowlet, §2's locality
  middle ground) while idle cores still get new flowlets.
- with ``Objective(expect_faults=True)`` a chain whose statefulness is
  all at flow events upgrades ``sprayer`` to ``scr`` — state-compute
  replication keeps every flow's state recoverable when a core dies,
  at replication cost the fault-free objective refuses to pay.

The planner never emits ``naive`` (shared table, no redirection): it is
unsound by construction — the negative control in the verify module,
not a plan.

Planning is deterministic and order-independent: the chain mode is a
function of the *set* of stage classifications, never of stage order
or dict iteration order (a Hypothesis property pins this).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.lint.dataflow import AccessSummary, InferredProfile, infer_module
from repro.nfs.registry import NF_PROFILES, READ_WRITE

# -- stage classification ---------------------------------------------------

#: Placement requirements, from weakest to strongest.
ANY = "any"  # correct under every steering policy
SPRAY_OK = "spray_ok"  # correct under spraying (writing partition holds)
AFFINITY = "affinity"  # needs every packet of a flow on one core

#: classification -> placement requirement.
_REQUIREMENTS = {
    "stateless": ANY,
    "read_mostly": SPRAY_OK,
    "relaxed_writer": SPRAY_OK,
    "designated_drainer": SPRAY_OK,
    "per_packet_flow_writer": AFFINITY,
    "write_hot_global": SPRAY_OK,  # sound anywhere; *costly* anywhere
}


def classify(summary: AccessSummary, stateless: bool = False) -> str:
    """Name the access-pattern class of one stage."""
    if summary.per_flow_packet == READ_WRITE:
        if summary.designated_only:
            return "designated_drainer"
        return "per_packet_flow_writer"
    if summary.global_packet == READ_WRITE and not summary.relaxed_only:
        return "write_hot_global"
    if stateless or (
        summary.per_flow_event != READ_WRITE
        and summary.global_event != READ_WRITE
        and summary.per_flow_packet == "-"
        and summary.global_packet == "-"
    ):
        return "stateless"
    if summary.global_packet == READ_WRITE:
        return "relaxed_writer"
    return "read_mostly"


@dataclass(frozen=True)
class Objective:
    """What the operator optimizes for, beyond raw throughput."""

    #: Plan for core failures: prefer a policy that keeps per-flow
    #: state recoverable (state-compute replication).
    expect_faults: bool = False


@dataclass(frozen=True)
class StagePlan:
    """One stage's inferred class and what it demands of steering."""

    key: str
    nf_class: str
    classification: str
    requirement: str
    summary: AccessSummary

    def to_dict(self) -> Dict[str, object]:
        return {
            "key": self.key,
            "nf_class": self.nf_class,
            "classification": self.classification,
            "requirement": self.requirement,
            "summary": self.summary.to_dict(),
        }


@dataclass(frozen=True)
class ChainPlan:
    """The synthesized parallel configuration for one chain."""

    chain: Tuple[str, ...]
    mode: str
    stages: Tuple[StagePlan, ...]
    #: How connection packets find their writer core.
    designated_policy: str  # "symmetric_hash" | "replicated_map"
    #: NIC ring placement: which rings a flow's packets may land in.
    ring_policy: str  # "any_ring" | "flow_hash_ring" | "flowlet_ring"
    #: Why this mode, one clause per deciding rule (sorted, so plans
    #: compare equal regardless of stage order).
    rationale: Tuple[str, ...]

    def config_kwargs(self) -> Dict[str, object]:
        """Engine config kwargs realizing the plan."""
        return {"mode": self.mode}

    def to_dict(self) -> Dict[str, object]:
        return {
            "chain": list(self.chain),
            "mode": self.mode,
            "designated_policy": self.designated_policy,
            "ring_policy": self.ring_policy,
            "rationale": list(self.rationale),
            "stages": [stage.to_dict() for stage in self.stages],
        }


# -- inferred profiles per registry key -------------------------------------


def _join_summaries(profiles: Sequence[InferredProfile]) -> AccessSummary:
    """Fold several NF classes of one module into one summary (the
    common case is exactly one class per module)."""
    if len(profiles) == 1:
        return profiles[0].summary
    from repro.lint.dataflow import max_access

    joined = AccessSummary()
    for profile in profiles:
        s = profile.summary
        joined = AccessSummary(
            per_flow_packet=max_access(joined.per_flow_packet, s.per_flow_packet),
            per_flow_event=max_access(joined.per_flow_event, s.per_flow_event),
            global_packet=max_access(joined.global_packet, s.global_packet),
            global_event=max_access(joined.global_event, s.global_event),
            relaxed_only=joined.relaxed_only and s.relaxed_only,
            designated_only=joined.designated_only and s.designated_only,
            flow_keyed_global_writes=joined.flow_keyed_global_writes
            or s.flow_keyed_global_writes,
        )
    return joined


def inferred_stage(key: str) -> StagePlan:
    """Infer one registry key's stage plan from its implementation."""
    try:
        profile = NF_PROFILES[key]
    except KeyError:
        raise ValueError(f"unknown NF key {key!r}; have {sorted(NF_PROFILES)}") from None
    if profile.implementation is None:
        raise ValueError(f"NF {key!r} is taxonomy-only (no implementation to infer)")
    inferred = infer_module(profile.implementation)
    if not inferred:
        raise ValueError(f"no NF classes found in {profile.implementation!r}")
    summary = _join_summaries(inferred)
    stateless = all(p.stateless for p in inferred)
    classification = classify(summary, stateless)
    return StagePlan(
        key=key,
        nf_class="+".join(sorted(p.nf_class for p in inferred)),
        classification=classification,
        requirement=_REQUIREMENTS[classification],
        summary=summary,
    )


# -- chain synthesis --------------------------------------------------------


def plan_chain(
    keys: Sequence[str], objective: Objective = Objective()
) -> ChainPlan:
    """Synthesize the steering configuration for one chain."""
    if not keys:
        raise ValueError("a chain needs at least one NF key")
    stages = tuple(inferred_stage(key) for key in keys)
    classes = {stage.classification for stage in stages}
    rationale: List[str] = []

    affinity_stages = sorted(
        stage.key for stage in stages if stage.requirement == AFFINITY
    )
    flow_keyed = sorted(
        stage.key
        for stage in stages
        if stage.classification == "write_hot_global"
        and stage.summary.flow_keyed_global_writes
    )
    anonymous_hot = sorted(
        stage.key
        for stage in stages
        if stage.classification == "write_hot_global"
        and not stage.summary.flow_keyed_global_writes
    )
    spray_tolerant = classes - {"write_hot_global", "per_packet_flow_writer"}

    if affinity_stages:
        mode = "rss"
        rationale.append(
            f"stage(s) {', '.join(affinity_stages)} write per-flow state on "
            f"every packet without a designated-core guard: flow affinity "
            f"(RSS) is the only placement that keeps one writer per flow"
        )
    elif flow_keyed:
        mode = "rss"
        rationale.append(
            f"stage(s) {', '.join(flow_keyed)} issue per-packet global "
            f"writes keyed by the flow: per-flow state in global clothing — "
            f"flow affinity makes those writes core-local"
        )
    elif anonymous_hot and spray_tolerant:
        mode = "flowlet"
        rationale.append(
            f"stage(s) {', '.join(anonymous_hot)} hammer an anonymous "
            f"global structure per packet while the rest of the chain "
            f"tolerates spraying: flowlet switching amortizes ownership "
            f"bounces over bursts without pinning whole flows"
        )
    elif anonymous_hot:
        mode = "rss"
        rationale.append(
            f"every stage ({', '.join(anonymous_hot)}) is write-hot on an "
            f"anonymous global: no placement removes the contention, so "
            f"keep flow affinity and its cache locality"
        )
    elif objective.expect_faults and classes & {
        "read_mostly",
        "relaxed_writer",
        "designated_drainer",
    }:
        mode = "scr"
        rationale.append(
            "fault tolerance requested and the chain keeps per-flow state: "
            "state-compute replication keeps every flow recoverable when a "
            "core dies, at replication cost"
        )
    else:
        mode = "sprayer"
        rationale.append(
            "every stage is stateless, read-mostly, relaxed-writing, or a "
            "designated drainer: the writing partition holds under "
            "spraying, so take its load balance"
        )

    designated_policy = "replicated_map" if mode == "scr" else "symmetric_hash"
    ring_policy = {
        "sprayer": "any_ring",
        "scr": "any_ring",
        "flowlet": "flowlet_ring",
        "rss": "flow_hash_ring",
    }[mode]
    return ChainPlan(
        chain=tuple(keys),
        mode=mode,
        stages=stages,
        designated_policy=designated_policy,
        ring_policy=ring_policy,
        rationale=tuple(sorted(rationale)),
    )


def plan_chains(
    chains: Sequence[Sequence[str]], objective: Objective = Objective()
) -> List[ChainPlan]:
    """Plan every chain of a mix."""
    return [plan_chain(keys, objective) for keys in chains]


# -- realization ------------------------------------------------------------


def build_chain(keys: Sequence[str], **overrides_by_key):
    """Instantiate the chain behind a key sequence.

    A single-NF "chain" returns the bare NF (no scoping overhead);
    longer chains wrap stages in :class:`repro.core.chain.NfChain`.
    ``overrides_by_key`` forwards constructor kwargs per key, e.g.
    ``build_chain(["synthetic"], synthetic={"busy_cycles": 500})``.
    """
    from repro.core.chain import NfChain
    from repro.nfs.factory import make_nf

    nfs = [make_nf(key, **overrides_by_key.get(key, {})) for key in keys]
    if len(nfs) == 1:
        return nfs[0]
    return NfChain(nfs)
