"""Auto-parallelization planner for NF chains.

The paper's argument is a taxonomy: the right steering policy is a
function of *how each NF touches its state* (Table 1). This package
closes the loop — :mod:`repro.lint.dataflow` infers the access pattern
from the NF source, :mod:`repro.plan.planner` folds the inferred
profiles of a chain into a :class:`ChainPlan` (steering mode,
designated-core policy, ring placement), and :mod:`repro.plan.verify`
arms the runtime ownership auditor to prove the plan sound (or, for a
deliberately corrupted plan, to watch it trip).
"""

from repro.plan.planner import (
    ChainPlan,
    Objective,
    StagePlan,
    build_chain,
    classify,
    plan_chain,
    plan_chains,
)
from repro.plan.verify import PlanAudit, audit_chain, verify_plan

__all__ = [
    "ChainPlan",
    "StagePlan",
    "Objective",
    "classify",
    "plan_chain",
    "plan_chains",
    "build_chain",
    "PlanAudit",
    "audit_chain",
    "verify_plan",
]
