"""Runtime verification of chain plans (the dynamic half of the planner).

A plan is a *claim*: "this steering mode keeps the writing partition
intact for this chain". The auditor from :mod:`repro.checks` can test
the claim directly — drive real connections through the planned engine
with the ownership checker in counting mode and read the violation
counter. A sound plan must count zero; the ``naive`` configuration
(shared table, no connection redirection — the mode the planner never
emits) is the negative control that must trip.

Counting mode (``strict=False``) rather than raising keeps both
directions of the check on one code path: soundness is "violations ==
0 after the whole drive", not "no exception before the first one".
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.plan.planner import ChainPlan, build_chain

#: Traffic shape of one audit drive (mirrors the Table 1 bench).
DEFAULT_FLOWS = 16
DEFAULT_PACKETS_PER_FLOW = 20


@dataclass(frozen=True)
class PlanAudit:
    """What one audited drive observed."""

    chain: Tuple[str, ...]
    mode: str
    violations: int
    reads: int
    writes: int
    forwarded: int
    flow_entries: int

    @property
    def sound(self) -> bool:
        return self.violations == 0


def _audit_flows(keys: Sequence[str], num_flows: int, rng: random.Random):
    from repro.net.five_tuple import FiveTuple
    from repro.nfs.factory import VIP
    from repro.trafficgen.flows import random_tcp_flows

    if "load_balancer" in keys:
        # Load-balanced traffic must target the VIP or it is dropped.
        return [
            FiveTuple(0x0A000000 | (i + 1), VIP, 20000 + i, 80, 6)
            for i in range(num_flows)
        ]
    return random_tcp_flows(num_flows, rng)


def audit_chain(
    keys: Sequence[str],
    mode: str,
    num_flows: int = DEFAULT_FLOWS,
    packets_per_flow: int = DEFAULT_PACKETS_PER_FLOW,
    seed: int = 99,
    num_cores: int = 8,
) -> PlanAudit:
    """Drive real connections through ``keys`` under ``mode`` with the
    ownership auditor counting, and report what it saw."""
    from repro.core.config import MiddleboxConfig
    from repro.core.engine import MiddleboxEngine
    from repro.net.packet import make_tcp_packet
    from repro.net.tcp_flags import ACK, FIN, SYN
    from repro.sim.engine import Simulator
    from repro.sim.timeunits import MILLISECOND

    sim = Simulator()
    nf = build_chain(keys)
    engine = MiddleboxEngine(
        sim, nf, MiddleboxConfig(mode=mode, num_cores=num_cores, strict_checks=True)
    )
    auditor = engine.checks.ownership
    if auditor is None:
        raise RuntimeError("strict_checks did not arm the ownership auditor")
    # Counting mode: soundness is judged on the final counter, and the
    # negative control (naive) must survive to the end of the drive.
    auditor.strict = False
    forwarded = []
    engine.set_egress(forwarded.append)
    rng = random.Random(seed)
    flows = _audit_flows(keys, num_flows, rng)
    for flow in flows:
        syn = make_tcp_packet(flow, flags=SYN, tcp_checksum=rng.getrandbits(16))
        engine.receive(syn, sim.now)
        sim.run(until=sim.now + MILLISECOND)
        for seq in range(packets_per_flow):
            data = make_tcp_packet(
                flow,
                flags=ACK,
                seq=seq,
                payload_len=200,
                tcp_checksum=rng.getrandbits(16),
            )
            # Real payload bytes so the DPI variants scan something.
            data.payload = bytes(rng.randrange(256) for _ in range(32))
            engine.receive(data, sim.now)
        sim.run(until=sim.now + MILLISECOND)
        fin = make_tcp_packet(flow, flags=FIN | ACK, tcp_checksum=rng.getrandbits(16))
        engine.receive(fin, sim.now)
    sim.run(until=sim.now + 10 * MILLISECOND)
    return PlanAudit(
        chain=tuple(keys),
        mode=mode,
        violations=auditor.violations,
        reads=auditor.reads,
        writes=auditor.writes,
        forwarded=len(forwarded),
        flow_entries=engine.flow_state.total_entries(),
    )


def verify_plan(plan: ChainPlan, **drive_kwargs) -> PlanAudit:
    """Audit a plan's chain under its chosen mode; raise if unsound."""
    audit = audit_chain(plan.chain, plan.mode, **drive_kwargs)
    if not audit.sound:
        raise AssertionError(
            f"plan for {plan.chain} under {plan.mode!r} tripped the "
            f"ownership auditor {audit.violations} time(s) — the planner "
            f"emitted an unsound configuration"
        )
    return audit
