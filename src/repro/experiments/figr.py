"""Figure R (extension): resilience under a mid-run core fault.

Not a figure from the paper — a degradation study its §7 resilience
argument predicts. All modes run the same open-loop workload at 50 % of
aggregate capacity; mid-run, the RSS-loaded core of the first flow
suffers a 10x cycle-cost slowdown (a noisy neighbor / thermal-throttle
episode), then recovers. The headline table prices the whole episode;
the timeline table shows the damage landing and healing bucket by
bucket.

Expected shape:

- **rss** — flows are pinned to queues by the hash; the slowed core's
  share of the load exceeds its degraded capacity, so its queue
  explodes: millisecond-scale p99 and tail drops until the window ends.
- **sprayer** — one Flow Director reprogram re-sprays data packets over
  the healthy cores (the injector offers ``resteer_around`` when the
  degraded set changes); 7 healthy cores comfortably absorb the load,
  so throughput holds and p99 stays flat.
- **flowlet** — can only re-steer *new* flowlets; under this constant
  per-flow rate the inter-packet gap never exceeds the flowlet gap, so
  in-flight flowlets stay pinned and it degrades like RSS. The gap is
  the point: gap-based spraying is only as nimble as the traffic's
  pauses.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cpu.costs import CostModel
from repro.experiments.format import format_table
from repro.experiments.runner import SweepRunner, default_runner
from repro.experiments.spec import Scenario
from repro.faults.plan import FaultPlan, core_slow
from repro.nic.rss import SYMMETRIC_RSS_KEY, RssHasher
from repro.sim.timeunits import MILLISECOND
from repro.trafficgen.flows import random_tcp_flows

MODES = ("rss", "flowlet", "sprayer")
NF_CYCLES = 4500
NUM_FLOWS = 32
NUM_CORES = 8
#: Cycle-cost multiplier of the fault window: the slowed core retains
#: ~1/10 of its capacity, well below its share of the offered load.
SLOW_FACTOR = 10.0
#: Offered load as a fraction of healthy aggregate capacity — low
#: enough that 7 healthy cores absorb everything, high enough that one
#: slowed core cannot carry its own share.
LOAD_FACTOR = 0.5


def fault_target(seed: int, num_flows: int = NUM_FLOWS, num_cores: int = NUM_CORES) -> int:
    """The core the fault hits: where RSS puts the workload's first flow.

    Picking a core that provably carries RSS traffic keeps the study
    honest — slowing an idle core would show no RSS degradation at all.
    The same core is slowed for every mode.
    """
    flow = random_tcp_flows(num_flows, random.Random(seed))[0]
    return RssHasher(num_cores, SYMMETRIC_RSS_KEY).queue_for(flow)


def run_figr(
    duration: int = 30 * MILLISECOND,
    warmup: int = 5 * MILLISECOND,
    fault_at: int = 10 * MILLISECOND,
    fault_until: int = 22 * MILLISECOND,
    bucket: int = MILLISECOND,
    seed: int = 1,
    num_cores: int = NUM_CORES,
    nf_cycles: int = NF_CYCLES,
    num_flows: int = NUM_FLOWS,
    runner: Optional[SweepRunner] = None,
) -> Tuple[List[Dict[str, object]], List[Dict[str, float]]]:
    """(headline rows, timeline rows) of the slowdown episode."""
    runner = default_runner(runner)
    offered = LOAD_FACTOR * num_cores * CostModel().single_core_rate_pps(nf_cycles)
    target = fault_target(seed, num_flows, num_cores)
    plan = FaultPlan.of(
        core_slow(target, fault_at, fault_until, SLOW_FACTOR), seed=seed
    )
    points = [
        Scenario.make(
            "resilience", label="figR", mode=mode, nf_cycles=nf_cycles,
            num_flows=num_flows, offered_pps=offered, duration=duration,
            warmup=warmup, seed=seed, num_cores=num_cores,
            fault_plan=plan, bucket_ps=bucket, telemetry_trace=True,
        )
        for mode in MODES
    ]
    by_mode = {r.scenario.mode: r.values for r in runner.run(points)}

    rows = []
    for mode in MODES:
        values = by_mode[mode]
        rows.append({
            "mode": mode,
            "fwd_mpps": values["rate_mpps"],
            "p99_us": values["p99_latency_us"],
            "queue_drops": values["rx_dropped_queue_full"],
            "fault_drops": values["fault_drops"] + values["rx_dropped_fault"],
            "recovery_ms": (
                values["recovery_ms"] if values["recovery_ms"] is not None else -1.0
            ),
        })

    timeline: List[Dict[str, float]] = []
    n_buckets = len(by_mode[MODES[0]]["timeline"])
    for i in range(n_buckets):
        row: Dict[str, float] = {"t_ms": by_mode[MODES[0]]["timeline"][i]["t_ms"]}
        for mode in MODES:
            entry = by_mode[mode]["timeline"][i]
            row[f"{mode}_mpps"] = entry["fwd_mpps"]
            row[f"{mode}_p99_us"] = entry["p99_us"]
        timeline.append(row)
    return rows, timeline


def main(
    runner: Optional[SweepRunner] = None,
    seeds: Optional[Sequence[int]] = None,
    quick: bool = False,
) -> None:
    runner = default_runner(runner)
    kwargs = dict(
        duration=8 * MILLISECOND, warmup=2 * MILLISECOND,
        fault_at=3 * MILLISECOND, fault_until=6 * MILLISECOND,
    ) if quick else {}
    if seeds:
        kwargs["seed"] = seeds[0]
    rows, timeline = run_figr(runner=runner, **kwargs)
    print(format_table(
        rows,
        title=f"Figure R: 10x slowdown of one core mid-run "
              f"({LOAD_FACTOR:.0%} load, whole-episode aggregates)",
    ))
    print()
    print(format_table(
        timeline,
        title="Figure R timeline: per-ms forwarded rate and p99 latency",
    ))
    by_mode = {row["mode"]: row for row in rows}
    sprayer, rss = by_mode["sprayer"], by_mode["rss"]
    if rss["fwd_mpps"] > 0 and sprayer["p99_us"] > 0:
        print(
            f"\nsprayer vs rss during a {SLOW_FACTOR:.0f}x core slowdown: "
            f"{sprayer['fwd_mpps'] / rss['fwd_mpps']:.2f}x throughput, "
            f"{rss['p99_us'] / sprayer['p99_us']:.1f}x lower p99"
        )


if __name__ == "__main__":
    main()
