"""Experiment runners: one module per figure/table of the paper.

Every module exposes ``run(...)`` returning a list of row dicts (the
same rows the paper's plot shows) and a ``main()`` that prints them as
an ASCII table, so ``python -m repro.experiments.fig6`` regenerates the
figure's data from scratch. The benchmarks in ``benchmarks/`` call the
same runners with reduced parameters and record timings.
"""

from repro.experiments.format import format_table

__all__ = ["format_table"]
