"""Experiment runners: one module per figure/table of the paper.

Every module exposes ``run(...)`` returning a list of row dicts (the
same rows the paper's plot shows) and a ``main()`` that prints them as
an ASCII table, so ``python -m repro.experiments.fig6`` regenerates the
figure's data from scratch. The benchmarks in ``benchmarks/`` call the
same runners with reduced parameters and record timings.
"""

from repro.experiments.format import format_table
from repro.experiments.runner import SweepRunner
from repro.experiments.spec import (
    PointResult,
    Scenario,
    Series,
    Sweep,
    aggregate_samples,
    mode_series,
    register_kind,
    run_scenario,
)

__all__ = [
    "PointResult",
    "Scenario",
    "Series",
    "Sweep",
    "SweepRunner",
    "aggregate_samples",
    "format_table",
    "mode_series",
    "register_kind",
    "run_scenario",
]
