"""Table 1: state scope and access pattern of popular stateful NFs.

Prints the paper's taxonomy from :mod:`repro.nfs.registry` and verifies
it at runtime: each implemented NF is driven with real connections
through the Sprayer engine with writing-partition enforcement ON. An NF
that modified flow state outside its designated core would raise
:class:`repro.core.flow_state.WritingPartitionError`; the DPI row — the
one NF whose access pattern is incompatible — is verified to need
shared automaton state under spraying.
"""

from __future__ import annotations

import random
from typing import Dict, List

from repro.core.config import MiddleboxConfig
from repro.core.engine import MiddleboxEngine
from repro.experiments.format import format_table
from repro.net.five_tuple import FiveTuple
from repro.net.packet import make_tcp_packet
from repro.net.tcp_flags import ACK, FIN, SYN
from repro.nfs import LoadBalancerNf
from repro.nfs.factory import VIP as _VIP
from repro.nfs.factory import make_nf as _make_nf
from repro.nfs.registry import NF_PROFILES, table1_rows
from repro.sim.engine import Simulator
from repro.sim.timeunits import MILLISECOND
from repro.trafficgen.flows import random_tcp_flows


def _drive(nf, mode: str, num_flows: int = 16, packets_per_flow: int = 20) -> Dict[str, object]:
    """Push real connections through the engine; return evidence."""
    sim = Simulator()
    engine = MiddleboxEngine(
        sim, nf, MiddleboxConfig(mode=mode, num_cores=8, enforce_partition=True)
    )
    forwarded = []
    engine.set_egress(forwarded.append)
    rng = random.Random(99)
    if isinstance(nf, LoadBalancerNf):
        flows = [
            FiveTuple(0x0A000000 | (i + 1), _VIP, 20000 + i, 80, 6)
            for i in range(num_flows)
        ]
    else:
        flows = random_tcp_flows(num_flows, rng)
    for flow in flows:
        syn = make_tcp_packet(flow, flags=SYN, tcp_checksum=rng.getrandbits(16))
        engine.receive(syn, sim.now)
        sim.run(until=sim.now + MILLISECOND)
        for seq in range(packets_per_flow):
            data = make_tcp_packet(
                flow,
                flags=ACK,
                seq=seq,
                payload_len=200,
                tcp_checksum=rng.getrandbits(16),
            )
            data.payload = bytes(rng.randrange(256) for _ in range(32))
            engine.receive(data, sim.now)
        sim.run(until=sim.now + MILLISECOND)
        fin = make_tcp_packet(flow, flags=FIN | ACK, tcp_checksum=rng.getrandbits(16))
        engine.receive(fin, sim.now)
    sim.run(until=sim.now + 10 * MILLISECOND)
    return {
        "forwarded": len(forwarded),
        "flow_entries": engine.flow_state.total_entries(),
        "coherence": engine.coherence.stats,
        "engine": engine,
    }


def verify_nf(key: str) -> Dict[str, object]:
    """Run one NF under Sprayer and check its declared access pattern."""
    profile = NF_PROFILES[key]
    nf = _make_nf(key)
    evidence = _drive(nf, "sprayer")
    has_per_flow_state = any(decl.scope == "Per-flow" for decl in profile.states)
    checks = {
        "forwards_traffic": evidence["forwarded"] > 0,
        "partition_respected": True,  # _drive would have raised otherwise
    }
    if has_per_flow_state and not profile.updates_flow_state_per_packet:
        checks["creates_flow_state"] = evidence["flow_entries"] > 0
    if key == "dpi":
        checks["needs_shared_state_when_sprayed"] = bool(nf._shared_states)
    return {
        "nf": profile.nf,
        "ok": all(checks.values()),
        "checks": checks,
        "telemetry": evidence["engine"].telemetry.dump(),
    }


def run_table1(verify: bool = True, runner=None) -> List[Dict[str, str]]:
    """The Table 1 rows, with a runtime-verification column.

    Verification drives each implemented NF as an independent
    ``nf_verify`` scenario through the shared runner, so the six NF
    drives parallelize like any other sweep.
    """
    from repro.experiments.runner import default_runner
    from repro.experiments.spec import Scenario

    rows = table1_rows()
    if not verify:
        return rows
    keys = [key for key, profile in NF_PROFILES.items()
            if profile.implementation is not None and profile.in_table1]
    scenarios = [
        Scenario.make("nf_verify", label="table1", mode="sprayer", nf_key=key)
        for key in keys
    ]
    results = default_runner(runner).run(scenarios)
    verdicts = {
        result.values["nf"]: "ok" if result.values["ok"] else "FAILED"
        for result in results
    }
    for row in rows:
        row["verified"] = verdicts.get(row["NF"], "-")
    return rows


def main(runner=None, seeds=None, quick: bool = False) -> None:
    print(format_table(
        run_table1(runner=runner),
        title="Table 1: state scope and access pattern of popular stateful NFs",
    ))


if __name__ == "__main__":
    main()
