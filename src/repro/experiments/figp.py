"""Figure P (extension): the auto-parallelization planner vs fixed policies.

Not a figure from the paper — the experiment its Table 1 implies once
the planner exists. :mod:`repro.plan` reads each NF's *source* (the
``repro.lint.dataflow`` inference pass), folds the chain's inferred
access patterns into a steering configuration, and claims the result is
both sound and fast. Figure P prices the claim: for a mix of NF chains,
race every fixed steering policy against the planner's choice and
report the gap to the best fixed policy per chain.

Each chain carries a trailing synthetic compute stage (the repo's
standard NF-cost dial, as in Figures 6-8) so the offered load actually
saturates placements that balance poorly; data packets carry real
payload bytes so the payload-priced stages (DPI scanning, RE
fingerprinting) do real work. The acceptance bar — asserted by the
test suite — is that the planner's choice lands within 5% of (or
beats) the best fixed policy on every chain.

The footer lines additionally *audit* each plan: the planned mode must
drive real connections with zero ownership violations, while the
``naive`` configuration (shared table, no redirection — the mode the
planner never emits) is the negative control that must trip.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.cpu.costs import CostModel
from repro.experiments.format import format_table
from repro.experiments.runner import SweepRunner, default_runner
from repro.experiments.spec import Scenario
from repro.sim.timeunits import MILLISECOND

#: The raced chain mix: one chain per planner regime (spray-tolerant,
#: spray-tolerant with rewrite, anonymous write-hot global, flow-keyed
#: write-hot global, designated drainer).
CHAINS: Tuple[Tuple[str, ...], ...] = (
    ("firewall", "nat", "traffic_monitor"),
    ("firewall", "load_balancer"),
    ("traffic_monitor", "redundancy_elimination"),
    ("dpi",),
    ("dpi_ooo", "traffic_monitor"),
)
#: Every sound fixed policy (the planner never emits ``naive``).
FIXED_MODES = ("rss", "sprayer", "prognic", "flowlet", "subset", "scr")
#: All seven fixed policies as raced. ``naive`` rides along for the
#: head-to-head but is excluded from the gap computation: it is unsound
#: (the audit footer shows it tripping the ownership auditor), so its
#: throughput is the rate of a *wrong* computation.
RACED_MODES = FIXED_MODES + ("naive",)
#: Synthetic compute appended to every chain (the Figure 6-8 cost dial).
NF_CYCLES = 10000
NUM_FLOWS = 64
NUM_CORES = 8
#: Offered load as a fraction of ``num_cores x single_core_rate_pps``.
#: That back-of-envelope rate excludes the per-packet rx/tx/steering
#: overheads a real run pays, so 0.62 of the formula lands at ~85% of
#: the chain's delivered aggregate capacity — high enough that a
#: placement concentrating flows on one core visibly drops, low enough
#: that balanced placements all meet the demand.
LOAD_FACTOR = 0.62
#: Payload bytes per data packet (DPI scans them, RE fingerprints them).
PAYLOAD_LEN = 128
#: 58 B of Ethernet+IP+TCP headers ahead of the payload.
FRAME_LEN = 58 + PAYLOAD_LEN


def chain_label(keys: Sequence[str]) -> str:
    return " > ".join(keys)


def raced_chain(keys: Sequence[str]) -> Tuple[str, ...]:
    """The chain as raced (and planned): with its compute stage."""
    return tuple(keys) + ("synthetic",)


def run_figp_scenario(scenario: Scenario) -> tuple:
    """The ``"chain_planner"`` kind runner: Scenario -> (values, dump).

    Kind-specific extras (riding in ``scenario.params``): ``chain`` (a
    tuple of registry keys — the NF is built here, in the worker, so
    scenarios stay picklable plain data), ``busy_cycles`` (synthetic
    stage cost) and ``payload_len``.
    """
    from repro.experiments import harness
    from repro.net.five_tuple import FiveTuple
    from repro.nfs.factory import VIP
    from repro.plan import build_chain

    kwargs = dict(scenario.extras)
    chain = tuple(kwargs.pop("chain"))
    busy_cycles = kwargs.pop("busy_cycles", 0)
    payload_len = kwargs.pop("payload_len", PAYLOAD_LEN)
    if scenario.duration is not None:
        kwargs["duration"] = scenario.duration
    if scenario.warmup is not None:
        kwargs["warmup"] = scenario.warmup
    if scenario.offered_pps is not None:
        kwargs["offered_pps"] = scenario.offered_pps
    overrides = {}
    if busy_cycles and "synthetic" in chain:
        overrides["synthetic"] = {"busy_cycles": busy_cycles}
    flows = None
    if "load_balancer" in chain:
        # Load-balanced traffic must target the VIP or it is dropped.
        flows = [
            FiveTuple(0x0A000000 | (i + 1), VIP, 20000 + i, 80, 6)
            for i in range(scenario.num_flows)
        ]
    result = harness.run_open_loop(
        scenario.mode,
        0,
        num_flows=scenario.num_flows,
        seed=scenario.seed,
        num_cores=scenario.num_cores,
        frame_len=scenario.frame_len,
        burst=scenario.burst,
        nf=build_chain(chain, **overrides),
        payload_len=payload_len,
        flows=flows,
        **kwargs,
    )
    summary = result.engine_summary
    values = {
        "rate_mpps": result.rate_mpps,
        "rate_gbps": result.rate_gbps,
        "p99_latency_us": result.p99_latency_us,
        "queue_drops": summary.get("rx_dropped_queue_full", 0),
        "flow_entries": summary.get("flow_entries", 0),
    }
    return values, result.telemetry


def run_figp(
    duration: int = 8 * MILLISECOND,
    warmup: int = 2 * MILLISECOND,
    seed: int = 1,
    num_cores: int = NUM_CORES,
    nf_cycles: int = NF_CYCLES,
    num_flows: int = NUM_FLOWS,
    load_factor: float = LOAD_FACTOR,
    runner: Optional[SweepRunner] = None,
) -> Dict[str, List[Dict[str, object]]]:
    """``{"throughput": rows, "p99": rows}`` — one row per chain.

    Throughput rows carry every raced mode's rate, the planner's choice,
    and the planner's gap to the best *sound* fixed policy (the
    acceptance bar); p99 rows carry the matching latency picture.
    """
    from repro.plan import plan_chain

    runner = default_runner(runner)
    offered = load_factor * num_cores * CostModel().single_core_rate_pps(nf_cycles)
    points = [
        Scenario.make(
            "chain_planner",
            label="figP",
            mode=mode,
            num_flows=num_flows,
            num_cores=num_cores,
            offered_pps=offered,
            duration=duration,
            warmup=warmup,
            seed=seed,
            frame_len=FRAME_LEN,
            chain=raced_chain(keys),
            busy_cycles=nf_cycles,
            # naive is raced for the head-to-head but never audited
            # strictly: it is the known-unsound mode, and a strict
            # (raising) auditor would kill its run before the window.
            **({"strict_checks": False} if mode == "naive" else {}),
        )
        for keys in CHAINS
        for mode in RACED_MODES
    ]
    by_point = {
        (r.scenario.extras["chain"], r.scenario.mode): r.values
        for r in runner.run(points)
    }
    rows: List[Dict[str, object]] = []
    p99_rows: List[Dict[str, object]] = []
    for keys in CHAINS:
        plan = plan_chain(raced_chain(keys))
        values = {mode: by_point[(raced_chain(keys), mode)] for mode in RACED_MODES}
        rates = {mode: values[mode]["rate_mpps"] for mode in RACED_MODES}
        # The planner row IS the fixed row of the planned mode — same
        # scenario, same seed — so the comparison is exact, not a rerun.
        planner_mpps = rates[plan.mode]
        best_mode = max(FIXED_MODES, key=lambda mode: rates[mode])
        best_mpps = rates[best_mode]
        gap_pct = 100.0 * (best_mpps - planner_mpps) / best_mpps if best_mpps else 0.0
        row: Dict[str, object] = {"chain": chain_label(keys)}
        p99_row: Dict[str, object] = {"chain": chain_label(keys)}
        for mode in RACED_MODES:
            row[f"{mode}_mpps"] = rates[mode]
            p99_row[f"{mode}_us"] = values[mode]["p99_latency_us"]
        row["planned"] = plan.mode
        row["gap_pct"] = gap_pct
        p99_row["planned"] = plan.mode
        rows.append(row)
        p99_rows.append(p99_row)
    return {"throughput": rows, "p99": p99_rows}


def audit_lines(quick: bool = False) -> List[str]:
    """Per-chain plan audits for the figure footer.

    The planned mode must count zero ownership violations over a real
    connection drive; ``naive`` (never planned) is the negative control
    that must count some.
    """
    from repro.plan import audit_chain, plan_chain

    flows, per_flow = (8, 10) if quick else (16, 20)
    lines = []
    for keys in CHAINS:
        chain = raced_chain(keys)
        plan = plan_chain(chain)
        planned = audit_chain(chain, plan.mode, num_flows=flows, packets_per_flow=per_flow)
        naive = audit_chain(chain, "naive", num_flows=flows, packets_per_flow=per_flow)
        lines.append(
            f"{chain_label(keys)}: planned {plan.mode} audits "
            f"{planned.violations} ownership violations "
            f"({planned.writes} writes, {planned.forwarded} forwarded); "
            f"naive control trips {naive.violations}"
        )
    return lines


def main(
    runner: Optional[SweepRunner] = None,
    seeds: Optional[Sequence[int]] = None,
    quick: bool = False,
) -> None:
    runner = default_runner(runner)
    kwargs = dict(duration=3 * MILLISECOND, warmup=1 * MILLISECOND) if quick else {}
    if seeds:
        kwargs["seed"] = seeds[0]
    panels = run_figp(runner=runner, **kwargs)
    print(format_table(
        panels["throughput"],
        title=f"Figure P.a: planner choice vs the seven fixed policies, "
              f"throughput ({NF_CYCLES}-cycle compute stage)",
    ))
    print()
    print(format_table(
        panels["p99"],
        title="Figure P.b: same race, p99 latency (us)",
    ))
    worst = max(panels["throughput"], key=lambda row: row["gap_pct"])
    print(f"\n-- worst planner gap to best sound fixed policy: "
          f"{worst['gap_pct']:.2f}% on {worst['chain']}")
    for line in audit_lines(quick=quick):
        print(f"-- {line}")


if __name__ == "__main__":
    main()
