"""Declarative measurement points and sweeps.

Every paper figure is a sweep over (axis value x series x seed) where
each point is an independent single-threaded simulation. Before this
module existed, each figure open-coded the same nested loop with its
own copy of the seed-aggregation helper and strictly serial execution.
Now a figure *declares* its sweep:

- :class:`Scenario` — one fully-specified measurement point (kind,
  mode, NF cost, flow count, duration, seed, config kwargs). Scenarios
  are frozen, picklable plain data, so a process-pool worker can
  execute one and ship the result (metrics + telemetry dump) back
  through the future.
- :class:`Series` — one curve of a figure: a column label plus the
  scenario overrides that distinguish it (usually just the steering
  mode, ``rss`` vs ``sprayer``).
- :class:`Sweep` — axis values x series x seeds, expanded to scenarios
  in a canonical order, with per-point seed derivation that depends
  only on (base seed, axis value) — never on position — so results are
  independent of execution order, reordering, and subsetting.

Execution lives in :mod:`repro.experiments.runner`; this module is the
pure description layer plus :func:`run_scenario`, the single entry
point both backends call.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field, fields, replace
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.sim.timeunits import MILLISECOND

#: Pinned window of a capacity (saturation-rate) measurement; shared by
#: :func:`repro.experiments.harness.measure_capacity` and Figure 8.
CAPACITY_DURATION = 6 * MILLISECOND
CAPACITY_WARMUP = 2 * MILLISECOND


# -- scenarios -------------------------------------------------------------


@dataclass(frozen=True)
class Scenario:
    """One fully-specified measurement point.

    ``params`` holds kind-specific extras and engine config kwargs as a
    sorted tuple of pairs so the dataclass stays hashable and picklable.
    ``duration``/``warmup`` of ``None`` mean "the kind's default".
    """

    kind: str
    mode: str = "sprayer"
    nf_cycles: int = 0
    num_flows: int = 1
    duration: Optional[int] = None
    warmup: Optional[int] = None
    seed: int = 1
    num_cores: int = 8
    offered_pps: Optional[float] = None
    frame_len: int = 64
    burst: Optional[int] = None
    #: Experiment label carried into telemetry records ("fig6a", ...).
    label: str = ""
    params: Tuple[Tuple[str, Any], ...] = ()

    @classmethod
    def make(cls, kind: str, **kwargs) -> "Scenario":
        """Build a scenario, routing unknown kwargs into ``params``."""
        extra = dict(kwargs.pop("params", ()) or ())
        known = {f.name for f in fields(cls)} - {"params"}
        direct = {k: v for k, v in kwargs.items() if k in known}
        extra.update({k: v for k, v in kwargs.items() if k not in known})
        return cls(kind=kind, params=tuple(sorted(extra.items())), **direct)

    def with_(self, **overrides) -> "Scenario":
        """A copy with field overrides; non-field keys merge into params."""
        known = {f.name for f in fields(self)} - {"params"}
        direct = {k: v for k, v in overrides.items() if k in known}
        extra = dict(self.params)
        extra.update({k: v for k, v in overrides.items() if k not in known})
        return replace(self, params=tuple(sorted(extra.items())), **direct)

    @property
    def extras(self) -> Dict[str, Any]:
        return dict(self.params)


@dataclass
class PointResult:
    """What one scenario produced: extracted metrics and, when the run
    was executed with capture enabled, the engine's telemetry record."""

    scenario: Scenario
    values: Dict[str, Any]
    telemetry: Optional[Dict[str, Any]] = None


# -- kind registry ---------------------------------------------------------
#
# Each kind runner executes a scenario and returns (values, engine_dump).
# Runners import the harness (and figure modules) lazily so this module
# stays import-light and cycle-free; workers only pay for what they run.


def _window_kwargs(scenario: Scenario) -> Dict[str, int]:
    kwargs: Dict[str, int] = {}
    if scenario.duration is not None:
        kwargs["duration"] = scenario.duration
    if scenario.warmup is not None:
        kwargs["warmup"] = scenario.warmup
    return kwargs


def _run_open_loop(scenario: Scenario):
    from repro.experiments import harness

    kwargs = dict(scenario.extras)
    kwargs.update(_window_kwargs(scenario))
    if scenario.offered_pps is not None:
        kwargs["offered_pps"] = scenario.offered_pps
    result = harness.run_open_loop(
        scenario.mode,
        scenario.nf_cycles,
        num_flows=scenario.num_flows,
        seed=scenario.seed,
        num_cores=scenario.num_cores,
        frame_len=scenario.frame_len,
        burst=scenario.burst,
        **kwargs,
    )
    values = {
        "rate_mpps": result.rate_mpps,
        "rate_gbps": result.rate_gbps,
        "p99_latency_us": result.p99_latency_us,
    }
    return values, result.telemetry


def _run_capacity(scenario: Scenario):
    """Saturation rate: an open-loop run at line rate, pinned window."""
    pinned = scenario.with_(
        kind="open_loop",
        duration=scenario.duration if scenario.duration is not None else CAPACITY_DURATION,
        warmup=scenario.warmup if scenario.warmup is not None else CAPACITY_WARMUP,
        offered_pps=None,
    )
    values, dump = _run_open_loop(pinned)
    values["pps"] = values["rate_mpps"] * 1e6
    return values, dump


def _run_tcp(scenario: Scenario):
    from repro.experiments import harness
    from repro.metrics.fairness import jain_index

    kwargs = dict(scenario.extras)
    kwargs.update(_window_kwargs(scenario))
    result = harness.run_tcp(
        scenario.mode,
        scenario.nf_cycles,
        num_flows=scenario.num_flows,
        seed=scenario.seed,
        num_cores=scenario.num_cores,
        **kwargs,
    )
    values = {
        "total_goodput_gbps": result.total_goodput_gbps,
        "jain": jain_index(list(result.per_flow_goodput_bps.values())),
        "retransmissions": result.retransmissions,
    }
    return values, result.telemetry


def _run_nf_verify(scenario: Scenario):
    from repro.experiments import table1

    result = table1.verify_nf(scenario.extras["nf_key"])
    telemetry = result.pop("telemetry", {})
    return result, telemetry


def _run_flow_size_cdf(scenario: Scenario):
    from repro.experiments import fig1

    values = fig1.compute(seed=scenario.seed, **scenario.extras)
    return values, {}


def _run_concurrency(scenario: Scenario):
    from repro.experiments import fig2

    values = fig2.compute(seed=scenario.seed, **scenario.extras)
    return values, {}


def _run_resilience(scenario: Scenario):
    from repro.faults import study

    return study.run_resilience_scenario(scenario)


def _run_scr_head_to_head(scenario: Scenario):
    from repro.experiments import figs

    return figs.run_figs_scenario(scenario)


def _run_cluster_serving(scenario: Scenario):
    from repro.experiments import figc

    return figc.run_figc_scenario(scenario)


def _run_chain_planner(scenario: Scenario):
    from repro.experiments import figp

    return figp.run_figp_scenario(scenario)


KIND_RUNNERS: Dict[str, Callable[[Scenario], Tuple[Dict[str, Any], Dict[str, Any]]]] = {
    "open_loop": _run_open_loop,
    "capacity": _run_capacity,
    "tcp": _run_tcp,
    "nf_verify": _run_nf_verify,
    "flow_size_cdf": _run_flow_size_cdf,
    "concurrency": _run_concurrency,
    "resilience": _run_resilience,
    "scr_head_to_head": _run_scr_head_to_head,
    "cluster_serving": _run_cluster_serving,
    "chain_planner": _run_chain_planner,
}


def register_kind(name: str, fn: Callable, replace: bool = False) -> None:
    """Register a custom scenario kind (benchmarks, examples).

    Raises ``ValueError`` on a name that is already registered unless
    ``replace=True`` — a silent overwrite of a built-in kind would make
    every sweep using that kind quietly measure something else.
    """
    if not replace and name in KIND_RUNNERS:
        raise ValueError(
            f"scenario kind {name!r} is already registered; pass replace=True "
            "to overwrite it deliberately"
        )
    KIND_RUNNERS[name] = fn


def run_scenario(scenario: Scenario, capture: bool = False) -> PointResult:
    """Execute one scenario in this process.

    This is the unit of work of both executor backends: the process
    pool pickles the scenario over, runs this function in the worker,
    and pickles the :class:`PointResult` back — which is how telemetry
    travels across process boundaries (a module-global capture list in
    the parent would never see a worker's engines).
    """
    try:
        runner = KIND_RUNNERS[scenario.kind]
    except KeyError:
        raise ValueError(
            f"unknown scenario kind {scenario.kind!r}; have {sorted(KIND_RUNNERS)}"
        ) from None
    values, dump = runner(scenario)
    telemetry = None
    if capture:
        telemetry = {
            "experiment": scenario.label or scenario.kind,
            "kind": scenario.kind,
            "mode": scenario.mode,
            "nf_cycles": scenario.nf_cycles,
            "num_flows": scenario.num_flows,
            "seed": scenario.seed,
            "telemetry": dump,
        }
    return PointResult(scenario=scenario, values=values, telemetry=telemetry)


# -- aggregation -----------------------------------------------------------


def aggregate_samples(
    row: Dict[str, Any],
    label: str,
    unit: str,
    samples: Sequence[float],
    agg: str = "mean_std",
) -> None:
    """The one shared seed-aggregation implementation.

    ``mean_std`` folds per-seed samples into a mean plus (when
    multi-seed) a standard deviation — the paper's "error bars represent
    one standard deviation". ``mean_min_max`` is Figure 9's variant
    (its error bars are min/max across runs).
    """
    column = f"{label}_{unit}" if unit else label
    row[column] = statistics.fmean(samples)
    if agg == "mean_std":
        if len(samples) > 1:
            row[f"{label}_std"] = statistics.stdev(samples)
    elif agg == "mean_min_max":
        row[f"{label}_min"] = min(samples)
        row[f"{label}_max"] = max(samples)
    else:
        raise ValueError(f"unknown aggregation {agg!r}")


# -- sweeps ----------------------------------------------------------------


@dataclass(frozen=True)
class Series:
    """One curve of a figure: a column label + scenario overrides."""

    label: str
    overrides: Tuple[Tuple[str, Any], ...] = ()

    @classmethod
    def make(cls, label: str, **overrides) -> "Series":
        return cls(label=label, overrides=tuple(sorted(overrides.items())))


def mode_series(modes: Sequence[str]) -> Tuple[Series, ...]:
    """The common case: one series per steering mode."""
    return tuple(Series.make(mode, mode=mode) for mode in modes)


@dataclass
class Sweep:
    """axis values x series x seeds, declared once, executed anywhere.

    ``axis`` names the row key; ``axis_field`` the scenario field (or
    config kwarg) the axis value binds to — defaults to ``axis``.
    ``seed_fn(base_seed, axis_value)`` derives each point's seed; it
    must be a function of the base seed and the axis value only, never
    of loop position, which is what makes rows independent of execution
    order (and lets a subset of the sweep reproduce the full sweep's
    values exactly).
    """

    name: str
    kind: str
    axis: str
    values: Sequence[Any]
    series: Sequence[Series] = ()
    modes: Sequence[str] = ()
    axis_field: Optional[str] = None
    seeds: Sequence[int] = (1,)
    seed_fn: Optional[Callable[[int, Any], int]] = None
    metric: str = ""
    unit: str = ""
    agg: str = "mean_std"
    base: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.modes and self.series:
            raise ValueError("give either modes or series, not both")
        if self.modes:
            self.series = mode_series(self.modes)
            self.modes = ()
        if not self.series:
            raise ValueError("a sweep needs at least one series")
        self.values = tuple(self.values)
        self.seeds = tuple(self.seeds)

    def point_seed(self, base_seed: int, value: Any) -> int:
        return self.seed_fn(base_seed, value) if self.seed_fn else base_seed

    def scenarios(self) -> List[Scenario]:
        """All points, in canonical (value, series, seed) order."""
        axis_field = self.axis_field or self.axis
        template = Scenario.make(self.kind, label=self.name, **dict(self.base))
        points = []
        for value in self.values:
            for series in self.series:
                overrides = dict(series.overrides)
                overrides[axis_field] = value
                for base_seed in self.seeds:
                    points.append(
                        template.with_(seed=self.point_seed(base_seed, value), **overrides)
                    )
        return points

    def __len__(self) -> int:
        return len(self.values) * len(self.series) * len(self.seeds)

    def rows(self, results: Sequence[PointResult]) -> List[Dict[str, Any]]:
        """Fold canonically-ordered point results into figure rows."""
        if len(results) != len(self):
            raise ValueError(f"expected {len(self)} results, got {len(results)}")
        rows: List[Dict[str, Any]] = []
        it = iter(results)
        for value in self.values:
            row: Dict[str, Any] = {self.axis: value}
            for series in self.series:
                samples = [next(it).values[self.metric] for _ in self.seeds]
                aggregate_samples(row, series.label, self.unit, samples, agg=self.agg)
            rows.append(row)
        return rows

    def run(self, runner=None) -> List[Dict[str, Any]]:
        """Execute through ``runner`` (default: serial in-process)."""
        from repro.experiments.runner import SweepRunner

        return (runner or SweepRunner()).run_sweep(self)
