"""Plain-text table rendering for experiment output."""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence


def _render(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def format_table(
    rows: Sequence[Dict[str, Any]],
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
) -> str:
    """Render row dicts as an aligned ASCII table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    cells = [[_render(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(row[i]) for row in cells)) for i, col in enumerate(columns)
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)
