"""Figure S (extension): state-compute replication vs Sprayer, head to head.

Not a figure from the paper — the comparison its §7 invites once the
``scr`` policy exists. Both designs spray data packets; they differ in
what happens to *connection* packets. Sprayer moves them over transfer
rings to the flow's designated core (one writer per flow); SCR
processes them wherever they land and lets every core replay the
per-flow packet-history log on demand. Figure S prices that difference
under the two regimes where it matters:

- **Panel A, SYN flood.** A constant-rate stream of fresh-flow SYNs,
  all rejection-sampled to hash to one *hotspot* core, rides on top of
  a normal data workload. Under RSS the hotspot queue takes the whole
  flood; under Sprayer every flood SYN is ring-transferred to the
  hotspot core (it is every flood flow's designated core), which
  saturates while seven cores idle. Under SCR the flood stays where
  the spray put it — each core absorbs ~1/N of it — and no replica
  ever replays a flood flow because no data packet follows.
- **Panel B, hotspot core crash.** The same workload, and mid-run the
  hotspot core dies. Sprayer re-sprays data traffic with one Flow
  Director reprogram, but the dead core's designated flows must
  re-home and their state is lost. SCR's recovery is the same spray
  reprogram and *nothing else*: every surviving replica already holds
  (or can replay) every flow, so no state moves and none is lost.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.designated import DesignatedCoreMap
from repro.cpu.costs import CostModel
from repro.experiments.format import format_table
from repro.experiments.runner import SweepRunner, default_runner
from repro.experiments.spec import Scenario
from repro.faults.plan import FaultPlan, core_crash
from repro.faults.study import ResilienceResult, run_resilience
from repro.net.five_tuple import FiveTuple
from repro.net.packet import make_tcp_packet
from repro.net.tcp_flags import SYN
from repro.nic.rss import SYMMETRIC_RSS_KEY, RssHasher
from repro.sim.engine import Simulator
from repro.sim.timeunits import MILLISECOND, SECOND
from repro.trafficgen.flows import random_tcp_flows

MODES = ("rss", "sprayer", "scr")
NF_CYCLES = 3000
NUM_FLOWS = 32
NUM_CORES = 8
#: Base data load as a fraction of healthy aggregate capacity.
LOAD_FACTOR = 0.5
#: Flood SYN rate as a fraction of ONE core's capacity — small against
#: the aggregate (so spreading absorbs it) but ruinous for whichever
#: single core has to take all of it.
FLOOD_FACTOR = 0.8


def hotspot_core(seed: int, num_flows: int = NUM_FLOWS, num_cores: int = NUM_CORES) -> int:
    """The core the flood targets: where RSS puts the workload's first flow.

    Anchoring the hotspot on a core that provably carries RSS data
    traffic keeps the comparison honest for the RSS baseline, and the
    same core is targeted (and, in Panel B, crashed) for every mode.
    """
    flow = random_tcp_flows(num_flows, random.Random(seed))[0]
    return RssHasher(num_cores, SYMMETRIC_RSS_KEY).queue_for(flow)


def hotspot_flows(
    count: int,
    target: int,
    num_cores: int,
    rng: random.Random,
    exclude: Sequence[FiveTuple] = (),
) -> List[FiveTuple]:
    """``count`` distinct flows that all hash to core ``target``.

    Rejection-sampled so that *both* the symmetric RSS queue and the
    designated-core map land on ``target`` — the flood then
    concentrates on the same core under RSS (queue) and under Sprayer
    (designated core), which is exactly what an adversary crafting
    five-tuples against a known hash key would arrange.
    """
    hasher = RssHasher(num_cores, SYMMETRIC_RSS_KEY)
    designated = DesignatedCoreMap(num_cores)
    flows: List[FiveTuple] = []
    seen: Set[FiveTuple] = set(exclude)
    while len(flows) < count:
        flow = random_tcp_flows(1, rng)[0]
        if flow in seen:
            continue
        if hasher.queue_for(flow) != target or designated.core_for(flow) != target:
            continue
        seen.add(flow)
        flows.append(flow)
    return flows


class SynFloodGenerator:
    """A constant-rate SYN flood over fresh (never-repeating) flows.

    Mirrors :class:`~repro.trafficgen.moongen.OpenLoopGenerator`'s
    burst scheduling; every packet is the first SYN of a brand-new
    flow, the attack shape that makes stateful NFs allocate state at
    the flood rate.
    """

    def __init__(self, sim: Simulator, sink, flows: Sequence[FiveTuple],
                 rate_pps: float, rng: random.Random, frame_len: int = 64):
        if rate_pps <= 0:
            raise ValueError(f"rate_pps must be positive, got {rate_pps}")
        if not flows:
            raise ValueError("need at least one flood flow")
        self.sim = sim
        self.sink = sink
        self.flows = list(flows)
        self.rng = rng
        self.frame_len = frame_len
        self.packets_sent = 0
        self._index = 0
        self._running = False
        self._burst = min(32, max(1, round(rate_pps * 15e-6)))
        self._interval = round(self._burst * SECOND / rate_pps)

    def start(self, at: Optional[int] = None) -> None:
        self._running = True
        self.sim.at(self.sim.now if at is None else at, self._tick)

    def stop(self) -> None:
        self._running = False

    def _tick(self) -> None:
        if not self._running:
            return
        now = self.sim.now
        flows = self.flows
        n = len(flows)
        for _ in range(self._burst):
            flow = flows[self._index % n]
            self._index += 1
            syn = make_tcp_packet(
                flow,
                flags=SYN,
                seq=0,
                tcp_checksum=self.rng.getrandbits(16),
                created_at=now,
                frame_len=self.frame_len,
            )
            self.sink(syn, now)
        self.packets_sent += self._burst
        self.sim.post_after(self._interval, self._tick)


def run_syn_flood(
    mode: str,
    nf_cycles: int,
    num_flows: int = NUM_FLOWS,
    offered_pps: float = 1e6,
    flood_pps: float = 1e5,
    target_core: Optional[int] = None,
    duration: int = 30 * MILLISECOND,
    warmup: int = 5 * MILLISECOND,
    seed: int = 1,
    num_cores: int = NUM_CORES,
    frame_len: int = 64,
    burst: Optional[int] = None,
    plan: Optional[FaultPlan] = None,
    bucket: int = MILLISECOND,
    resteer: bool = True,
    **config_kwargs,
) -> ResilienceResult:
    """One open-loop run with a targeted SYN flood riding on top.

    Thin composition over :func:`repro.faults.study.run_resilience`:
    the same wiring and measurement windows, plus a
    :class:`SynFloodGenerator` whose fresh flows are pinned to
    ``target_core`` (default: :func:`hotspot_core` of the seed). The
    flood flows are pre-generated — enough for the whole run, so no
    five-tuple ever repeats — and ride a dedicated RNG stream, keeping
    the base workload byte-identical to an unflooded run.
    """
    if target_core is None:
        target_core = hotspot_core(seed, num_flows, num_cores)
    base_flows = random_tcp_flows(num_flows, random.Random(seed))
    flood_rng = random.Random((seed << 16) ^ 0x5F00D)
    n_syns = int(flood_pps * duration / SECOND) + 64
    flood = hotspot_flows(n_syns, target_core, num_cores, flood_rng, exclude=base_flows)

    def attach_flood(sim: Simulator, ingress_send) -> SynFloodGenerator:
        generator = SynFloodGenerator(
            sim, ingress_send, flood, flood_pps, flood_rng, frame_len=frame_len
        )
        generator.start(at=0)
        return generator

    return run_resilience(
        mode,
        nf_cycles,
        num_flows=num_flows,
        offered_pps=offered_pps,
        duration=duration,
        warmup=warmup,
        seed=seed,
        num_cores=num_cores,
        frame_len=frame_len,
        burst=burst,
        plan=plan,
        bucket=bucket,
        resteer=resteer,
        extra_traffic=attach_flood,
        **config_kwargs,
    )


def run_figs_scenario(scenario) -> tuple:
    """The ``"scr_head_to_head"`` kind runner: Scenario -> (values, dump).

    Kind-specific extras (riding in ``scenario.params``): ``flood_pps``,
    ``target_core``, ``fault_plan``, ``bucket_ps``, ``resteer``.
    """
    kwargs = dict(scenario.extras)
    flood_pps = kwargs.pop("flood_pps")
    target = kwargs.pop("target_core", None)
    plan = kwargs.pop("fault_plan", None)
    bucket = kwargs.pop("bucket_ps", MILLISECOND)
    resteer = kwargs.pop("resteer", True)
    if scenario.duration is not None:
        kwargs["duration"] = scenario.duration
    if scenario.warmup is not None:
        kwargs["warmup"] = scenario.warmup
    if scenario.offered_pps is not None:
        kwargs["offered_pps"] = scenario.offered_pps
    result = run_syn_flood(
        scenario.mode,
        scenario.nf_cycles,
        num_flows=scenario.num_flows,
        flood_pps=flood_pps,
        target_core=target,
        seed=scenario.seed,
        num_cores=scenario.num_cores,
        frame_len=scenario.frame_len,
        burst=scenario.burst,
        plan=plan,
        bucket=bucket,
        resteer=resteer,
        **kwargs,
    )
    summary = result.engine_summary
    counters = summary.get("telemetry", {})
    values = {
        "rate_mpps": result.rate_mpps,
        "rate_gbps": result.rate_gbps,
        "p99_latency_us": result.p99_latency_us,
        "rx_dropped_queue_full": summary.get("rx_dropped_queue_full", 0),
        "rx_dropped_fault": summary.get("rx_dropped_fault", 0),
        "ring_drops": summary.get("ring_drops", 0),
        "fault_drops": summary.get("fault_drops", 0),
        "connection_packets": summary.get("connection_packets", 0),
        "flow_entries": summary.get("flow_entries", 0),
        "scr_log_depth": counters.get("scr.log.depth", 0),
        "recovery_ms": result.recovery_ms,
        "timeline": result.timeline,
        "fault_records": result.fault_records,
    }
    return values, result.telemetry


def run_figs(
    duration: int = 30 * MILLISECOND,
    warmup: int = 5 * MILLISECOND,
    fault_at: int = 12 * MILLISECOND,
    bucket: int = MILLISECOND,
    seed: int = 1,
    num_cores: int = NUM_CORES,
    nf_cycles: int = NF_CYCLES,
    num_flows: int = NUM_FLOWS,
    runner: Optional[SweepRunner] = None,
) -> Dict[str, List[Dict[str, object]]]:
    """``{"flood": rows, "crash": rows}`` — one row per mode per panel."""
    runner = default_runner(runner)
    per_core = CostModel().single_core_rate_pps(nf_cycles)
    offered = LOAD_FACTOR * num_cores * per_core
    flood = FLOOD_FACTOR * per_core
    target = hotspot_core(seed, num_flows, num_cores)
    plan = FaultPlan.of(core_crash(target, fault_at), seed=seed)
    common = dict(
        nf_cycles=nf_cycles, num_flows=num_flows, offered_pps=offered,
        duration=duration, warmup=warmup, seed=seed, num_cores=num_cores,
        flood_pps=flood, target_core=target, bucket_ps=bucket,
    )
    points = [
        Scenario.make("scr_head_to_head", label="figS-flood", mode=mode, **common)
        for mode in MODES
    ] + [
        Scenario.make(
            "scr_head_to_head", label="figS-crash", mode=mode,
            fault_plan=plan, **common,
        )
        for mode in MODES
    ]
    by_panel: Dict[str, Dict[str, Dict[str, object]]] = {"flood": {}, "crash": {}}
    for r in runner.run(points):
        panel = "crash" if r.scenario.label == "figS-crash" else "flood"
        by_panel[panel][r.scenario.mode] = r.values

    panels: Dict[str, List[Dict[str, object]]] = {}
    for panel, by_mode in by_panel.items():
        rows = []
        for mode in MODES:
            values = by_mode[mode]
            row = {
                "mode": mode,
                "fwd_mpps": values["rate_mpps"],
                "p99_us": values["p99_latency_us"],
                "queue_drops": values["rx_dropped_queue_full"],
                "ring_drops": values["ring_drops"],
                "fault_drops": values["fault_drops"] + values["rx_dropped_fault"],
            }
            if panel == "crash":
                row["recovery_ms"] = (
                    values["recovery_ms"] if values["recovery_ms"] is not None else -1.0
                )
            rows.append(row)
        panels[panel] = rows
    return panels


def _gap_line(rows: List[Dict[str, object]], panel: str) -> Optional[str]:
    by_mode = {row["mode"]: row for row in rows}
    scr, sprayer = by_mode.get("scr"), by_mode.get("sprayer")
    if not scr or not sprayer or not sprayer["fwd_mpps"] or not scr["p99_us"]:
        return None
    return (
        f"scr vs sprayer ({panel}): "
        f"{scr['fwd_mpps'] / sprayer['fwd_mpps']:.2f}x throughput, "
        f"{sprayer['p99_us'] / scr['p99_us']:.1f}x lower p99"
    )


def main(
    runner: Optional[SweepRunner] = None,
    seeds: Optional[Sequence[int]] = None,
    quick: bool = False,
) -> None:
    runner = default_runner(runner)
    kwargs = dict(
        duration=8 * MILLISECOND, warmup=2 * MILLISECOND, fault_at=4 * MILLISECOND,
    ) if quick else {}
    if seeds:
        kwargs["seed"] = seeds[0]
    panels = run_figs(runner=runner, **kwargs)
    print(format_table(
        panels["flood"],
        title=f"Figure S.a: targeted SYN flood at {FLOOD_FACTOR:.0%} of one "
              f"core's capacity ({LOAD_FACTOR:.0%} base load)",
    ))
    print()
    print(format_table(
        panels["crash"],
        title="Figure S.b: same flood, hotspot core crashes mid-run",
    ))
    for panel in ("flood", "crash"):
        line = _gap_line(panels[panel], panel)
        if line:
            print(("\n" if panel == "flood" else "") + line)


if __name__ == "__main__":
    main()
