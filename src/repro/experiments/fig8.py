"""Figure 8: 99th-percentile RTT at 70 % load, single flow.

For each NF cost, both systems are offered the same rate — 70 % of the
*minimal* processing rate (i.e. of whichever system is slower at that
cost, so neither saturates) — and the p99 of per-packet round-trip
latency is measured, wire legs included.

Paper shape: Sprayer's p99 latency is consistently *below* RSS's,
because a sprayed flow's packets are processed in parallel across
cores instead of queueing behind each other on one core; the gap grows
with the NF cost.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.experiments.format import format_table
from repro.experiments.harness import measure_capacity, run_open_loop
from repro.sim.timeunits import MILLISECOND

DEFAULT_CYCLES = (0, 1000, 2500, 5000, 7500, 10000)
MODES = ("rss", "sprayer")
LOAD_FACTOR = 0.7
#: Generator tx-burst size: MoonGen transmits in micro-bursts, and the
#: burst landing on one core is what separates RSS's latency (packets
#: queue behind their own flow) from Sprayer's (processed in parallel).
TX_BURST = 4


def run_fig8(
    cycles_sweep: Sequence[int] = DEFAULT_CYCLES,
    duration: int = 10 * MILLISECOND,
    warmup: int = 3 * MILLISECOND,
    seed: int = 1,
    num_cores: int = 8,
) -> List[Dict[str, float]]:
    """p99 RTT (us) vs. cycles at 70 % of the minimal processing rate."""
    rows = []
    for cycles in cycles_sweep:
        capacities = {
            mode: measure_capacity(mode, cycles, seed=seed, num_cores=num_cores)
            for mode in MODES
        }
        offered = LOAD_FACTOR * min(capacities.values())
        row: Dict[str, float] = {"cycles": cycles, "offered_mpps": offered / 1e6}
        for mode in MODES:
            result = run_open_loop(
                mode,
                cycles,
                num_flows=1,
                offered_pps=offered,
                duration=duration,
                warmup=warmup,
                seed=seed,
                num_cores=num_cores,
                burst=TX_BURST,
            )
            row[f"{mode}_p99_us"] = result.p99_latency_us
        rows.append(row)
    return rows


def main() -> None:
    print(format_table(
        run_fig8(),
        title="Figure 8: p99 RTT at 70% load (single flow, 64 B packets)",
    ))


if __name__ == "__main__":
    main()
