"""Figure 8: 99th-percentile RTT at 70 % load, single flow.

For each NF cost, both systems are offered the same rate — 70 % of the
*minimal* processing rate (i.e. of whichever system is slower at that
cost, so neither saturates) — and the p99 of per-packet round-trip
latency is measured, wire legs included.

Two scenario stages through the shared runner: a capacity sweep
(cycles x modes) establishes each point's offered rate, then the
latency scenarios run at 70 % of the per-cycle minimum. Each stage is
embarrassingly parallel; only the offered-rate computation sits between
them.

Paper shape: Sprayer's p99 latency is consistently *below* RSS's,
because a sprayed flow's packets are processed in parallel across
cores instead of queueing behind each other on one core; the gap grows
with the NF cost.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.format import format_table
from repro.experiments.runner import SweepRunner, default_runner
from repro.experiments.spec import Scenario
from repro.sim.timeunits import MILLISECOND

DEFAULT_CYCLES = (0, 1000, 2500, 5000, 7500, 10000)
MODES = ("rss", "sprayer")
LOAD_FACTOR = 0.7
#: Generator tx-burst size: MoonGen transmits in micro-bursts, and the
#: burst landing on one core is what separates RSS's latency (packets
#: queue behind their own flow) from Sprayer's (processed in parallel).
TX_BURST = 4


def run_fig8(
    cycles_sweep: Sequence[int] = DEFAULT_CYCLES,
    duration: int = 10 * MILLISECOND,
    warmup: int = 3 * MILLISECOND,
    seed: int = 1,
    num_cores: int = 8,
    runner: Optional[SweepRunner] = None,
) -> List[Dict[str, float]]:
    """p99 RTT (us) vs. cycles at 70 % of the minimal processing rate."""
    runner = default_runner(runner)
    cycles_sweep = tuple(cycles_sweep)

    capacity_points = [
        Scenario.make("capacity", label="fig8", mode=mode, nf_cycles=cycles,
                      seed=seed, num_cores=num_cores)
        for cycles in cycles_sweep
        for mode in MODES
    ]
    capacity = {
        (r.scenario.nf_cycles, r.scenario.mode): r.values["pps"]
        for r in runner.run(capacity_points)
    }
    offered = {
        cycles: LOAD_FACTOR * min(capacity[(cycles, mode)] for mode in MODES)
        for cycles in cycles_sweep
    }

    latency_points = [
        Scenario.make("open_loop", label="fig8", mode=mode, nf_cycles=cycles,
                      num_flows=1, offered_pps=offered[cycles], duration=duration,
                      warmup=warmup, seed=seed, num_cores=num_cores, burst=TX_BURST)
        for cycles in cycles_sweep
        for mode in MODES
    ]
    p99 = {
        (r.scenario.nf_cycles, r.scenario.mode): r.values["p99_latency_us"]
        for r in runner.run(latency_points)
    }

    rows = []
    for cycles in cycles_sweep:
        row: Dict[str, float] = {"cycles": cycles, "offered_mpps": offered[cycles] / 1e6}
        for mode in MODES:
            row[f"{mode}_p99_us"] = p99[(cycles, mode)]
        rows.append(row)
    return rows


def main(
    runner: Optional[SweepRunner] = None,
    seeds: Optional[Sequence[int]] = None,
    quick: bool = False,
) -> None:
    runner = default_runner(runner)
    kwargs = dict(cycles_sweep=(0, 5000, 10000), duration=6 * MILLISECOND,
                  warmup=2 * MILLISECOND) if quick else {}
    if seeds:
        kwargs["seed"] = seeds[0]
    print(format_table(
        run_fig8(runner=runner, **kwargs),
        title="Figure 8: p99 RTT at 70% load (single flow, 64 B packets)",
    ))


if __name__ == "__main__":
    main()
