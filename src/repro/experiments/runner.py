"""Sweep execution: serial and process-parallel backends.

Every scenario is an independent single-threaded simulation, so a sweep
is embarrassingly parallel. :class:`SweepRunner` executes a scenario
list either in-process (``jobs=1``) or on a
:class:`~concurrent.futures.ProcessPoolExecutor` (``jobs>1``), and in
both cases returns results **in canonical sweep order** — futures are
collected in submission order, not completion order — so rows and
aggregates are byte-identical across backends and job counts.

Telemetry rides inside each :class:`~repro.experiments.spec.PointResult`
rather than in any module-global list: a worker process's engines are
invisible to the parent, so the dump must travel back through the
future. The runner then appends the records to :attr:`telemetry` in the
same canonical order.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Any, Dict, Iterable, List, Optional

from repro.experiments.spec import PointResult, Scenario, Sweep, run_scenario


class SweepRunner:
    """Executes scenarios; owns the run's collected telemetry records."""

    def __init__(self, jobs: int = 1, capture_telemetry: bool = False):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.capture = capture_telemetry
        #: Telemetry records of every captured run, in canonical order.
        self.telemetry: List[Dict[str, Any]] = []

    def run(self, scenarios: Iterable[Scenario]) -> List[PointResult]:
        """Execute scenarios, returning results in input order."""
        scenarios = list(scenarios)
        if self.jobs == 1 or len(scenarios) <= 1:
            results = [run_scenario(s, capture=self.capture) for s in scenarios]
        else:
            workers = min(self.jobs, len(scenarios))
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = [
                    pool.submit(run_scenario, s, self.capture) for s in scenarios
                ]
                results = [f.result() for f in futures]
        if self.capture:
            self.telemetry.extend(
                r.telemetry for r in results if r.telemetry is not None
            )
        return results

    def run_sweep(self, sweep: Sweep) -> List[Dict[str, Any]]:
        """Execute a declared sweep and fold results into figure rows."""
        return sweep.rows(self.run(sweep.scenarios()))


def default_runner(runner: Optional[SweepRunner]) -> SweepRunner:
    """The serial fallback figure runners use when none is passed."""
    return runner if runner is not None else SweepRunner()
