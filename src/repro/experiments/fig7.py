"""Figure 7: performance vs. number of concurrent flows at 10,000 cycles.

(a) processing rate and (b) TCP throughput as the flow count grows from
1 to 128 ("sources and destinations change randomly at every
execution"), with the synthetic NF fixed at 10,000 cycles/packet.

Paper shapes: Sprayer is flat — its performance does not depend on the
flow count. RSS ramps up as more flows spread over more cores and
approaches (and in the paper slightly exceeds) Sprayer at ~100 flows,
where Sprayer pays its reordering tax.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.fig6 import aggregate_seeds
from repro.experiments.format import format_table
from repro.experiments.harness import run_open_loop, run_tcp
from repro.sim.timeunits import MILLISECOND

DEFAULT_FLOWS = (1, 2, 4, 8, 16, 32, 64, 128)
DEFAULT_CYCLES = 10000
MODES = ("rss", "sprayer")


def run_fig7a(
    flow_sweep: Sequence[int] = DEFAULT_FLOWS,
    nf_cycles: int = DEFAULT_CYCLES,
    duration: int = 10 * MILLISECOND,
    warmup: int = 3 * MILLISECOND,
    seed: int = 1,
    num_cores: int = 8,
    seeds: Optional[Sequence[int]] = None,
) -> List[Dict[str, float]]:
    """Processing rate (Mpps) vs. flow count, 64 B packets."""
    seeds = list(seeds) if seeds else [seed]
    rows = []
    for flows in flow_sweep:
        row: Dict[str, float] = {"flows": flows}
        for mode in MODES:
            samples = [
                run_open_loop(
                    mode,
                    nf_cycles,
                    num_flows=flows,
                    duration=duration,
                    warmup=warmup,
                    seed=s + flows,  # fresh random endpoints per point
                    num_cores=num_cores,
                ).rate_mpps
                for s in seeds
            ]
            aggregate_seeds(row, mode, "mpps", samples)
        rows.append(row)
    return rows


def run_fig7b(
    flow_sweep: Sequence[int] = DEFAULT_FLOWS,
    nf_cycles: int = DEFAULT_CYCLES,
    duration: int = 150 * MILLISECOND,
    warmup: Optional[int] = None,
    seed: int = 1,
    num_cores: int = 8,
    seeds: Optional[Sequence[int]] = None,
) -> List[Dict[str, float]]:
    """TCP goodput (Gbps) vs. flow count."""
    seeds = list(seeds) if seeds else [seed]
    rows = []
    for flows in flow_sweep:
        row: Dict[str, float] = {"flows": flows}
        for mode in MODES:
            samples = [
                run_tcp(
                    mode,
                    nf_cycles,
                    num_flows=flows,
                    duration=duration,
                    warmup=warmup,
                    seed=s + flows,
                    num_cores=num_cores,
                ).total_goodput_gbps
                for s in seeds
            ]
            aggregate_seeds(row, mode, "gbps", samples)
        rows.append(row)
    return rows


def main() -> None:
    print(format_table(run_fig7a(), title="Figure 7(a): processing rate vs #flows (10,000 cycles/packet)"))
    print()
    print(format_table(run_fig7b(), title="Figure 7(b): TCP throughput vs #flows (10,000 cycles/packet)"))


if __name__ == "__main__":
    main()
