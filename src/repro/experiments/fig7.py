"""Figure 7: performance vs. number of concurrent flows at 10,000 cycles.

(a) processing rate and (b) TCP throughput as the flow count grows from
1 to 128 ("sources and destinations change randomly at every
execution"), with the synthetic NF fixed at 10,000 cycles/packet.

Paper shapes: Sprayer is flat — its performance does not depend on the
flow count. RSS ramps up as more flows spread over more cores and
approaches (and in the paper slightly exceeds) Sprayer at ~100 flows,
where Sprayer pays its reordering tax.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.format import format_table
from repro.experiments.runner import SweepRunner, default_runner
from repro.experiments.spec import Sweep
from repro.sim.timeunits import MILLISECOND

DEFAULT_FLOWS = (1, 2, 4, 8, 16, 32, 64, 128)
QUICK_FLOWS = (1, 16, 128)
DEFAULT_CYCLES = 10000
MODES = ("rss", "sprayer")


def _fresh_endpoints(seed: int, flows: int) -> int:
    """Fresh random endpoints per flow-count point (position-free)."""
    return seed + flows


def fig7a_sweep(
    flow_sweep: Sequence[int] = DEFAULT_FLOWS,
    nf_cycles: int = DEFAULT_CYCLES,
    duration: int = 10 * MILLISECOND,
    warmup: int = 3 * MILLISECOND,
    seed: int = 1,
    num_cores: int = 8,
    seeds: Optional[Sequence[int]] = None,
) -> Sweep:
    """Processing rate (Mpps) vs. flow count, 64 B packets."""
    return Sweep(
        name="fig7a",
        kind="open_loop",
        axis="flows",
        axis_field="num_flows",
        values=flow_sweep,
        modes=MODES,
        seeds=tuple(seeds) if seeds else (seed,),
        seed_fn=_fresh_endpoints,
        metric="rate_mpps",
        unit="mpps",
        base=dict(nf_cycles=nf_cycles, duration=duration, warmup=warmup,
                  num_cores=num_cores),
    )


def fig7b_sweep(
    flow_sweep: Sequence[int] = DEFAULT_FLOWS,
    nf_cycles: int = DEFAULT_CYCLES,
    duration: int = 150 * MILLISECOND,
    warmup: Optional[int] = None,
    seed: int = 1,
    num_cores: int = 8,
    seeds: Optional[Sequence[int]] = None,
) -> Sweep:
    """TCP goodput (Gbps) vs. flow count."""
    return Sweep(
        name="fig7b",
        kind="tcp",
        axis="flows",
        axis_field="num_flows",
        values=flow_sweep,
        modes=MODES,
        seeds=tuple(seeds) if seeds else (seed,),
        seed_fn=_fresh_endpoints,
        metric="total_goodput_gbps",
        unit="gbps",
        base=dict(nf_cycles=nf_cycles, duration=duration, warmup=warmup,
                  num_cores=num_cores),
    )


def run_fig7a(
    flow_sweep: Sequence[int] = DEFAULT_FLOWS,
    nf_cycles: int = DEFAULT_CYCLES,
    duration: int = 10 * MILLISECOND,
    warmup: int = 3 * MILLISECOND,
    seed: int = 1,
    num_cores: int = 8,
    seeds: Optional[Sequence[int]] = None,
    runner: Optional[SweepRunner] = None,
) -> List[Dict[str, float]]:
    return fig7a_sweep(
        flow_sweep, nf_cycles, duration, warmup, seed, num_cores, seeds
    ).run(runner)


def run_fig7b(
    flow_sweep: Sequence[int] = DEFAULT_FLOWS,
    nf_cycles: int = DEFAULT_CYCLES,
    duration: int = 150 * MILLISECOND,
    warmup: Optional[int] = None,
    seed: int = 1,
    num_cores: int = 8,
    seeds: Optional[Sequence[int]] = None,
    runner: Optional[SweepRunner] = None,
) -> List[Dict[str, float]]:
    return fig7b_sweep(
        flow_sweep, nf_cycles, duration, warmup, seed, num_cores, seeds
    ).run(runner)


def main(
    runner: Optional[SweepRunner] = None,
    seeds: Optional[Sequence[int]] = None,
    quick: bool = False,
) -> None:
    runner = default_runner(runner)
    a_kwargs = dict(flow_sweep=QUICK_FLOWS, duration=4 * MILLISECOND,
                    warmup=1 * MILLISECOND) if quick else {}
    b_kwargs = dict(flow_sweep=(1, 8), duration=60 * MILLISECOND) if quick else {}
    print(format_table(run_fig7a(runner=runner, seeds=seeds, **a_kwargs),
                       title="Figure 7(a): processing rate vs #flows (10,000 cycles/packet)"))
    print()
    print(format_table(run_fig7b(runner=runner, seeds=seeds, **b_kwargs),
                       title="Figure 7(b): TCP throughput vs #flows (10,000 cycles/packet)"))


if __name__ == "__main__":
    main()
