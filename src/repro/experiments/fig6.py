"""Figure 6: single-flow performance vs. per-packet NF cost.

(a) processing rate (64 B packets at line rate, open loop) and
(b) TCP throughput (one iperf-style connection), as the synthetic NF's
busy-loop budget sweeps 0..10,000 cycles, for RSS vs. Sprayer on
8 cores.

Paper shapes to reproduce: RSS is pinned to one core's rate throughout;
Sprayer is capped near 10 Mpps at low cycle counts (the 82599 Flow
Director limitation) and ~8x RSS at high cycle counts; TCP throughput
holds near line rate for Sprayer across the sweep while RSS collapses
once one core can no longer carry the connection.
"""

from __future__ import annotations

import statistics
from typing import Dict, List, Optional, Sequence

from repro.experiments.format import format_table
from repro.experiments.harness import run_open_loop, run_tcp
from repro.sim.timeunits import MILLISECOND

#: The sweep of per-packet busy-loop budgets (paper: 0..10,000).
DEFAULT_CYCLES = (0, 1000, 2500, 5000, 7500, 10000)
MODES = ("rss", "sprayer")


def aggregate_seeds(row: Dict[str, float], mode: str, unit: str, samples: List[float]) -> None:
    """Fold per-seed samples into mean (+ stddev when multi-seed) —
    the paper's 'error bars represent one standard deviation'."""
    row[f"{mode}_{unit}"] = statistics.fmean(samples)
    if len(samples) > 1:
        row[f"{mode}_std"] = statistics.stdev(samples)


def run_fig6a(
    cycles_sweep: Sequence[int] = DEFAULT_CYCLES,
    duration: int = 8 * MILLISECOND,
    warmup: int = 2 * MILLISECOND,
    seed: int = 1,
    num_cores: int = 8,
    seeds: Optional[Sequence[int]] = None,
) -> List[Dict[str, float]]:
    """Processing rate (Mpps) vs. cycles, single flow, 64 B packets."""
    seeds = list(seeds) if seeds else [seed]
    rows = []
    for cycles in cycles_sweep:
        row: Dict[str, float] = {"cycles": cycles}
        for mode in MODES:
            samples = [
                run_open_loop(
                    mode,
                    cycles,
                    num_flows=1,
                    duration=duration,
                    warmup=warmup,
                    seed=s,
                    num_cores=num_cores,
                ).rate_mpps
                for s in seeds
            ]
            aggregate_seeds(row, mode, "mpps", samples)
        rows.append(row)
    return rows


def run_fig6b(
    cycles_sweep: Sequence[int] = DEFAULT_CYCLES,
    duration: int = 120 * MILLISECOND,
    warmup: Optional[int] = None,
    seed: int = 1,
    num_cores: int = 8,
    seeds: Optional[Sequence[int]] = None,
) -> List[Dict[str, float]]:
    """TCP goodput (Gbps) vs. cycles, single connection."""
    seeds = list(seeds) if seeds else [seed]
    rows = []
    for cycles in cycles_sweep:
        row: Dict[str, float] = {"cycles": cycles}
        for mode in MODES:
            samples = [
                run_tcp(
                    mode,
                    cycles,
                    num_flows=1,
                    duration=duration,
                    warmup=warmup,
                    seed=s,
                    num_cores=num_cores,
                ).total_goodput_gbps
                for s in seeds
            ]
            aggregate_seeds(row, mode, "gbps", samples)
        rows.append(row)
    return rows


def main() -> None:
    print(format_table(run_fig6a(), title="Figure 6(a): processing rate vs cycles/packet (single flow, 64 B)"))
    print()
    print(format_table(run_fig6b(), title="Figure 6(b): TCP throughput vs cycles/packet (single flow)"))


if __name__ == "__main__":
    main()
