"""Figure 6: single-flow performance vs. per-packet NF cost.

(a) processing rate (64 B packets at line rate, open loop) and
(b) TCP throughput (one iperf-style connection), as the synthetic NF's
busy-loop budget sweeps 0..10,000 cycles, for RSS vs. Sprayer on
8 cores.

Paper shapes to reproduce: RSS is pinned to one core's rate throughout;
Sprayer is capped near 10 Mpps at low cycle counts (the 82599 Flow
Director limitation) and ~8x RSS at high cycle counts; TCP throughput
holds near line rate for Sprayer across the sweep while RSS collapses
once one core can no longer carry the connection.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.format import format_table
from repro.experiments.runner import SweepRunner, default_runner
from repro.experiments.spec import Sweep
from repro.sim.timeunits import MILLISECOND

#: The sweep of per-packet busy-loop budgets (paper: 0..10,000).
DEFAULT_CYCLES = (0, 1000, 2500, 5000, 7500, 10000)
QUICK_CYCLES = (0, 10000)
MODES = ("rss", "sprayer")


def fig6a_sweep(
    cycles_sweep: Sequence[int] = DEFAULT_CYCLES,
    duration: int = 8 * MILLISECOND,
    warmup: int = 2 * MILLISECOND,
    seed: int = 1,
    num_cores: int = 8,
    seeds: Optional[Sequence[int]] = None,
) -> Sweep:
    """Processing rate (Mpps) vs. cycles, single flow, 64 B packets."""
    return Sweep(
        name="fig6a",
        kind="open_loop",
        axis="cycles",
        axis_field="nf_cycles",
        values=cycles_sweep,
        modes=MODES,
        seeds=tuple(seeds) if seeds else (seed,),
        metric="rate_mpps",
        unit="mpps",
        base=dict(num_flows=1, duration=duration, warmup=warmup, num_cores=num_cores),
    )


def fig6b_sweep(
    cycles_sweep: Sequence[int] = DEFAULT_CYCLES,
    duration: int = 120 * MILLISECOND,
    warmup: Optional[int] = None,
    seed: int = 1,
    num_cores: int = 8,
    seeds: Optional[Sequence[int]] = None,
) -> Sweep:
    """TCP goodput (Gbps) vs. cycles, single connection."""
    return Sweep(
        name="fig6b",
        kind="tcp",
        axis="cycles",
        axis_field="nf_cycles",
        values=cycles_sweep,
        modes=MODES,
        seeds=tuple(seeds) if seeds else (seed,),
        metric="total_goodput_gbps",
        unit="gbps",
        base=dict(num_flows=1, duration=duration, warmup=warmup, num_cores=num_cores),
    )


def run_fig6a(
    cycles_sweep: Sequence[int] = DEFAULT_CYCLES,
    duration: int = 8 * MILLISECOND,
    warmup: int = 2 * MILLISECOND,
    seed: int = 1,
    num_cores: int = 8,
    seeds: Optional[Sequence[int]] = None,
    runner: Optional[SweepRunner] = None,
) -> List[Dict[str, float]]:
    return fig6a_sweep(cycles_sweep, duration, warmup, seed, num_cores, seeds).run(runner)


def run_fig6b(
    cycles_sweep: Sequence[int] = DEFAULT_CYCLES,
    duration: int = 120 * MILLISECOND,
    warmup: Optional[int] = None,
    seed: int = 1,
    num_cores: int = 8,
    seeds: Optional[Sequence[int]] = None,
    runner: Optional[SweepRunner] = None,
) -> List[Dict[str, float]]:
    return fig6b_sweep(cycles_sweep, duration, warmup, seed, num_cores, seeds).run(runner)


def main(
    runner: Optional[SweepRunner] = None,
    seeds: Optional[Sequence[int]] = None,
    quick: bool = False,
) -> None:
    runner = default_runner(runner)
    a_kwargs = dict(cycles_sweep=QUICK_CYCLES, duration=4 * MILLISECOND,
                    warmup=1 * MILLISECOND) if quick else {}
    b_kwargs = dict(cycles_sweep=QUICK_CYCLES, duration=40 * MILLISECOND) if quick else {}
    print(format_table(run_fig6a(runner=runner, seeds=seeds, **a_kwargs),
                       title="Figure 6(a): processing rate vs cycles/packet (single flow, 64 B)"))
    print()
    print(format_table(run_fig6b(runner=runner, seeds=seeds, **b_kwargs),
                       title="Figure 6(b): TCP throughput vs cycles/packet (single flow)"))


if __name__ == "__main__":
    main()
