"""Shared experiment plumbing.

Two wirings, mirroring the two measurement setups of §5:

- :func:`run_open_loop` — the MoonGen setup: a constant-rate 64 B
  stream through the middlebox, counting egress packets (processing
  rate) and per-packet latency (generator timestamp to return-side
  arrival, both wire legs included).
- :func:`run_tcp` — the iperf3 setup: closed-loop TCP flows through
  the middlebox (see :class:`repro.trafficgen.iperf.TcpTestbed`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.batch_spine import ArrivalStager
from repro.core.config import MiddleboxConfig
from repro.core.engine import MiddleboxEngine
from repro.core.nf import NetworkFunction
from repro.metrics.latency import LatencyRecorder
from repro.metrics.throughput import RateMeter
from repro.net.packet import Packet
from repro.nfs.synthetic import SyntheticNf
from repro.nic.link import Link
from repro.sim.engine import Simulator
from repro.sim.timeunits import MICROSECOND, MILLISECOND
from repro.tcpstack.endpoint import TcpConfig
from repro.trafficgen.flows import random_tcp_flows
from repro.trafficgen.iperf import TcpTestbed, TcpTestbedResult
from repro.trafficgen.moongen import LINE_RATE_64B_PPS, OpenLoopGenerator


@dataclass
class OpenLoopResult:
    """Measured rates and latencies of one open-loop run."""

    mode: str
    nf_cycles: int
    num_flows: int
    offered_pps: float
    rate_mpps: float
    rate_gbps: float
    latency: LatencyRecorder
    engine_summary: Dict[str, object] = field(default_factory=dict)
    #: Full telemetry export of the run's engine (counters + time series
    #: + trace events); see :meth:`repro.telemetry.EngineTelemetry.dump`.
    telemetry: Dict[str, object] = field(default_factory=dict)

    @property
    def p99_latency_us(self) -> float:
        return self.latency.percentile_us(0.99)


# Telemetry capture note: there is deliberately no module-global capture
# list here. ``--telemetry-out`` collection happens in the scenario
# layer (:mod:`repro.experiments.spec`), which carries each run's dump
# inside the point result — the only channel that survives a process
# boundary when sweeps run under ``--jobs N``.


def build_engine(
    mode: str,
    nf: Optional[NetworkFunction] = None,
    nf_cycles: int = 0,
    num_cores: int = 8,
    sim: Optional[Simulator] = None,
    **config_kwargs,
) -> MiddleboxEngine:
    """A middlebox engine with the paper's defaults."""
    sim = sim or Simulator()
    nf = nf or SyntheticNf(busy_cycles=nf_cycles)
    config = MiddleboxConfig(mode=mode, num_cores=num_cores, **config_kwargs)
    return MiddleboxEngine(sim, nf, config)


def run_open_loop(
    mode: str,
    nf_cycles: int,
    num_flows: int = 1,
    offered_pps: float = LINE_RATE_64B_PPS,
    duration: int = 8 * MILLISECOND,
    warmup: int = 2 * MILLISECOND,
    seed: int = 1,
    num_cores: int = 8,
    frame_len: int = 64,
    nf: Optional[NetworkFunction] = None,
    burst: Optional[int] = None,
    payload_len: int = 0,
    flows: Optional[List] = None,
    **config_kwargs,
) -> OpenLoopResult:
    """One MoonGen-style measurement point.

    ``burst`` is the generator's tx-burst size (None = auto). Latency
    experiments care: packet generators emit micro-bursts, and a burst
    landing on one RSS core queues behind itself while Sprayer fans it
    out across cores.

    ``payload_len`` puts real payload bytes on every data packet so
    payload-priced NFs (DPI scanning, RE fingerprinting) do real work;
    the stream then stays on the scalar spine (batches carry headers
    only). ``flows`` overrides the generated flow set (e.g. VIP-targeted
    flows for a load-balancer chain); ``num_flows`` is ignored then.
    """
    if not 0 <= warmup < duration:
        raise ValueError(f"need 0 <= warmup < duration, got {warmup}, {duration}")
    sim = Simulator()
    rng = random.Random(seed)
    engine = build_engine(
        mode, nf=nf, nf_cycles=nf_cycles, num_cores=num_cores, sim=sim, **config_kwargs
    )

    meter = RateMeter()
    latency = LatencyRecorder()

    def collector(packet: Packet, now: int) -> None:
        meter.record(packet.frame_len)
        if meter.measuring:
            latency.record(now - packet.created_at)

    ingress = Link(sim, 10e9, 1 * MICROSECOND, name="gen->mb", queue_limit=1000)
    ingress.sink = engine.receive  # matches the sink signature directly
    egress = Link(sim, 10e9, 1 * MICROSECOND, sink=collector, name="mb->gen")
    engine.set_egress(egress.send)

    # MoonGen cannot exceed line rate for the frame size.
    line_rate = 10e9 / ((frame_len + 20) * 8)
    offered = min(offered_pps, line_rate)
    if flows is None:
        flows = random_tcp_flows(num_flows, rng)
    else:
        flows = list(flows)
        num_flows = len(flows)
    generator = OpenLoopGenerator(
        sim,
        ingress.send,
        flows,
        offered,
        rng,
        frame_len=frame_len,
        burst=burst,
        payload_len=payload_len,
    )
    # The SoA batch spine: columnar bursts, eager steering, lazy
    # settlement. Byte-identical to the scalar spine (enforced by the
    # conformance suite); policies that cannot batch keep scalar.
    # Payload-carrying streams stay scalar end to end (batches are a
    # headers-only hot path), so the stager is never attached for them.
    if engine.config.spine == "batch" and engine.ingress_batchable and not payload_len:
        ArrivalStager(engine).attach(ingress)
        generator.batch_sink = ingress.send_batch
        # Egress leg of the spine: a completion's outputs are deferred
        # off the heap entirely (zero delivery events) and drained at
        # the flush_deferred window seams below; the sampler's extra
        # liveness probe keeps its quiescence check scalar-exact.
        engine.host.set_egress_many(egress.send_many)
        sampler = engine.telemetry.sampler
        if sampler is not None:
            sampler.extra_live = egress.has_undelivered
    generator.start(at=0)
    sim.run(until=warmup)
    egress.flush_deferred(sim.now)
    meter.open_window(sim.now)
    sim.run(until=duration)
    egress.flush_deferred(sim.now)
    meter.close_window(sim.now)
    generator.stop()
    return OpenLoopResult(
        mode=mode,
        nf_cycles=nf_cycles,
        num_flows=num_flows,
        offered_pps=offered,
        rate_mpps=meter.rate_mpps,
        rate_gbps=meter.rate_gbps,
        latency=latency,
        engine_summary=engine.summary(),
        telemetry=engine.telemetry.dump(),
    )


def measure_capacity(
    mode: str,
    nf_cycles: int,
    num_flows: int = 1,
    seed: int = 1,
    num_cores: int = 8,
    **config_kwargs,
) -> float:
    """Saturation processing rate (pps) for a mode/NF-cost point.

    A thin wrapper over the capacity-kind :class:`Scenario`, so direct
    callers and Figure 8's sweep share one code path (same pinned
    duration/warmup, same plumbing).
    """
    from repro.experiments.spec import Scenario, run_scenario

    scenario = Scenario.make(
        "capacity",
        mode=mode,
        nf_cycles=nf_cycles,
        num_flows=num_flows,
        seed=seed,
        num_cores=num_cores,
        **config_kwargs,
    )
    return run_scenario(scenario).values["pps"]


def run_tcp(
    mode: str,
    nf_cycles: int,
    num_flows: int = 1,
    duration: int = 150 * MILLISECOND,
    warmup: Optional[int] = None,
    seed: int = 1,
    num_cores: int = 8,
    cc_factory=None,
    tcp_config: Optional[TcpConfig] = None,
    nf: Optional[NetworkFunction] = None,
    **config_kwargs,
) -> TcpTestbedResult:
    """One iperf3-style measurement point."""
    if warmup is None:
        warmup = duration // 2
    if not 0 <= warmup < duration:
        raise ValueError(f"need 0 <= warmup < duration, got {warmup}, {duration}")
    sim = Simulator()
    rng = random.Random(seed)
    engine = build_engine(
        mode, nf=nf, nf_cycles=nf_cycles, num_cores=num_cores, sim=sim, **config_kwargs
    )
    testbed = TcpTestbed(
        sim,
        engine,
        num_flows=num_flows,
        rng=rng,
        cc_factory=cc_factory,
        tcp_config=tcp_config,
    )
    result = testbed.run(duration=duration, warmup=warmup)
    result.telemetry = engine.telemetry.dump()
    return result
