"""Figure 1: flow-size CDF and byte distribution across flow sizes.

The paper analyses a 48 h MAWI backbone capture; we regenerate the same
two curves from the calibrated synthetic trace (see
:mod:`repro.trafficgen.trace` for the substitution rationale). The
headline number to hit: flows larger than 10 MB carry >75 % of bytes
while being a tiny fraction of flows ("elephants and mice").
"""

from __future__ import annotations

import random
from typing import Dict, List

from repro.experiments.format import format_table
from repro.trafficgen.trace import SyntheticBackboneTrace

#: Size points (bytes) at which the CDFs are reported, log-spaced like
#: the paper's 10^4..10^10 axis.
REPORT_SIZES = (1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9)


def run_fig1(seed: int = 1, duration_s: float = 3.0) -> List[Dict[str, float]]:
    """CDF of flows and of bytes at the report sizes, plus the headline."""
    trace = SyntheticBackboneTrace(random.Random(seed), duration_s=duration_s)
    sizes = sorted(trace.flow_sizes())
    total_flows = len(sizes)
    total_bytes = sum(sizes)
    rows: List[Dict[str, float]] = []
    cumulative_bytes = 0.0
    index = 0
    for report in REPORT_SIZES:
        while index < total_flows and sizes[index] <= report:
            cumulative_bytes += sizes[index]
            index += 1
        rows.append(
            {
                "size_bytes": report,
                "flows_cdf": index / total_flows if total_flows else 0.0,
                "bytes_cdf": cumulative_bytes / total_bytes if total_bytes else 0.0,
            }
        )
    return rows


def headline(seed: int = 1, duration_s: float = 3.0) -> Dict[str, float]:
    """The paper's headline: share of bytes in >10 MB flows."""
    trace = SyntheticBackboneTrace(random.Random(seed), duration_s=duration_s)
    sizes = trace.flow_sizes()
    big_flows = sum(1 for s in sizes if s >= 10e6)
    return {
        "flows_total": len(sizes),
        "flows_over_10MB": big_flows,
        "flow_fraction_over_10MB": big_flows / len(sizes) if sizes else 0.0,
        "bytes_fraction_over_10MB": trace.bytes_fraction_above(10e6),
    }


def main() -> None:
    print(format_table(run_fig1(), title="Figure 1: CDF of flow sizes and of bytes (synthetic backbone trace)"))
    print()
    stats = headline()
    print(
        f"Headline: {stats['flows_over_10MB']}/{stats['flows_total']} flows >10MB "
        f"({100 * stats['flow_fraction_over_10MB']:.2f}% of flows) carry "
        f"{100 * stats['bytes_fraction_over_10MB']:.1f}% of bytes "
        f"(paper: >75%)"
    )


if __name__ == "__main__":
    main()
