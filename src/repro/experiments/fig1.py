"""Figure 1: flow-size CDF and byte distribution across flow sizes.

The paper analyses a 48 h MAWI backbone capture; we regenerate the same
two curves from the calibrated synthetic trace (see
:mod:`repro.trafficgen.trace` for the substitution rationale). The
headline number to hit: flows larger than 10 MB carry >75 % of bytes
while being a tiny fraction of flows ("elephants and mice").

The trace analysis is one ``flow_size_cdf`` scenario: :func:`compute`
builds the trace once and derives both the CDF rows and the headline,
so a report run pays the trace construction a single time (and can
overlap it with other figures under ``--jobs``).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from repro.experiments.format import format_table
from repro.experiments.runner import SweepRunner, default_runner
from repro.experiments.spec import Scenario
from repro.trafficgen.trace import SyntheticBackboneTrace

#: Size points (bytes) at which the CDFs are reported, log-spaced like
#: the paper's 10^4..10^10 axis.
REPORT_SIZES = (1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9)


def compute(
    seed: int = 1,
    duration_s: float = 3.0,
    report_sizes: Sequence[float] = REPORT_SIZES,
) -> Dict[str, object]:
    """Build the trace once; return the CDF rows and the headline."""
    trace = SyntheticBackboneTrace(random.Random(seed), duration_s=duration_s)
    sizes = sorted(trace.flow_sizes())
    total_flows = len(sizes)
    total_bytes = sum(sizes)
    rows: List[Dict[str, float]] = []
    cumulative_bytes = 0.0
    index = 0
    for report in report_sizes:
        while index < total_flows and sizes[index] <= report:
            cumulative_bytes += sizes[index]
            index += 1
        rows.append(
            {
                "size_bytes": report,
                "flows_cdf": index / total_flows if total_flows else 0.0,
                "bytes_cdf": cumulative_bytes / total_bytes if total_bytes else 0.0,
            }
        )
    big_flows = sum(1 for s in sizes if s >= 10e6)
    headline = {
        "flows_total": total_flows,
        "flows_over_10MB": big_flows,
        "flow_fraction_over_10MB": big_flows / total_flows if total_flows else 0.0,
        "bytes_fraction_over_10MB": trace.bytes_fraction_above(10e6),
    }
    return {"rows": rows, "headline": headline}


def scenario(seed: int = 1, duration_s: float = 3.0) -> Scenario:
    return Scenario.make("flow_size_cdf", label="fig1", mode="", seed=seed,
                         duration_s=duration_s)


def run_fig1(
    seed: int = 1,
    duration_s: float = 3.0,
    runner: Optional[SweepRunner] = None,
) -> List[Dict[str, float]]:
    """CDF of flows and of bytes at the report sizes."""
    (result,) = default_runner(runner).run([scenario(seed, duration_s)])
    return result.values["rows"]


def headline(
    seed: int = 1,
    duration_s: float = 3.0,
    runner: Optional[SweepRunner] = None,
) -> Dict[str, float]:
    """The paper's headline: share of bytes in >10 MB flows."""
    (result,) = default_runner(runner).run([scenario(seed, duration_s)])
    return result.values["headline"]


def main(
    runner: Optional[SweepRunner] = None,
    seeds: Optional[Sequence[int]] = None,
    quick: bool = False,
) -> None:
    runner = default_runner(runner)
    seed = seeds[0] if seeds else 1
    duration_s = 2.0 if quick else 3.0
    (result,) = runner.run([scenario(seed, duration_s)])
    print(format_table(result.values["rows"],
                       title="Figure 1: CDF of flow sizes and of bytes (synthetic backbone trace)"))
    print()
    stats = result.values["headline"]
    print(
        f"Headline: {stats['flows_over_10MB']}/{stats['flows_total']} flows >10MB "
        f"({100 * stats['flow_fraction_over_10MB']:.2f}% of flows) carry "
        f"{100 * stats['bytes_fraction_over_10MB']:.1f}% of bytes "
        f"(paper: >75%)"
    )


if __name__ == "__main__":
    main()
