"""Figure 9: Jain's fairness index vs. number of flows.

Closed-loop TCP flows at 10,000 cycles/packet; the fairness index is
computed over per-flow goodputs, averaged over several runs with fresh
random endpoints (the paper's error bars are min/max across runs).

Paper shape: Sprayer sits at ~1.0 for every flow count — all flows
share all cores — while RSS dips wherever hash collisions leave some
flows sharing a core that others have to themselves.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.format import format_table
from repro.experiments.runner import SweepRunner, default_runner
from repro.experiments.spec import Sweep
from repro.sim.timeunits import MILLISECOND

DEFAULT_FLOWS = (2, 4, 8, 16, 32, 64, 128)
DEFAULT_CYCLES = 10000
MODES = ("rss", "sprayer")


def _fresh_endpoints(seed: int, flows: int) -> int:
    """Fresh random endpoints per (seed, flow-count) point."""
    return seed * 1000 + flows


def fig9_sweep(
    flow_sweep: Sequence[int] = DEFAULT_FLOWS,
    nf_cycles: int = DEFAULT_CYCLES,
    duration: int = 150 * MILLISECOND,
    warmup: Optional[int] = None,
    seeds: Sequence[int] = (1, 2, 3),
    num_cores: int = 8,
) -> Sweep:
    """Mean/min/max Jain's index per flow count and mode."""
    return Sweep(
        name="fig9",
        kind="tcp",
        axis="flows",
        axis_field="num_flows",
        values=flow_sweep,
        modes=MODES,
        seeds=tuple(seeds),
        seed_fn=_fresh_endpoints,
        metric="jain",
        unit="jain",
        agg="mean_min_max",
        base=dict(nf_cycles=nf_cycles, duration=duration, warmup=warmup,
                  num_cores=num_cores),
    )


def run_fig9(
    flow_sweep: Sequence[int] = DEFAULT_FLOWS,
    nf_cycles: int = DEFAULT_CYCLES,
    duration: int = 150 * MILLISECOND,
    warmup: Optional[int] = None,
    seeds: Sequence[int] = (1, 2, 3),
    num_cores: int = 8,
    runner: Optional[SweepRunner] = None,
) -> List[Dict[str, float]]:
    return fig9_sweep(flow_sweep, nf_cycles, duration, warmup, seeds, num_cores).run(runner)


def main(
    runner: Optional[SweepRunner] = None,
    seeds: Optional[Sequence[int]] = None,
    quick: bool = False,
) -> None:
    runner = default_runner(runner)
    kwargs = dict(flow_sweep=(4, 8, 16), duration=80 * MILLISECOND) if quick else {}
    if seeds:
        kwargs["seeds"] = seeds
    elif quick:
        kwargs["seeds"] = (1, 2)
    print(format_table(
        run_fig9(runner=runner, **kwargs),
        title="Figure 9: Jain's fairness index vs #flows (10,000 cycles/packet)",
    ))


if __name__ == "__main__":
    main()
