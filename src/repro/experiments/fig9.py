"""Figure 9: Jain's fairness index vs. number of flows.

Closed-loop TCP flows at 10,000 cycles/packet; the fairness index is
computed over per-flow goodputs, averaged over several runs with fresh
random endpoints (the paper's error bars are min/max across runs).

Paper shape: Sprayer sits at ~1.0 for every flow count — all flows
share all cores — while RSS dips wherever hash collisions leave some
flows sharing a core that others have to themselves.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.format import format_table
from repro.experiments.harness import run_tcp
from repro.metrics.fairness import jain_index
from repro.sim.timeunits import MILLISECOND

DEFAULT_FLOWS = (2, 4, 8, 16, 32, 64, 128)
DEFAULT_CYCLES = 10000
MODES = ("rss", "sprayer")


def run_fig9(
    flow_sweep: Sequence[int] = DEFAULT_FLOWS,
    nf_cycles: int = DEFAULT_CYCLES,
    duration: int = 150 * MILLISECOND,
    warmup: Optional[int] = None,
    seeds: Sequence[int] = (1, 2, 3),
    num_cores: int = 8,
) -> List[Dict[str, float]]:
    """Mean/min/max Jain's index per flow count and mode."""
    rows = []
    for flows in flow_sweep:
        row: Dict[str, float] = {"flows": flows}
        for mode in MODES:
            indices = []
            for seed in seeds:
                result = run_tcp(
                    mode,
                    nf_cycles,
                    num_flows=flows,
                    duration=duration,
                    warmup=warmup,
                    seed=seed * 1000 + flows,
                    num_cores=num_cores,
                )
                indices.append(jain_index(list(result.per_flow_goodput_bps.values())))
            row[f"{mode}_jain"] = sum(indices) / len(indices)
            row[f"{mode}_min"] = min(indices)
            row[f"{mode}_max"] = max(indices)
        rows.append(row)
    return rows


def main() -> None:
    print(format_table(
        run_fig9(),
        title="Figure 9: Jain's fairness index vs #flows (10,000 cycles/packet)",
    ))


if __name__ == "__main__":
    main()
