"""Figure 2: concurrent flows per 150 µs window.

The paper's pivotal motivation measurement: within the ~150 µs a packet
spends inside a middlebox, how many distinct flows have a packet in
flight? (Median 4, p99 14 considering all flows; median 1, p99 6 for
flows >10 MB — even though >1M connections are simultaneously *open*.)
Small concurrency is what makes per-flow RSS waste cores.

Each population ("all flows", "> 10 MB") is one ``concurrency``
scenario, so the two trace scans run as independent points through the
shared runner.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from repro.experiments.format import format_table
from repro.experiments.runner import SweepRunner, default_runner
from repro.experiments.spec import Scenario
from repro.metrics.cdf import quantile
from repro.sim.timeunits import MICROSECOND
from repro.trafficgen.trace import SyntheticBackboneTrace

#: The two populations the paper reports: label -> minimum flow size.
POPULATIONS = (("all flows", 0.0), ("> 10 MB", 10e6))


def compute(
    seed: int = 1,
    duration_s: float = 3.0,
    window: int = 150 * MICROSECOND,
    samples: int = 2000,
    min_size_bytes: float = 0.0,
    population: str = "",
) -> Dict[str, object]:
    """Concurrency quantiles for one population."""
    trace = SyntheticBackboneTrace(random.Random(seed), duration_s=duration_s)
    counts = sorted(
        trace.concurrent_flows(window=window, samples=samples, min_size_bytes=min_size_bytes)
    )
    return {
        "row": {
            "population": population or f">= {min_size_bytes:g} B",
            "median": quantile(counts, 0.50),
            "p90": quantile(counts, 0.90),
            "p99": quantile(counts, 0.99),
            "max": counts[-1],
        }
    }


def scenarios(
    seed: int = 1,
    duration_s: float = 3.0,
    window: int = 150 * MICROSECOND,
    samples: int = 2000,
) -> List[Scenario]:
    return [
        Scenario.make("concurrency", label="fig2", mode="", seed=seed,
                      duration_s=duration_s, window=window, samples=samples,
                      min_size_bytes=min_size, population=label)
        for label, min_size in POPULATIONS
    ]


def run_fig2(
    seed: int = 1,
    duration_s: float = 3.0,
    window: int = 150 * MICROSECOND,
    samples: int = 2000,
    runner: Optional[SweepRunner] = None,
) -> List[Dict[str, float]]:
    """Concurrency quantiles for all flows and for >10 MB flows."""
    results = default_runner(runner).run(scenarios(seed, duration_s, window, samples))
    return [result.values["row"] for result in results]


def cdf_points(
    seed: int = 1,
    duration_s: float = 3.0,
    window: int = 150 * MICROSECOND,
    samples: int = 2000,
    min_size_bytes: float = 0.0,
) -> List[Dict[str, float]]:
    """The full CDF curve (for plotting or finer comparisons)."""
    trace = SyntheticBackboneTrace(random.Random(seed), duration_s=duration_s)
    counts = sorted(
        trace.concurrent_flows(window=window, samples=samples, min_size_bytes=min_size_bytes)
    )
    n = len(counts)
    curve: List[Dict[str, float]] = []
    seen = set()
    for i, c in enumerate(counts):
        if c not in seen:
            seen.add(c)
            curve.append({"concurrent_flows": c, "cdf": (i + 1) / n})
    if curve:
        curve[-1]["cdf"] = 1.0
    return curve


def main(
    runner: Optional[SweepRunner] = None,
    seeds: Optional[Sequence[int]] = None,
    quick: bool = False,
) -> None:
    runner = default_runner(runner)
    kwargs = dict(duration_s=2.0, samples=800) if quick else {}
    if seeds:
        kwargs["seed"] = seeds[0]
    print(format_table(
        run_fig2(runner=runner, **kwargs),
        title="Figure 2: concurrent flows per 150 us window (paper: median 4 / p99 14 all; median 1 / p99 6 for >10MB)",
    ))


if __name__ == "__main__":
    main()
