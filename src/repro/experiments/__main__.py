"""Run every experiment and print the full paper-reproduction report.

Usage::

    python -m repro.experiments            # everything (minutes)
    python -m repro.experiments fig6 fig8  # a subset
"""

from __future__ import annotations

import sys
import time

from repro.experiments import fig1, fig2, fig6, fig7, fig8, fig9, table1

RUNNERS = {
    "fig1": fig1.main,
    "fig2": fig2.main,
    "table1": table1.main,
    "fig6": fig6.main,
    "fig7": fig7.main,
    "fig8": fig8.main,
    "fig9": fig9.main,
}


def main(argv: list) -> int:
    names = argv or list(RUNNERS)
    unknown = [name for name in names if name not in RUNNERS]
    if unknown:
        print(f"unknown experiments: {unknown}; available: {sorted(RUNNERS)}")
        return 2
    for name in names:
        print(f"\n{'=' * 72}\n== {name}\n{'=' * 72}")
        started = time.time()
        RUNNERS[name]()
        print(f"-- {name} done in {time.time() - started:.1f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
