"""Run every experiment and print the full paper-reproduction report.

Usage::

    python -m repro.experiments                          # everything (minutes)
    python -m repro.experiments fig6 fig8                # a subset
    python -m repro.experiments --jobs 4                 # process-parallel sweeps
    python -m repro.experiments fig6 --quick --jobs 2 --telemetry-out t.json
    python -m repro.experiments fig9 --seeds 1,2,3,4

``--jobs N`` runs each sweep's measurement points on N worker
processes; rows and aggregates are byte-identical to a serial run
because per-point seeds are derived from (base seed, axis value), never
from execution order. ``--telemetry-out PATH`` additionally writes the
telemetry dump of every engine the selected experiments build, as one
JSON document; the dumps travel back from the workers inside each
point's result. ``--seeds`` takes a comma-separated list (or a single
count N, meaning seeds 1..N) to aggregate each point over; ``--quick``
selects reduced, CI-sized parameters.

``--strict-checks`` arms the runtime checkers of :mod:`repro.checks` on
every engine the experiments build (including pool workers, via the
``REPRO_STRICT_CHECKS`` environment variable): flow-state writes are
audited for the single-writer discipline and per-core event streams are
digested. The checkers observe without perturbing, so strict runs print
byte-identical rows.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import List, Optional, Sequence

from repro.experiments import (
    fig1, fig2, fig6, fig7, fig8, fig9, figc, figp, figr, figs, table1,
)
from repro.experiments.runner import SweepRunner

RUNNERS = {
    "fig1": fig1.main,
    "fig2": fig2.main,
    "table1": table1.main,
    "fig6": fig6.main,
    "fig7": fig7.main,
    "fig8": fig8.main,
    "fig9": fig9.main,
    "figR": figr.main,
    "figS": figs.main,
    "figC": figc.main,
    "figP": figp.main,
}


def parse_seeds(text: Optional[str]) -> Optional[Sequence[int]]:
    """``"1,2,3"`` -> (1, 2, 3); a bare count ``"4"`` -> (1, 2, 3, 4)."""
    if not text:
        return None
    parts = [int(part) for part in text.split(",") if part.strip()]
    if not parts:
        raise ValueError("--seeds needs at least one integer")
    if len(parts) == 1:
        count = parts[0]
        if count < 1:
            raise ValueError(f"--seeds count must be >= 1, got {count}")
        return tuple(range(1, count + 1))
    return tuple(parts)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's figures/tables from scratch.",
    )
    parser.add_argument(
        "names", nargs="*", metavar="EXPERIMENT",
        help=f"subset of: {', '.join(RUNNERS)} (default: all)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes per sweep (default 1 = serial)",
    )
    parser.add_argument(
        "--seeds", metavar="LIST",
        help="comma-separated seeds to aggregate over, or a bare count N "
             "meaning 1..N",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="reduced, CI-sized parameters (seconds, not minutes)",
    )
    parser.add_argument(
        "--strict-checks", action="store_true",
        help="run every engine with the runtime checkers armed: the "
             "ownership auditor (raises OwnershipViolation on any "
             "second writer core per flow) and per-core event-stream "
             "digests; results are byte-identical to unchecked runs",
    )
    parser.add_argument(
        "--telemetry-out", metavar="PATH",
        help="write every engine's telemetry dump as one JSON document",
    )
    parser.add_argument(
        "--list", action="store_true",
        help="list experiment runners and scenario kinds, then exit",
    )
    return parser


def main(argv: List[str]) -> int:
    try:
        args = build_parser().parse_args(list(argv))
        seeds = parse_seeds(args.seeds)
        if args.jobs < 1:
            raise ValueError(f"--jobs must be >= 1, got {args.jobs}")
    except ValueError as error:
        print(error)
        return 2
    except SystemExit as error:
        return int(error.code or 0)
    if args.list:
        from repro.experiments.spec import KIND_RUNNERS

        print("experiments:")
        for name in RUNNERS:
            print(f"  {name}")
        print("scenario kinds:")
        for kind in sorted(KIND_RUNNERS):
            print(f"  {kind}")
        return 0
    names = args.names or list(RUNNERS)
    unknown = [name for name in names if name not in RUNNERS]
    if unknown:
        print(f"unknown experiments: {unknown}; available: {sorted(RUNNERS)}")
        return 2
    if args.telemetry_out:
        # Fail fast on an unwritable path: experiments can take minutes,
        # and discovering the sink is broken afterwards wastes the run.
        try:
            with open(args.telemetry_out, "w"):
                pass
        except OSError as error:
            print(f"cannot write --telemetry-out path: {error}")
            return 2
    if args.strict_checks:
        # The env var (not an argument threaded through every figure
        # module) is what reaches MiddleboxConfig in this process and in
        # every --jobs N pool worker, which inherit the environment.
        os.environ["REPRO_STRICT_CHECKS"] = "1"
        print("-- strict checks armed (ownership auditor + stream digests)")
    runner = SweepRunner(jobs=args.jobs, capture_telemetry=bool(args.telemetry_out))
    for name in names:
        print(f"\n{'=' * 72}\n== {name}\n{'=' * 72}")
        started = time.perf_counter()
        RUNNERS[name](runner=runner, seeds=seeds, quick=args.quick)
        print(f"-- {name} done in {time.perf_counter() - started:.1f}s")
    if args.telemetry_out:
        document = {"experiments": names, "runs": runner.telemetry}
        with open(args.telemetry_out, "w") as out:
            json.dump(document, out, sort_keys=True)
        print(f"-- telemetry written to {args.telemetry_out} "
              f"({len(document['runs'])} runs)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
