"""Run every experiment and print the full paper-reproduction report.

Usage::

    python -m repro.experiments                          # everything (minutes)
    python -m repro.experiments fig6 fig8                # a subset
    python -m repro.experiments fig7 --telemetry-out t.json

``--telemetry-out PATH`` additionally writes the telemetry dump (the
per-run counters, per-core time series, and any trace events) of every
engine the selected experiments build, as one JSON document.
"""

from __future__ import annotations

import json
import sys
import time
from typing import List, Optional, Tuple

from repro.experiments import fig1, fig2, fig6, fig7, fig8, fig9, harness, table1

RUNNERS = {
    "fig1": fig1.main,
    "fig2": fig2.main,
    "table1": table1.main,
    "fig6": fig6.main,
    "fig7": fig7.main,
    "fig8": fig8.main,
    "fig9": fig9.main,
}


def parse_args(argv: List[str]) -> Tuple[List[str], Optional[str]]:
    """Split experiment names from the ``--telemetry-out`` option."""
    names: List[str] = []
    telemetry_out: Optional[str] = None
    index = 0
    while index < len(argv):
        arg = argv[index]
        if arg == "--telemetry-out":
            index += 1
            if index >= len(argv):
                raise ValueError("--telemetry-out requires a PATH argument")
            telemetry_out = argv[index]
        elif arg.startswith("--telemetry-out="):
            telemetry_out = arg.split("=", 1)[1]
        elif arg.startswith("--"):
            raise ValueError(f"unknown option {arg!r}")
        else:
            names.append(arg)
        index += 1
    return names, telemetry_out


def main(argv: list) -> int:
    try:
        names, telemetry_out = parse_args(list(argv))
    except ValueError as error:
        print(error)
        return 2
    names = names or list(RUNNERS)
    unknown = [name for name in names if name not in RUNNERS]
    if unknown:
        print(f"unknown experiments: {unknown}; available: {sorted(RUNNERS)}")
        return 2
    if telemetry_out:
        # Fail fast on an unwritable path: experiments can take minutes,
        # and discovering the sink is broken afterwards wastes the run.
        try:
            with open(telemetry_out, "w"):
                pass
        except OSError as error:
            print(f"cannot write --telemetry-out path: {error}")
            return 2
        harness.capture_telemetry(True)
    try:
        for name in names:
            print(f"\n{'=' * 72}\n== {name}\n{'=' * 72}")
            started = time.time()
            RUNNERS[name]()
            print(f"-- {name} done in {time.time() - started:.1f}s")
        if telemetry_out:
            document = {"experiments": names, "runs": harness.captured_telemetry()}
            with open(telemetry_out, "w") as out:
                json.dump(document, out, sort_keys=True)
            print(f"-- telemetry written to {telemetry_out} "
                  f"({len(document['runs'])} runs)")
    finally:
        if telemetry_out:
            harness.capture_telemetry(False)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
