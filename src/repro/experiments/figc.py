"""Figure C (extension): the cluster serving study.

Not a figure from the paper — the ROADMAP's "millions of users"
cluster study. A calibrated MAWI-backbone-style workload (heavy-tailed
flow sizes, O(10^5) concurrent flows at full scale) is replayed
deterministically against a :class:`ServingCluster` of Sprayer hosts
behind the consistent-hash front end, once per per-host steering
policy (``rss`` vs ``sprayer``). A telemetry-driven autoscaler grows
the cluster through the load ramp and shrinks it in the decay tail;
mid-steady-state one host crashes (``host_down`` through the standard
fault plan). The SLO report segments the timeline into phases::

    ramp -> steady -> host_down -> drain/scale-in

and prices each phase's drop and state-loss budget explicitly: zero
loss and zero drops attributable to voluntary rescaling (live
migration buffers in-flight packets and paces their release), bounded
ledger-accounted state loss on the crash. Overload drops a steering
policy sheds under the heavy tail (rss hot cores) are *not* charged to
the rescaling budget — they are the study's subject, reported in the
drops column and the per-phase table.

Methodology per "Benchmarking NFV Software Dataplanes" (PAPERS.md):
per-policy throughput/latency *curves* (p50/p99 per time bucket), not
single points; per "Automatic Parallelization of Software Network
Functions", results are reported per steering policy so cluster-level
choices compose with per-host ones.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cpu.costs import CostModel
from repro.experiments.format import format_table
from repro.experiments.runner import SweepRunner, default_runner
from repro.experiments.spec import Scenario
from repro.faults.plan import FaultPlan, host_down
from repro.sim.timeunits import MICROSECOND, MILLISECOND, NANOSECOND, SECOND

MODES = ("rss", "sprayer")
NUM_HOSTS = 8
NUM_CORES = 8
NF_CYCLES = 5500
#: Poisson flow-arrival rate (flows/s) and trace length: at full scale
#: ~1.2e5 flows start inside the window, all still live at its end
#: (the synthetic NF never expires entries), clearing the 1e5
#: concurrent-flows bar across >= 8 hosts.
ARRIVAL_RATE = 2.4e6
TRACE_MS = 50
DURATION_MS = 70
CRASH_MS = 30
STEADY_MS = 15
DRAIN_MS = 52
#: Per-flow packet cap for mice: bounds the run by packets. Elephants
#: are bounded by the trace horizon instead — capping them too would
#: flatten the heavy tail whose hot cores the steering policies differ
#: on.
MAX_PACKETS_PER_FLOW = 3
ELEPHANT_PACKET_CAP = 100_000
#: Crash target: index into the sorted live host list at apply time.
CRASH_TARGET = 1

QUICK = dict(
    num_hosts=3,
    num_cores=4,
    nf_cycles=3000,
    arrival_rate=2.5e5,
    trace_ms=8,
    duration_ms=12,
    crash_ms=5,
    steady_ms=3,
    drain_ms=9,
    max_packets_per_flow=4,
    elephant_packet_cap=300,
    epoch_ms=0.5,
    min_hosts=2,
    max_hosts=6,
    migration_base_us=50.0,
)


def run_figc_scenario(scenario) -> tuple:
    """The ``"cluster_serving"`` kind runner: Scenario -> (values, dump)."""
    from repro.cluster.serving import (
        Autoscaler,
        ClusterLoadDriver,
        ServingCluster,
        SloRecorder,
        ThresholdHysteresisPolicy,
    )
    from repro.core.config import MiddleboxConfig
    from repro.faults.injector import ClusterFaultInjector
    from repro.nfs.synthetic import SyntheticNf
    from repro.sim.engine import Simulator
    from repro.trafficgen.trace import SyntheticBackboneTrace

    extras = dict(scenario.extras)
    num_hosts = extras["num_hosts"]
    arrival_rate = extras["arrival_rate"]
    trace_ms = extras["trace_ms"]
    duration = scenario.duration
    bucket = extras.get("bucket_ps", MILLISECOND)
    epoch = extras.get("epoch_ps", MILLISECOND)
    cap = extras.get("max_packets_per_flow")
    plan: Optional[FaultPlan] = extras.get("fault_plan")
    steady_at = extras["steady_at"]
    drain_at = extras["drain_at"]
    mode = scenario.mode

    sim = Simulator()
    migration_kwargs = {
        key: extras[key]
        for key in ("migration_base_delay", "migration_per_entry_delay")
        if key in extras
    }
    serving = ServingCluster(
        sim,
        nf_factory=lambda host: SyntheticNf(busy_cycles=scenario.nf_cycles),
        num_hosts=num_hosts,
        config_factory=lambda host: MiddleboxConfig(
            mode=mode, num_cores=scenario.num_cores
        ),
        **migration_kwargs,
    )
    slo = SloRecorder(duration=duration, bucket=bucket)
    serving.set_egress(lambda packet: slo.on_forwarded(packet, sim.now))

    trace = SyntheticBackboneTrace(
        random.Random(scenario.seed),
        duration_s=trace_ms * MILLISECOND / SECOND,
        flow_arrival_rate=arrival_rate,
    )
    driver = ClusterLoadDriver(
        sim,
        serving.receive,
        trace,
        seed=scenario.seed + 7919,
        max_packets_per_flow=cap,
        elephant_packet_cap=extras.get("elephant_packet_cap"),
    )
    policy = ThresholdHysteresisPolicy(
        target_p99_us=extras.get("target_p99_us", 60.0),
        max_rx_depth=extras.get("max_rx_depth", 192),
        min_hosts=extras.get("min_hosts", 4),
        max_hosts=extras.get("max_hosts", 12),
    )
    autoscaler = Autoscaler(serving, policy, epoch=epoch)

    def budget_counters() -> Dict[str, int]:
        return {
            "drops": serving.drops_total(),
            "state_lost": serving.migrator.stats.state_lost
            + serving.cluster.stats.lost_entries,
            "migrations": serving.cluster.stats.migrations,
            "flows_moved": serving.cluster.stats.flows_moved,
        }

    def snap(name: str) -> None:
        slo.mark(name, sim.now, budget_counters())

    peaks = {"hosts": len(serving.ring_hosts), "flows": 0}

    def sample_cluster() -> None:
        snapshot = serving.telemetry.sample(sim.now)
        peaks["hosts"] = max(peaks["hosts"], len(serving.ring_hosts))
        peaks["flows"] = max(peaks["flows"], snapshot["cluster.flow_entries"] // 2)

    snap("ramp")
    crash_at = plan.events[0].at if plan is not None and plan.events else None
    boundaries = [(steady_at, "steady")]
    if crash_at is not None:
        boundaries.append((crash_at, "host_down"))
    boundaries.append((drain_at, "drain"))
    for at, name in boundaries:
        sim.post(at, snap, name)
    for i in range(1, duration // bucket + 1):
        sim.post(i * bucket, sample_cluster)
    # Built after the marks are posted: same-time events fire in
    # scheduling order, so at crash time the "host_down" mark lands
    # first and the crash's losses are priced into the host_down
    # phase rather than the one before it.
    injector = ClusterFaultInjector(serving, plan) if plan is not None else None

    driver.start()
    autoscaler.start(until=duration)
    sim.run(until=duration)
    # Stop every engine's sampler before the final drain: with several
    # engines each sampler's quiescence check sees the others' pending
    # ticks as live events, so they would keep each other armed forever.
    for host in sorted(serving.cluster.engines):
        sampler = serving.cluster.engines[host].telemetry.sampler
        if sampler is not None:
            sampler.stop()
    sim.run()  # drain: pending commits, queued packets, buffered flows
    snap("end")
    sample_cluster()

    ledger = serving.conservation()
    phases = slo.phase_rows()
    # The voluntary-rescaling budget charges only what the migration
    # protocol itself could lose: drops in the drain phase (offered
    # load has decayed to zero there, so any drop is the protocol's —
    # all scale-ins land in drain) plus any packet still stuck in a
    # handoff buffer after the full drain. Overload drops a steering
    # policy sheds under load stay in drops_total and the phase table.
    voluntary_state_lost = sum(
        row.get("state_lost", 0) for row in phases if row["phase"] != "host_down"
    )
    voluntary_drops = (
        sum(row.get("drops", 0) for row in phases if row["phase"] == "drain")
        + ledger["buffered_now"]
        + voluntary_state_lost
    )
    percentiles = slo.percentiles()
    actions = [d["action"] for d in autoscaler.decisions]
    values = {
        "rate_mpps": slo.forwarded / (duration / 1e12) / 1e6,
        "p50_us": percentiles["p50_us"],
        "p99_us": percentiles["p99_us"],
        "offered": serving.offered,
        "forwarded": slo.forwarded,
        "drops_total": serving.drops_total(),
        "voluntary_drops": voluntary_drops,
        "voluntary_state_lost": voluntary_state_lost,
        "state_lost": ledger["state_lost_inflight"] + ledger["entries_lost"],
        "hosts_peak": peaks["hosts"],
        "hosts_final": len(serving.ring_hosts),
        "concurrent_flows_peak": peaks["flows"],
        "flows_started": driver.stats.flows_started,
        "migrations": serving.cluster.stats.migrations,
        "flows_moved": serving.cluster.stats.flows_moved,
        "packets_buffered": serving.migrator.stats.packets_buffered,
        "scale_outs": sum(1 for a in actions if a == "scale_out"),
        "scale_ins": sum(1 for a in actions if a == "scale_in"),
        "fault_records": [
            record.to_dict() for record in (injector.records if injector else [])
        ],
        "conservation_ok": serving.conservation_ok(),
        "timeline": slo.timeline(),
        "phases": phases,
        "decisions": autoscaler.decisions,
    }
    return values, serving.telemetry.dump()


def run_figc(
    num_hosts: int = NUM_HOSTS,
    num_cores: int = NUM_CORES,
    nf_cycles: int = NF_CYCLES,
    arrival_rate: float = ARRIVAL_RATE,
    trace_ms: int = TRACE_MS,
    duration_ms: int = DURATION_MS,
    crash_ms: Optional[float] = CRASH_MS,
    steady_ms: float = STEADY_MS,
    drain_ms: float = DRAIN_MS,
    max_packets_per_flow: int = MAX_PACKETS_PER_FLOW,
    elephant_packet_cap: int = ELEPHANT_PACKET_CAP,
    epoch_ms: float = 1.0,
    bucket: int = MILLISECOND,
    min_hosts: int = 4,
    max_hosts: int = 12,
    migration_base_us: float = 200.0,
    migration_per_entry_ns: float = 20.0,
    seed: int = 1,
    runner: Optional[SweepRunner] = None,
) -> Tuple[List[Dict[str, object]], List[Dict[str, float]], List[Dict[str, object]]]:
    """(summary rows, merged timeline, phase rows) per policy."""
    runner = default_runner(runner)
    plan = (
        FaultPlan.of(host_down(CRASH_TARGET, round(crash_ms * MILLISECOND)), seed=seed)
        if crash_ms is not None
        else None
    )
    points = [
        Scenario.make(
            "cluster_serving",
            label="figC",
            mode=mode,
            nf_cycles=nf_cycles,
            num_cores=num_cores,
            duration=duration_ms * MILLISECOND,
            seed=seed,
            num_hosts=num_hosts,
            arrival_rate=arrival_rate,
            trace_ms=trace_ms,
            steady_at=round(steady_ms * MILLISECOND),
            drain_at=round(drain_ms * MILLISECOND),
            max_packets_per_flow=max_packets_per_flow,
            elephant_packet_cap=elephant_packet_cap,
            epoch_ps=round(epoch_ms * MILLISECOND),
            bucket_ps=bucket,
            fault_plan=plan,
            min_hosts=min_hosts,
            max_hosts=max_hosts,
            migration_base_delay=round(migration_base_us * MICROSECOND),
            migration_per_entry_delay=round(migration_per_entry_ns * NANOSECOND),
        )
        for mode in MODES
    ]
    by_mode = {r.scenario.mode: r.values for r in runner.run(points)}

    rows = []
    for mode in MODES:
        values = by_mode[mode]
        rows.append(
            {
                "mode": mode,
                "hosts_peak": values["hosts_peak"],
                "flows_peak": values["concurrent_flows_peak"],
                "fwd_mpps": values["rate_mpps"],
                "p50_us": values["p50_us"],
                "p99_us": values["p99_us"],
                "drops": values["drops_total"],
                "vol_drops": values["voluntary_drops"],
                "state_lost": values["state_lost"],
                "outs": values["scale_outs"],
                "ins": values["scale_ins"],
                "migrations": values["migrations"],
                "flows_moved": values["flows_moved"],
            }
        )

    timeline: List[Dict[str, float]] = []
    n_buckets = len(by_mode[MODES[0]]["timeline"])
    for i in range(n_buckets):
        row: Dict[str, float] = {"t_ms": by_mode[MODES[0]]["timeline"][i]["t_ms"]}
        for mode in MODES:
            entry = by_mode[mode]["timeline"][i]
            row[f"{mode}_mpps"] = entry["fwd_mpps"]
            row[f"{mode}_p99_us"] = entry["p99_us"]
        timeline.append(row)

    phases: List[Dict[str, object]] = []
    for mode in MODES:
        for entry in by_mode[mode]["phases"]:
            phases.append({"mode": mode, **entry})
    return rows, timeline, phases


def main(
    runner: Optional[SweepRunner] = None,
    seeds: Optional[Sequence[int]] = None,
    quick: bool = False,
) -> None:
    runner = default_runner(runner)
    kwargs: Dict[str, object] = dict(QUICK) if quick else {}
    if seeds:
        kwargs["seed"] = seeds[0]
    rows, timeline, phases = run_figc(runner=runner, **kwargs)
    capacity_note = (
        f"per-core {CostModel().single_core_rate_pps(NF_CYCLES) / 1e3:.0f} kpps"
        if not quick
        else "quick sizes"
    )
    print(format_table(
        rows,
        title=f"Figure C: cluster serving under autoscale + host crash "
              f"({capacity_note})",
    ))
    print()
    print(format_table(
        phases,
        title="Figure C phases: per-phase drop/state-loss budgets",
    ))
    print()
    print(format_table(
        timeline,
        title="Figure C timeline: per-ms forwarded rate and p99 latency",
    ))
    by_mode = {row["mode"]: row for row in rows}
    for mode in MODES:
        row = by_mode[mode]
        verdict = "PASS" if row["vol_drops"] == 0 else "FAIL"
        print(
            f"{mode}: voluntary rescaling loss budget {row['vol_drops']} "
            f"[{verdict}], host_down state loss {row['state_lost']} "
            f"(ledger-accounted), peak {row['hosts_peak']} hosts / "
            f"{row['flows_peak']} concurrent flows"
        )
    sprayer, rss = by_mode["sprayer"], by_mode["rss"]
    if rss["p99_us"] > 0 and sprayer["p99_us"] > 0:
        print(
            f"\nsprayer vs rss while serving the same trace: "
            f"{sprayer['fwd_mpps'] / max(rss['fwd_mpps'], 1e-9):.2f}x throughput, "
            f"{rss['p99_us'] / sprayer['p99_us']:.1f}x lower p99, "
            f"{rss['hosts_peak'] - sprayer['hosts_peak']:+d} hosts saved at peak"
        )


if __name__ == "__main__":
    main()
