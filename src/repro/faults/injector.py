"""Fault injectors: apply a :class:`~repro.faults.plan.FaultPlan` to a
running engine (or cluster) through the simulator's event queue.

Injection happens exclusively at the sim-event seam: every apply/clear
is a scheduled callback, so a faulted run is still a pure function of
(workload seed, plan) — the injector draws randomness only from its own
``random.Random(plan.seed)``, never from the workload's RNG, and an
empty plan schedules nothing, binds nothing, and perturbs nothing.

The injector reuses existing dataplane seams rather than adding new
per-packet branches:

- ``core_slow``/``core_stall``/``core_crash`` drive the
  :class:`~repro.cpu.core.Core` fault hooks (``cycle_factor``,
  ``stall``/``resume``) and :meth:`MiddleboxEngine.crash_core`;
- ``link_*`` installs a :class:`~repro.nic.link.LinkFault` on the
  attached ingress link;
- ``queue_pause`` uses :meth:`MultiQueueNic.disable_queue`, so the drop
  is reported through the NIC ``on_drop`` channel like any other;
- ``fd_evict`` calls :meth:`FlowDirectorTable.evict`;
- after any core degradation change the policy is offered
  ``resteer_around`` — Sprayer rebuilds its spray rules over the live
  cores (any core can process any packet, so no state moves), while
  RSS declines (its indirection table would strand per-flow state).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.faults.plan import FaultEvent, FaultPlan
from repro.nic.link import Link, LinkFault


@dataclass
class FaultRecord:
    """MTTR-style accounting for one applied fault."""

    kind: str
    target: int
    applied_at: int
    cleared_at: Optional[int] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "target": self.target,
            "applied_at": self.applied_at,
            "cleared_at": self.cleared_at,
        }


@dataclass
class InjectorStats:
    """Counters the injector binds into the engine's registry."""

    applied: int = 0
    cleared: int = 0
    flushed_packets: int = 0
    resteers: int = 0
    fd_evicted: int = 0


class FaultInjector:
    """Applies an engine-scoped fault plan via scheduled sim events.

    ``link`` (optional) is the link the ``link_*`` kinds impair —
    normally the ingress link in front of the engine. ``resteer``
    controls whether the steering policy is offered the chance to
    rebuild around degraded cores (the Sprayer advantage under test;
    set False for the no-reaction ablation).
    """

    def __init__(
        self,
        engine: Any,
        plan: FaultPlan,
        link: Optional[Link] = None,
        resteer: bool = True,
    ):
        self.engine = engine
        self.plan = plan
        self.link = link
        self.resteer = resteer
        self.stats = InjectorStats()
        self.records: List[FaultRecord] = []
        self._open_records: Dict[FaultEvent, FaultRecord] = {}
        self._degraded: set = set()
        #: Active link impairments, summed into one LinkFault.
        self._link_loss = 0.0
        self._link_dup = 0.0
        self._link_jitter = 0
        if plan.is_empty:
            # The empty plan is the identity: schedule nothing, bind
            # nothing, allocate no RNG — byte-identical to no injector.
            self._rng = None
            return
        for event in plan.events:
            self._validate(event)
        self._rng = random.Random(plan.seed)
        self._bind()
        for event in plan.events:
            engine.sim.at(event.at, self._apply, event)
            if event.until is not None:
                engine.sim.at(event.until, self._clear, event)

    # -- setup -------------------------------------------------------------

    def _validate(self, event: FaultEvent) -> None:
        num_cores = self.engine.config.num_cores
        if event.kind == "host_down":
            raise ValueError(
                "host_down faults need a ClusterFaultInjector, not an "
                "engine-scoped FaultInjector"
            )
        if event.kind.startswith("link_") and self.link is None:
            raise ValueError(f"{event.kind} fault needs a link attached")
        if event.kind.startswith("core_") and not 0 <= event.target < num_cores:
            raise ValueError(
                f"{event.kind} target {event.target} out of range "
                f"[0, {num_cores})"
            )
        if event.kind == "queue_pause" and not (
            0 <= event.target < self.engine.nic.num_queues
        ):
            raise ValueError(
                f"queue_pause target {event.target} out of range "
                f"[0, {self.engine.nic.num_queues})"
            )

    def _bind(self) -> None:
        registry = self.engine.telemetry.registry
        stats = self.stats
        plan = self.plan
        registry.bind("faults.scheduled", lambda: len(plan.events))
        registry.bind("faults.applied", lambda: stats.applied)
        registry.bind("faults.cleared", lambda: stats.cleared)
        registry.bind("faults.flushed_packets", lambda: stats.flushed_packets)
        registry.bind("faults.resteers", lambda: stats.resteers)
        registry.bind("faults.fd_evicted", lambda: stats.fd_evicted)
        link = self.link
        if link is not None:
            registry.bind("faults.link_lost", lambda: link.fault_lost)
            registry.bind("faults.link_duplicated", lambda: link.fault_duplicated)
            registry.bind("faults.link_jittered", lambda: link.fault_jittered)
            # Fault-induced link drops report through the same on_drop
            # trace channel as NIC drops (distinct kinds).
            tracer = self.engine.telemetry.tracer
            if tracer is not None and link.on_drop is None:
                link.on_drop = self.engine.telemetry._trace_nic_drop

    # -- apply/clear callbacks ---------------------------------------------

    def _apply(self, event: FaultEvent) -> None:
        engine = self.engine
        now = engine.sim.now
        self.stats.applied += 1
        record = FaultRecord(event.kind, event.target, applied_at=now)
        self.records.append(record)
        if event.until is not None:
            self._open_records[event] = record
        kind = event.kind
        if kind == "core_slow":
            engine.host.cores[event.target].cycle_factor = event.magnitude
            self._degrade(event.target)
        elif kind == "core_stall":
            engine.host.cores[event.target].stall()
            self._degrade(event.target)
        elif kind == "core_crash":
            self.stats.flushed_packets += engine.crash_core(
                event.target, resteer=self.resteer
            )
            self._degraded.add(event.target)
            if self.resteer:
                self.stats.resteers += 1
        elif kind == "link_loss":
            self._link_loss = event.magnitude
            self._update_link()
        elif kind == "link_dup":
            self._link_dup = event.magnitude
            self._update_link()
        elif kind == "link_jitter":
            self._link_jitter = int(event.magnitude)
            self._update_link()
        elif kind == "queue_pause":
            engine.nic.disable_queue(event.target, kind="queue_paused")
        elif kind == "fd_evict":
            self.stats.fd_evicted += engine.nic.flow_director.evict(
                event.magnitude, self._rng
            )
        tracer = engine.telemetry.tracer
        if tracer is not None:
            tracer.instant(
                f"fault_{kind}", event.target, now, magnitude=event.magnitude
            )

    def _clear(self, event: FaultEvent) -> None:
        engine = self.engine
        now = engine.sim.now
        self.stats.cleared += 1
        record = self._open_records.pop(event, None)
        if record is not None:
            record.cleared_at = now
        kind = event.kind
        if kind == "core_slow":
            engine.host.cores[event.target].cycle_factor = 1.0
            self._recover(event.target)
        elif kind == "core_stall":
            engine.host.cores[event.target].resume()
            self._recover(event.target)
        elif kind == "link_loss":
            self._link_loss = 0.0
            self._update_link()
        elif kind == "link_dup":
            self._link_dup = 0.0
            self._update_link()
        elif kind == "link_jitter":
            self._link_jitter = 0
            self._update_link()
        elif kind == "queue_pause":
            engine.nic.enable_queue(event.target)
        tracer = engine.telemetry.tracer
        if tracer is not None:
            tracer.instant(f"fault_clear_{kind}", event.target, now)

    # -- helpers -----------------------------------------------------------

    def _degrade(self, core_id: int) -> None:
        self._degraded.add(core_id)
        self._offer_resteer()

    def _recover(self, core_id: int) -> None:
        self._degraded.discard(core_id)
        self._offer_resteer()

    def _offer_resteer(self) -> None:
        if not self.resteer:
            return
        engine = self.engine
        if engine.policy.resteer_around(engine, frozenset(self._degraded)):
            self.stats.resteers += 1
            engine.invalidate_steering_cache()

    def _update_link(self) -> None:
        link = self.link
        if self._link_loss or self._link_dup or self._link_jitter:
            link.set_fault(
                LinkFault(
                    loss_p=self._link_loss,
                    dup_p=self._link_dup,
                    jitter_ps=self._link_jitter,
                    rng=self._rng,
                )
            )
        else:
            link.set_fault(None)

    def to_dicts(self) -> List[Dict[str, Any]]:
        """The fault records as plain dicts (JSON-serializable)."""
        return [record.to_dict() for record in self.records]


class ClusterFaultInjector:
    """Applies ``host_down`` faults to a :class:`ClusterMiddlebox`.

    ``target`` indexes the *sorted live host list at apply time*, so a
    plan stays meaningful regardless of host naming. Other fault kinds
    are rejected — build per-engine :class:`FaultInjector`\\ s for those.
    """

    def __init__(self, cluster: Any, plan: FaultPlan):
        self.cluster = cluster
        self.plan = plan
        self.records: List[FaultRecord] = []
        self.hosts_failed: List[str] = []
        if plan.is_empty:
            return
        for event in plan.events:
            if event.kind != "host_down":
                raise ValueError(
                    f"ClusterFaultInjector only handles host_down, got {event.kind!r}"
                )
        for event in plan.events:
            cluster.sim.at(event.at, self._apply, event)

    def _apply(self, event: FaultEvent) -> None:
        live = self.cluster.live_hosts
        if not 0 <= event.target < len(live):
            raise ValueError(
                f"host_down target {event.target} out of range: "
                f"{len(live)} live hosts"
            )
        host = live[event.target]
        self.cluster.fail_host(host)
        self.hosts_failed.append(host)
        self.records.append(
            FaultRecord("host_down", event.target, applied_at=self.cluster.sim.now)
        )
