"""Resilience measurements: an open-loop run with a fault plan attached.

:func:`run_resilience` mirrors :func:`repro.experiments.harness.run_open_loop`
— same wiring, same generator — plus a :class:`FaultInjector` driving the
plan and a bucketed timeline (throughput + p99 per time bucket) so the
degradation and recovery around the fault window are visible, not
averaged away. :func:`run_resilience_scenario` is the scenario-kind
adapter registered as ``"resilience"`` in
:data:`repro.experiments.spec.KIND_RUNNERS`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.experiments.harness import build_engine
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.metrics.latency import LatencyRecorder
from repro.metrics.throughput import RateMeter
from repro.net.packet import Packet
from repro.nic.link import Link
from repro.sim.engine import Simulator
from repro.sim.timeunits import MICROSECOND, MILLISECOND
from repro.trafficgen.flows import random_tcp_flows
from repro.trafficgen.moongen import LINE_RATE_64B_PPS, OpenLoopGenerator


@dataclass
class ResilienceResult:
    """One faulted open-loop run: aggregates plus the bucketed timeline."""

    mode: str
    nf_cycles: int
    num_flows: int
    offered_pps: float
    rate_mpps: float
    rate_gbps: float
    p99_latency_us: float
    #: One row per time bucket: ``{"t_ms", "fwd_mpps", "p99_us"}``.
    timeline: List[Dict[str, float]] = field(default_factory=list)
    #: Applied faults with apply/clear times (MTTR accounting).
    fault_records: List[Dict[str, Any]] = field(default_factory=list)
    #: Buckets after the fault window until throughput recovered to 90%
    #: of the pre-fault mean, in ms (None = no fault window, or never).
    recovery_ms: Optional[float] = None
    engine_summary: Dict[str, object] = field(default_factory=dict)
    telemetry: Dict[str, object] = field(default_factory=dict)


def _bucket_p99_us(samples: List[int]) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(0.99 * len(ordered)))] / MICROSECOND


def _recovery_ms(
    timeline: List[Dict[str, float]],
    plan: Optional[FaultPlan],
    bucket: int,
) -> Optional[float]:
    """Buckets between the last fault clear and 90%-of-baseline recovery."""
    window = plan.window() if plan is not None else None
    if window is None:
        return None
    fault_start, fault_end = window
    pre = [r["fwd_mpps"] for r in timeline if (r["t_ms"] * MILLISECOND) < fault_start]
    if not pre:
        return None
    threshold = 0.9 * (sum(pre) / len(pre))
    post = [r for r in timeline if (r["t_ms"] * MILLISECOND) >= fault_end]
    for i, row in enumerate(post):
        if row["fwd_mpps"] >= threshold:
            return i * bucket / MILLISECOND
    return None


def run_resilience(
    mode: str,
    nf_cycles: int,
    num_flows: int = 32,
    offered_pps: float = LINE_RATE_64B_PPS,
    duration: int = 30 * MILLISECOND,
    warmup: int = 5 * MILLISECOND,
    seed: int = 1,
    num_cores: int = 8,
    frame_len: int = 64,
    burst: Optional[int] = None,
    plan: Optional[FaultPlan] = None,
    bucket: int = MILLISECOND,
    resteer: bool = True,
    nf=None,
    extra_traffic=None,
    **config_kwargs,
) -> ResilienceResult:
    """One open-loop measurement under ``plan``'s faults.

    The aggregate window (``warmup`` to ``duration``) spans the fault,
    so ``rate_mpps``/``p99_latency_us`` price the whole episode; the
    ``timeline`` (bucket width ``bucket`` ps, covering the full run)
    shows where the damage lands and how fast it heals.

    ``extra_traffic`` is an optional hook for adverse traffic riding on
    top of the base workload (Figure S's targeted SYN flood): called as
    ``extra_traffic(sim, ingress.send)`` once the wiring is up, and any
    returned object with a ``stop()`` method is stopped with the main
    generator.
    """
    if not 0 <= warmup < duration:
        raise ValueError(f"need 0 <= warmup < duration, got {warmup}, {duration}")
    if bucket < 1:
        raise ValueError(f"bucket must be >= 1 ps, got {bucket}")
    sim = Simulator()
    rng = random.Random(seed)
    engine = build_engine(
        mode, nf=nf, nf_cycles=nf_cycles, num_cores=num_cores, sim=sim, **config_kwargs
    )

    meter = RateMeter()
    latency = LatencyRecorder()
    n_buckets = (duration + bucket - 1) // bucket
    bucket_counts = [0] * n_buckets
    bucket_samples: List[List[int]] = [[] for _ in range(n_buckets)]

    def collector(packet: Packet, now: int) -> None:
        meter.record(packet.frame_len)
        b = min(n_buckets - 1, now // bucket)
        bucket_counts[b] += 1
        bucket_samples[b].append(now - packet.created_at)
        if meter.measuring:
            latency.record(now - packet.created_at)

    ingress = Link(sim, 10e9, 1 * MICROSECOND, name="gen->mb", queue_limit=1000)
    ingress.sink = engine.receive
    egress = Link(sim, 10e9, 1 * MICROSECOND, sink=collector, name="mb->gen")
    engine.set_egress(egress.send)

    injector = FaultInjector(
        engine, plan if plan is not None else FaultPlan(), link=ingress, resteer=resteer
    )

    line_rate = 10e9 / ((frame_len + 20) * 8)
    offered = min(offered_pps, line_rate)
    flows = random_tcp_flows(num_flows, rng)
    generator = OpenLoopGenerator(
        sim, ingress.send, flows, offered, rng, frame_len=frame_len, burst=burst
    )
    generator.start(at=0)
    extra = extra_traffic(sim, ingress.send) if extra_traffic is not None else None
    sim.run(until=warmup)
    meter.open_window(sim.now)
    sim.run(until=duration)
    meter.close_window(sim.now)
    generator.stop()
    if extra is not None and hasattr(extra, "stop"):
        extra.stop()

    timeline = [
        {
            "t_ms": i * bucket / MILLISECOND,
            "fwd_mpps": bucket_counts[i] / (bucket / 1e12) / 1e6,
            "p99_us": _bucket_p99_us(bucket_samples[i]),
        }
        for i in range(n_buckets)
    ]
    return ResilienceResult(
        mode=mode,
        nf_cycles=nf_cycles,
        num_flows=num_flows,
        offered_pps=offered,
        rate_mpps=meter.rate_mpps,
        rate_gbps=meter.rate_gbps,
        p99_latency_us=latency.percentile_us(0.99),
        timeline=timeline,
        fault_records=injector.to_dicts(),
        recovery_ms=_recovery_ms(timeline, plan, bucket),
        engine_summary=engine.summary(),
        telemetry=engine.telemetry.dump(),
    )


def run_resilience_scenario(scenario) -> tuple:
    """The ``"resilience"`` kind runner: Scenario -> (values, dump).

    Kind-specific extras (ride in ``scenario.params``): ``fault_plan``
    (a :class:`FaultPlan` — frozen/hashable, so it fits the params
    tuple), ``bucket_ps``, ``resteer``. Everything else is engine
    config.
    """
    kwargs = dict(scenario.extras)
    plan = kwargs.pop("fault_plan", None)
    bucket = kwargs.pop("bucket_ps", MILLISECOND)
    resteer = kwargs.pop("resteer", True)
    if scenario.duration is not None:
        kwargs["duration"] = scenario.duration
    if scenario.warmup is not None:
        kwargs["warmup"] = scenario.warmup
    if scenario.offered_pps is not None:
        kwargs["offered_pps"] = scenario.offered_pps
    result = run_resilience(
        scenario.mode,
        scenario.nf_cycles,
        num_flows=scenario.num_flows,
        seed=scenario.seed,
        num_cores=scenario.num_cores,
        frame_len=scenario.frame_len,
        burst=scenario.burst,
        plan=plan,
        bucket=bucket,
        resteer=resteer,
        **kwargs,
    )
    summary = result.engine_summary
    values = {
        "rate_mpps": result.rate_mpps,
        "rate_gbps": result.rate_gbps,
        "p99_latency_us": result.p99_latency_us,
        "rx_dropped_queue_full": summary.get("rx_dropped_queue_full", 0),
        "rx_dropped_fault": summary.get("rx_dropped_fault", 0),
        "fault_drops": summary.get("fault_drops", 0),
        "recovery_ms": result.recovery_ms,
        "timeline": result.timeline,
        "fault_records": result.fault_records,
    }
    return values, result.telemetry
