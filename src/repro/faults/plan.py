"""Declarative fault plans.

A :class:`FaultPlan` is a frozen, picklable schedule of timed fault
events — the *description* of an adverse operating regime, separated
from the machinery that applies it (:mod:`repro.faults.injector`).
Keeping plans as plain frozen data means they can ride inside a
:class:`~repro.experiments.spec.Scenario`'s ``params`` tuple, cross a
process-pool boundary, and key a cache, exactly like every other
scenario knob.

Event taxonomy (see DESIGN.md § Fault model):

==============  ==========================================================
``core_slow``   cycle-cost multiplier on one core (``magnitude`` = factor)
``core_stall``  core pauses at the next batch boundary, resumes at ``until``
``core_crash``  core dies permanently; queued work is flushed and counted
``link_loss``   Bernoulli packet loss on the attached link (``magnitude``)
``link_dup``    Bernoulli packet duplication on the link (``magnitude``)
``link_jitter`` uniform extra delivery delay in [0, ``magnitude``] ps
``queue_pause`` one NIC rx queue drops every arrival (flow-control stuck)
``fd_evict``    evict a fraction of installed Flow Director rules
``host_down``   a cluster host fails; its flow state is lost (no migration)
==============  ==========================================================

Windowed kinds carry ``until`` (the clear time); permanent kinds
(``core_crash``, ``fd_evict``, ``host_down``) must not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

#: Fault kinds that apply and later clear (``until`` required).
WINDOWED_KINDS = frozenset(
    {"core_slow", "core_stall", "link_loss", "link_dup", "link_jitter", "queue_pause"}
)
#: Fault kinds that never clear (``until`` must be None).
PERMANENT_KINDS = frozenset({"core_crash", "fd_evict", "host_down"})
FAULT_KINDS = WINDOWED_KINDS | PERMANENT_KINDS

#: Kinds whose ``magnitude`` is a probability in (0, 1].
_PROBABILITY_KINDS = frozenset({"link_loss", "link_dup", "fd_evict"})


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    ``at``/``until`` are simulator picoseconds; ``target`` names the
    core, queue, or host index the fault hits (ignored by link kinds);
    ``magnitude`` is kind-specific (slowdown factor, probability, or
    jitter picoseconds).
    """

    kind: str
    at: int
    until: Optional[int] = None
    target: int = 0
    magnitude: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {sorted(FAULT_KINDS)}"
            )
        if self.at < 0:
            raise ValueError(f"fault time must be >= 0, got {self.at}")
        if self.kind in PERMANENT_KINDS:
            if self.until is not None:
                raise ValueError(f"{self.kind} is permanent; until must be None")
        else:
            if self.until is None:
                raise ValueError(f"{self.kind} needs an until (clear) time")
            if self.until <= self.at:
                raise ValueError(
                    f"until must be after at, got [{self.at}, {self.until}]"
                )
        if self.kind in _PROBABILITY_KINDS and not 0.0 < self.magnitude <= 1.0:
            raise ValueError(
                f"{self.kind} magnitude must be a probability in (0, 1], "
                f"got {self.magnitude}"
            )
        if self.kind == "core_slow" and self.magnitude <= 0.0:
            raise ValueError(
                f"core_slow magnitude is a cycle-cost factor and must be > 0, "
                f"got {self.magnitude}"
            )
        if self.kind == "link_jitter" and self.magnitude < 1:
            raise ValueError(
                f"link_jitter magnitude is a picosecond bound and must be >= 1, "
                f"got {self.magnitude}"
            )

    @property
    def end(self) -> int:
        """When the fault stops changing things (= ``at`` if permanent)."""
        return self.until if self.until is not None else self.at


@dataclass(frozen=True)
class FaultPlan:
    """An immutable schedule of fault events plus the fault RNG seed.

    ``seed`` feeds the injector's private RNG (link loss/dup draws, FD
    eviction sampling) so a plan's randomness is independent of the
    workload's. The empty plan is the identity: attaching it to a run
    is a strict no-op (nothing scheduled, nothing bound), so results
    are byte-identical to a run with no injector at all.
    """

    events: Tuple[FaultEvent, ...] = ()
    seed: int = 1

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))
        for event in self.events:
            if not isinstance(event, FaultEvent):
                raise TypeError(f"expected FaultEvent, got {type(event).__name__}")

    @classmethod
    def of(cls, *events: FaultEvent, seed: int = 1) -> "FaultPlan":
        """Build a plan with events in deterministic (time, kind) order."""
        return cls(
            events=tuple(sorted(events, key=lambda e: (e.at, e.end, e.kind, e.target))),
            seed=seed,
        )

    def __len__(self) -> int:
        return len(self.events)

    @property
    def is_empty(self) -> bool:
        return not self.events

    def window(self) -> Optional[Tuple[int, int]]:
        """(first apply time, last clear/apply time), or None if empty."""
        if not self.events:
            return None
        return (
            min(e.at for e in self.events),
            max(e.end for e in self.events),
        )


# -- builder helpers -------------------------------------------------------
#
# Thin named constructors so experiment code reads as a schedule, not a
# pile of positional dataclass calls.


def core_slow(core: int, at: int, until: int, factor: float) -> FaultEvent:
    """Core ``core`` pays ``factor``x time per cycle in [at, until)."""
    return FaultEvent("core_slow", at=at, until=until, target=core, magnitude=factor)


def core_stall(core: int, at: int, until: int) -> FaultEvent:
    """Core ``core`` stops picking up batches in [at, until)."""
    return FaultEvent("core_stall", at=at, until=until, target=core)


def core_crash(core: int, at: int) -> FaultEvent:
    """Core ``core`` dies permanently at ``at``."""
    return FaultEvent("core_crash", at=at, target=core)


def link_loss(at: int, until: int, probability: float) -> FaultEvent:
    """The attached link loses each packet with ``probability``."""
    return FaultEvent("link_loss", at=at, until=until, magnitude=probability)


def link_dup(at: int, until: int, probability: float) -> FaultEvent:
    """The attached link duplicates each packet with ``probability``."""
    return FaultEvent("link_dup", at=at, until=until, magnitude=probability)


def link_jitter(at: int, until: int, jitter_ps: int) -> FaultEvent:
    """Deliveries gain a uniform extra delay in [0, jitter_ps]."""
    return FaultEvent("link_jitter", at=at, until=until, magnitude=float(jitter_ps))


def queue_pause(queue: int, at: int, until: int) -> FaultEvent:
    """NIC rx queue ``queue`` drops every arrival in [at, until)."""
    return FaultEvent("queue_pause", at=at, until=until, target=queue)


def fd_evict(at: int, fraction: float) -> FaultEvent:
    """Evict ``fraction`` of installed Flow Director rules at ``at``."""
    return FaultEvent("fd_evict", at=at, magnitude=fraction)


def host_down(host_index: int, at: int) -> FaultEvent:
    """Cluster host at sorted index ``host_index`` fails at ``at``."""
    return FaultEvent("host_down", at=at, target=host_index)
