"""Fault injection & resilience (see DESIGN.md § Fault model).

Declarative :class:`FaultPlan` schedules applied deterministically at
the sim-event seam by :class:`FaultInjector` (engine-scoped faults) or
:class:`ClusterFaultInjector` (``host_down``). The study harness lives
in :mod:`repro.faults.study` (imported lazily — it pulls in the
experiment stack).
"""

from repro.faults.injector import ClusterFaultInjector, FaultInjector, FaultRecord
from repro.faults.plan import (
    FAULT_KINDS,
    FaultEvent,
    FaultPlan,
    PERMANENT_KINDS,
    WINDOWED_KINDS,
    core_crash,
    core_slow,
    core_stall,
    fd_evict,
    host_down,
    link_dup,
    link_jitter,
    link_loss,
    queue_pause,
)

__all__ = [
    "FAULT_KINDS",
    "PERMANENT_KINDS",
    "WINDOWED_KINDS",
    "FaultEvent",
    "FaultPlan",
    "FaultInjector",
    "ClusterFaultInjector",
    "FaultRecord",
    "core_crash",
    "core_slow",
    "core_stall",
    "fd_evict",
    "host_down",
    "link_dup",
    "link_jitter",
    "link_loss",
    "queue_pause",
]
