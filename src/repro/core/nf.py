"""The NF programming model (paper §3.4, Tables 1 and 2).

An NF implements up to three hooks:

- ``init(ctx)`` — once per core, before traffic; allocate per-core
  scratch state via ``ctx.local``, size flow tables, etc.
- ``connection_packets(packets, ctx)`` — receives every connection
  packet (SYN/FIN/RST) of flows designated to this core, both the ones
  that arrived locally and the ones transferred from other cores. This
  is the only place flow state may be created, modified or removed.
- ``regular_packets(packets, ctx)`` — receives everything else, on
  whatever core the NIC sprayed it to; may read any flow's state via
  ``ctx.get_flow`` but must not modify it.

The :class:`NfContext` is the per-core facade over the flow-state
manager (Table 2 API) plus cycle accounting: every state access charges
its modelled cost to the current batch, and ``consume_cycles`` expresses
pure computation (the evaluation NF's busy loop, a firewall's ACL walk).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Set

from repro.net.five_tuple import FiveTuple
from repro.net.packet import Packet


class NfContext:
    """Per-core execution context handed to NF hooks.

    Created by the engine; one instance per core. The flow-state methods
    mirror the paper's Table 2 exactly, with ``get_flows`` as the
    documented batched-lookup optimization.
    """

    def __init__(self, core_id: int, engine: "Any"):
        self.core_id = core_id
        self.engine = engine
        #: Per-core scratch storage for the NF (read/write freely).
        self.local: Dict[str, Any] = {}
        self._cycles: float = 0.0
        self._dropped: Set[int] = set()

    # -- batch lifecycle (driven by the engine) --------------------------

    def begin_batch(self) -> None:
        self._cycles = 0.0
        self._dropped.clear()

    def end_batch(self) -> float:
        return self._cycles

    def is_dropped(self, packet: Packet) -> bool:
        return packet.packet_id in self._dropped

    # -- Table 2: flow state API -----------------------------------------

    def insert_local_flow(self, flow_id: FiveTuple, entry: Any) -> Any:
        """Insert a flow entry in this core's local table.

        Only legal on the flow's designated core (writing partition);
        violating that raises
        :class:`repro.core.flow_state.OwnershipViolation` (a
        :class:`~repro.core.flow_state.WritingPartitionError`) carrying
        the offending core, the designated core, and the sim timestamp.
        """
        entry, cycles = self.engine.flow_state.insert_local(self.core_id, flow_id, entry)
        self._cycles += cycles
        return entry

    def remove_local_flow(self, flow_id: FiveTuple) -> bool:
        """Remove a flow entry from this core's local table."""
        removed, cycles = self.engine.flow_state.remove_local(self.core_id, flow_id)
        self._cycles += cycles
        return removed

    def get_local_flow(self, flow_id: FiveTuple) -> Optional[Any]:
        """Retrieve a *modifiable* entry from the local table."""
        entry, cycles = self.engine.flow_state.get_local(self.core_id, flow_id)
        self._cycles += cycles
        return entry

    def get_flow(self, flow_id: FiveTuple) -> Optional[Any]:
        """Retrieve an *unmodifiable* entry from its designated core.

        Like the paper's C API, read-only-ness is lightly enforced: the
        entry object itself is returned and mutating it from here is
        undefined behaviour.
        """
        entry, cycles = self.engine.flow_state.get(self.core_id, flow_id)
        self._cycles += cycles
        return entry

    def get_flows(self, flow_ids: Iterable[FiveTuple]) -> List[Optional[Any]]:
        """Batched ``get_flow`` over several flow ids (amortized cost)."""
        entries, cycles = self.engine.flow_state.get_many(self.core_id, flow_ids)
        self._cycles += cycles
        return entries

    def designated_core(self, flow_id: FiveTuple) -> int:
        """Which core owns this flow's state (deterministic)."""
        return self.engine.designated_core(flow_id)

    # -- global (non-per-flow) state -------------------------------------

    def read_global(self, name: str, relaxed: bool = False) -> None:
        """Charge a read of NF-global shared state (e.g. a server pool).

        ``relaxed=True`` models the paper's loose-consistency pattern
        (per-core shards aggregated off the fast path): the access stays
        core-local and cheap.
        """
        if relaxed:
            self._cycles += self.engine.costs.flow_lookup_local
        else:
            self._cycles += self.engine.coherence.read(self.core_id, ("global", name))

    def write_global(self, name: str, relaxed: bool = False) -> None:
        """Charge a write of NF-global shared state (lock + coherence)."""
        if relaxed:
            self._cycles += self.engine.costs.flow_lookup_local
        else:
            self._cycles += self.engine.costs.lock_cycles
            self._cycles += self.engine.coherence.write(self.core_id, ("global", name))

    # -- packet verbs ------------------------------------------------------

    def drop(self, packet: Packet) -> None:
        """Drop the packet: it will not be forwarded."""
        self._dropped.add(packet.packet_id)

    def update_header(self, packet: Packet, new_flow_id: FiveTuple) -> None:
        """Rewrite the packet's five-tuple (NAT-style), charging the cost."""
        packet.five_tuple = new_flow_id
        self._cycles += self.engine.costs.header_update

    def consume_cycles(self, cycles: float) -> None:
        """Charge pure computation to the current batch."""
        if cycles < 0:
            raise ValueError(f"cycles must be non-negative, got {cycles}")
        self._cycles += cycles

    @property
    def now(self) -> int:
        """Current simulation time (picoseconds)."""
        return self.engine.sim.now


class NetworkFunction:
    """Base class for NFs built on Sprayer's programming model.

    Subclasses override the hooks they need. ``stateless = True``
    disables flow tables and connection-packet redirection entirely
    (paper §3.4, last paragraph): all packets are then delivered to
    ``regular_packets`` on their arrival core.
    """

    #: Short name used in registries and experiment output.
    name: str = "nf"
    #: Stateless NFs skip classification, flow tables, and redirection.
    stateless: bool = False
    #: Opt-in batch API: when True, the engine delivers each regular
    #: burst through :meth:`process_batch` instead of
    #: :meth:`regular_packets`. An NF should opt in when its regular
    #: path is already vectorized over the burst (amortized state
    #: lookups, one cycle charge); stateful NFs that reason one packet
    #: at a time should leave this False and keep the automatic
    #: per-packet fallback.
    batch_capable: bool = False

    def init(self, ctx: NfContext) -> None:
        """Per-core initialization hook (memory allocation, parameters)."""

    def connection_packets(self, packets: List[Packet], ctx: NfContext) -> None:
        """Handle a batch of connection packets on their designated core.

        The default forwards them through ``regular_packets``, matching
        the paper's sample NAT which falls through for everything that
        is not the first SYN.
        """
        self.regular_packets(packets, ctx)

    def regular_packets(self, packets: List[Packet], ctx: NfContext) -> None:
        """Handle a batch of regular packets on their arrival core."""

    def process_batch(self, packets: List[Packet], ctx: NfContext) -> None:
        """Batch entry point (consulted when ``batch_capable`` is True).

        The default is the automatic per-packet fallback: each packet
        goes through :meth:`regular_packets` alone, preserving strict
        one-at-a-time semantics for NFs that never opted in but are
        called through the batch API anyway. Batch-capable NFs override
        this (or alias it to their vectorized ``regular_packets``).
        """
        for packet in packets:
            self.regular_packets([packet], ctx)
