"""The batch ingress spine: eager steering, lazy settlement.

The scalar spine turns every packet into one heap event (the link
arrival) plus one pass through ``engine.receive`` → ``nic.receive`` —
five Python frames and an object allocation per packet. This module
replaces that with the struct-of-arrays pipeline the paper's DPDK
argument is about:

- the generator emits a columnar :class:`~repro.net.batch.PacketBatch`
  per burst (no ``Packet`` objects);
- ``Link.send_batch`` computes every arrival time in one loop and hands
  the batch *synchronously* to an :class:`ArrivalStager` — zero heap
  events for data packets;
- the stager classifies the whole batch eagerly (``nic.steer_batch``:
  custom pipeline / Flow Director / RSS over columns) and **settles
  lazily**: the per-packet receive side effects (counters, fd-cap
  tokens, queue pushes, drops, SCR log appends) are replayed packet by
  packet, in arrival order, only when some simulation actor is about to
  observe them. Packets the NIC drops are never materialized at all —
  the dominant saving at overload.

Byte-exactness contract
-----------------------

Every figure, fingerprint and conformance row must match the scalar
spine bit for bit. Three mechanisms make that hold:

1. **Reserved event sequences.** At stage time the stager advances the
   simulator's sequence counter once per packet — exactly the sequences
   the scalar arrival events would have consumed. A staged arrival is
   settled when ``(arrival, seq)`` precedes the currently firing event's
   ``(now, sim._event_seq)``, which is precisely the heap order the
   scalar event loop would have used, including exact-picosecond ties
   between arrivals and batch completions.

2. **Settle seams.** Settlement runs at every point scalar arrival
   events could have run before: batch completion entry
   (``Core.poll_arrivals``), scalar ingress (``engine.receive``),
   sampler ticks, summary/conservation/telemetry reads, core resume,
   and steering/block mutations (via the ``on_change`` /
   ``on_block_change`` hooks, *before* the mutation applies). When a
   core is idle while arrivals are staged, an armed timer fires at the
   earliest arrival so the core wakes exactly when its scalar wake
   would have happened; at saturation no timer exists and settlement
   rides the completion events for free.

3. **Lazy token/queue state.** fd-cap tokens are consumed at settle
   time with the *stored arrival timestamp* (settlement is globally
   arrival-ordered, so refill arithmetic is reproduced term for term),
   and queue capacity/blocked-queue checks read live state at settle —
   which, thanks to the seams above, is the state the scalar path
   would have seen at that packet's arrival event.

Classification is the one thing done eagerly; the ``on_change`` hooks
on the Flow Director table and RSS indirection settle pre-mutation
arrivals and mark the remainder for reclassification, so decisions
always reflect the table as of each packet's arrival.

Fallback rules: policies whose classifier reads the clock or mutates
state per decision declare ``ingress_batchable = False`` (flowlet) and
keep the scalar spine; link impairment windows re-route batches through
per-packet scalar sends (the Bernoulli draw order and dup/jitter event
ordering then come from the real heap).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Deque, Optional

from repro.net.batch import PacketBatch
from repro.nic.nic import VIA_FD, VIA_RSS
from repro.sim.timeunits import SECOND

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.core.engine import MiddleboxEngine
    from repro.nic.link import Link


@dataclass
class StagerStats:
    """Stager-side accounting (diagnostics only).

    Deliberately *not* registered with the telemetry registry: the
    conformance suite compares scalar and batch summaries byte for
    byte, and these counters exist only on the batch spine.
    """

    packets_staged: int = 0
    packets_settled: int = 0
    batches_staged: int = 0
    settles: int = 0
    timers_armed: int = 0
    reclassifications: int = 0


class _Run:
    """One staged batch: columns plus its eager steering decisions."""

    __slots__ = ("batch", "queues", "vias", "seq0", "idx")

    def __init__(self, batch: PacketBatch, queues, vias, seq0: int):
        self.batch = batch
        self.queues = queues
        self.vias = vias
        #: Reserved heap sequence of row 0 (row i holds ``seq0 + i``).
        self.seq0 = seq0
        #: First unsettled row.
        self.idx = 0


class ArrivalStager:
    """Holds classified batches until the simulation must observe them."""

    def __init__(self, engine: "MiddleboxEngine"):
        self.engine = engine
        self.sim = engine.sim
        self.nic = engine.nic
        self.host = engine.host
        self.stats = StagerStats()
        self._runs: Deque[_Run] = deque()
        self._dirty = False
        self._settling = False
        #: Wake timer, as a generation-checked ``sim.post`` rather than
        #: a cancellable handle: posts allocate nothing, and a stale
        #: post is harmless — it fires at the arrival time of a row
        #: whose *scalar* arrival event would have been live at that
        #: exact time anyway, so ``has_live_events()`` (the sampler's
        #: quiescence test) never reads differently from the scalar
        #: spine. ``_timer_at`` is -1 while no current-generation post
        #: is outstanding.
        self._timer_gen = 0
        self._timer_at = -1
        #: Leading unsettled rows known (from the last :meth:`_arm`
        #: scan) to target busy or halted cores — they need no wake
        #: timer. Reset whenever a core goes idle or steering mutates.
        self._skip = 0
        # Engine-stable hot-loop state, packed into one tuple so the
        # settle prologue pays a single attribute load + C unpack
        # instead of ten attribute loads per call.
        self._cores = self.host.cores
        nic = self.nic
        self._hot = (
            self.host,
            nic.stats,
            nic.stats.per_queue_rx,
            nic.queues,
            engine._scr,
            nic,
            # fd-cap gate, prebound: config-static, None when Flow
            # Director is off or uncapped (consume is then a no-op).
            nic._fd_cap if nic._fd_enabled else None,
            engine.telemetry.sampler,
        )

    # -- wiring -------------------------------------------------------------

    def attach(self, link: "Link") -> None:
        """Wire the stager into the link, NIC, cores and telemetry."""
        engine = self.engine
        nic = self.nic
        link.batch_sink = self.stage
        nic.flow_director.on_change = self._on_steering_change
        nic.rss.on_change = self._on_steering_change
        nic.on_block_change = self.settle_due
        for core in self.host.cores:
            core.poll_arrivals = self.settle_due
            core.on_idle = self._on_core_idle
        engine._settle_hook = self.settle_due
        sampler = engine.telemetry.sampler
        if sampler is not None:
            sampler.pre_sample = self.settle_due

    # -- staging ------------------------------------------------------------

    def stage(self, batch: PacketBatch, now: int) -> None:
        """Accept one transmitted batch (called by ``Link.send_batch``).

        Arrivals already due (scalar events would have fired before the
        event this send runs in) settle first; then the new batch is
        classified eagerly and parked with its reserved sequences.
        """
        if self._runs:
            self.settle_due()
        n = len(batch.flows)
        if n == 0:
            return
        sim = self.sim
        # Reserve the heap sequences the scalar arrival events would
        # have consumed — one per row, dropped rows included, so every
        # event scheduled after this send keeps its relative order.
        seq0 = sim._sequence + 1
        sim._sequence += n
        queues, vias = self.nic.steer_batch(batch)
        self._runs.append(_Run(batch, queues, vias, seq0))
        stats = self.stats
        stats.batches_staged += 1
        stats.packets_staged += n
        self._arm()

    # -- settlement ---------------------------------------------------------

    def settle_due(self) -> None:
        """Settle every staged arrival that precedes the current event.

        "Precedes" is exact heap order: arrival time strictly before
        ``sim.now``, or equal with a reserved sequence below the firing
        event's (between ``run()`` calls the sequence boundary is +inf,
        so everything up to and including ``now`` settles).
        """
        runs = self._runs
        if not runs or self._settling:
            return
        # Fast guard: most calls (every batch-completion entry poll at
        # saturation) find nothing due. One front-row compare answers
        # that without entering the settle loop. NO_ARRIVAL rows (-1)
        # compare as due and are consumed inside ``_settle``.
        run = runs[0]
        arrival = run.batch.arrivals[run.idx]
        sim = self.sim
        now = sim._now
        if arrival > now or (arrival == now and run.seq0 + run.idx >= sim._event_seq):
            return
        self._settle(now, sim._event_seq)

    def _settle(self, now: int, barrier_seq) -> None:
        self._settling = True
        self.stats.settles += 1
        try:
            if self._dirty:
                self._reclassify()
            runs = self._runs
            (
                host,
                nic_stats,
                per_queue_rx,
                rx_queues,
                scr,
                nic,
                fd_cap,
                sampler,
            ) = self._hot
            # on_drop / blocked-queue state can only change through
            # events, which cannot interleave with this loop (settles
            # run first via on_block_change); bound once per call.
            on_drop = self.nic.on_drop
            blocked = self.nic._blocked_queues
            settled = 0
            # Aggregate counters, accumulated in locals and written back
            # once after the loop: nothing inside the loop reads them
            # (processors touch flow state and core stats only; the
            # sampler and summary/conservation readers run as events or
            # after a settle seam, never mid-loop).
            received = 0
            fd_matched_d = 0
            rss_fallback_d = 0
            fd_cap_drop_d = 0
            fault_drop_d = 0
            queue_full_d = 0
            while runs:
                run = runs[0]
                batch = run.batch
                arrivals = batch.arrivals
                queues = run.queues
                vias = run.vias
                seq0 = run.seq0
                materialize = batch.materialize
                i = run.idx
                n = len(arrivals)
                while i < n:
                    arrival = arrivals[i]
                    if arrival >= 0:
                        if arrival > now or (
                            arrival == now and seq0 + i >= barrier_seq
                        ):
                            break
                        # --- engine.receive + nic.receive, inlined ---
                        if sampler is not None and not (
                            sampler._armed or sampler._stopped
                        ):
                            sampler.notify_activity()
                        received += 1
                        packet = None
                        if scr is not None:
                            packet = materialize(i)
                            scr.observe(packet)
                        if fd_cap is not None:
                            # nic._consume_fd_token, inlined (a frame
                            # per row). The refill expression must stay
                            # `elapsed * cap / SECOND` term for term —
                            # rearranging changes float rounding, and
                            # with it which packets the cap drops.
                            elapsed = arrival - nic._fd_last_refill
                            if elapsed > 0:
                                tokens = nic._fd_tokens + elapsed * fd_cap / SECOND
                                burst_tokens = nic._fd_burst_tokens
                                nic._fd_tokens = (
                                    burst_tokens if tokens > burst_tokens else tokens
                                )
                                nic._fd_last_refill = arrival
                            if nic._fd_tokens >= 1.0:
                                nic._fd_tokens -= 1.0
                            else:
                                fd_cap_drop_d += 1
                                if on_drop is not None:
                                    if packet is None:
                                        packet = materialize(i)
                                    on_drop("fd_cap", packet, arrival)
                                if scr is not None:
                                    scr.retract(packet)
                                i += 1
                                continue
                        queue_id = queues[i]
                        via = vias[i]
                        if via == VIA_FD:
                            fd_matched_d += 1
                        elif via == VIA_RSS:
                            rss_fallback_d += 1
                        if blocked is not None:
                            kind = blocked.get(queue_id)
                            if kind is not None:
                                fault_drop_d += 1
                                if on_drop is not None:
                                    if packet is None:
                                        packet = materialize(i)
                                    packet.nic_rx_time = arrival
                                    packet.rx_queue = queue_id
                                    on_drop(kind, packet, arrival)
                                if scr is not None:
                                    scr.retract(packet)
                                i += 1
                                continue
                        queue = rx_queues[queue_id]
                        if len(queue._packets) >= queue.capacity:
                            queue.dropped += 1
                            queue_full_d += 1
                            if on_drop is not None:
                                if packet is None:
                                    packet = materialize(i)
                                packet.nic_rx_time = arrival
                                packet.rx_queue = queue_id
                                on_drop("queue_full", packet, arrival)
                            if scr is not None:
                                scr.retract(packet)
                            i += 1
                            continue
                        if packet is None:
                            packet = materialize(i)
                        packet.nic_rx_time = arrival
                        packet.rx_queue = queue_id
                        # push() may wake an idle core, which starts a
                        # batch synchronously — the same thing the
                        # scalar arrival event would have triggered.
                        queue.push(packet)
                        per_queue_rx[queue_id] += 1
                    i += 1
                settled += i - run.idx
                run.idx = i
                if i >= n:
                    runs.popleft()
                else:
                    break
            if received:
                host.packets_in += received
                nic_stats.rx_packets += received
                if fd_matched_d:
                    nic_stats.fd_matched += fd_matched_d
                if rss_fallback_d:
                    nic_stats.rss_fallback += rss_fallback_d
                if fd_cap_drop_d:
                    nic_stats.rx_dropped_fd_cap += fd_cap_drop_d
                if fault_drop_d:
                    nic_stats.rx_dropped_fault += fault_drop_d
                if queue_full_d:
                    nic_stats.rx_dropped_queue_full += queue_full_d
            self.stats.packets_settled += settled
            if settled:
                skip = self._skip - settled
                self._skip = skip if skip > 0 else 0
        finally:
            self._settling = False
        self._arm()

    def _reclassify(self) -> None:
        """Recompute steering for still-staged rows after a mutation.

        Runs lazily at the next settle so multi-step mutations (e.g.
        ``resteer_around``: clear + re-add rules + live-set update) are
        seen whole, not mid-flight.
        """
        self._dirty = False
        self._skip = 0
        steer = self.nic.steer_batch
        for run in self._runs:
            if run.idx < len(run.batch.flows):
                run.queues, run.vias = steer(run.batch)
                self.stats.reclassifications += 1

    # -- mutation / idle hooks ---------------------------------------------

    def _on_steering_change(self) -> None:
        """FD table or RSS indirection changed.

        Arrivals that precede the mutating event settle against their
        eager (pre-mutation) decisions — exactly what their scalar
        arrival events would have computed — and everything still
        staged is marked for reclassification.
        """
        self.settle_due()
        if self._runs:
            self._dirty = True
            self._skip = 0

    def _on_core_idle(self) -> None:
        if self._runs:
            if self._skip == 0 and self._timer_at >= 0:
                # The timer already targets the front unsettled row —
                # the earliest wake any idle set could need (arrivals
                # are monotonic), so the grown idle set changes nothing.
                return
            # The idle set grew: rows skipped against the old set may
            # now need a wake timer, so the arm scan restarts at front.
            self._skip = 0
            self._arm()

    # -- wake timer ---------------------------------------------------------

    def _arm(self) -> None:
        """Keep the invariant: a staged arrival whose target core is
        idle (and not halted) ⇒ a timer at the earliest such arrival —
        the moment that core's scalar wake would have happened. Rows
        bound for busy cores need no timer: the core's completion-entry
        poll settles them, and any observer in between reaches them
        through its own settle seam. At saturation no timer exists at
        all — settlement rides completion events for free.

        The scan is incremental: ``_skip`` remembers how many leading
        rows target busy/halted cores, and is reset whenever the idle
        set grows (a core went idle) or steering mutates — so at
        overload the scan is O(new rows) amortized, not O(backlog) per
        call.
        """
        runs = self._runs
        if not runs:
            return
        if self._dirty:
            # Steering mutated since staging: per-row queue targets are
            # stale until the next settle reclassifies, so fall back to
            # the conservative invariant (any idle core ⇒ timer at the
            # earliest unsettled arrival). Mutations are rare.
            for core in self._cores:
                if not core._busy and not core._halted:
                    break
            else:
                return
            at = -1
            for run in runs:
                arrivals = run.batch.arrivals
                n = len(arrivals)
                i = run.idx
                while i < n:
                    if arrivals[i] >= 0:
                        at = arrivals[i]
                        break
                    i += 1
                if at >= 0:
                    break
            if at < 0:
                return
        else:
            cores = self._cores
            skip = self._skip
            at = -1
            skipped = 0
            for run in runs:
                arrivals = run.batch.arrivals
                i = run.idx
                n = len(arrivals)
                remaining = n - i
                if skip >= remaining:
                    skip -= remaining
                    continue
                i += skip
                skip = 0
                queues = run.queues
                while i < n:
                    if arrivals[i] >= 0:
                        core = cores[queues[i]]
                        if not core._busy and not core._halted:
                            at = arrivals[i]
                            break
                    skipped += 1
                    i += 1
                if at >= 0:
                    break
            if skipped:
                self._skip += skipped
            if at < 0:
                return
        if 0 <= self._timer_at <= at:
            return
        self._timer_gen += 1
        self._timer_at = at
        self.sim.post(at, self._on_timer, self._timer_gen)
        self.stats.timers_armed += 1

    def _on_timer(self, gen: int) -> None:
        if gen != self._timer_gen:
            return  # superseded by a later arm
        self._timer_at = -1
        # Straight into _settle, skipping settle_due's front-row guard:
        # a current-generation timer fires at its target row's arrival
        # time, and every row ahead of it is due too (arrivals are
        # monotonic and their reserved sequences precede this post's).
        # Events never nest, so _settling cannot be set here.
        if self._runs:
            sim = self.sim
            self._settle(sim._now, sim._event_seq)
