"""Middlebox engine configuration."""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Optional

from repro.cpu.costs import CostModel

#: Steering modes understood by :func:`repro.steering.make_policy`.
MODES = ("rss", "sprayer", "naive", "prognic", "flowlet", "subset", "scr")


def _strict_checks_default() -> bool:
    """Default for ``strict_checks``: the ``REPRO_STRICT_CHECKS`` env var.

    An environment variable (rather than a parameter threaded through
    every figure runner) is what lets ``python -m repro.experiments
    --strict-checks`` arm the checkers in-process *and* inside every
    ``--jobs N`` pool worker, which inherit the environment.
    """
    return os.environ.get("REPRO_STRICT_CHECKS", "").strip().lower() in (
        "1", "true", "yes", "on",
    )


def _spine_default() -> str:
    """Default for ``spine``: the ``REPRO_SPINE`` env var, else "batch".

    Same env-var rationale as :func:`_strict_checks_default`: it reaches
    in-process runs and every ``--jobs N`` pool worker alike, which is
    what lets CI pin ``REPRO_SPINE=scalar`` for the differential
    fingerprint gate without threading a flag through every figure.
    """
    value = os.environ.get("REPRO_SPINE", "").strip().lower()
    return value or "batch"


@dataclass
class MiddleboxConfig:
    """Everything static about the simulated middlebox.

    Defaults mirror the paper's testbed: 8 cores at 2.0 GHz behind a
    10 GbE 82599-class NIC, DPDK-style batches of 32.
    """

    #: Steering mode: "rss" (baseline), "sprayer" (the paper), "naive"
    #: (spray without designated cores — ablation), "prognic" (NIC
    #: steers connection packets directly — §7), "flowlet", "subset",
    #: "scr" (state-compute replication: spray everything, replay the
    #: per-flow packet log on every core).
    mode: str = "sprayer"
    num_cores: int = 8
    batch_size: int = 32
    queue_capacity: int = 512
    ring_capacity: int = 512
    flow_table_capacity: int = 1 << 20
    #: Checksum LSBs matched by the spray rules (None = automatic).
    spray_bits: Optional[int] = None
    #: Flow Director classification cap in pps (None disables the cap).
    flow_director_pps_cap: Optional[float] = 10.5e6
    #: Enforce the single-writer discipline (raises on violation).
    enforce_partition: bool = True
    #: Arm the runtime checkers of :mod:`repro.checks`: wrap the flow
    #: state in an :class:`~repro.checks.OwnershipAuditor` (any second
    #: writer core per flow raises
    #: :class:`~repro.core.flow_state.OwnershipViolation`, on every
    #: backend) and digest per-core event streams for determinism
    #: audits. Observation only — results are byte-identical either
    #: way. Defaults to the ``REPRO_STRICT_CHECKS`` environment
    #: variable so ``--strict-checks`` reaches pool workers.
    strict_checks: bool = field(default_factory=_strict_checks_default)
    #: Use the symmetric designated-core hash (paper default). The
    #: asymmetric ablation shows why symmetry matters: both directions
    #: of a connection stop sharing a designated core.
    symmetric_designation: bool = True
    #: Flowlet gap that opens a new flowlet (picoseconds), flowlet mode.
    flowlet_gap: int = 50_000_000  # 50 us
    #: Cores per flow in "subset" mode.
    subset_size: int = 2
    #: Ingress spine: "batch" moves struct-of-arrays
    #: :class:`~repro.net.batch.PacketBatch` records from the generator
    #: through steering with lazy per-packet settlement; "scalar" keeps
    #: one heap event + one ``Packet`` object per ingress packet. Pure
    #: implementation choice — results are byte-identical either way
    #: (the conformance suite and the ``soa-smoke`` CI gate enforce it).
    #: Policies that cannot batch (flowlet) fall back to scalar
    #: automatically. Defaults to the ``REPRO_SPINE`` env var.
    spine: str = field(default_factory=_spine_default)
    #: UDP ports whose flows are sprayed too (§7: "More elaborated
    #: classification could be made to spray only some UDP flows" —
    #: e.g. 443 for QUIC, which tolerates reordering by design). All
    #: other UDP traffic keeps RSS steering.
    spray_udp_ports: tuple = ()
    #: Flow-state backend override: None (policy default: partitioned
    #: per-core tables, shared+locked for "naive", or replicated
    #: per-core tables for "scr"), "partitioned", "shared", "remote"
    #: (StatelessNF-style store — §6 ablation), or "replicated".
    state_backend: Optional[str] = None
    #: CPU cycles per remote-store access when state_backend="remote".
    remote_access_cycles: Optional[int] = None
    #: Telemetry sampling interval in picoseconds (None or 0 disables
    #: the periodic per-core/per-queue time series). The default, 500 us,
    #: yields tens-to-hundreds of snapshots over the paper's millisecond-
    #: scale runs at negligible cost.
    telemetry_sample_interval: Optional[int] = 500_000_000
    #: Record per-batch / transfer / drop events for Chrome trace export
    #: (off by default: tracing every batch is memory-heavy).
    telemetry_trace: bool = False
    #: Hard cap on recorded trace events (excess is counted, not stored).
    telemetry_trace_limit: int = 100_000
    costs: CostModel = field(default_factory=CostModel)

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ValueError(f"unknown mode {self.mode!r}; expected one of {MODES}")
        if self.state_backend not in (
            None, "partitioned", "shared", "remote", "replicated",
        ):
            raise ValueError(
                f"unknown state_backend {self.state_backend!r}; expected "
                "None, 'partitioned', 'shared', 'remote', or 'replicated'"
            )
        if self.spine not in ("batch", "scalar"):
            raise ValueError(
                f"unknown spine {self.spine!r}; expected 'batch' or 'scalar'"
            )
        if self.num_cores < 1:
            raise ValueError(f"num_cores must be >= 1, got {self.num_cores}")
        if not 1 <= self.subset_size <= self.num_cores:
            raise ValueError(
                f"subset_size must be in [1, {self.num_cores}], got {self.subset_size}"
            )
        if self.telemetry_sample_interval is not None and self.telemetry_sample_interval < 0:
            raise ValueError(
                "telemetry_sample_interval must be None or >= 0, got "
                f"{self.telemetry_sample_interval}"
            )
        if self.telemetry_trace_limit < 1:
            raise ValueError(
                f"telemetry_trace_limit must be >= 1, got {self.telemetry_trace_limit}"
            )
