"""Inter-core transfer rings.

Sprayer redirects *connection packets* that arrive on the "wrong" core
to their designated core through per-core rings (paper Figure 4). Only
packet **descriptors** move — the paper is explicit that entire packets
are never copied — which the cost model reflects with small per-
descriptor transfer costs.

The ring is bounded like a DPDK ``rte_ring``; overflow drops the
descriptor and is accounted, since a saturated designated core is a real
failure mode the design must surface.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Optional

from repro.net.packet import Packet


class TransferRing:
    """A bounded descriptor ring feeding one core's connection handler."""

    def __init__(self, owner_core: int, capacity: int = 512):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.owner_core = owner_core
        self.capacity = capacity
        self._descriptors: Deque[Packet] = deque()
        self.enqueued = 0
        self.dropped = 0
        #: High-water mark of the ring occupancy (telemetry).
        self.peak_depth = 0
        #: Called when the ring transitions empty -> non-empty.
        self.on_first_packet: Optional[Callable[[], None]] = None

    def __len__(self) -> int:
        return len(self._descriptors)

    @property
    def is_empty(self) -> bool:
        return not self._descriptors

    def push(self, packet: Packet) -> bool:
        """Enqueue a descriptor; False (and a drop) when full."""
        descriptors = self._descriptors
        depth = len(descriptors)
        if depth >= self.capacity:
            self.dropped += 1
            return False
        descriptors.append(packet)
        self.enqueued += 1
        depth += 1
        if depth > self.peak_depth:
            self.peak_depth = depth
        if depth == 1 and self.on_first_packet is not None:
            self.on_first_packet()
        return True

    def push_batch(self, packets: List[Packet]) -> int:
        """Enqueue a batch; returns how many fit."""
        accepted = 0
        for packet in packets:
            if not self.push(packet):
                break
            accepted += 1
        # Count the remainder as drops (push already counted the first).
        self.dropped += len(packets) - accepted - (1 if accepted < len(packets) else 0)
        return accepted

    def pop_batch(self, max_batch: int) -> List[Packet]:
        """Dequeue up to ``max_batch`` descriptors."""
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        descriptors = self._descriptors
        if len(descriptors) <= max_batch:
            out = list(descriptors)
            descriptors.clear()
            return out
        popleft = descriptors.popleft
        return [popleft() for _ in range(max_batch)]
