"""Flow state: per-core tables and the Table 2 access semantics.

The paper's key invariant is **writing partition**: the state of a flow
is only ever *modified* by its designated core, while any core may
*read* it. Two managers implement the storage policy:

- :class:`PartitionedFlowState` — Sprayer/RSS: one table per core,
  writes allowed only on the designated core (enforced, raising
  :class:`WritingPartitionError`, unless the engine disables
  enforcement), reads from any core priced by the coherence model.
- :class:`SharedFlowState` — the naive-spraying ablation: one global
  table guarded by a lock; every access pays the lock, and writes from
  changing cores pay invalidations. This is the design the paper's
  single-writer discipline avoids.

Like the paper's ``get_flow`` (which returns a ``const`` pointer whose
constness "is only lightly enforced"), reads return the entry object
itself; mutating it from a non-designated core is undefined behaviour
here too — tests exercise the discipline, not the physics.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Iterable, List, Optional, Tuple

from repro.cpu.cache import CoherenceModel
from repro.cpu.costs import CostModel
from repro.net.five_tuple import FiveTuple


class WritingPartitionError(RuntimeError):
    """A core tried to modify flow state it does not own."""


class FlowTableFullError(RuntimeError):
    """The per-core flow table reached its configured capacity."""


class FlowTable:
    """One core's flow table: a bounded hash map keyed by five-tuple."""

    def __init__(self, core_id: int, capacity: int = 1 << 20):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.core_id = core_id
        self.capacity = capacity
        self.entries: Dict[FiveTuple, Any] = {}
        self.inserts = 0
        self.removes = 0

    def __len__(self) -> int:
        return len(self.entries)

    def insert(self, flow_id: FiveTuple, entry: Any) -> Any:
        if flow_id not in self.entries and len(self.entries) >= self.capacity:
            raise FlowTableFullError(
                f"flow table on core {self.core_id} is full ({self.capacity} entries)"
            )
        self.entries[flow_id] = entry
        self.inserts += 1
        return entry

    def remove(self, flow_id: FiveTuple) -> bool:
        if flow_id in self.entries:
            del self.entries[flow_id]
            self.removes += 1
            return True
        return False

    def get(self, flow_id: FiveTuple) -> Optional[Any]:
        return self.entries.get(flow_id)


class PartitionedFlowState:
    """Per-core tables with single-writer enforcement.

    All methods return ``(result, cycles)`` so the calling context can
    charge the access to the current batch.
    """

    def __init__(
        self,
        num_cores: int,
        designated_fn,
        costs: CostModel,
        coherence: Optional[CoherenceModel] = None,
        capacity_per_core: int = 1 << 20,
        enforce: bool = True,
    ):
        self.tables: List[FlowTable] = [
            FlowTable(core_id, capacity_per_core) for core_id in range(num_cores)
        ]
        self.designated_fn = designated_fn
        self.costs = costs
        self.coherence = coherence or CoherenceModel(costs)
        self.enforce = enforce
        self.remote_reads = 0
        self.local_reads = 0

    def _check_owner(self, core_id: int, flow_id: FiveTuple, op: str) -> None:
        designated = self.designated_fn(flow_id)
        if designated != core_id and self.enforce:
            raise WritingPartitionError(
                f"{op} of {flow_id} on core {core_id}, but designated core is "
                f"{designated}: writing partition violated"
            )

    def insert_local(self, core_id: int, flow_id: FiveTuple, entry: Any) -> Tuple[Any, int]:
        self._check_owner(core_id, flow_id, "insert")
        self.tables[core_id].insert(flow_id, entry)
        cycles = self.costs.flow_insert + self.coherence.write(core_id, flow_id)
        return entry, cycles

    def remove_local(self, core_id: int, flow_id: FiveTuple) -> Tuple[bool, int]:
        self._check_owner(core_id, flow_id, "remove")
        removed = self.tables[core_id].remove(flow_id)
        self.coherence.forget(flow_id)
        return removed, self.costs.flow_remove

    def get_local(self, core_id: int, flow_id: FiveTuple) -> Tuple[Optional[Any], int]:
        """Modifiable entry from the local table (designated cores only)."""
        self._check_owner(core_id, flow_id, "get_local (modifiable access)")
        entry = self.tables[core_id].get(flow_id)
        # A modifiable access is a write from the coherence protocol's
        # point of view: it dirties the line.
        cycles = self.coherence.write(core_id, flow_id) if entry is not None else (
            self.costs.flow_lookup_local
        )
        return entry, cycles

    def get(self, core_id: int, flow_id: FiveTuple) -> Tuple[Optional[Any], int]:
        """Read-only entry from the flow's designated core's table."""
        designated = self.designated_fn(flow_id)
        entry = self.tables[designated].get(flow_id)
        if designated == core_id:
            self.local_reads += 1
            return entry, self.costs.flow_lookup_local
        self.remote_reads += 1
        cycles = self.coherence.read(core_id, flow_id) if entry is not None else (
            self.costs.flow_lookup_remote
        )
        return entry, cycles

    def get_many(
        self, core_id: int, flow_ids: Iterable[FiveTuple]
    ) -> Tuple[List[Optional[Any]], int]:
        """Batched ``get_flow`` (the paper's "optimized version").

        Remote lookups to the same designated core after the first are
        half price: the batch overlaps the cross-core transfers the way
        software prefetching overlaps cache misses.
        """
        # Inlined self.get(): the designated lookup would otherwise run
        # twice per flow, and this is the hottest flow-state path.
        results: List[Optional[Any]] = []
        total = 0
        seen_cores: set = set()
        seen = seen_cores.__contains__
        seen_add = seen_cores.add
        append = results.append
        tables = self.tables
        designated_fn = self.designated_fn
        cost_local = self.costs.flow_lookup_local
        cost_remote = self.costs.flow_lookup_remote
        coherence_read = self.coherence.read
        local_reads = 0
        remote_reads = 0
        for flow_id in flow_ids:
            designated = designated_fn(flow_id)
            entry = tables[designated].get(flow_id)
            if designated == core_id:
                local_reads += 1
                cycles = cost_local
            else:
                remote_reads += 1
                cycles = (
                    coherence_read(core_id, flow_id)
                    if entry is not None
                    else cost_remote
                )
                if seen(designated):
                    cycles = max(cost_local, cycles // 2)
            seen_add(designated)
            append(entry)
            total += cycles
        self.local_reads += local_reads
        self.remote_reads += remote_reads
        return results, total

    def total_entries(self) -> int:
        return sum(len(table) for table in self.tables)

    def per_core_entries(self) -> List[int]:
        """Flow-table population per core (telemetry)."""
        return [len(table) for table in self.tables]


class RemoteFlowState:
    """StatelessNF-style remote state (paper §6).

    "StatelessNF moves all NF state (per-flow and global) to a remote
    server, which is an elegant approach ... Moreover, accessing remote
    states increases latency and requires extra CPU cycles."

    Every access — read or write, from any core — is a round trip to
    the store, priced at ``remote_access_cycles`` of CPU involvement
    (marshalling + polling the RDMA completion; StatelessNF reports
    single-digit-microsecond accesses over InfiniBand). There is no
    writing partition to enforce: the store serializes writers, which
    is exactly why the paper calls it a *potential replacement* for
    Sprayer's flow-state abstractions — at a steep per-packet price
    that the ablation bench quantifies.
    """

    #: Default CPU cost per remote access: ~1 us at 2 GHz.
    DEFAULT_REMOTE_ACCESS_CYCLES = 2000

    def __init__(self, costs: CostModel, remote_access_cycles: Optional[int] = None):
        self.costs = costs
        self.remote_access_cycles = (
            remote_access_cycles
            if remote_access_cycles is not None
            else self.DEFAULT_REMOTE_ACCESS_CYCLES
        )
        self.table = FlowTable(core_id=-1, capacity=1 << 22)
        self.remote_accesses = 0

    def _access(self) -> int:
        self.remote_accesses += 1
        return self.remote_access_cycles

    def insert_local(self, core_id: int, flow_id: FiveTuple, entry: Any) -> Tuple[Any, int]:
        self.table.insert(flow_id, entry)
        return entry, self._access()

    def remove_local(self, core_id: int, flow_id: FiveTuple) -> Tuple[bool, int]:
        return self.table.remove(flow_id), self._access()

    def get_local(self, core_id: int, flow_id: FiveTuple) -> Tuple[Optional[Any], int]:
        return self.table.get(flow_id), self._access()

    def get(self, core_id: int, flow_id: FiveTuple) -> Tuple[Optional[Any], int]:
        return self.table.get(flow_id), self._access()

    def get_many(
        self, core_id: int, flow_ids: Iterable[FiveTuple]
    ) -> Tuple[List[Optional[Any]], int]:
        """Batched reads amortize round trips (StatelessNF batches its
        RDMA requests the same way): full price for the first, half for
        the rest of the batch."""
        results: List[Optional[Any]] = []
        total = 0
        for index, flow_id in enumerate(flow_ids):
            entry, cycles = self.get(core_id, flow_id)
            results.append(entry)
            total += cycles if index == 0 else cycles // 2
        return results, total

    def total_entries(self) -> int:
        return len(self.table)

    def per_core_entries(self) -> List[int]:
        """Single remote store: one bucket, no per-core breakdown."""
        return [len(self.table)]


class SharedFlowState:
    """One global, locked flow table — the design Sprayer avoids.

    Used by the naive-spraying ablation: connection packets are handled
    wherever they land, so every write may come from a different core.
    Each access pays the lock; the coherence model adds invalidation and
    remote-read penalties as ownership bounces.
    """

    def __init__(self, costs: CostModel, coherence: Optional[CoherenceModel] = None):
        self.costs = costs
        self.coherence = coherence or CoherenceModel(costs)
        self.table = FlowTable(core_id=-1, capacity=1 << 22)
        #: Lock acquisitions (every access pays one; contention — the
        #: real-world killer — is *not* modelled, so the reported cost
        #: is a lower bound on what naive spraying would pay).
        self.lock_acquisitions = 0

    def _lock(self) -> int:
        self.lock_acquisitions += 1
        return self.costs.lock_cycles

    def insert_local(self, core_id: int, flow_id: FiveTuple, entry: Any) -> Tuple[Any, int]:
        self.table.insert(flow_id, entry)
        cycles = self._lock() + self.coherence.write(core_id, flow_id)
        return entry, cycles

    def remove_local(self, core_id: int, flow_id: FiveTuple) -> Tuple[bool, int]:
        removed = self.table.remove(flow_id)
        self.coherence.forget(flow_id)
        return removed, self._lock() + self.costs.flow_remove

    def get_local(self, core_id: int, flow_id: FiveTuple) -> Tuple[Optional[Any], int]:
        entry = self.table.get(flow_id)
        cycles = self._lock() + (
            self.coherence.write(core_id, flow_id)
            if entry is not None
            else self.costs.flow_lookup_local
        )
        return entry, cycles

    def get(self, core_id: int, flow_id: FiveTuple) -> Tuple[Optional[Any], int]:
        entry = self.table.get(flow_id)
        cycles = self._lock() + (
            self.coherence.read(core_id, flow_id)
            if entry is not None
            else self.costs.flow_lookup_local
        )
        return entry, cycles

    def get_many(
        self, core_id: int, flow_ids: Iterable[FiveTuple]
    ) -> Tuple[List[Optional[Any]], int]:
        results: List[Optional[Any]] = []
        total = 0
        for flow_id in flow_ids:
            entry, cycles = self.get(core_id, flow_id)
            results.append(entry)
            total += cycles
        return results, total

    def total_entries(self) -> int:
        return len(self.table)

    def per_core_entries(self) -> List[int]:
        """Single shared table: one bucket, no per-core breakdown."""
        return [len(self.table)]
