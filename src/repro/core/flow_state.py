"""Flow state: per-core tables and the Table 2 access semantics.

The paper's key invariant is **writing partition**: the state of a flow
is only ever *modified* by its designated core, while any core may
*read* it. Two managers implement the storage policy:

- :class:`PartitionedFlowState` — Sprayer/RSS: one table per core,
  writes allowed only on the designated core (enforced, raising
  :class:`WritingPartitionError`, unless the engine disables
  enforcement), reads from any core priced by the coherence model.
- :class:`SharedFlowState` — the naive-spraying ablation: one global
  table guarded by a lock; every access pays the lock, and writes from
  changing cores pay invalidations. This is the design the paper's
  single-writer discipline avoids.

Like the paper's ``get_flow`` (which returns a ``const`` pointer whose
constness "is only lightly enforced"), reads return the entry object
itself; mutating it from a non-designated core is undefined behaviour
here too — tests exercise the discipline, not the physics.
"""

from __future__ import annotations

import copy
from typing import Any, Callable, Dict, Hashable, Iterable, List, Optional, Tuple

from repro.cpu.cache import CoherenceModel
from repro.cpu.costs import CostModel
from repro.net.five_tuple import FiveTuple


class WritingPartitionError(RuntimeError):
    """A core tried to modify flow state it does not own."""


class OwnershipViolation(WritingPartitionError):
    """A write from a core the writing partition does not assign the flow.

    Raised by :meth:`PartitionedFlowState._check_owner` (static owner =
    the designated-core hash) and by
    :class:`repro.checks.OwnershipAuditor` (dynamic owner = the flow's
    first writer core). Carries the full context as attributes and is
    picklable — violations raised inside a ``--jobs N`` pool worker
    travel back through the future intact.

    ``sim_time`` is the simulation clock in picoseconds at the violating
    access, or ``None`` when no clock was wired to the state manager.
    """

    def __init__(
        self,
        op: str,
        flow_id: Any,
        core_id: int,
        owner_core: int,
        sim_time: Optional[int] = None,
    ):
        # Positional args feed BaseException.args, which is what pickle
        # replays through __init__ on load — keep the two in lockstep.
        super().__init__(op, flow_id, core_id, owner_core, sim_time)
        self.op = op
        self.flow_id = flow_id
        self.core_id = core_id
        self.owner_core = owner_core
        self.sim_time = sim_time

    def __str__(self) -> str:
        when = f" at sim time {self.sim_time} ps" if self.sim_time is not None else ""
        return (
            f"{self.op} of {self.flow_id} on core {self.core_id}, but the "
            f"writing partition assigns it to core {self.owner_core}"
            f"{when}: writing partition violated"
        )


class FlowTableFullError(RuntimeError):
    """The per-core flow table reached its configured capacity."""


class FlowTable:
    """One core's flow table: a bounded hash map keyed by five-tuple."""

    def __init__(self, core_id: int, capacity: int = 1 << 20):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.core_id = core_id
        self.capacity = capacity
        self.entries: Dict[FiveTuple, Any] = {}
        self.inserts = 0
        self.removes = 0

    def __len__(self) -> int:
        return len(self.entries)

    def insert(self, flow_id: FiveTuple, entry: Any) -> Any:
        if flow_id not in self.entries and len(self.entries) >= self.capacity:
            raise FlowTableFullError(
                f"flow table on core {self.core_id} is full ({self.capacity} entries)"
            )
        self.entries[flow_id] = entry
        self.inserts += 1
        return entry

    def remove(self, flow_id: FiveTuple) -> bool:
        if flow_id in self.entries:
            del self.entries[flow_id]
            self.removes += 1
            return True
        return False

    def get(self, flow_id: FiveTuple) -> Optional[Any]:
        return self.entries.get(flow_id)


class PartitionedFlowState:
    """Per-core tables with single-writer enforcement.

    All methods return ``(result, cycles)`` so the calling context can
    charge the access to the current batch.
    """

    def __init__(
        self,
        num_cores: int,
        designated_fn,
        costs: CostModel,
        coherence: Optional[CoherenceModel] = None,
        capacity_per_core: int = 1 << 20,
        enforce: bool = True,
        clock: Optional[Callable[[], int]] = None,
    ):
        self.tables: List[FlowTable] = [
            FlowTable(core_id, capacity_per_core) for core_id in range(num_cores)
        ]
        self.designated_fn = designated_fn
        self.costs = costs
        self.coherence = coherence or CoherenceModel(costs)
        self.enforce = enforce
        #: Optional sim-clock getter; stamps :class:`OwnershipViolation`
        #: with the picosecond timestamp of the offending access.
        self.clock = clock
        self.remote_reads = 0
        self.local_reads = 0

    def _check_owner(self, core_id: int, flow_id: FiveTuple, op: str) -> None:
        designated = self.designated_fn(flow_id)
        if designated != core_id and self.enforce:
            raise OwnershipViolation(
                op,
                flow_id,
                core_id,
                designated,
                self.clock() if self.clock is not None else None,
            )

    def insert_local(self, core_id: int, flow_id: FiveTuple, entry: Any) -> Tuple[Any, int]:
        self._check_owner(core_id, flow_id, "insert")
        self.tables[core_id].insert(flow_id, entry)
        cycles = self.costs.flow_insert + self.coherence.write(core_id, flow_id)
        return entry, cycles

    def remove_local(self, core_id: int, flow_id: FiveTuple) -> Tuple[bool, int]:
        self._check_owner(core_id, flow_id, "remove")
        removed = self.tables[core_id].remove(flow_id)
        self.coherence.forget(flow_id)
        return removed, self.costs.flow_remove

    def get_local(self, core_id: int, flow_id: FiveTuple) -> Tuple[Optional[Any], int]:
        """Modifiable entry from the local table (designated cores only)."""
        self._check_owner(core_id, flow_id, "get_local (modifiable access)")
        entry = self.tables[core_id].get(flow_id)
        # A modifiable access is a write from the coherence protocol's
        # point of view: it dirties the line.
        cycles = self.coherence.write(core_id, flow_id) if entry is not None else (
            self.costs.flow_lookup_local
        )
        return entry, cycles

    def get(self, core_id: int, flow_id: FiveTuple) -> Tuple[Optional[Any], int]:
        """Read-only entry from the flow's designated core's table."""
        designated = self.designated_fn(flow_id)
        entry = self.tables[designated].get(flow_id)
        if designated == core_id:
            self.local_reads += 1
            return entry, self.costs.flow_lookup_local
        self.remote_reads += 1
        cycles = self.coherence.read(core_id, flow_id) if entry is not None else (
            self.costs.flow_lookup_remote
        )
        return entry, cycles

    def get_many(
        self, core_id: int, flow_ids: Iterable[FiveTuple]
    ) -> Tuple[List[Optional[Any]], int]:
        """Batched ``get_flow`` (the paper's "optimized version").

        Remote lookups to the same designated core after the first are
        half price: the batch overlaps the cross-core transfers the way
        software prefetching overlaps cache misses.
        """
        # Inlined self.get(): the designated lookup would otherwise run
        # twice per flow, and this is the hottest flow-state path.
        if type(flow_ids) is list and len(flow_ids) == 1:
            # Single-packet batches dominate when cores outpace arrivals;
            # skip the batching machinery (result set, bound methods).
            # Charges are identical: the same-designated-core discount
            # never applies to a batch's first lookup.
            flow_id = flow_ids[0]
            designated = self.designated_fn(flow_id)
            entry = self.tables[designated].get(flow_id)
            if designated == core_id:
                self.local_reads += 1
                return [entry], self.costs.flow_lookup_local
            self.remote_reads += 1
            if entry is not None:
                return [entry], self.coherence.read(core_id, flow_id)
            return [entry], self.costs.flow_lookup_remote
        results: List[Optional[Any]] = []
        total = 0
        seen_cores: set = set()
        seen = seen_cores.__contains__
        seen_add = seen_cores.add
        append = results.append
        tables = self.tables
        designated_fn = self.designated_fn
        cost_local = self.costs.flow_lookup_local
        cost_remote = self.costs.flow_lookup_remote
        coherence_read = self.coherence.read
        local_reads = 0
        remote_reads = 0
        for flow_id in flow_ids:
            designated = designated_fn(flow_id)
            entry = tables[designated].get(flow_id)
            if designated == core_id:
                local_reads += 1
                cycles = cost_local
            else:
                remote_reads += 1
                cycles = (
                    coherence_read(core_id, flow_id)
                    if entry is not None
                    else cost_remote
                )
                if seen(designated):
                    cycles = max(cost_local, cycles // 2)
            seen_add(designated)
            append(entry)
            total += cycles
        self.local_reads += local_reads
        self.remote_reads += remote_reads
        return results, total

    def total_entries(self) -> int:
        return sum(len(table) for table in self.tables)

    def per_core_entries(self) -> List[int]:
        """Flow-table population per core (telemetry)."""
        return [len(table) for table in self.tables]

    # -- control plane (migration / rebalancing; not the dataplane) -------
    #
    # These are the only sanctioned ways to touch entries from outside
    # the Table 2 API (the SPR001 lint rule flags everything else). They
    # model management-plane operations — state migration on scale-out,
    # re-homing after failures — which happen off the packet path, so no
    # cycles are charged and the single-writer check does not apply.

    def entries_snapshot(self) -> List[Tuple[Hashable, Any]]:
        """Every (flow_id, entry) pair, in deterministic (core,
        insertion) order."""
        return [
            (flow_id, entry)
            for table in self.tables
            for flow_id, entry in table.entries.items()
        ]

    def evict(self, flow_id: Hashable) -> Optional[Any]:
        """Remove and return a flow's entry wherever it lives (or None)."""
        for table in self.tables:
            entry = table.entries.pop(flow_id, None)
            if entry is not None:
                table.removes += 1
                self.coherence.forget(flow_id)
                return entry
        return None

    def adopt(self, flow_id: Hashable, entry: Any) -> None:
        """Install an entry on the flow's designated core's table."""
        self.tables[self.designated_fn(flow_id)].insert(flow_id, entry)


class RemoteFlowState:
    """StatelessNF-style remote state (paper §6).

    "StatelessNF moves all NF state (per-flow and global) to a remote
    server, which is an elegant approach ... Moreover, accessing remote
    states increases latency and requires extra CPU cycles."

    Every access — read or write, from any core — is a round trip to
    the store, priced at ``remote_access_cycles`` of CPU involvement
    (marshalling + polling the RDMA completion; StatelessNF reports
    single-digit-microsecond accesses over InfiniBand). There is no
    writing partition to enforce: the store serializes writers, which
    is exactly why the paper calls it a *potential replacement* for
    Sprayer's flow-state abstractions — at a steep per-packet price
    that the ablation bench quantifies.
    """

    #: Default CPU cost per remote access: ~1 us at 2 GHz.
    DEFAULT_REMOTE_ACCESS_CYCLES = 2000

    def __init__(self, costs: CostModel, remote_access_cycles: Optional[int] = None):
        self.costs = costs
        self.remote_access_cycles = (
            remote_access_cycles
            if remote_access_cycles is not None
            else self.DEFAULT_REMOTE_ACCESS_CYCLES
        )
        self.table = FlowTable(core_id=-1, capacity=1 << 22)
        self.remote_accesses = 0

    def _access(self) -> int:
        self.remote_accesses += 1
        return self.remote_access_cycles

    def insert_local(self, core_id: int, flow_id: FiveTuple, entry: Any) -> Tuple[Any, int]:
        self.table.insert(flow_id, entry)
        return entry, self._access()

    def remove_local(self, core_id: int, flow_id: FiveTuple) -> Tuple[bool, int]:
        return self.table.remove(flow_id), self._access()

    def get_local(self, core_id: int, flow_id: FiveTuple) -> Tuple[Optional[Any], int]:
        return self.table.get(flow_id), self._access()

    def get(self, core_id: int, flow_id: FiveTuple) -> Tuple[Optional[Any], int]:
        return self.table.get(flow_id), self._access()

    def get_many(
        self, core_id: int, flow_ids: Iterable[FiveTuple]
    ) -> Tuple[List[Optional[Any]], int]:
        """Batched reads amortize round trips (StatelessNF batches its
        RDMA requests the same way): full price for the first, half for
        the rest of the batch."""
        results: List[Optional[Any]] = []
        total = 0
        for index, flow_id in enumerate(flow_ids):
            entry, cycles = self.get(core_id, flow_id)
            results.append(entry)
            total += cycles if index == 0 else cycles // 2
        return results, total

    def total_entries(self) -> int:
        return len(self.table)

    def per_core_entries(self) -> List[int]:
        """Single remote store: one bucket, no per-core breakdown."""
        return [len(self.table)]

    # -- control plane (see PartitionedFlowState) -------------------------

    def entries_snapshot(self) -> List[Tuple[Hashable, Any]]:
        return list(self.table.entries.items())

    def evict(self, flow_id: Hashable) -> Optional[Any]:
        entry = self.table.entries.pop(flow_id, None)
        if entry is not None:
            self.table.removes += 1
        return entry

    def adopt(self, flow_id: Hashable, entry: Any) -> None:
        self.table.insert(flow_id, entry)


class ScrFlowState:
    """State-compute replication (SCR): one replica table per core.

    SCR (arXiv 2309.14647) dissolves the writing partition instead of
    enforcing it: every core keeps a *full replica* of the flow state it
    has observed, reconstructed by replaying the per-flow packet-history
    log (see :class:`repro.steering.scr.ScrReplication`). Consequently:

    - every write targets the *calling core's own replica* — there is no
      designated core and no cross-core write by construction;
    - every read is local, so no coherence traffic and no remote-read
      penalty is ever paid on the data path (the price moved into the
      replayed compute, which the replication machinery charges);
    - the single-writer discipline still holds, but *per replica*: core
      C is the only writer of replica C. The :class:`OwnershipAuditor`
      recognizes the ``replicated`` marker and audits at that
      granularity.

    Replica tables are reachable only through the Table 2 API and the
    sanctioned :meth:`replica_snapshot` accessor — the SPR001 lint rule
    flags direct ``.replicas`` access outside ``repro.core``.
    """

    #: Marker the OwnershipAuditor (and tests) key off: writes are
    #: sanctioned from every core because each core writes its own copy.
    replicated = True

    def __init__(
        self,
        num_cores: int,
        costs: CostModel,
        capacity_per_core: int = 1 << 20,
    ):
        self.replicas: List[FlowTable] = [
            FlowTable(core_id, capacity_per_core) for core_id in range(num_cores)
        ]
        self.costs = costs
        self.local_reads = 0

    def insert_local(self, core_id: int, flow_id: FiveTuple, entry: Any) -> Tuple[Any, int]:
        self.replicas[core_id].insert(flow_id, entry)
        # Core-private replica: a plain insert, no coherence traffic.
        return entry, self.costs.flow_insert

    def remove_local(self, core_id: int, flow_id: FiveTuple) -> Tuple[bool, int]:
        return self.replicas[core_id].remove(flow_id), self.costs.flow_remove

    def get_local(self, core_id: int, flow_id: FiveTuple) -> Tuple[Optional[Any], int]:
        return self.replicas[core_id].get(flow_id), self.costs.flow_lookup_local

    def get(self, core_id: int, flow_id: FiveTuple) -> Tuple[Optional[Any], int]:
        """Read from the local replica — always a local lookup."""
        self.local_reads += 1
        return self.replicas[core_id].get(flow_id), self.costs.flow_lookup_local

    def get_many(
        self, core_id: int, flow_ids: Iterable[FiveTuple]
    ) -> Tuple[List[Optional[Any]], int]:
        table = self.replicas[core_id].get
        cost_local = self.costs.flow_lookup_local
        results = [table(flow_id) for flow_id in flow_ids]
        self.local_reads += len(results)
        return results, cost_local * len(results)

    def total_entries(self) -> int:
        """Distinct flows across all replicas (a flow counts once)."""
        distinct: set = set()
        for table in self.replicas:
            distinct.update(table.entries)
        return len(distinct)

    def per_core_entries(self) -> List[int]:
        """Replica population per core (telemetry)."""
        return [len(table) for table in self.replicas]

    # -- control plane (see PartitionedFlowState) -------------------------

    def entries_snapshot(self) -> List[Tuple[Hashable, Any]]:
        """One (flow_id, entry) pair per distinct flow, first-replica
        wins, in deterministic (core, insertion) order."""
        seen: set = set()
        out: List[Tuple[Hashable, Any]] = []
        for table in self.replicas:
            for flow_id, entry in table.entries.items():
                if flow_id not in seen:
                    seen.add(flow_id)
                    out.append((flow_id, entry))
        return out

    def replica_snapshot(self, core_id: int) -> List[Tuple[Hashable, Any]]:
        """One core's replica as (flow_id, entry) pairs, in insertion
        order — the sanctioned way for tests and tools to compare a
        replica against single-writer ground truth."""
        return list(self.replicas[core_id].entries.items())

    def evict(self, flow_id: Hashable) -> Optional[Any]:
        """Remove the flow from every replica; return the first copy."""
        evicted: Optional[Any] = None
        for table in self.replicas:
            entry = table.entries.pop(flow_id, None)
            if entry is not None:
                table.removes += 1
                if evicted is None:
                    evicted = entry
        return evicted

    def adopt(self, flow_id: Hashable, entry: Any) -> None:
        """Install an independent copy of the entry on every replica.

        Deep-copied per replica so a control-plane install cannot alias
        mutable state across cores (the dataplane keeps replicas
        converged by replay, never by sharing objects).
        """
        for table in self.replicas:
            table.insert(flow_id, copy.deepcopy(entry))


class SharedFlowState:
    """One global, locked flow table — the design Sprayer avoids.

    Used by the naive-spraying ablation: connection packets are handled
    wherever they land, so every write may come from a different core.
    Each access pays the lock; the coherence model adds invalidation and
    remote-read penalties as ownership bounces.
    """

    def __init__(self, costs: CostModel, coherence: Optional[CoherenceModel] = None):
        self.costs = costs
        self.coherence = coherence or CoherenceModel(costs)
        self.table = FlowTable(core_id=-1, capacity=1 << 22)
        #: Lock acquisitions (every access pays one; contention — the
        #: real-world killer — is *not* modelled, so the reported cost
        #: is a lower bound on what naive spraying would pay).
        self.lock_acquisitions = 0

    def _lock(self) -> int:
        self.lock_acquisitions += 1
        return self.costs.lock_cycles

    def insert_local(self, core_id: int, flow_id: FiveTuple, entry: Any) -> Tuple[Any, int]:
        self.table.insert(flow_id, entry)
        cycles = self._lock() + self.coherence.write(core_id, flow_id)
        return entry, cycles

    def remove_local(self, core_id: int, flow_id: FiveTuple) -> Tuple[bool, int]:
        removed = self.table.remove(flow_id)
        self.coherence.forget(flow_id)
        return removed, self._lock() + self.costs.flow_remove

    def get_local(self, core_id: int, flow_id: FiveTuple) -> Tuple[Optional[Any], int]:
        entry = self.table.get(flow_id)
        cycles = self._lock() + (
            self.coherence.write(core_id, flow_id)
            if entry is not None
            else self.costs.flow_lookup_local
        )
        return entry, cycles

    def get(self, core_id: int, flow_id: FiveTuple) -> Tuple[Optional[Any], int]:
        entry = self.table.get(flow_id)
        cycles = self._lock() + (
            self.coherence.read(core_id, flow_id)
            if entry is not None
            else self.costs.flow_lookup_local
        )
        return entry, cycles

    def get_many(
        self, core_id: int, flow_ids: Iterable[FiveTuple]
    ) -> Tuple[List[Optional[Any]], int]:
        results: List[Optional[Any]] = []
        total = 0
        for flow_id in flow_ids:
            entry, cycles = self.get(core_id, flow_id)
            results.append(entry)
            total += cycles
        return results, total

    def total_entries(self) -> int:
        return len(self.table)

    def per_core_entries(self) -> List[int]:
        """Single shared table: one bucket, no per-core breakdown."""
        return [len(self.table)]

    # -- control plane (see PartitionedFlowState) -------------------------

    def entries_snapshot(self) -> List[Tuple[Hashable, Any]]:
        return list(self.table.entries.items())

    def evict(self, flow_id: Hashable) -> Optional[Any]:
        entry = self.table.entries.pop(flow_id, None)
        if entry is not None:
            self.table.removes += 1
            self.coherence.forget(flow_id)
        return entry

    def adopt(self, flow_id: Hashable, entry: Any) -> None:
        self.table.insert(flow_id, entry)
