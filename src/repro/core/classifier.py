"""Connection/regular packet classification (paper §3.2).

Connection packets are TCP packets flagged SYN, FIN or RST — the ones
that can modify connection state. Everything else (pure ACKs, data,
non-TCP) is regular. Note the subtlety the paper's NAT example leans on:
a SYN-ACK *is* a connection packet (SYN bit set) and therefore reaches
the designated core, but the sample NAT chooses to treat everything
after the first SYN as regular inside its handler.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.net.packet import Packet


def split_connection_packets(batch: List[Packet]) -> Tuple[List[Packet], List[Packet]]:
    """Partition a batch into (connection, regular) preserving order."""
    connection: List[Packet] = []
    regular: List[Packet] = []
    for packet in batch:
        if packet.is_connection:
            connection.append(packet)
        else:
            regular.append(packet)
    return connection, regular
