"""NF service chains.

Middleboxes rarely run one NF: packets typically traverse a chain
(e.g. firewall -> NAT -> monitor). The related work the paper discusses
(NFP, ParaBox, NFVnice) is about scheduling such chains; here we provide
the run-to-completion composition those systems compare against — all
NFs of the chain execute back-to-back on the same core for each batch,
which composes cleanly with any steering policy.

Semantics:

- ``connection_packets``/``regular_packets`` run each stage in order;
  a packet dropped by stage k is not seen by stage k+1;
- every stage gets its own ``init`` call and shares the per-core
  context (flow tables are shared engine-wide, so two stages keying
  the same five-tuple must namespace their entries — see
  :class:`ScopedContext`);
- ``stateless`` is True only if every stage is stateless.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.core.nf import NetworkFunction, NfContext
from repro.net.five_tuple import FiveTuple
from repro.net.packet import Packet


class ScopedContext:
    """A per-stage view of the core context.

    Prefixes every flow-table key with the stage name, so two stages of
    a chain can both keep state for the same five-tuple without
    clobbering each other. Scoped keys preserve the designated core
    (the scope only tags the key; hashing still uses the five-tuple),
    which keeps the writing partition intact.
    """

    def __init__(self, ctx: NfContext, scope: str):
        self._ctx = ctx
        self._scope = scope
        #: Per-stage scratch storage.
        self.local = ctx.local.setdefault(f"chain:{scope}", {})

    # -- scoping -------------------------------------------------------------

    def _key(self, flow_id: FiveTuple) -> "_ScopedFlowKey":
        return _ScopedFlowKey(self._scope, flow_id)

    # -- Table 2 passthrough ---------------------------------------------------

    def insert_local_flow(self, flow_id: FiveTuple, entry: Any) -> Any:
        entry, cycles = self._ctx.engine.flow_state.insert_local(
            self._ctx.core_id, self._key(flow_id), entry
        )
        self._ctx.consume_cycles(cycles)
        return entry

    def remove_local_flow(self, flow_id: FiveTuple) -> bool:
        removed, cycles = self._ctx.engine.flow_state.remove_local(
            self._ctx.core_id, self._key(flow_id)
        )
        self._ctx.consume_cycles(cycles)
        return removed

    def get_local_flow(self, flow_id: FiveTuple) -> Optional[Any]:
        entry, cycles = self._ctx.engine.flow_state.get_local(
            self._ctx.core_id, self._key(flow_id)
        )
        self._ctx.consume_cycles(cycles)
        return entry

    def get_flow(self, flow_id: FiveTuple) -> Optional[Any]:
        entry, cycles = self._ctx.engine.flow_state.get(
            self._ctx.core_id, self._key(flow_id)
        )
        self._ctx.consume_cycles(cycles)
        return entry

    def get_flows(self, flow_ids) -> List[Optional[Any]]:
        entries, cycles = self._ctx.engine.flow_state.get_many(
            self._ctx.core_id, [self._key(f) for f in flow_ids]
        )
        self._ctx.consume_cycles(cycles)
        return entries

    # -- everything else delegates -------------------------------------------

    @property
    def _cycles(self) -> float:
        return self._ctx._cycles

    @_cycles.setter
    def _cycles(self, value: float) -> None:
        # Without this setter, an NF's direct ``ctx._cycles += n`` (the
        # unrolled fast path some NFs use instead of consume_cycles)
        # would read through __getattr__ but *write* a shadow attribute
        # on the scoped view — silently uncharging every chained
        # stage's compute.
        self._ctx._cycles = value

    def __getattr__(self, name: str):
        return getattr(self._ctx, name)


class _ScopedFlowKey:
    """A flow-table key carrying a stage scope.

    Hashes like its five-tuple plus scope; exposes the attributes the
    flow-state layer needs (``is_tcp`` via the tuple, and the designated
    core is computed from the *tuple*, so scoping never moves a flow's
    owner).
    """

    __slots__ = ("scope", "flow")

    def __init__(self, scope: str, flow: FiveTuple):
        self.scope = scope
        self.flow = flow

    def __hash__(self) -> int:
        return hash((self.scope, self.flow))

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, _ScopedFlowKey)
            and self.scope == other.scope
            and self.flow == other.flow
        )

    def __repr__(self) -> str:
        return f"<{self.scope}:{self.flow}>"

    # The designated-core hash and protocol checks consult these:
    @property
    def is_tcp(self) -> bool:
        return self.flow.is_tcp

    @property
    def src_ip(self):
        return self.flow.src_ip

    @property
    def dst_ip(self):
        return self.flow.dst_ip

    @property
    def src_port(self):
        return self.flow.src_port

    @property
    def dst_port(self):
        return self.flow.dst_port

    @property
    def protocol(self):
        return self.flow.protocol

    def reversed(self) -> "_ScopedFlowKey":
        return _ScopedFlowKey(self.scope, self.flow.reversed())

    def canonical(self) -> "_ScopedFlowKey":
        return _ScopedFlowKey(self.scope, self.flow.canonical())


class NfChain(NetworkFunction):
    """Run-to-completion composition of NFs.

    ``direction_fn(packet) -> bool`` (True = forward) makes the chain
    *directional*: forward packets traverse the stages in order, return
    packets in reverse order — the way a physical chain is wired, and a
    necessity for chains containing rewriting NFs (a NAT must
    un-translate return traffic *before* an inside firewall sees it).
    Without a ``direction_fn`` all packets run the stages in order.

    >>> chain = NfChain(
    ...     [FirewallNf(acl), NatNf(external_ip)],
    ...     direction_fn=lambda p: is_toward_server(p.five_tuple.dst_ip),
    ... )
    """

    def __init__(
        self,
        stages: List[NetworkFunction],
        name: str = "chain",
        direction_fn=None,
    ):
        if not stages:
            raise ValueError("a chain needs at least one NF")
        self.stages = list(stages)
        self.direction_fn = direction_fn
        self.name = name + "(" + ">".join(nf.name for nf in self.stages) + ")"
        self.stateless = all(nf.stateless for nf in self.stages)
        #: Packets dropped per stage index (accounting).
        self.drops_by_stage: Dict[int, int] = {i: 0 for i in range(len(stages))}

    def init(self, ctx: NfContext) -> None:
        for stage in self.stages:
            stage.init(ScopedContext(ctx, stage.name))

    def _run_stages(
        self,
        handler_name: str,
        packets: List[Packet],
        ctx: NfContext,
        order: List[Tuple[int, NetworkFunction]],
    ) -> None:
        alive = packets
        for index, stage in order:
            if not alive:
                break
            scoped = ScopedContext(ctx, stage.name)
            getattr(stage, handler_name)(alive, scoped)
            survivors = [p for p in alive if not ctx.is_dropped(p)]
            self.drops_by_stage[index] += len(alive) - len(survivors)
            alive = survivors

    def _run(self, handler_name: str, packets: List[Packet], ctx: NfContext) -> None:
        forward_order = list(enumerate(self.stages))
        if self.direction_fn is None:
            self._run_stages(handler_name, packets, ctx, forward_order)
            return
        forward = [p for p in packets if self.direction_fn(p)]
        backward = [p for p in packets if not self.direction_fn(p)]
        if forward:
            self._run_stages(handler_name, forward, ctx, forward_order)
        if backward:
            self._run_stages(handler_name, backward, ctx, forward_order[::-1])

    def connection_packets(self, packets: List[Packet], ctx: NfContext) -> None:
        self._run("connection_packets", packets, ctx)

    def regular_packets(self, packets: List[Packet], ctx: NfContext) -> None:
        self._run("regular_packets", packets, ctx)

    def stage_contexts(self, contexts: List[NfContext], stage: NetworkFunction) -> List[ScopedContext]:
        """Per-core scoped views for one stage — what that stage's
        aggregation helpers (e.g. the monitor's shard merge) expect."""
        if stage not in self.stages:
            raise ValueError(f"{stage.name!r} is not a stage of {self.name}")
        return [ScopedContext(ctx, stage.name) for ctx in contexts]
