"""The middlebox engine: Figure 4 of the paper, executable.

The engine wires a steering policy, a NIC, cores, per-core transfer
rings, flow-state tables, and one network function into a running
middlebox on a simulator. Per batch, each core:

1. drains its transfer ring (foreign connection packets, pre-classified
   by their senders) and its rx queue;
2. classifies local packets; connection packets whose designated core is
   elsewhere are moved (as descriptors) to that core's ring;
3. runs ``nf.connection_packets`` on local+foreign connection packets
   and ``nf.regular_packets`` on the rest, accumulating state-access and
   compute cycles through the per-core :class:`NfContext`;
4. transmits the surviving packets.

The same engine runs every policy — RSS, Sprayer, and the §7
extensions — so comparisons differ only in steering and state layout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.checks import EngineChecks, EventStreamRecorder, OwnershipAuditor
from repro.core.config import MiddleboxConfig
from repro.core.flow_state import (
    PartitionedFlowState,
    RemoteFlowState,
    ScrFlowState,
    SharedFlowState,
)
from repro.core.nf import NetworkFunction, NfContext
from repro.core.rings import TransferRing
from repro.cpu.cache import CoherenceModel
from repro.cpu.core import BatchResult, Core
from repro.cpu.host import Host
from repro.net.five_tuple import PROTO_TCP, FiveTuple
from repro.net.packet import Packet
from repro.net.tcp_flags import FIN, RST, SYN
from repro.nic.rss import FLOW_CACHE_LIMIT
from repro.sim.engine import Simulator
from repro.steering import make_policy
from repro.steering.base import SteeringPolicy
from repro.telemetry import EngineTelemetry


@dataclass
class EngineStats:
    """Aggregate counters the experiments report."""

    packets_forwarded: int = 0
    packets_dropped_nf: int = 0
    connection_packets: int = 0
    transfers: int = 0
    ring_drops: int = 0
    #: Packets lost to injected faults inside the engine: flushed from a
    #: crashed core's queue/ring, or transferred toward a dead core.
    fault_drops: int = 0


class MiddleboxEngine:
    """A complete simulated middlebox running one NF under one policy."""

    def __init__(
        self,
        sim: Simulator,
        nf: NetworkFunction,
        config: Optional[MiddleboxConfig] = None,
        policy: Optional[SteeringPolicy] = None,
        strict_checks: Optional[bool] = None,
    ):
        self.sim = sim
        self.nf = nf
        self.config = config or MiddleboxConfig()
        self.costs = self.config.costs
        #: Runtime checkers (repro.checks): the constructor argument
        #: overrides the config field, which defaults to the
        #: REPRO_STRICT_CHECKS environment variable.
        self.strict_checks = (
            self.config.strict_checks if strict_checks is None else bool(strict_checks)
        )
        self.policy = policy or make_policy(self.config.mode, self.config)
        self.nic = self.policy.build_nic()
        #: State-compute replication machinery (the "scr" policy): the
        #: per-flow packet-history log + replay engine. None everywhere
        #: else — one None check on the ingress and processor paths. A
        #: stateless NF has no state to replicate, so the log stays off.
        self._scr = (
            self.policy.replication
            if getattr(self.policy, "replicates_state", False) and not nf.stateless
            else None
        )
        #: Steering decision memo: canonical per-policy ``designated_core``
        #: results, one dict probe per connection packet in the classify
        #: loop. Only populated while the policy declares its mapping
        #: stable; see :meth:`invalidate_steering_cache`.
        self._designated_cache: Dict[FiveTuple, int] = {}
        self._designated_cacheable = self.policy.designated_core_is_stable
        #: Fault injection: permanently dead cores, and the remap that
        #: re-homes their designated flows onto live cores. Empty/None
        #: on a healthy engine — one set probe / None check on the paths
        #: that consult them.
        self._dead_cores: set = set()
        self._designated_remap: Optional[Dict[int, int]] = None
        self.host = Host(sim, self.nic, self.costs, batch_size=self.config.batch_size)
        self.coherence = CoherenceModel(self.costs)
        backend = self.config.state_backend
        replicates = getattr(self.policy, "replicates_state", False)
        if backend is None:
            if replicates:
                backend = "replicated"
            else:
                backend = "shared" if self.policy.uses_shared_state else "partitioned"
        elif replicates and backend != "replicated":
            # Replay writes every core's replica; pointing them at a
            # single-writer backend would just violate it. Fail loudly.
            raise ValueError(
                f"policy {self.policy.name!r} replicates state; "
                f"state_backend must be 'replicated' or None, got {backend!r}"
            )
        if backend == "replicated":
            self.flow_state = ScrFlowState(
                self.config.num_cores,
                self.costs,
                capacity_per_core=self.config.flow_table_capacity,
            )
        elif backend == "remote":
            self.flow_state = RemoteFlowState(
                self.costs, self.config.remote_access_cycles
            )
        elif backend == "shared":
            self.flow_state = SharedFlowState(self.costs, self.coherence)
        else:
            self.flow_state = PartitionedFlowState(
                self.config.num_cores,
                self.designated_core,
                self.costs,
                self.coherence,
                capacity_per_core=self.config.flow_table_capacity,
                enforce=self.config.enforce_partition,
                clock=lambda: sim.now,
            )
        if self.strict_checks:
            auditor = OwnershipAuditor(self.flow_state, clock=lambda: sim.now)
            self.flow_state = auditor
            self.checks = EngineChecks(
                ownership=auditor,
                streams=EventStreamRecorder(self.config.num_cores),
            )
        else:
            self.checks = EngineChecks()
        self.rings: List[TransferRing] = []
        self.contexts: List[NfContext] = []
        self.stats = EngineStats()
        for core in self.host.cores:
            ring = TransferRing(core.core_id, self.config.ring_capacity)
            ring.on_first_packet = core.wake
            core.ring = ring
            self.rings.append(ring)
            ctx = NfContext(core.core_id, self)
            self.contexts.append(ctx)
            core.processor = self._make_processor(ctx)
            core.on_transfer = self._transfer
        for ctx in self.contexts:
            self.nf.init(ctx)
        self.policy.attach(self)
        #: Telemetry hub: registry counters, periodic sampler, tracer.
        self.telemetry = EngineTelemetry(self)
        if self.checks.enabled:
            # checks.* counter family, plus the per-core stream digests
            # (chained onto any tracer hook the telemetry installed).
            self.checks.bind(self.telemetry.registry)
            recorder = self.checks.streams
            for core in self.host.cores:
                core.trace_batch = recorder.hook(core.core_id, core.trace_batch)
        # Ingress fast path: bind the sampler re-arm hook (if any) once
        # instead of walking telemetry.notify_activity per packet.
        sampler = self.telemetry.sampler
        self._notify_activity = sampler.notify_activity if sampler else None
        #: Batch-spine settlement hook (installed by
        #: :class:`repro.core.batch_spine.ArrivalStager`): called before
        #: any externally visible read or mutation of receive-side state
        #: so staged arrivals land first. None on the scalar spine.
        self._settle_hook: Optional[Callable[[], None]] = None

    @property
    def ingress_batchable(self) -> bool:
        """Whether the policy permits the eager-steer batch spine."""
        return self.policy.ingress_batchable

    # -- dataplane entry/exit ---------------------------------------------

    def receive(self, packet: Packet, now: int) -> bool:
        """Ingress: hand an arriving packet to the NIC.

        Under state-compute replication this is the log-append seam:
        every *accepted* connection packet enters its flow's history
        log in NIC arrival order (packets the NIC dropped never existed
        as far as replication is concerned).
        """
        settle = self._settle_hook
        if settle is not None:
            # Staged batch arrivals that precede this event settle
            # first, so the NIC (token bucket, queue depths) is in
            # exactly the state this packet's scalar predecessors left.
            settle()
        notify = self._notify_activity
        if notify is not None:
            notify()
        self.host.packets_in += 1
        scr = self._scr
        if scr is None:
            return self.nic.receive(packet, now)
        # Append before the NIC call: a queue push can wake the arrival
        # core and process the packet synchronously, and the replay
        # engine must already know its log position by then. NIC
        # rejections happen before any core runs, so retracting the
        # freshly appended tail entry is always safe.
        scr.observe(packet)
        accepted = self.nic.receive(packet, now)
        if not accepted:
            scr.retract(packet)
        return accepted

    def set_egress(self, egress: Callable[[Packet], None]) -> None:
        """Install the hook that receives every forwarded packet."""
        self.host.set_egress(egress)

    # -- policy facade -------------------------------------------------------

    def designated_core(self, flow: FiveTuple) -> int:
        if not self._designated_cacheable:
            core = self.policy.designated_core(flow)
            remap = self._designated_remap
            if remap is not None:
                return remap.get(core, core)
            return core
        cache = self._designated_cache
        core = cache.get(flow)
        if core is None:
            core = self.policy.designated_core(flow)
            remap = self._designated_remap
            if remap is not None:
                core = remap.get(core, core)
            if len(cache) >= FLOW_CACHE_LIMIT:
                cache.clear()
            cache[flow] = core
        return core

    def invalidate_steering_cache(self, flow: Optional[FiveTuple] = None) -> None:
        """Drop memoized designated-core decisions.

        Must be called after anything that changes the flow→core mapping
        out from under the policy — e.g. installing a new RSS
        indirection table on a live engine. With ``flow`` given, only
        that flow's entry is dropped.
        """
        if flow is None:
            self._designated_cache.clear()
        else:
            self._designated_cache.pop(flow, None)

    # -- core processors ----------------------------------------------------

    def crash_core(self, core_id: int, resteer: bool = True) -> int:
        """Kill a core permanently (fault injection); returns flushed packets.

        The core's queued work is flushed and counted as ``fault_drops``;
        its NIC queue drops all future arrivals (kind "core_dead"); its
        designated flows are re-homed onto live cores deterministically
        (any state they had on the dead core is lost — new state grows
        on the new home). With ``resteer`` the policy is also offered
        :meth:`~repro.steering.base.SteeringPolicy.resteer_around` so
        data traffic avoids the corpse — Sprayer reprograms its spray
        rules; RSS declines, stranding the flows hashed there.
        """
        if core_id in self._dead_cores:
            return 0
        if not 0 <= core_id < self.config.num_cores:
            raise ValueError(
                f"core_id {core_id} out of range [0, {self.config.num_cores})"
            )
        settle = self._settle_hook
        if settle is not None:
            # Arrivals preceding the crash must reach the queues first:
            # they flush as fault_drops, not as rx_dropped_fault.
            settle()
        flushed = self.host.cores[core_id].crash()
        self.stats.fault_drops += flushed
        self._dead_cores.add(core_id)
        ownership = self.checks.ownership
        if ownership is not None:
            # The dead core's designated flows re-home onto live cores
            # and their state restarts there — the new home's first
            # write is a legitimate claim, not an ownership violation.
            ownership.release_writer_core(core_id)
        self.nic.disable_queue(core_id, kind="core_dead")
        if self._scr is not None:
            # Truncation quorums shrink to the survivors; their replicas
            # already hold (or can replay) every flow, so no state is
            # lost and no re-homing is needed.
            self._scr.mark_dead(core_id)
        live = [c for c in range(self.config.num_cores) if c not in self._dead_cores]
        if live:
            self._designated_remap = {
                dead: live[dead % len(live)] for dead in self._dead_cores
            }
        if resteer:
            self.policy.resteer_around(self, frozenset(self._dead_cores))
        self.invalidate_steering_cache()
        return flushed

    def _transfer(self, dst_core: int, packet: Packet) -> None:
        self.stats.transfers += 1
        dead = self._dead_cores
        if dead and dst_core in dead:
            # A descriptor aimed at a corpse: nobody will ever drain
            # that ring, so the packet leaves the dataplane here.
            self.stats.fault_drops += 1
            if self.telemetry.tracer is not None:
                self.telemetry.tracer.instant("fault_ring_dead", dst_core, self.sim.now)
            return
        tracer = self.telemetry.tracer
        if not self.rings[dst_core].push(packet):
            # The descriptor is lost, exactly like a full rx queue: the
            # packet leaves the dataplane here. ring_drops is its drop
            # class, surfaced through telemetry and checked against the
            # conservation invariant (rx == forwarded + all drop classes).
            self.stats.ring_drops += 1
            if tracer is not None:
                self.telemetry.trace_ring_drop(dst_core, packet, self.sim.now)
        elif tracer is not None:
            self.telemetry.trace_transfer(dst_core, packet, self.sim.now)

    def _make_processor(self, ctx: NfContext):
        """Build the per-core batch processor closure.

        A closure (rather than per-packet virtual dispatch) keeps the
        hot path tight, the same way DPDK apps specialize their loops.
        """
        if self._scr is not None:
            return self._make_scr_processor(ctx)
        costs = self.costs
        nf = self.nf
        stats = self.stats
        redirect = self.policy.redirect_connection_packets and not nf.stateless
        classify_needed = not nf.stateless
        # Opt-in batch NF API: a batch-capable NF handles the whole
        # regular batch through process_batch; everything else keeps the
        # per-batch regular_packets call unchanged. Bound once — no
        # per-batch dispatch.
        regular_handler = nf.process_batch if nf.batch_capable else nf.regular_packets
        # The paper's connection-packet predicate (SYN/FIN/RST on TCP),
        # inlined as one protocol compare + one mask test per packet.
        conn_mask = SYN | FIN | RST
        designated_cache = self._designated_cache
        designated_core = self.designated_core
        # Per-burst cost formulas, unrolled into the closure: the helper
        # methods are linear in batch size with integer constants, so
        # the sums below are cycle-for-cycle identical (see CostModel).
        ring_fixed = costs.ring_dequeue_fixed
        ring_pp = costs.ring_receive_per_packet
        rx_fixed = costs.rx_batch_fixed
        rx_pp = costs.rx_per_packet
        tx_fixed = costs.tx_batch_fixed
        tx_pp = costs.tx_per_packet
        classify_pp = costs.classify_per_packet

        def process(core: Core, foreign: List[Packet], local: List[Packet]) -> BatchResult:
            cycles = 0.0
            if foreign:
                cycles += ring_fixed + ring_pp * len(foreign)
            if local:
                cycles += rx_fixed + rx_pp * len(local)

            transfers: List = []
            if classify_needed:
                cycles += classify_pp * len(local)
                # First pass: find the first connection packet, if any.
                # Batches of pure data packets (the overwhelming common
                # case at line rate) then reuse ``local`` as the regular
                # batch with no per-packet appends at all.
                split = -1
                for i, packet in enumerate(local):
                    if packet.five_tuple.protocol == PROTO_TCP and packet.flags & conn_mask:
                        split = i
                        break
                if split < 0 and not foreign:
                    connection_batch: List[Packet] = []
                    regular_batch = local
                else:
                    connection_batch = list(foreign)
                    regular_batch = local[:split] if split >= 0 else list(local)
                    if split >= 0:
                        core_id = core.core_id
                        cache_get = designated_cache.get
                        connection_count = 0
                        destinations = set()
                        for packet in local[split:]:
                            flow = packet.five_tuple
                            if flow.protocol == PROTO_TCP and packet.flags & conn_mask:
                                connection_count += 1
                                if redirect:
                                    dst = cache_get(flow)
                                    if dst is None:
                                        dst = designated_core(flow)
                                    if dst != core_id:
                                        transfers.append((dst, packet))
                                        destinations.add(dst)
                                        continue
                                connection_batch.append(packet)
                            else:
                                regular_batch.append(packet)
                        stats.connection_packets += connection_count
                        if transfers:
                            cycles += costs.ring_push_cycles(
                                len(transfers), len(destinations)
                            )
            else:
                connection_batch = []
                regular_batch = local

            # begin_batch()/end_batch(), inlined (one per batch).
            ctx._cycles = 0.0
            ctx._dropped.clear()
            if connection_batch:
                nf.connection_packets(connection_batch, ctx)
            if regular_batch:
                regular_handler(regular_batch, ctx)
            cycles += ctx._cycles

            if ctx._dropped:
                outputs: List[Packet] = []
                dropped = 0
                is_dropped = ctx.is_dropped
                for packet in connection_batch:
                    if is_dropped(packet):
                        dropped += 1
                    else:
                        outputs.append(packet)
                for packet in regular_batch:
                    if is_dropped(packet):
                        dropped += 1
                    else:
                        outputs.append(packet)
                stats.packets_dropped_nf += dropped
            elif connection_batch:
                connection_batch.extend(regular_batch)
                outputs = connection_batch
            else:
                outputs = regular_batch
            stats.packets_forwarded += len(outputs)
            if outputs:
                cycles += tx_fixed + tx_pp * len(outputs)
            return BatchResult(cycles, outputs, transfers)

        return process

    def _make_scr_processor(self, ctx: NfContext):
        """The no-ring fast path for state-compute replication.

        Connection packets are processed wherever they land — the
        replication log (:class:`repro.steering.scr.ScrReplication`)
        replays whatever history this core has not yet applied, so its
        replica is current before the NF runs. Nothing is ever pushed
        to a transfer ring, and no designated-core lookup happens at
        all: steering is the NIC's spray rules, full stop.
        """
        costs = self.costs
        nf = self.nf
        stats = self.stats
        scr = self._scr
        conn_mask = SYN | FIN | RST
        regular_handler = nf.process_batch if nf.batch_capable else nf.regular_packets

        def process(core: Core, foreign: List[Packet], local: List[Packet]) -> BatchResult:
            cycles = 0.0
            if foreign:
                # Nothing transfers under SCR; drained defensively so an
                # externally pushed descriptor is processed, not lost.
                cycles += costs.ring_drain_cycles(len(foreign))
                local = foreign + local
            if local:
                cycles += costs.rx_burst_cycles(len(local))
            cycles += costs.classify_per_packet * len(local)
            connection_batch: List[Packet] = []
            regular_batch: List[Packet] = []
            for packet in local:
                if packet.five_tuple.protocol == PROTO_TCP and packet.flags & conn_mask:
                    connection_batch.append(packet)
                else:
                    regular_batch.append(packet)

            core_id = core.core_id
            ctx.begin_batch()
            if connection_batch:
                stats.connection_packets += len(connection_batch)
                for packet in connection_batch:
                    scr.deliver(core_id, packet, ctx, nf)
            if regular_batch:
                synced: set = set()
                for packet in regular_batch:
                    flow = packet.five_tuple
                    if flow not in synced:
                        synced.add(flow)
                        scr.sync(core_id, flow, ctx, nf)
                regular_handler(regular_batch, ctx)
            cycles += ctx.end_batch()

            if ctx._dropped:
                outputs: List[Packet] = []
                dropped = 0
                is_dropped = ctx.is_dropped
                for packet in connection_batch:
                    if is_dropped(packet):
                        dropped += 1
                    else:
                        outputs.append(packet)
                for packet in regular_batch:
                    if is_dropped(packet):
                        dropped += 1
                    else:
                        outputs.append(packet)
                stats.packets_dropped_nf += dropped
            elif connection_batch:
                connection_batch.extend(regular_batch)
                outputs = connection_batch
            else:
                outputs = regular_batch
            stats.packets_forwarded += len(outputs)
            if outputs:
                cycles += costs.tx_burst_cycles(len(outputs))
            return BatchResult(cycles, outputs, [])

        return process

    # -- reporting -----------------------------------------------------------

    def summary(self) -> Dict[str, float]:
        """A flat dict of the counters experiments print."""
        settle = self._settle_hook
        if settle is not None:
            settle()
        nic = self.nic.stats
        return {
            "policy": self.policy.name,
            "rx_packets": nic.rx_packets,
            "rx_dropped_queue_full": nic.rx_dropped_queue_full,
            "rx_dropped_fd_cap": nic.rx_dropped_fd_cap,
            "rx_dropped_fault": nic.rx_dropped_fault,
            "forwarded": self.stats.packets_forwarded,
            "nf_drops": self.stats.packets_dropped_nf,
            "connection_packets": self.stats.connection_packets,
            "transfers": self.stats.transfers,
            "ring_drops": self.stats.ring_drops,
            "fault_drops": self.stats.fault_drops,
            "flow_entries": self.flow_state.total_entries(),
            "per_core_forwarded": self.host.per_core_forwarded(),
            "per_core_busy_cycles": self.host.per_core_busy_cycles(),
            "telemetry": self.telemetry.counters(),
        }

    def conservation(self) -> Dict[str, int]:
        """Packet-conservation ledger: where every received packet went.

        ``in_queues``/``in_rings`` cover packets still buffered; batches
        in flight on a busy core are the remainder. Once the simulation
        drains, ``rx_packets`` must equal ``accounted``.
        """
        settle = self._settle_hook
        if settle is not None:
            settle()
        nic = self.nic.stats
        accounted = (
            self.stats.packets_forwarded
            + self.stats.packets_dropped_nf
            + nic.rx_dropped_queue_full
            + nic.rx_dropped_fd_cap
            + nic.rx_dropped_fault
            + self.stats.ring_drops
            + self.stats.fault_drops
        )
        return {
            "rx_packets": nic.rx_packets,
            "forwarded": self.stats.packets_forwarded,
            "nf_drops": self.stats.packets_dropped_nf,
            "rx_dropped_queue_full": nic.rx_dropped_queue_full,
            "rx_dropped_fd_cap": nic.rx_dropped_fd_cap,
            "rx_dropped_fault": nic.rx_dropped_fault,
            "ring_drops": self.stats.ring_drops,
            "fault_drops": self.stats.fault_drops,
            "in_queues": sum(len(q) for q in self.nic.queues),
            "in_rings": sum(len(r) for r in self.rings),
            "accounted": accounted,
        }
