"""Sprayer's core: the paper's primary contribution.

This package implements the design of §3 — connection/regular packet
classification, designated cores, single-writer flow state with the
Table 2 API, inter-core descriptor rings, the two-handler NF
programming model — and the engine that executes it (or the RSS
baseline, or any §7 extension) on the simulated host.
"""

from repro.core.chain import NfChain, ScopedContext
from repro.core.classifier import split_connection_packets
from repro.core.config import MODES, MiddleboxConfig
from repro.core.designated import DesignatedCoreMap
from repro.core.events import EventNf
from repro.core.engine import EngineStats, MiddleboxEngine
from repro.core.flow_state import (
    FlowTable,
    RemoteFlowState,
    FlowTableFullError,
    OwnershipViolation,
    PartitionedFlowState,
    SharedFlowState,
    WritingPartitionError,
)
from repro.core.nf import NetworkFunction, NfContext
from repro.core.rings import TransferRing

__all__ = [
    "NfChain",
    "ScopedContext",
    "MiddleboxConfig",
    "MODES",
    "MiddleboxEngine",
    "EngineStats",
    "NetworkFunction",
    "EventNf",
    "RemoteFlowState",
    "NfContext",
    "DesignatedCoreMap",
    "FlowTable",
    "PartitionedFlowState",
    "SharedFlowState",
    "WritingPartitionError",
    "OwnershipViolation",
    "FlowTableFullError",
    "TransferRing",
    "split_connection_packets",
]
