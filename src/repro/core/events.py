"""mOS-style event hooks on top of the two-handler model (paper §6).

"mOS ... keeps track of TCP state machines and lets NFs implement
handlers, which are triggered in the presence of events (e.g., new TCP
connection). This is complementary to Sprayer's flow state
abstractions." This module provides that complement: an
:class:`EventNf` subclass writes event callbacks instead of raw packet
handlers, and the base class runs the connection state machine on the
designated core — so every event handler that may *modify* state runs
where modification is legal, for free.

Events:

- ``on_connection_start(flow, state, ctx)`` — first SYN (designated core);
- ``on_connection_established(flow, state, ctx)`` — SYN-ACK observed;
- ``on_connection_end(flow, state, ctx)`` — RST, or both FINs seen;
- ``on_packet(packet, state, ctx)`` — every regular packet, on its
  arrival core, with the flow state as a *read-only* view (it may be
  ``None`` for untracked flows). Return ``False`` to drop the packet.

``create_state(flow)`` builds the per-connection user state stored in
the flow table (shared by both directions).
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.core.nf import NetworkFunction, NfContext
from repro.net.five_tuple import FiveTuple
from repro.net.packet import Packet
from repro.net.tcp_flags import ACK, FIN, RST, SYN


class _Tracked:
    """Connection-machine bookkeeping wrapped around the user state."""

    __slots__ = ("user", "established", "fins_seen", "ended")

    def __init__(self, user: Any):
        self.user = user
        self.established = False
        self.fins_seen = 0
        self.ended = False


class EventNf(NetworkFunction):
    """Subclass and override the event hooks you need."""

    name = "event-nf"

    # -- user-facing hooks ---------------------------------------------------

    def create_state(self, flow: FiveTuple) -> Any:
        """Build per-connection state (default: an empty dict)."""
        return {}

    def on_connection_start(self, flow: FiveTuple, state: Any, ctx: NfContext) -> None:
        """First SYN of a connection (designated core)."""

    def on_connection_established(self, flow: FiveTuple, state: Any, ctx: NfContext) -> None:
        """SYN-ACK observed (designated core)."""

    def on_connection_end(self, flow: FiveTuple, state: Any, ctx: NfContext) -> None:
        """RST seen, or both directions FINed (designated core)."""

    def on_packet(self, packet: Packet, state: Optional[Any], ctx: NfContext) -> Optional[bool]:
        """A regular packet, on its arrival core; ``state`` is read-only.

        Return ``False`` to drop the packet.
        """

    # -- plumbing -------------------------------------------------------------

    def connection_packets(self, packets: List[Packet], ctx: NfContext) -> None:
        for packet in packets:
            flow = packet.five_tuple
            flags = packet.flags
            if flags & SYN and not flags & ACK:
                if ctx.get_local_flow(flow) is None:
                    tracked = _Tracked(self.create_state(flow))
                    ctx.insert_local_flow(flow, tracked)
                    ctx.insert_local_flow(flow.reversed(), tracked)
                    self.on_connection_start(flow, tracked.user, ctx)
                continue
            tracked = ctx.get_local_flow(flow)
            if tracked is None:
                verdict = self.on_packet(packet, None, ctx)
                if verdict is False:
                    ctx.drop(packet)
                continue
            if flags & SYN and flags & ACK and not tracked.established:
                tracked.established = True
                self.on_connection_established(flow, tracked.user, ctx)
            if flags & RST:
                self._end(flow, tracked, ctx)
            elif flags & FIN:
                tracked.fins_seen += 1
                if tracked.fins_seen >= 2:
                    self._end(flow, tracked, ctx)

    def _end(self, flow: FiveTuple, tracked: _Tracked, ctx: NfContext) -> None:
        if tracked.ended:
            return
        tracked.ended = True
        self.on_connection_end(flow, tracked.user, ctx)
        ctx.remove_local_flow(flow)
        ctx.remove_local_flow(flow.reversed())

    def regular_packets(self, packets: List[Packet], ctx: NfContext) -> None:
        tracked_entries = ctx.get_flows([p.five_tuple for p in packets])
        for packet, tracked in zip(packets, tracked_entries):
            state = tracked.user if tracked is not None else None
            verdict = self.on_packet(packet, state, ctx)
            if verdict is False:
                ctx.drop(packet)
