"""Designated cores.

Every flow has a deterministic *designated core* — the only core allowed
to modify its state (paper §3.2). The mapping is a hash of the
five-tuple; by default the hash is **symmetric** so that the upstream
and downstream directions of a TCP connection share a designated core,
which is what lets the paper's NAT install both translation directions
from one SYN.

We use the same Toeplitz function as RSS with the symmetric key, so the
designated-core map is implementable on today's NICs (and in the
"programmable NIC" extension the NIC itself steers connection packets
with exactly this map). The hot path uses the shared table-driven
Toeplitz expansion plus a bounded per-flow memo, so a connection packet
costs one dict probe once its flow has been seen.
"""

from __future__ import annotations

from typing import Dict

from repro.net.five_tuple import FiveTuple
from repro.nic.rss import (
    DEFAULT_RSS_KEY,
    FLOW_CACHE_LIMIT,
    SYMMETRIC_RSS_KEY,
    rss_input_bytes,
    toeplitz_table_for,
)


class DesignatedCoreMap:
    """flow -> designated core, cached per flow."""

    def __init__(
        self,
        num_cores: int,
        symmetric: bool = True,
        cache_limit: int = FLOW_CACHE_LIMIT,
    ):
        if num_cores < 1:
            raise ValueError(f"num_cores must be >= 1, got {num_cores}")
        self.num_cores = num_cores
        self.symmetric = symmetric
        self.key = SYMMETRIC_RSS_KEY if symmetric else DEFAULT_RSS_KEY
        self._toeplitz = toeplitz_table_for(self.key)
        self._cache_limit = cache_limit
        self._cache: Dict[FiveTuple, int] = {}

    def core_for(self, flow: FiveTuple) -> int:
        """The designated core of ``flow``.

        With the symmetric key this is identical for both directions of
        a connection; tests assert that property.
        """
        cache = self._cache
        core = cache.get(flow)
        if core is None:
            core = self._toeplitz.hash(rss_input_bytes(flow)) % self.num_cores
            if len(cache) >= self._cache_limit:
                cache.clear()
            cache[flow] = core
        return core

    def cache_size(self) -> int:
        return len(self._cache)
