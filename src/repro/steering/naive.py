"""Naive spraying: the ablation that motivates designated cores.

Same NIC configuration as Sprayer, but *no* connection-packet
redirection: SYN/FIN/RST packets are handled wherever they land, so any
core may create or modify any flow's state. The engine therefore uses a
single shared, locked flow table; every access pays the lock, and
writes from shifting cores pay cache invalidations — exactly the
"synchronization primitives that would impact performance" the paper's
design exists to avoid (§1, §3.2).
"""

from __future__ import annotations

from repro.core.designated import DesignatedCoreMap
from repro.net.five_tuple import FiveTuple
from repro.nic.flow_director import build_checksum_spray_rules
from repro.nic.nic import MultiQueueNic, NicConfig
from repro.nic.rss import SYMMETRIC_RSS_KEY
from repro.steering.base import SteeringPolicy


class NaiveSprayPolicy(SteeringPolicy):
    """Spray everything; share one locked flow table."""

    name = "naive"
    redirect_connection_packets = False
    uses_shared_state = True

    def __init__(self, config):
        super().__init__(config)
        # Kept for API parity (ctx.designated_core); the shared table
        # does not consult it.
        self.designated_map = DesignatedCoreMap(
            config.num_cores, symmetric=getattr(config, "symmetric_designation", True)
        )

    def build_nic(self) -> MultiQueueNic:
        self.nic = MultiQueueNic(
            NicConfig(
                num_queues=self.config.num_cores,
                queue_capacity=self.config.queue_capacity,
                rss_key=SYMMETRIC_RSS_KEY,
                flow_director_enabled=True,
                flow_director_pps_cap=self.config.flow_director_pps_cap,
            )
        )
        rules = build_checksum_spray_rules(
            self.config.num_cores, bits=self.config.spray_bits
        )
        self.nic.flow_director.add_rules(rules)
        return self.nic

    def designated_core(self, flow: FiveTuple) -> int:
        if flow.is_tcp:
            return self.designated_map.core_for(flow)
        return self.nic.rss.queue_for(flow)
