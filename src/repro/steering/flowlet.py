"""Flowlet steering (paper §7, after CONGA/Presto).

Instead of spraying individual packets, spray *flowlets*: bursts of a
flow separated by an idle gap longer than ``flowlet_gap``. Packets
within a flowlet share a queue, so reordering can only occur across
gaps — if the gap exceeds the maximum delay skew between cores, it
cannot occur at all. The price is coarser load balancing.

This needs per-flow timing state in the classifier, which commodity
Flow Director cannot do — the paper positions it as a programmable-NIC
opportunity, and we model it as such (no FD pps cap, connection packets
steered to designated cores in hardware).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.core.designated import DesignatedCoreMap
from repro.net.five_tuple import FiveTuple
from repro.net.packet import Packet
from repro.nic.nic import MultiQueueNic, NicConfig
from repro.nic.rss import SYMMETRIC_RSS_KEY
from repro.steering.base import SteeringPolicy


class FlowletPolicy(SteeringPolicy):
    """Gap-based flowlet spraying on a programmable NIC model."""

    name = "flowlet"
    redirect_connection_packets = True
    #: The classifier reads the clock and advances per-flow/round-robin
    #: state on every decision, so eager batch classification would
    #: observe wrong times and orders; the harness keeps this policy on
    #: the scalar spine.
    ingress_batchable = False

    def __init__(self, config):
        super().__init__(config)
        self.designated_map = DesignatedCoreMap(
            config.num_cores, symmetric=getattr(config, "symmetric_designation", True)
        )
        self.flowlet_gap = config.flowlet_gap
        #: flow -> (last packet time, current queue)
        self._flowlets: Dict[FiveTuple, Tuple[int, int]] = {}
        self._engine = None
        self._next_queue = 0
        self.flowlets_started = 0
        #: Queues new flowlets may start on after a fault re-steer
        #: (None = all). Flowlets already in flight keep their queue
        #: until their gap expires — re-steering only helps flows that
        #: pause, which is the policy's documented fragility under
        #: continuous load.
        self._live_queues = None

    def build_nic(self) -> MultiQueueNic:
        self.nic = MultiQueueNic(
            NicConfig(
                num_queues=self.config.num_cores,
                queue_capacity=self.config.queue_capacity,
                rss_key=SYMMETRIC_RSS_KEY,
                flow_director_enabled=False,
                flow_director_pps_cap=None,
            )
        )
        self.nic.custom_classifier = self._classify
        return self.nic

    def attach(self, engine) -> None:
        self._engine = engine

    def _classify(self, packet: Packet) -> Optional[int]:
        if not packet.is_tcp:
            return None
        if packet.is_connection:
            return self.designated_map.core_for(packet.five_tuple)
        now = self._engine.sim.now if self._engine is not None else 0
        flow = packet.five_tuple
        state = self._flowlets.get(flow)
        if state is None or now - state[0] > self.flowlet_gap:
            # New flowlet: pick the next queue round-robin. Real designs
            # pick the least-loaded queue; round-robin keeps the model
            # deterministic and uniform in the long run.
            live = self._live_queues
            if live is None:
                queue = self._next_queue
                self._next_queue = (self._next_queue + 1) % self.config.num_cores
            else:
                queue = live[self._next_queue]
                self._next_queue = (self._next_queue + 1) % len(live)
            self.flowlets_started += 1
        else:
            queue = state[1]
        self._flowlets[flow] = (now, queue)
        return queue

    def resteer_around(self, engine, degraded: frozenset) -> bool:
        """Start *new* flowlets only on non-degraded queues."""
        num_cores = self.config.num_cores
        live = [q for q in range(num_cores) if q not in degraded]
        if not live:
            return False
        if len(live) == num_cores:
            self._live_queues = None
            self._next_queue %= num_cores
        else:
            self._live_queues = live
            self._next_queue %= len(live)
        return True

    def designated_core(self, flow: FiveTuple) -> int:
        if flow.is_tcp:
            return self.designated_map.core_for(flow)
        return self.nic.rss.queue_for(flow)
