"""Bounded-subset spraying (paper §7, "Scalability with more cores").

"It may be wise to only spray packets from a particular flow to a
limited subset of cores [34]." Each flow is pinned to a deterministic
subset of ``subset_size`` cores derived from its designated core; its
regular packets are sprayed only within the subset (using the checksum
LSBs, so it remains hardware-plausible), and its connection packets go
to the subset's first core — which doubles as the designated core, so
connection-packet transfers vanish. Smaller subsets mean less
reordering but less statistical multiplexing.
"""

from __future__ import annotations

from typing import Optional

from repro.core.designated import DesignatedCoreMap
from repro.net.five_tuple import FiveTuple
from repro.net.packet import Packet
from repro.net.tcp_flags import CONNECTION_MASK
from repro.nic.nic import MultiQueueNic, NicConfig
from repro.nic.rss import SYMMETRIC_RSS_KEY
from repro.steering.base import SteeringPolicy


class SubsetPolicy(SteeringPolicy):
    """Spray each flow across a bounded subset of cores."""

    name = "subset"
    redirect_connection_packets = True

    def __init__(self, config):
        super().__init__(config)
        self.designated_map = DesignatedCoreMap(
            config.num_cores, symmetric=getattr(config, "symmetric_designation", True)
        )
        self.subset_size = config.subset_size

    def build_nic(self) -> MultiQueueNic:
        self.nic = MultiQueueNic(
            NicConfig(
                num_queues=self.config.num_cores,
                queue_capacity=self.config.queue_capacity,
                rss_key=SYMMETRIC_RSS_KEY,
                flow_director_enabled=False,
                flow_director_pps_cap=None,
            )
        )
        self.nic.custom_classifier = self._classify
        self.nic.batch_classifier = self.classify_batch
        return self.nic

    def subset_for(self, flow: FiveTuple) -> range:
        """The contiguous (mod num_cores) core subset of this flow."""
        start = self.designated_map.core_for(flow)
        return range(start, start + self.subset_size)

    def _classify(self, packet: Packet) -> Optional[int]:
        if not packet.is_tcp:
            return None
        num_cores = self.config.num_cores
        start = self.designated_map.core_for(packet.five_tuple)
        if packet.is_connection:
            return start
        offset = packet.tcp_checksum % self.subset_size
        return (start + offset) % num_cores

    def classify_batch(self, batch, out) -> None:
        """Column form of :meth:`_classify` (same decisions, no Packets)."""
        num_cores = self.config.num_cores
        subset_size = self.subset_size
        core_for = self.designated_map.core_for
        flags = batch.flags
        checksums = batch.checksums
        for i, flow in enumerate(batch.flows):
            if not flow.is_tcp:
                continue
            start = core_for(flow)
            if flags[i] & CONNECTION_MASK:
                out[i] = start
            else:
                out[i] = (start + checksums[i] % subset_size) % num_cores

    def designated_core(self, flow: FiveTuple) -> int:
        if flow.is_tcp:
            return self.designated_map.core_for(flow)
        return self.nic.rss.queue_for(flow)
