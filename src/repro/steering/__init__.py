"""Steering policies: who decides which core sees which packet.

A policy owns two decisions: how the NIC classifies arriving packets to
rx queues, and where a flow's *designated core* (single writer of its
state) lives. The engine consults the policy; the cores and NIC stay
policy-free.

Policies:

- ``rss`` — the baseline the paper argues against: per-flow Toeplitz
  steering, designated core = arrival core.
- ``sprayer`` — the paper's system: Flow Director checksum-LSB spraying,
  software redirection of connection packets to designated cores.
- ``naive`` — ablation: spray *everything* with no designated cores;
  flow state is a shared, locked table (what §3.2 warns against).
- ``prognic`` — §7 extension: a programmable NIC steers connection
  packets to their designated core in hardware; no ring transfers.
- ``flowlet`` — §7 extension: spray at flowlet granularity (gap-based),
  trading utilization for less reordering.
- ``subset`` — §7 extension: spray each flow over a bounded subset of
  cores (power-of-two-choices flavour).
- ``scr`` — state-compute replication (arXiv 2309.14647): spray
  *everything* like naive, but replicate state correctly by replaying
  a per-flow packet-history log on every core — no designated cores,
  no rings, no shared table.
"""

from repro.steering.base import SteeringPolicy
from repro.steering.flowlet import FlowletPolicy
from repro.steering.naive import NaiveSprayPolicy
from repro.steering.prognic import ProgrammableNicPolicy
from repro.steering.rss import RssPolicy
from repro.steering.scr import ScrPolicy
from repro.steering.sprayer import SprayerPolicy
from repro.steering.subset import SubsetPolicy

_POLICIES = {
    "rss": RssPolicy,
    "sprayer": SprayerPolicy,
    "naive": NaiveSprayPolicy,
    "prognic": ProgrammableNicPolicy,
    "flowlet": FlowletPolicy,
    "subset": SubsetPolicy,
    "scr": ScrPolicy,
}


def make_policy(mode: str, config) -> SteeringPolicy:
    """Instantiate the policy named by ``config.mode``."""
    try:
        policy_cls = _POLICIES[mode]
    except KeyError:
        raise ValueError(f"unknown steering mode {mode!r}; expected one of {sorted(_POLICIES)}")
    return policy_cls(config)


__all__ = [
    "SteeringPolicy",
    "RssPolicy",
    "SprayerPolicy",
    "NaiveSprayPolicy",
    "ProgrammableNicPolicy",
    "FlowletPolicy",
    "SubsetPolicy",
    "ScrPolicy",
    "make_policy",
]
