"""The steering-policy interface."""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.net.five_tuple import FiveTuple
from repro.nic.nic import MultiQueueNic

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.core.engine import MiddleboxEngine


class SteeringPolicy:
    """Base class; concrete policies override the hooks they need."""

    #: Policy name, used in experiment output.
    name: str = "base"
    #: If True, the engine redirects connection packets that arrive on a
    #: non-designated core through the inter-core rings.
    redirect_connection_packets: bool = True
    #: If True, the engine uses a single shared, locked flow table
    #: instead of partitioned per-core tables (the naive ablation).
    uses_shared_state: bool = False
    #: If True, the engine uses per-core replica tables plus the
    #: policy's packet-history log (``policy.replication``) so every
    #: core reconstructs flow state by replay — state-compute
    #: replication (the ``scr`` policy). No rings, no designated
    #: writer; mutually exclusive with ``uses_shared_state``.
    replicates_state: bool = False
    #: If True (every shipped policy), ``designated_core`` is a pure
    #: function of the flow for the lifetime of the engine, so the
    #: engine may memoize it. A policy whose mapping can shift at
    #: runtime must set this False (or call
    #: ``engine.invalidate_steering_cache`` when it changes).
    designated_core_is_stable: bool = True
    #: If True, the policy's NIC classification is a pure function of
    #: the packet columns plus the (hook-observed) FD/RSS tables, so the
    #: batch spine may classify whole :class:`~repro.net.batch.PacketBatch`
    #: columns eagerly and settle lazily. A policy whose classifier
    #: reads the clock or mutates per-decision state (flowlet) must set
    #: this False; the harness then falls back to the scalar spine.
    ingress_batchable: bool = True
    #: Vectorized counterpart of ``nic.custom_classifier``: called as
    #: ``classify_batch(batch, out)`` and fills ``out[i]`` (a list of
    #: Optional[int], pre-filled None) for rows the custom pipeline
    #: decides, leaving the rest None for Flow Director/RSS. Policies
    #: that install a ``custom_classifier`` MUST pair it with this, or
    #: declare themselves not ``ingress_batchable``.
    classify_batch = None

    def __init__(self, config):
        self.config = config
        self.nic: MultiQueueNic = None  # set by build_nic

    def build_nic(self) -> MultiQueueNic:
        """Create and program the NIC for this policy."""
        raise NotImplementedError

    def designated_core(self, flow: FiveTuple) -> int:
        """The single core allowed to modify this flow's state."""
        raise NotImplementedError

    def attach(self, engine: "MiddleboxEngine") -> None:
        """Post-wiring hook; policies that need the clock/RNG grab it here."""

    def resteer_around(self, engine: "MiddleboxEngine", degraded: frozenset) -> bool:
        """Re-aim *data* traffic away from ``degraded`` cores, if possible.

        Called by the fault injector whenever the degraded-core set
        changes (an empty set means "all healthy again — restore").
        Returns True when the steering actually changed, in which case
        the caller invalidates the engine's designated-core cache.

        The default declines: an RSS indirection table *could* be
        rewritten, but every flow hashed to the degraded core has its
        state pinned there, so commodity deployments don't — which is
        exactly the fragility the paper's design escapes (any core can
        process any packet; Sprayer just reprograms its spray rules).
        """
        return False
