"""The RSS baseline: per-flow steering, the status quo the paper measures against."""

from __future__ import annotations

from repro.net.five_tuple import FiveTuple
from repro.nic.nic import MultiQueueNic, NicConfig
from repro.nic.rss import SYMMETRIC_RSS_KEY
from repro.steering.base import SteeringPolicy


class RssPolicy(SteeringPolicy):
    """Classic RSS with the symmetric key (paper's baseline config).

    All packets of a flow land on one queue, so the designated core *is*
    the arrival core: flow state is naturally partitioned, no transfers
    ever happen, and a single flow can use exactly one core.
    """

    name = "rss"
    redirect_connection_packets = True  # engine path is generic; dst == arrival

    def build_nic(self) -> MultiQueueNic:
        self.nic = MultiQueueNic(
            NicConfig(
                num_queues=self.config.num_cores,
                queue_capacity=self.config.queue_capacity,
                rss_key=SYMMETRIC_RSS_KEY,
                flow_director_enabled=False,
            )
        )
        return self.nic

    def designated_core(self, flow: FiveTuple) -> int:
        return self.nic.rss.queue_for(flow)
