"""Programmable-NIC steering (paper §7, "Programmable NICs").

"We could program NICs to direct connection packets to designated
cores, reducing some of Sprayer's overhead." This policy models that: a
programmable pipeline checks the SYN/FIN/RST flags and steers connection
packets straight to their designated core's queue, while regular TCP
packets are sprayed. No ring transfers remain, and the 82599's Flow
Director classification cap does not apply to the programmable pipeline.
"""

from __future__ import annotations

from typing import Optional

from repro.core.designated import DesignatedCoreMap
from repro.net.five_tuple import FiveTuple
from repro.net.packet import Packet
from repro.net.tcp_flags import CONNECTION_MASK
from repro.nic.nic import MultiQueueNic, NicConfig
from repro.nic.rss import SYMMETRIC_RSS_KEY
from repro.steering.base import SteeringPolicy


class ProgrammableNicPolicy(SteeringPolicy):
    """Hardware steering of connection packets; spraying for the rest."""

    name = "prognic"
    # The engine's redirect path stays enabled as a safety net, but the
    # NIC already delivers connection packets to their designated core,
    # so no transfers actually occur.
    redirect_connection_packets = True

    def __init__(self, config):
        super().__init__(config)
        self.designated_map = DesignatedCoreMap(
            config.num_cores, symmetric=getattr(config, "symmetric_designation", True)
        )
        self._spray_counter = 0

    def build_nic(self) -> MultiQueueNic:
        self.nic = MultiQueueNic(
            NicConfig(
                num_queues=self.config.num_cores,
                queue_capacity=self.config.queue_capacity,
                rss_key=SYMMETRIC_RSS_KEY,
                flow_director_enabled=False,
                flow_director_pps_cap=None,
            )
        )
        self.nic.custom_classifier = self._classify
        self.nic.batch_classifier = self.classify_batch
        return self.nic

    def _classify(self, packet: Packet) -> Optional[int]:
        if not packet.is_tcp:
            return None  # RSS fallback, like Sprayer
        if packet.is_connection:
            return self.designated_map.core_for(packet.five_tuple)
        # Spray regular packets: the programmable pipeline can use any
        # uniform source; we keep the checksum LSBs for comparability
        # with Flow Director spraying.
        return packet.tcp_checksum % self.config.num_cores

    def classify_batch(self, batch, out) -> None:
        """Column form of :meth:`_classify` (same decisions, no Packets)."""
        num_cores = self.config.num_cores
        core_for = self.designated_map.core_for
        flags = batch.flags
        checksums = batch.checksums
        for i, flow in enumerate(batch.flows):
            if not flow.is_tcp:
                continue  # RSS fallback, like Sprayer
            if flags[i] & CONNECTION_MASK:
                out[i] = core_for(flow)
            else:
                out[i] = checksums[i] % num_cores

    def designated_core(self, flow: FiveTuple) -> int:
        if flow.is_tcp:
            return self.designated_map.core_for(flow)
        return self.nic.rss.queue_for(flow)
