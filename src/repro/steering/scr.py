"""State-compute replication (SCR): spray everything, replay everywhere.

"State-Compute Replication: Parallelizing High-Speed Stateful Packet
Processing" (arXiv 2309.14647) dissolves the paper's writing partition
instead of enforcing it. Every packet — connection packets included —
is sprayed over all cores with the same checksum-LSB Flow Director
rules Sprayer uses for data packets; no core is designated, and no
packet ever crosses a transfer ring. Correctness comes from
*replication*: the NIC seam appends every accepted connection packet to
a compact per-flow packet-history log, and each core *replays* the
entries it has not yet observed before touching a flow, reconstructing
an identical private replica of the flow's state. A log prefix is
truncated once every live core has both observed and consumed it.

Three consequences the figS experiment measures:

- SYN floods and designated-core hotspots cannot melt one core: there
  is no single core that must see every connection packet of a flow
  set, so connection-heavy load spreads exactly like data load.
- ``core_crash`` faults lose no flow state: every surviving core holds
  (or can replay) the full per-flow history, so recovery is a spray-
  rule reprogram — no re-homing, no state migration, no fresh SYNs
  needed.
- The price is replayed compute: each connection packet costs NF work
  on *every* core that observes its flow, plus log append/replay
  overhead (``CostModel.scr_log_append`` / ``scr_replay_per_packet``)
  and log memory until truncation catches up (the ``scr.log.depth``
  gauge watches it grow under SYN floods).

The replay discipline, spelled out (and relied on by the differential
oracle in ``tests/test_scr.py``):

1. The log keeps connection packets in NIC arrival order, per flow.
   Entries store a pristine header *snapshot* (clone), because the NF
   may rewrite the real packet's header in place.
2. A core's per-flow cursor counts the entries it has applied. Before
   an NF touches flow state, the owning context replays every
   unapplied entry — fresh clones through the real
   ``nf.connection_packets`` hook, so state writes and cycle charges
   land on the replaying core's own replica and batch.
3. The arrival core processes the *real* packet at its log position,
   so NF verdicts (drops, header rewrites) reach the packet that is
   actually forwarded. If the arrival core replayed the entry's clone
   before the real packet surfaced from its queue (possible when a
   data packet of the same flow triggered a sync first), the recorded
   verdict — deterministically identical, since replay is a pure
   function of (state prefix, snapshot) — is applied instead of
   running the NF twice.
4. Truncation drops a prefix once every live core's cursor has passed
   it *and* its real packet has been consumed; crashed cores are
   excluded so the log cannot wedge on a corpse.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.core.designated import DesignatedCoreMap
from repro.net.five_tuple import FiveTuple
from repro.net.packet import Packet
from repro.nic.flow_director import build_checksum_spray_rules, spray_bits_for
from repro.nic.nic import MultiQueueNic, NicConfig
from repro.nic.rss import SYMMETRIC_RSS_KEY
from repro.steering.base import SteeringPolicy


class _LogEntry:
    """One connection packet in a flow's history log."""

    __slots__ = ("snapshot", "replayed", "dropped", "final_flow", "consumed")

    def __init__(self, snapshot: Packet):
        #: Pristine pre-NF clone; every replay runs on a fresh copy.
        self.snapshot = snapshot
        #: True once any core has replayed it (verdict recorded).
        self.replayed = False
        #: Recorded verdict: the NF dropped the packet.
        self.dropped = False
        #: Recorded verdict: the packet's header after the NF ran.
        self.final_flow: Optional[FiveTuple] = None
        #: True once the real packet was processed (or verdict-applied)
        #: on its arrival core — a truncation precondition.
        self.consumed = False


class _FlowLog:
    """Append-only per-flow history with per-core replay cursors."""

    __slots__ = ("entries", "base", "applied")

    def __init__(self, num_cores: int):
        self.entries: List[_LogEntry] = []
        #: Absolute index of ``entries[0]`` (advances on truncation).
        self.base = 0
        #: Per-core absolute cursor: entries below it are applied.
        self.applied = [0] * num_cores


class ScrReplication:
    """The packet-history log and replay engine behind :class:`ScrPolicy`.

    The engine owns the seams: it calls :meth:`observe` for every
    NIC-accepted packet, :meth:`deliver` when a core processes a
    connection packet, :meth:`sync` before a core reads a flow's state,
    and :meth:`mark_dead` when a core crashes. All state mutation runs
    through the caller's :class:`~repro.core.nf.NfContext`, so replica
    writes are audited (and cycle-charged) exactly like first-run work.
    """

    def __init__(self, num_cores: int, costs):
        self.num_cores = num_cores
        self.costs = costs
        self._logs: Dict[FiveTuple, _FlowLog] = {}
        #: packet_id -> (flow, absolute log position) for accepted
        #: connection packets not yet processed on their arrival core.
        self._pending: Dict[int, Tuple[FiveTuple, int]] = {}
        self._dead: set = set()
        # Counters (surfaced as the scr.* telemetry family).
        self.log_appends = 0
        self.replayed_packets = 0
        self.verdicts_applied = 0
        self.truncated_entries = 0

    # -- gauges ------------------------------------------------------------

    def log_depth(self) -> int:
        """Entries currently retained across all flow logs."""
        return sum(len(log.entries) for log in self._logs.values())

    def log_flows(self) -> int:
        """Flows with a history log (live or awaiting truncation)."""
        return len(self._logs)

    # -- NIC seam ----------------------------------------------------------

    def observe(self, packet: Packet) -> None:
        """Append an accepted connection packet to its flow's log.

        Called at the engine's ingress seam for every packet the NIC
        accepted — packets dropped at the NIC (queue full, dead queue,
        FD cap) never existed as far as replication is concerned.
        """
        if not packet.is_connection:
            return
        flow = packet.five_tuple
        log = self._logs.get(flow)
        if log is None:
            log = self._logs[flow] = _FlowLog(self.num_cores)
        position = log.base + len(log.entries)
        log.entries.append(_LogEntry(packet.clone()))
        self._pending[packet.packet_id] = (flow, position)
        self.log_appends += 1

    def retract(self, packet: Packet) -> None:
        """Drop the entry of a packet the NIC just rejected.

        The engine appends *before* the NIC classifies (a queue push
        can process the packet synchronously), so a NIC drop — queue
        full, FD cap, dead queue — must unwind the append. Rejection
        happens before any core runs, so the entry is still the
        unreplayed tail of its flow's log; ``log_appends`` ends up
        counting only packets the NIC accepted.
        """
        pending = self._pending.pop(packet.packet_id, None)
        if pending is None:
            return
        flow, _position = pending
        self._logs[flow].entries.pop()
        self.log_appends -= 1

    # -- replay engine -----------------------------------------------------

    def _replay(self, entry: _LogEntry, ctx, nf) -> None:
        """Apply one logged entry to the calling core's replica."""
        clone = entry.snapshot.clone()
        nf.connection_packets([clone], ctx)
        ctx.consume_cycles(self.costs.scr_replay_per_packet)
        self.replayed_packets += 1
        if not entry.replayed:
            entry.replayed = True
            entry.dropped = ctx.is_dropped(clone)
            entry.final_flow = clone.five_tuple

    def sync(self, core_id: int, flow: FiveTuple, ctx, nf) -> None:
        """Bring the core's replica of ``flow`` up to the log tip."""
        log = self._logs.get(flow)
        if log is None:
            return
        applied = log.applied
        position = applied[core_id]
        tip = log.base + len(log.entries)
        if position >= tip:
            return
        entries = log.entries
        base = log.base
        while position < tip:
            self._replay(entries[position - base], ctx, nf)
            position += 1
        applied[core_id] = position
        self._truncate(log)

    def deliver(self, core_id: int, packet: Packet, ctx, nf) -> None:
        """Process a real connection packet on its arrival core.

        Replays any earlier unapplied entries first, then runs the NF on
        the real packet — unless a prior sync already replayed this
        entry's clone, in which case the recorded verdict is applied to
        the real packet without running the NF a second time.
        """
        flow, position = self._pending.pop(packet.packet_id)
        log = self._logs[flow]
        applied = log.applied
        entries = log.entries
        base = log.base
        if position < applied[core_id]:
            entry = entries[position - base]
            self.verdicts_applied += 1
            if entry.dropped:
                ctx.drop(packet)
            elif entry.final_flow != packet.five_tuple:
                packet.five_tuple = entry.final_flow
        else:
            cursor = applied[core_id]
            while cursor < position:
                self._replay(entries[cursor - base], ctx, nf)
                cursor += 1
            entry = entries[position - base]
            nf.connection_packets([packet], ctx)
            ctx.consume_cycles(self.costs.scr_log_append)
            if not entry.replayed:
                entry.replayed = True
                entry.dropped = ctx.is_dropped(packet)
                entry.final_flow = packet.five_tuple
            applied[core_id] = position + 1
        entry.consumed = True
        self._truncate(log)

    # -- truncation --------------------------------------------------------

    def _truncate(self, log: _FlowLog) -> None:
        """Drop the prefix every live core has applied and consumed."""
        dead = self._dead
        if dead:
            cursors = [
                cursor
                for core_id, cursor in enumerate(log.applied)
                if core_id not in dead
            ]
            if not cursors:
                return
            floor = min(cursors)
        else:
            floor = min(log.applied)
        entries = log.entries
        while log.base < floor and entries and entries[0].consumed:
            entries.pop(0)
            log.base += 1
            self.truncated_entries += 1

    def mark_dead(self, core_id: int) -> None:
        """Exclude a crashed core from truncation quorums."""
        self._dead.add(core_id)
        for log in self._logs.values():
            self._truncate(log)

    # -- control plane -----------------------------------------------------

    def converge(self, engine) -> None:
        """Replay every live core to every log tip (off the dataplane).

        The sanctioned way for tests and management tools to force full
        replica convergence before inspecting state — e.g. comparing
        each replica against single-writer ground truth. Cycle charges
        are discarded: this models a control-plane sweep, not packets.
        """
        for core_id in range(self.num_cores):
            if core_id in self._dead:
                continue
            ctx = engine.contexts[core_id]
            ctx.begin_batch()
            for flow in list(self._logs):
                self.sync(core_id, flow, ctx, engine.nf)
            ctx.end_batch()


class ScrPolicy(SteeringPolicy):
    """Spray all packets; replicate state by replaying the packet log."""

    name = "scr"
    #: Connection packets are processed wherever they land; the log
    #: replay — not a ring transfer — gets their state to other cores.
    redirect_connection_packets = False
    replicates_state = True

    def __init__(self, config):
        super().__init__(config)
        self.replication = ScrReplication(config.num_cores, config.costs)
        # Kept for API parity (ctx.designated_core); under SCR no core
        # is special — any core can process any packet after replay.
        self.designated_map = DesignatedCoreMap(
            config.num_cores, symmetric=getattr(config, "symmetric_designation", True)
        )
        self._spray_bits: int = 0  # pinned in build_nic

    def build_nic(self) -> MultiQueueNic:
        self.nic = MultiQueueNic(
            NicConfig(
                num_queues=self.config.num_cores,
                queue_capacity=self.config.queue_capacity,
                rss_key=SYMMETRIC_RSS_KEY,
                flow_director_enabled=True,
                flow_director_pps_cap=self.config.flow_director_pps_cap,
            )
        )
        bits = self.config.spray_bits
        if bits is None:
            bits = spray_bits_for(self.config.num_cores)
        self._spray_bits = bits
        rules = build_checksum_spray_rules(self.config.num_cores, bits=bits)
        self.nic.flow_director.add_rules(rules)
        return self.nic

    def resteer_around(self, engine, degraded: frozenset) -> bool:
        """Reprogram the spray rules over the surviving queues.

        This is where SCR's resilience story beats Sprayer's: the spray
        reprogram is the *whole* recovery. No designated flows need
        re-homing (there are none), no flow state is lost (every
        surviving core replays the same history), and no connection
        packets strand in a dead core's ring (there are no rings). The
        state/compute side of fault handling is a true no-op.
        """
        num_cores = self.config.num_cores
        live = [q for q in range(num_cores) if q not in degraded]
        if not live:
            return False
        table = self.nic.flow_director
        table.clear()
        table.add_rules(
            build_checksum_spray_rules(num_cores, bits=self._spray_bits, queues=live)
        )
        return True

    def designated_core(self, flow: FiveTuple) -> int:
        if flow.is_tcp:
            return self.designated_map.core_for(flow)
        return self.nic.rss.queue_for(flow)
