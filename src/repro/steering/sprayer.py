"""Sprayer: the paper's steering policy.

The NIC is programmed with Flow Director rules that exhaust every value
of the k least-significant TCP-checksum bits, spraying TCP packets
uniformly over all queues with zero software involvement; non-TCP
traffic falls back to RSS. Connection packets are redirected in
software (descriptor rings) to their designated core.
"""

from __future__ import annotations

from repro.core.designated import DesignatedCoreMap
from repro.net.five_tuple import FiveTuple
from repro.nic.flow_director import build_checksum_spray_rules, spray_bits_for
from repro.nic.nic import MultiQueueNic, NicConfig
from repro.nic.rss import SYMMETRIC_RSS_KEY
from repro.steering.base import SteeringPolicy


class SprayerPolicy(SteeringPolicy):
    """Checksum spraying + software connection-packet redirection."""

    name = "sprayer"
    redirect_connection_packets = True

    def __init__(self, config):
        super().__init__(config)
        self.designated_map = DesignatedCoreMap(
            config.num_cores, symmetric=getattr(config, "symmetric_designation", True)
        )
        #: §7 extension: UDP ports (e.g. QUIC's 443) whose flows are
        #: sprayed like TCP; everything else UDP stays on RSS.
        self.spray_udp_ports = frozenset(getattr(config, "spray_udp_ports", ()))
        #: Spray targets after a fault re-steer (None = all queues).
        self._live_queues = None
        self._spray_bits: int = 0  # pinned in build_nic

    def build_nic(self) -> MultiQueueNic:
        self.nic = MultiQueueNic(
            NicConfig(
                num_queues=self.config.num_cores,
                queue_capacity=self.config.queue_capacity,
                rss_key=SYMMETRIC_RSS_KEY,
                flow_director_enabled=True,
                flow_director_pps_cap=self.config.flow_director_pps_cap,
            )
        )
        bits = self.config.spray_bits
        if bits is None:
            bits = spray_bits_for(self.config.num_cores)
        self._spray_bits = bits
        rules = build_checksum_spray_rules(self.config.num_cores, bits=bits)
        self.nic.flow_director.add_rules(rules)
        if self.spray_udp_ports:
            # Flow Director perfect filters can match ports together
            # with the masked checksum; we model that combination with
            # a classifier consulted before the TCP rules.
            self.nic.custom_classifier = self._classify_udp
            self.nic.batch_classifier = self.classify_batch
        return self.nic

    def _sprayed_udp(self, flow: FiveTuple) -> bool:
        return flow.is_udp and (
            flow.src_port in self.spray_udp_ports
            or flow.dst_port in self.spray_udp_ports
        )

    def _classify_udp(self, packet) -> "int | None":
        if self._sprayed_udp(packet.five_tuple):
            live = self._live_queues
            if live is None:
                return packet.tcp_checksum % self.config.num_cores
            return live[packet.tcp_checksum % len(live)]
        return None  # TCP falls through to Flow Director; other UDP to RSS

    def classify_batch(self, batch, out) -> None:
        """Column form of :meth:`_classify_udp` (same decisions)."""
        sprayed = self._sprayed_udp
        checksums = batch.checksums
        num_cores = self.config.num_cores
        live = self._live_queues
        for i, flow in enumerate(batch.flows):
            if sprayed(flow):
                if live is None:
                    out[i] = checksums[i] % num_cores
                else:
                    out[i] = live[checksums[i] % len(live)]

    def resteer_around(self, engine, degraded: frozenset) -> bool:
        """Reprogram the spray rules over the non-degraded queues.

        This is the paper's resilience argument made operational: data
        packets carry no core affinity, so avoiding a sick core is one
        Flow Director reprogram — no state migrates, no flow strands.
        Connection packets keep flowing to their designated cores via
        the rings (a crashed core's designated flows are re-homed by
        the engine separately).
        """
        num_cores = self.config.num_cores
        live = [q for q in range(num_cores) if q not in degraded]
        if not live:
            return False
        table = self.nic.flow_director
        table.clear()
        table.add_rules(
            build_checksum_spray_rules(num_cores, bits=self._spray_bits, queues=live)
        )
        self._live_queues = None if len(live) == num_cores else live
        return True

    def designated_core(self, flow: FiveTuple) -> int:
        # Non-TCP flows are (normally) never sprayed — they arrive via
        # RSS — so their state naturally lives on the RSS core. Sprayed
        # UDP ports get a designated core like TCP flows do.
        if flow.is_tcp or self._sprayed_udp(flow):
            return self.designated_map.core_for(flow)
        return self.nic.rss.queue_for(flow)
