"""A directory-style cache-coherence cost model.

Flow state lives in cache lines. The model tracks, per state key, which
core last wrote it, and prices each access:

- read by the owner, or a repeat read: local (cheap);
- read of a line another core dirtied since our last access: a
  cross-core transfer (:attr:`CostModel.remote_read`);
- write by the owner: local;
- write by anyone else: invalidation + ownership transfer
  (:attr:`CostModel.cache_invalidation`).

Sprayer's thesis is that enforcing a *single writer per flow* makes all
writes owner-writes and bounds reads to at most one transfer after each
(rare) connection event. The naive-spraying ablation routes writes
through this model from arbitrary cores and eats invalidations on every
connection event instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Set

from repro.cpu.costs import CostModel


@dataclass
class CoherenceStats:
    """Access counters, split by locality."""

    local_reads: int = 0
    remote_reads: int = 0
    local_writes: int = 0
    invalidating_writes: int = 0

    @property
    def total_accesses(self) -> int:
        return (
            self.local_reads
            + self.remote_reads
            + self.local_writes
            + self.invalidating_writes
        )


class CoherenceModel:
    """Tracks line ownership and returns the cycle cost of each access."""

    def __init__(self, costs: CostModel):
        self.costs = costs
        #: key -> core that last wrote the line.
        self._owner: Dict[Hashable, int] = {}
        #: key -> cores holding a clean copy since the last write.
        self._sharers: Dict[Hashable, Set[int]] = {}
        self.stats = CoherenceStats()

    def read(self, core_id: int, key: Hashable) -> int:
        """Cost in cycles of ``core_id`` reading ``key``."""
        sharers = self._sharers.get(key)
        if sharers is None:
            # get-then-insert rather than setdefault: setdefault would
            # allocate a throwaway set() on every repeat read.
            sharers = set()
            self._sharers[key] = sharers
        if core_id in sharers or self._owner.get(key) == core_id:
            self.stats.local_reads += 1
            sharers.add(core_id)
            return self.costs.flow_lookup_local
        self.stats.remote_reads += 1
        sharers.add(core_id)
        return self.costs.remote_read

    def write(self, core_id: int, key: Hashable) -> int:
        """Cost in cycles of ``core_id`` writing ``key``."""
        owner = self._owner.get(key)
        sharers = self._sharers.get(key)
        others_hold_copies = bool(sharers and (sharers - {core_id}))
        self._owner[key] = core_id
        self._sharers[key] = {core_id}
        if owner in (None, core_id) and not others_hold_copies:
            self.stats.local_writes += 1
            return self.costs.flow_lookup_local
        self.stats.invalidating_writes += 1
        return self.costs.cache_invalidation

    def forget(self, key: Hashable) -> None:
        """Drop tracking for a removed entry."""
        self._owner.pop(key, None)
        self._sharers.pop(key, None)
