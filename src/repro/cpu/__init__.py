"""Multicore host model.

Cores are event-driven batch processors: a core wakes when its NIC rx
queue or its inter-core ring becomes non-empty, pulls a batch (DPDK
``rx_burst`` style), charges the batch's cycle cost to the simulated
clock, and emits the surviving packets at completion time. The cost
model (:mod:`repro.cpu.costs`) carries the per-operation cycle constants
that anchor absolute rates; the coherence model (:mod:`repro.cpu.cache`)
prices local vs. cross-core state access — the penalty Sprayer's
writing-partition design avoids.
"""

from repro.cpu.cache import CoherenceModel
from repro.cpu.core import BatchResult, Core, CoreStats
from repro.cpu.costs import CostModel
from repro.cpu.host import Host

__all__ = ["Core", "CoreStats", "BatchResult", "CostModel", "CoherenceModel", "Host"]
