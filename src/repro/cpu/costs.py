"""The cycle cost model.

Every operation a core performs is priced in cycles at the core clock.
The constants below are the model's free parameters; they are chosen so
that the *anchor points* of the paper's testbed hold:

- a single 2.0 GHz core forwarding 64 B packets with a trivial NF
  (0 busy cycles) sustains ~14 Mpps — i.e. the base per-packet path
  costs ~140 cycles, in line with published DPDK forwarding numbers;
- at 10,000 busy cycles per packet a core sustains ~0.197 Mpps, matching
  the paper's Figure 6a right-hand side (~0.2 Mpps for RSS, ~1.6 Mpps
  for 8-core Sprayer).

Cross-core costs price what the paper's design avoids or pays:
ring-descriptor transfer for connection packets (paid by Sprayer), and
remote cache-line reads for foreign flow state (paid by ``get_flow`` on
non-designated cores).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.timeunits import SECOND


@dataclass
class CostModel:
    """Per-operation cycle costs and the core clock."""

    #: Core clock in Hz (Xeon E5-2650: 8 cores at 2.0 GHz).
    clock_hz: float = 2.0e9

    # --- per batch (amortized across the batch) ---
    #: Fixed cost of an rx_burst poll that returns packets.
    rx_batch_fixed: int = 50
    #: Fixed cost of a tx_burst flush.
    tx_batch_fixed: int = 40
    #: Fixed cost of draining the inter-core ring once.
    ring_dequeue_fixed: int = 30
    #: Fixed cost of an enqueue to one destination core's ring.
    ring_enqueue_fixed: int = 30

    # --- per packet ---
    #: Rx descriptor handling + header prefetch.
    rx_per_packet: int = 55
    #: Tx descriptor handling.
    tx_per_packet: int = 50
    #: Connection/regular classification (flag test).
    classify_per_packet: int = 10
    #: Moving one packet descriptor onto a foreign ring.
    ring_transfer_per_packet: int = 25
    #: Receiving one descriptor from the local ring.
    ring_receive_per_packet: int = 20

    # --- flow state (see repro.core.flow_state) ---
    #: Hash-table lookup served from local cache.
    flow_lookup_local: int = 30
    #: Lookup of a foreign core's entry: cross-core cache-line read.
    flow_lookup_remote: int = 110
    #: Insert into the local flow table.
    flow_insert: int = 70
    #: Remove from the local flow table.
    flow_remove: int = 50
    #: Header rewrite (e.g. NAT translation application).
    header_update: int = 25

    # --- shared/global state (ablation: what naive spraying would pay) ---
    #: Acquire+release of an uncontended lock.
    lock_cycles: int = 45
    #: Write to a cache line owned by another core (invalidation).
    cache_invalidation: int = 100
    #: Read of a cache line recently written by another core.
    remote_read: int = 110

    # --- state-compute replication (the "scr" policy) ---
    #: Bookkeeping to process a connection packet against its log entry
    #: on the arrival core (lookup + cursor advance); the NIC-seam
    #: append itself is DMA-side and free of core cycles.
    scr_log_append: int = 40
    #: Replaying one logged connection packet on another core, on top
    #: of the NF's own state-access/compute cycles (which are charged
    #: through the context like first-run work).
    scr_replay_per_packet: int = 30

    def cycles_to_ps(self, cycles: float) -> int:
        """Convert cycles at this clock into integer picoseconds."""
        return round(cycles * SECOND / self.clock_hz)

    # --- batch cost accounting (the amortization the paper leans on) ---
    # All cost constants are integer-valued, so these sums are exact in
    # float arithmetic at any realistic batch size: the engine's batch
    # processors can charge one helper call per burst instead of two
    # running additions without changing a single cycle total.

    def rx_burst_cycles(self, n_packets: int) -> int:
        """Cost of an rx_burst poll returning ``n_packets``."""
        return self.rx_batch_fixed + self.rx_per_packet * n_packets

    def tx_burst_cycles(self, n_packets: int) -> int:
        """Cost of a tx_burst flush of ``n_packets``."""
        return self.tx_batch_fixed + self.tx_per_packet * n_packets

    def ring_drain_cycles(self, n_packets: int) -> int:
        """Cost of draining ``n_packets`` descriptors from the local ring."""
        return self.ring_dequeue_fixed + self.ring_receive_per_packet * n_packets

    def ring_push_cycles(self, n_packets: int, n_destinations: int) -> int:
        """Cost of pushing ``n_packets`` descriptors to ``n_destinations`` rings."""
        return (
            self.ring_enqueue_fixed * n_destinations
            + self.ring_transfer_per_packet * n_packets
        )

    @property
    def base_packet_cycles(self) -> int:
        """Approximate per-packet path cost with a free NF (diagnostics)."""
        return (
            self.rx_per_packet
            + self.classify_per_packet
            + self.flow_lookup_local
            + self.header_update
            + self.tx_per_packet
        )

    def single_core_rate_pps(self, nf_cycles: int) -> float:
        """Back-of-envelope single-core rate for an NF of ``nf_cycles``."""
        return self.clock_hz / (self.base_packet_cycles + nf_cycles)
