"""The middlebox host: a NIC wired to a set of cores.

The host performs the static wiring of Figure 3 in the paper: rx queue
``i`` belongs to core ``i``, and a queue turning non-empty wakes its
core. What each core *does* with packets (plain RSS processing, or
Sprayer's classify-and-redirect) is the processor installed by
:class:`repro.core.engine.MiddleboxEngine` — the host is policy-free.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.cpu.core import Core
from repro.cpu.costs import CostModel
from repro.net.packet import Packet
from repro.nic.nic import MultiQueueNic
from repro.sim.engine import Simulator


class Host:
    """A multicore server with one multi-queue NIC."""

    def __init__(
        self,
        sim: Simulator,
        nic: MultiQueueNic,
        costs: Optional[CostModel] = None,
        batch_size: int = 32,
    ):
        self.sim = sim
        self.nic = nic
        self.costs = costs or CostModel()
        self.cores: List[Core] = [
            Core(sim, core_id, self.costs, batch_size=batch_size)
            for core_id in range(nic.num_queues)
        ]
        for core, queue in zip(self.cores, nic.queues):
            core.rx_queue = queue
            queue.on_first_packet = core.wake
        self.packets_in = 0
        self.packets_out = 0

    @property
    def num_cores(self) -> int:
        return len(self.cores)

    def receive(self, packet: Packet, now: int) -> bool:
        """Entry point for the ingress link; returns False on NIC drop."""
        self.packets_in += 1
        return self.nic.receive(packet, now)

    def set_egress(self, egress: Callable[[Packet], None]) -> None:
        """Install the output hook every core emits forwarded packets to."""

        def counted_egress(packet: Packet) -> None:
            self.packets_out += 1
            egress(packet)

        for core in self.cores:
            core.on_output = counted_egress

    def set_egress_many(self, egress_many: Callable[[List[Packet]], None]) -> None:
        """Batch egress: one hook call per completion's outputs.

        The batch-spine counterpart of :meth:`set_egress` — same count,
        taken in one increment. ``set_egress`` stays wired as the
        per-packet fallback for cores without batch egress.
        """

        def counted_egress_many(packets: List[Packet]) -> None:
            self.packets_out += len(packets)
            egress_many(packets)

        for core in self.cores:
            core.on_output_many = counted_egress_many

    def total_busy_time(self) -> int:
        return sum(core.stats.busy_time_ps for core in self.cores)

    def per_core_forwarded(self) -> List[int]:
        return [core.stats.packets_forwarded for core in self.cores]

    def per_core_busy_cycles(self) -> List[float]:
        return [core.stats.busy_cycles for core in self.cores]

    def per_core_batches(self) -> List[int]:
        return [core.stats.batches for core in self.cores]
