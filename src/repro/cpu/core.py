"""An event-driven CPU core.

A core alternates between *idle* and *processing a batch*. It is woken
by its rx queue or its inter-core ring turning non-empty; it then pulls
up to ``batch_size`` packets (ring first — foreign connection packets
are latency-sensitive and bounded in number), hands them to its packet
*processor* (installed by the middlebox engine), and sleeps for the
batch's total cycle cost. At completion it emits outputs and transfers,
then immediately starts the next batch if work is pending.

Modelling per *batch* instead of per packet keeps simulated-event count
proportional to batches — the same reason DPDK applications batch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.cpu.costs import CostModel
from repro.net.packet import Packet
from repro.sim.engine import Simulator
from repro.sim.timeunits import SECOND


class BatchResult:
    """What processing one batch produced.

    ``cycles`` is the total cycle charge; ``outputs`` the packets to
    transmit; ``transfers`` the (destination core, packet) pairs to move
    onto foreign rings at completion time.

    A ``__slots__`` class rather than a dataclass: one is allocated per
    batch, which makes construction cost part of the per-batch budget.
    """

    __slots__ = ("cycles", "outputs", "transfers")

    def __init__(
        self,
        cycles: float,
        outputs: Optional[List[Packet]] = None,
        transfers: Optional[List[Tuple[int, Packet]]] = None,
    ):
        self.cycles = cycles
        self.outputs = [] if outputs is None else outputs
        self.transfers = [] if transfers is None else transfers


#: A processor takes (core, foreign_batch, local_batch) -> BatchResult.
Processor = Callable[["Core", List[Packet], List[Packet]], BatchResult]


@dataclass(slots=True)
class CoreStats:
    """Per-core accounting (slotted: several fields update per batch)."""

    batches: int = 0
    packets_handled: int = 0
    packets_forwarded: int = 0
    packets_transferred: int = 0
    foreign_handled: int = 0
    busy_time_ps: int = 0
    busy_cycles: float = 0.0


class Core:
    """One CPU core of the middlebox host."""

    def __init__(
        self,
        sim: Simulator,
        core_id: int,
        costs: CostModel,
        batch_size: int = 32,
    ):
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.sim = sim
        self.core_id = core_id
        self.costs = costs
        self._clock_hz = costs.clock_hz
        self.batch_size = batch_size
        self.stats = CoreStats()
        self.rx_queue = None  # set by Host wiring
        self.ring = None  # set by Host wiring
        self.processor: Optional[Processor] = None
        self.on_output: Optional[Callable[[Packet], None]] = None
        #: Batch egress: when set, a completion's outputs are emitted in
        #: ONE call (after their done_time/processed_core stamps) instead
        #: of one ``on_output`` call per packet. Wired by
        #: :meth:`repro.cpu.host.Host.set_egress_many` on the batch spine.
        self.on_output_many: Optional[Callable[[List[Packet]], None]] = None
        self.on_transfer: Optional[Callable[[int, Packet], None]] = None
        #: Optional telemetry histogram fed one observation per batch
        #: (packets in the batch). A single None-check per batch.
        self.batch_size_hist = None
        #: Optional trace hook, called as ``trace_batch(core_id,
        #: start_ps, duration_ps, n_foreign, n_local)`` per batch.
        self.trace_batch: Optional[Callable[[int, int, int, int, int], None]] = None
        self._busy = False
        #: Batch-spine settlement hook (see :mod:`repro.core.batch_spine`):
        #: called at the top of every batch completion, *before* outputs
        #: and transfers are emitted, so arrivals the scalar event loop
        #: would have processed first land in the queues first. Exact
        #: same-timestamp ordering comes from the simulator's event
        #: sequence, which the stager reads itself.
        self.poll_arrivals: Optional[Callable[[], None]] = None
        #: Batch-spine hook: fired when this core ends up idle (no
        #: queued work) after a completion or resume, so the stager can
        #: arm a timer for the next staged arrival that should wake it.
        self.on_idle: Optional[Callable[[], None]] = None
        #: Fault injection: batch durations are multiplied by this (a
        #: thermally-throttled core takes longer per cycle). 1.0 = healthy.
        self.cycle_factor: float = 1.0
        self._halted = False
        self.crashed = False

    @property
    def busy(self) -> bool:
        return self._busy

    @property
    def halted(self) -> bool:
        return self._halted

    def has_work(self) -> bool:
        rx_pending = self.rx_queue is not None and not self.rx_queue.is_empty
        ring_pending = self.ring is not None and not self.ring.is_empty
        return rx_pending or ring_pending

    def wake(self) -> None:
        """Notify the core that work may be available."""
        # _start_batch re-checks for work itself; a second check here
        # would double the queue probes on the (common) productive wake.
        if not self._busy and not self._halted:
            self._start_batch()

    # -- fault injection ---------------------------------------------------

    def stall(self) -> None:
        """Pause the core at the next batch boundary.

        An in-flight batch completes normally (a preempted thread
        finishes its current burst); no further batch starts until
        :meth:`resume`. Queued work stays queued — upstream overflow
        becomes ordinary queue_full/ring drops.
        """
        self._halted = True

    def resume(self) -> None:
        """Undo :meth:`stall` and pick work back up. No-op if crashed."""
        if self.crashed:
            return
        self._halted = False
        # A stalled core may have slept through staged arrivals (every
        # other core busy means no settle timer fired for it): settle
        # them into the queues before popping.
        poll = self.poll_arrivals
        if poll is not None:
            poll()
        self.wake()
        if not self._busy and self.on_idle is not None:
            self.on_idle()

    def crash(self) -> int:
        """Kill the core permanently; flush queued work.

        Returns the number of packets flushed from the rx queue and the
        transfer ring — the caller accounts them as fault drops so the
        conservation ledger stays exact. An in-flight batch completes
        (its packets were already in the pipeline).
        """
        self.crashed = True
        self._halted = True
        flushed = 0
        queue = self.rx_queue
        if queue is not None:
            while not queue.is_empty:
                flushed += len(queue.pop_batch(self.batch_size))
        ring = self.ring
        if ring is not None:
            while not ring.is_empty:
                flushed += len(ring.pop_batch(self.batch_size))
        return flushed

    def _start_batch(self) -> None:
        processor = self.processor
        if processor is None:
            raise RuntimeError(f"core {self.core_id} has no processor installed")
        batch_size = self.batch_size
        # Emptiness probes read the deques directly: the is_empty
        # property costs a frame per probe, and this runs per wake.
        ring = self.ring
        if ring is not None and ring._descriptors:
            foreign = ring.pop_batch(batch_size)
            room = batch_size - len(foreign)
        else:
            foreign = []
            room = batch_size
        rx_queue = self.rx_queue
        if room > 0 and rx_queue is not None and rx_queue._packets:
            local = rx_queue.pop_batch(room)
        elif foreign:
            local = []
        else:
            return
        self._busy = True
        result = processor(self, foreign, local)
        cycles = result.cycles
        # costs.cycles_to_ps, inlined (a frame per batch): the operand
        # order must stay `cycles * SECOND / clock_hz` — the rounding
        # differs under algebraic rearrangement.
        duration = round(cycles * SECOND / self._clock_hz)
        factor = self.cycle_factor
        if factor != 1.0:
            # Slowdown fault: same work, slower clock. busy_cycles stays
            # the true cycle charge; busy_time_ps reflects the wall cost.
            duration = int(duration * factor)
        n_foreign = len(foreign)
        n_total = n_foreign + len(local)
        stats = self.stats
        stats.batches += 1
        stats.packets_handled += n_total
        stats.foreign_handled += n_foreign
        stats.busy_time_ps += duration
        stats.busy_cycles += cycles
        if self.batch_size_hist is not None:
            self.batch_size_hist.observe(n_total)
        if self.trace_batch is not None:
            self.trace_batch(
                self.core_id, self.sim._now, duration, n_foreign, len(local)
            )
        self.sim.post_after(duration, self._complete, result)

    def _complete(self, result: BatchResult) -> None:
        poll = self.poll_arrivals
        if poll is not None:
            # Settle arrivals that beat this completion in the scalar
            # event order. The core is still _busy, so a push-driven
            # wake of *this* core no-ops; other idle cores may start
            # batches here, exactly as their scalar arrival events
            # would have run before this one.
            poll()
        outputs = result.outputs
        if outputs:
            self.stats.packets_forwarded += len(outputs)
            emit_many = self.on_output_many
            if emit_many is not None:
                now = self.sim._now
                core_id = self.core_id
                for packet in outputs:
                    packet.done_time = now
                    packet.processed_core = core_id
                emit_many(outputs)
            else:
                emit = self.on_output
                if emit is not None:
                    now = self.sim._now
                    core_id = self.core_id
                    for packet in outputs:
                        packet.done_time = now
                        packet.processed_core = core_id
                        emit(packet)
        transfers = result.transfers
        if transfers:
            self.stats.packets_transferred += len(transfers)
            transfer = self.on_transfer
            if transfer is None:
                raise RuntimeError(
                    f"core {self.core_id} produced transfers but has no transfer hook"
                )
            for dst_core, packet in transfers:
                transfer(dst_core, packet)
        self._busy = False
        if not self._halted:
            # Probe for queued work before paying the _start_batch call:
            # at underload most completions find both deques empty.
            ring = self.ring
            rx_queue = self.rx_queue
            if (ring is not None and ring._descriptors) or (
                rx_queue is not None and rx_queue._packets
            ):
                self._start_batch()
            if not self._busy and self.on_idle is not None:
                self.on_idle()

    def utilization(self, elapsed_ps: int) -> float:
        """Fraction of ``elapsed_ps`` this core spent processing."""
        if elapsed_ps <= 0:
            return 0.0
        return min(1.0, self.stats.busy_time_ps / elapsed_ps)
