"""An event-driven CPU core.

A core alternates between *idle* and *processing a batch*. It is woken
by its rx queue or its inter-core ring turning non-empty; it then pulls
up to ``batch_size`` packets (ring first — foreign connection packets
are latency-sensitive and bounded in number), hands them to its packet
*processor* (installed by the middlebox engine), and sleeps for the
batch's total cycle cost. At completion it emits outputs and transfers,
then immediately starts the next batch if work is pending.

Modelling per *batch* instead of per packet keeps simulated-event count
proportional to batches — the same reason DPDK applications batch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.cpu.costs import CostModel
from repro.net.packet import Packet
from repro.sim.engine import Simulator


@dataclass
class BatchResult:
    """What processing one batch produced.

    ``cycles`` is the total cycle charge; ``outputs`` the packets to
    transmit; ``transfers`` the (destination core, packet) pairs to move
    onto foreign rings at completion time.
    """

    cycles: float
    outputs: List[Packet] = field(default_factory=list)
    transfers: List[Tuple[int, Packet]] = field(default_factory=list)


#: A processor takes (core, foreign_batch, local_batch) -> BatchResult.
Processor = Callable[["Core", List[Packet], List[Packet]], BatchResult]


@dataclass
class CoreStats:
    """Per-core accounting."""

    batches: int = 0
    packets_handled: int = 0
    packets_forwarded: int = 0
    packets_transferred: int = 0
    foreign_handled: int = 0
    busy_time_ps: int = 0
    busy_cycles: float = 0.0


class Core:
    """One CPU core of the middlebox host."""

    def __init__(
        self,
        sim: Simulator,
        core_id: int,
        costs: CostModel,
        batch_size: int = 32,
    ):
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.sim = sim
        self.core_id = core_id
        self.costs = costs
        self._cycles_to_ps = costs.cycles_to_ps
        self.batch_size = batch_size
        self.stats = CoreStats()
        self.rx_queue = None  # set by Host wiring
        self.ring = None  # set by Host wiring
        self.processor: Optional[Processor] = None
        self.on_output: Optional[Callable[[Packet], None]] = None
        self.on_transfer: Optional[Callable[[int, Packet], None]] = None
        #: Optional telemetry histogram fed one observation per batch
        #: (packets in the batch). A single None-check per batch.
        self.batch_size_hist = None
        #: Optional trace hook, called as ``trace_batch(core_id,
        #: start_ps, duration_ps, n_foreign, n_local)`` per batch.
        self.trace_batch: Optional[Callable[[int, int, int, int, int], None]] = None
        self._busy = False
        #: Fault injection: batch durations are multiplied by this (a
        #: thermally-throttled core takes longer per cycle). 1.0 = healthy.
        self.cycle_factor: float = 1.0
        self._halted = False
        self.crashed = False

    @property
    def busy(self) -> bool:
        return self._busy

    @property
    def halted(self) -> bool:
        return self._halted

    def has_work(self) -> bool:
        rx_pending = self.rx_queue is not None and not self.rx_queue.is_empty
        ring_pending = self.ring is not None and not self.ring.is_empty
        return rx_pending or ring_pending

    def wake(self) -> None:
        """Notify the core that work may be available."""
        # _start_batch re-checks for work itself; a second check here
        # would double the queue probes on the (common) productive wake.
        if not self._busy and not self._halted:
            self._start_batch()

    # -- fault injection ---------------------------------------------------

    def stall(self) -> None:
        """Pause the core at the next batch boundary.

        An in-flight batch completes normally (a preempted thread
        finishes its current burst); no further batch starts until
        :meth:`resume`. Queued work stays queued — upstream overflow
        becomes ordinary queue_full/ring drops.
        """
        self._halted = True

    def resume(self) -> None:
        """Undo :meth:`stall` and pick work back up. No-op if crashed."""
        if self.crashed:
            return
        self._halted = False
        self.wake()

    def crash(self) -> int:
        """Kill the core permanently; flush queued work.

        Returns the number of packets flushed from the rx queue and the
        transfer ring — the caller accounts them as fault drops so the
        conservation ledger stays exact. An in-flight batch completes
        (its packets were already in the pipeline).
        """
        self.crashed = True
        self._halted = True
        flushed = 0
        queue = self.rx_queue
        if queue is not None:
            while not queue.is_empty:
                flushed += len(queue.pop_batch(self.batch_size))
        ring = self.ring
        if ring is not None:
            while not ring.is_empty:
                flushed += len(ring.pop_batch(self.batch_size))
        return flushed

    def _start_batch(self) -> None:
        processor = self.processor
        if processor is None:
            raise RuntimeError(f"core {self.core_id} has no processor installed")
        batch_size = self.batch_size
        ring = self.ring
        if ring is not None and not ring.is_empty:
            foreign = ring.pop_batch(batch_size)
            room = batch_size - len(foreign)
        else:
            foreign = []
            room = batch_size
        rx_queue = self.rx_queue
        if room > 0 and rx_queue is not None and not rx_queue.is_empty:
            local = rx_queue.pop_batch(room)
        elif foreign:
            local = []
        else:
            return
        self._busy = True
        result = processor(self, foreign, local)
        cycles = result.cycles
        duration = self._cycles_to_ps(cycles)
        factor = self.cycle_factor
        if factor != 1.0:
            # Slowdown fault: same work, slower clock. busy_cycles stays
            # the true cycle charge; busy_time_ps reflects the wall cost.
            duration = int(duration * factor)
        n_foreign = len(foreign)
        n_total = n_foreign + len(local)
        stats = self.stats
        stats.batches += 1
        stats.packets_handled += n_total
        stats.foreign_handled += n_foreign
        stats.busy_time_ps += duration
        stats.busy_cycles += cycles
        if self.batch_size_hist is not None:
            self.batch_size_hist.observe(n_total)
        if self.trace_batch is not None:
            self.trace_batch(
                self.core_id, self.sim._now, duration, n_foreign, len(local)
            )
        self.sim.post_after(duration, self._complete, result)

    def _complete(self, result: BatchResult) -> None:
        outputs = result.outputs
        if outputs:
            self.stats.packets_forwarded += len(outputs)
            emit = self.on_output
            if emit is not None:
                now = self.sim._now
                core_id = self.core_id
                for packet in outputs:
                    packet.done_time = now
                    packet.processed_core = core_id
                    emit(packet)
        transfers = result.transfers
        if transfers:
            self.stats.packets_transferred += len(transfers)
            transfer = self.on_transfer
            if transfer is None:
                raise RuntimeError(
                    f"core {self.core_id} produced transfers but has no transfer hook"
                )
            for dst_core, packet in transfers:
                transfer(dst_core, packet)
        self._busy = False
        if not self._halted:
            self._start_batch()

    def utilization(self, elapsed_ps: int) -> float:
        """Fraction of ``elapsed_ps`` this core spent processing."""
        if elapsed_ps <= 0:
            return 0.0
        return min(1.0, self.stats.busy_time_ps / elapsed_ps)
