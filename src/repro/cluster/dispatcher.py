"""Flow-to-host dispatching.

The front end (a switch doing ECMP, or an L4 balancer) must never spray
a flow across hosts — §7 is explicit about that — so dispatching is
per-flow and direction-symmetric (keys are canonical five-tuples).

A consistent-hash ring keeps remapping minimal under elastic scaling:
adding or removing a host moves only ~1/N of the flows, which bounds
the state that has to migrate.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, List, Optional

from repro.net.five_tuple import FiveTuple


def _hash_point(data: str) -> int:
    """A stable 64-bit hash point (process-independent, unlike hash())."""
    return int.from_bytes(hashlib.blake2b(data.encode(), digest_size=8).digest(), "big")


#: Bound on the per-ring lookup memo. At O(10^5) concurrent flows the
#: cache must hold the working set; clearing on overflow (rather than
#: evicting) keeps the fast path to a single dict probe.
RING_CACHE_LIMIT = 1 << 20


class ConsistentHashRing:
    """Classic consistent hashing with virtual nodes.

    ``lookup`` memoizes key -> owner: blake2b per dispatch would
    dominate at backbone flow counts, and between topology changes the
    mapping is pure. Any ``add_node``/``remove_node`` invalidates the
    memo wholesale — correctness never depends on the cache.
    """

    def __init__(self, virtual_nodes: int = 64):
        if virtual_nodes < 1:
            raise ValueError(f"virtual_nodes must be >= 1, got {virtual_nodes}")
        self.virtual_nodes = virtual_nodes
        self._points: List[int] = []
        self._owners: Dict[int, str] = {}
        self._lookup_cache: Dict[str, str] = {}

    def add_node(self, node: str) -> None:
        if any(owner == node for owner in self._owners.values()):
            raise ValueError(f"node {node!r} already present")
        for replica in range(self.virtual_nodes):
            point = _hash_point(f"{node}#{replica}")
            if point in self._owners:
                continue  # vanishingly rare 64-bit collision
            bisect.insort(self._points, point)
            self._owners[point] = node
        self._lookup_cache.clear()

    def remove_node(self, node: str) -> None:
        points = [p for p, owner in self._owners.items() if owner == node]
        if not points:
            raise ValueError(f"node {node!r} not present")
        for point in points:
            del self._owners[point]
            index = bisect.bisect_left(self._points, point)
            del self._points[index]
        self._lookup_cache.clear()

    def nodes(self) -> List[str]:
        return sorted(set(self._owners.values()))

    def lookup(self, key: str) -> str:
        cached = self._lookup_cache.get(key)
        if cached is not None:
            return cached
        if not self._points:
            raise RuntimeError("ring is empty")
        point = _hash_point(key)
        index = bisect.bisect_right(self._points, point)
        if index == len(self._points):
            index = 0
        owner = self._owners[self._points[index]]
        if len(self._lookup_cache) >= RING_CACHE_LIMIT:
            self._lookup_cache.clear()
        self._lookup_cache[key] = owner
        return owner


class FlowDispatcher:
    """flow -> host, symmetric, cached, consistent under rescaling.

    Besides hashing, addresses can be *pinned* to a host: a rewriting
    NF (NAT) makes return traffic arrive under a tuple that hashes
    independently of the original flow, so clustered NATs give each
    host its own external address and the front end routes traffic for
    that address back to its owner (the standard per-host-SNAT-pool
    deployment). Pins take precedence over the ring.
    """

    def __init__(self, hosts: List[str], virtual_nodes: int = 64, sticky: bool = False):
        self.ring = ConsistentHashRing(virtual_nodes)
        for host in hosts:
            self.ring.add_node(host)
        #: Sticky mode: flows already dispatched keep their host across
        #: rescaling (connection draining); only *new* flows follow the
        #: updated ring. Required for NFs whose state cannot migrate
        #: piecemeal (a NAT's port allocations).
        self.sticky = sticky
        self._cache: Dict[FiveTuple, str] = {}
        self._address_pins: Dict[int, str] = {}

    def pin_address(self, address: int, host: str) -> None:
        """Route all traffic to/from ``address`` to ``host``."""
        self._address_pins[address] = host
        self._cache.clear()

    def host_for(self, flow: FiveTuple) -> str:
        """The host this flow (either direction) is pinned to."""
        pinned = self._address_pins.get(flow.dst_ip) or self._address_pins.get(flow.src_ip)
        if pinned is not None:
            return pinned
        canonical = flow.canonical()
        host = self._cache.get(canonical)
        if host is None:
            host = self.ring.lookup(str(canonical))
            self._cache[canonical] = host
        return host

    def add_host(self, host: str) -> None:
        self.ring.add_node(host)
        if not self.sticky:
            self._cache.clear()

    def remove_host(self, host: str) -> None:
        self.ring.remove_node(host)
        if self.sticky:
            # Flows on surviving hosts stay; the removed host's flows
            # must re-map.
            self._cache = {k: v for k, v in self._cache.items() if v != host}
        else:
            self._cache.clear()
        stale = [addr for addr, owner in self._address_pins.items() if owner == host]
        for addr in stale:
            del self._address_pins[addr]
