"""Cluster-level telemetry facade.

:class:`ClusterTelemetry` is the cluster analogue of
:class:`~repro.telemetry.hub.EngineTelemetry`: a pull-mode
:class:`~repro.telemetry.registry.Registry` bound over
:class:`~repro.cluster.cluster.ClusterStats` (zero hot-path cost), an
optional :class:`~repro.telemetry.trace.EventTracer` that records
scaling/failure/migration instants, and a :meth:`sample` hook for a
cluster-wide time series. The per-engine samplers and tracers keep
working untouched; this layer adds the events that happen *between*
engines — host lifecycle and state movement — which no single engine
can see.

Registry names (documented in README.md § Telemetry):

=============================  ==========================================
``cluster.hosts.live``         dispatchable hosts (gauge)
``cluster.hosts.total``        hosts with an engine, incl. draining (gauge)
``cluster.dispatched``         packets dispatched by the front end
``cluster.migrations``         rebalance operations that moved state
``cluster.flows.moved``        distinct canonical flows whose state moved
``cluster.entries.migrated``   flow-table entries moved between hosts
``cluster.host_failures``      ``host_down`` events
``cluster.entries.lost``       entries lost to host failures
``cluster.flow_entries``       live flow-table population, all hosts (gauge)
=============================  ==========================================

The serving layer (``repro.cluster.serving``) binds its own additions
— ``cluster.buffered.packets``, ``cluster.buffered.bytes``,
``cluster.migrations.inflight``, ``cluster.state_lost.inflight`` —
into the same registry, so one dump carries the whole story.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.telemetry.registry import Registry
from repro.telemetry.trace import EventTracer

#: Trace "thread" id for cluster-scope instants (engine tracers use
#: core ids; the cluster control plane gets its own lane).
CONTROL_PLANE_TID = 0


class ClusterTelemetry:
    """Counters, trace, and sampling for one cluster."""

    def __init__(self, cluster: Any, trace: bool = True, max_events: int = 100_000):
        self.cluster = cluster
        self.registry = Registry()
        self.tracer: Optional[EventTracer] = (
            EventTracer(max_events=max_events) if trace else None
        )
        if self.tracer is not None:
            self.tracer.thread_name(CONTROL_PLANE_TID, "cluster control plane")
        #: (t_ps, {name: value}) snapshots taken by :meth:`sample`.
        self.series: list = []
        self._bind(cluster)
        cluster.telemetry = self

    def _bind(self, cluster: Any) -> None:
        registry = self.registry
        stats = cluster.stats
        registry.bind("cluster.hosts.live", lambda: len(cluster.live_hosts))
        registry.bind("cluster.hosts.total", lambda: len(cluster.engines))
        registry.bind("cluster.dispatched", lambda: stats.dispatched)
        registry.bind("cluster.migrations", lambda: stats.migrations)
        registry.bind("cluster.flows.moved", lambda: stats.flows_moved)
        registry.bind("cluster.entries.migrated", lambda: stats.migrated_entries)
        registry.bind("cluster.host_failures", lambda: stats.host_failures)
        registry.bind("cluster.entries.lost", lambda: stats.lost_entries)
        registry.bind("cluster.flow_entries", self._live_flow_entries)

    def _live_flow_entries(self) -> int:
        cluster = self.cluster
        total = 0
        for host in cluster.live_hosts:
            total += cluster.engines[host].flow_state.total_entries()
        return total

    # -- event + series hooks ----------------------------------------------

    def instant(self, name: str, ts_ps: int, **args) -> None:
        """Record a cluster-scope instant (no-op when tracing is off)."""
        if self.tracer is not None:
            self.tracer.instant(name, CONTROL_PLANE_TID, ts_ps, **args)

    def sample(self, ts_ps: int) -> Dict[str, Any]:
        """Snapshot every counter into the cluster series."""
        snapshot = self.registry.dump()
        self.series.append((ts_ps, snapshot))
        return snapshot

    # -- export ------------------------------------------------------------

    def counters(self) -> Dict[str, Any]:
        """Flat name -> value dict of every registered metric."""
        return self.registry.dump()

    def dump(self) -> Dict[str, Any]:
        """Plain dict export mirroring ``EngineTelemetry.dump()``."""
        tracer = self.tracer
        return {
            "counters": self.registry.dump(),
            "series": list(self.series),
            "trace": tracer.to_dicts() if tracer else [],
            "trace_dropped_events": tracer.dropped_events if tracer else 0,
        }

    def chrome_trace(self) -> Dict[str, Any]:
        """A Chrome ``trace_event`` JSON object (empty if tracing is off)."""
        if self.tracer is None:
            return {"traceEvents": [], "displayTimeUnit": "ms"}
        return self.tracer.to_chrome_trace()
