"""Elastic scaling to multiple hosts (paper §7).

"We can also scale Sprayer to multiple hosts, as long as packets from
the same flow are not sprayed across different hosts."

This package provides that layer: a consistent-hash flow dispatcher (an
ECMP-style front end) that pins each flow — both directions — to one
host, where the per-host Sprayer engine sprays it across that host's
cores. Scale-out/scale-in remaps a minimal fraction of flows and
migrates their state (the OpenNF/S6 problem, modelled as bulk entry
moves with accounting).
"""

from repro.cluster.cluster import ClusterMiddlebox, ClusterStats
from repro.cluster.dispatcher import ConsistentHashRing, FlowDispatcher

__all__ = [
    "ClusterMiddlebox",
    "ClusterStats",
    "FlowDispatcher",
    "ConsistentHashRing",
]
