"""The multi-host Sprayer cluster.

Each host is a full :class:`~repro.core.engine.MiddleboxEngine` (its
own NIC, cores, rings, flow tables, NF instance); the dispatcher pins
flows to hosts. Within a host, Sprayer sprays as usual — the §7
constraint ("packets from the same flow are not sprayed across
different hosts") holds by construction.

Elastic scaling: ``scale_out``/``scale_in`` change the host set; the
flows whose dispatch target changes have their state *migrated* — the
flow-table entries are moved to the new host's tables (re-homed to the
new host's designated cores). The migration is counted and priced, in
the spirit of OpenNF's move operations / S6's object migration, though
without modelling migration latency in the dataplane.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.core.config import MiddleboxConfig
from repro.core.engine import MiddleboxEngine
from repro.core.nf import NetworkFunction
from repro.net.five_tuple import FiveTuple
from repro.net.packet import Packet
from repro.sim.engine import Simulator
from repro.cluster.dispatcher import FlowDispatcher


@dataclass
class ClusterStats:
    """Cluster-wide accounting."""

    dispatched: int = 0
    per_host_dispatched: Dict[str, int] = field(default_factory=dict)
    migrations: int = 0
    migrated_entries: int = 0
    #: Distinct canonical flows whose state moved hosts (a flow with
    #: entries for both directions counts once per migration).
    flows_moved: int = 0
    host_failures: int = 0
    #: Flow-table entries lost to host failures (unlike scale_in, a
    #: crash migrates nothing).
    lost_entries: int = 0


class ClusterMiddlebox:
    """N Sprayer hosts behind a per-flow consistent-hash front end."""

    def __init__(
        self,
        sim: Simulator,
        nf_factory: Callable[[str], NetworkFunction],
        num_hosts: int = 2,
        config_factory: Optional[Callable[[str], MiddleboxConfig]] = None,
        virtual_nodes: int = 64,
        sticky_flows: bool = False,
    ):
        if num_hosts < 1:
            raise ValueError(f"num_hosts must be >= 1, got {num_hosts}")
        self.sim = sim
        self.nf_factory = nf_factory
        self.config_factory = config_factory or (lambda host: MiddleboxConfig(mode="sprayer"))
        self._host_counter = 0
        self.engines: Dict[str, MiddleboxEngine] = {}
        self._failed: set = set()
        self.stats = ClusterStats()
        #: Optional :class:`repro.cluster.telemetry.ClusterTelemetry`;
        #: when attached, scaling and failure events land in its trace.
        self.telemetry = None
        self._egress: Optional[Callable[[Packet], None]] = None
        host_names = [self._next_host_name() for _ in range(num_hosts)]
        self.dispatcher = FlowDispatcher(host_names, virtual_nodes, sticky=sticky_flows)
        for host in host_names:
            self._build_engine(host)

    # -- host lifecycle ------------------------------------------------------

    def _next_host_name(self) -> str:
        name = f"host{self._host_counter}"
        self._host_counter += 1
        return name

    def _build_engine(self, host: str) -> MiddleboxEngine:
        engine = MiddleboxEngine(self.sim, self.nf_factory(host), self.config_factory(host))
        self.engines[host] = engine
        self.stats.per_host_dispatched.setdefault(host, 0)
        if self._egress is not None:
            engine.set_egress(self._egress)
        return engine

    @property
    def hosts(self) -> List[str]:
        return sorted(self.engines)

    @property
    def live_hosts(self) -> List[str]:
        """Hosts still dispatchable (excludes crashed ones)."""
        return sorted(host for host in self.engines if host not in self._failed)

    def set_egress(self, egress: Callable[[Packet], None]) -> None:
        self._egress = egress
        for engine in self.engines.values():
            engine.set_egress(egress)

    # -- dataplane -----------------------------------------------------------

    def host_for(self, flow: FiveTuple) -> str:
        return self.dispatcher.host_for(flow)

    def pin_address(self, address: int, host: str) -> None:
        """Route traffic to/from ``address`` to ``host`` (see
        :meth:`FlowDispatcher.pin_address`; used for per-host NAT
        external addresses)."""
        if host not in self.engines:
            raise ValueError(f"unknown host {host!r}")
        self.dispatcher.pin_address(address, host)

    def receive(self, packet: Packet, now: int) -> bool:
        host = self.dispatcher.host_for(packet.five_tuple)
        self.stats.dispatched += 1
        self.stats.per_host_dispatched[host] += 1
        return self.engines[host].receive(packet, now)

    # -- elastic scaling ---------------------------------------------------------

    def scale_out(self) -> str:
        """Add a host; migrate the flows that re-map to it."""
        host = self._next_host_name()
        old_assignment = self._current_assignment()
        self._build_engine(host)
        self.dispatcher.add_host(host)
        self._migrate(old_assignment)
        self._trace("cluster_scale_out", host=host)
        return host

    def scale_in(self, host: str) -> None:
        """Drain and remove a host; its flows migrate to survivors."""
        if host not in self.engines:
            raise ValueError(f"unknown host {host!r}")
        if len(self.engines) == 1:
            raise ValueError("cannot remove the last host")
        old_assignment = self._current_assignment()
        self.dispatcher.remove_host(host)
        self._migrate(old_assignment, removing=host)
        self._forget_engine(host)
        self._trace("cluster_scale_in", host=host)

    # -- deferred-migration primitives (used by repro.cluster.serving) -------

    def admit_host(self) -> str:
        """Add a host to engines and ring WITHOUT migrating state.

        The live-migration protocol (``repro.cluster.serving``) owns
        the state movement: it diffs assignments itself, buffers
        in-flight packets, and commits after a modelled handoff delay.
        This primitive only grows the topology.
        """
        host = self._next_host_name()
        self._build_engine(host)
        self.dispatcher.add_host(host)
        self._trace("cluster_scale_out", host=host)
        return host

    def detach_host(self, host: str) -> None:
        """Remove a host from the ring but keep its engine draining.

        New flows stop landing on ``host``; its existing state stays in
        place until the caller migrates it and calls :meth:`drop_host`.
        """
        if host not in self.engines:
            raise ValueError(f"unknown host {host!r}")
        if len(self.live_hosts) == 1:
            raise ValueError("cannot detach the last live host")
        self.dispatcher.remove_host(host)
        self._trace("cluster_scale_in", host=host)

    def drop_host(self, host: str) -> None:
        """Forget a drained engine (state already migrated away)."""
        if host not in self.engines:
            raise ValueError(f"unknown host {host!r}")
        self._forget_engine(host)
        self._failed.discard(host)

    def _forget_engine(self, host: str) -> None:
        """Remove an engine from the cluster, silencing its sampler.

        Once the engine leaves ``self.engines`` nobody can reach its
        telemetry sampler again, and a still-armed sampler re-schedules
        itself for as long as *any* event is pending — with two or more
        orphans they keep each other (and the simulation) alive
        forever.
        """
        sampler = self.engines[host].telemetry.sampler
        if sampler is not None:
            sampler.stop()
        del self.engines[host]

    # -- fault injection ---------------------------------------------------------

    def fail_host(self, host: str) -> int:
        """Crash ``host``: flows re-dispatch to survivors, state is LOST.

        Unlike :meth:`scale_in` (a planned drain that migrates flow
        state), a failure gives no chance to migrate: every flow-table
        entry on the host is counted in ``stats.lost_entries`` and
        dropped, all cores are crashed (flushing queued packets), and
        the dispatcher stops sending traffic there. Returns the number
        of in-flight packets flushed from the host's queues and rings.
        """
        if host not in self.engines:
            raise ValueError(f"unknown host {host!r}")
        if host in self._failed:
            raise ValueError(f"host {host!r} has already failed")
        if len(self.live_hosts) == 1:
            raise ValueError("cannot fail the last live host")
        engine = self.engines[host]
        lost = engine.flow_state.total_entries()
        flushed = 0
        for core in engine.host.cores:
            flushed += engine.crash_core(core.core_id, resteer=False)
        self._failed.add(host)
        self.dispatcher.remove_host(host)
        self.stats.host_failures += 1
        self.stats.lost_entries += lost
        self._trace("cluster_host_down", host=host, lost_entries=lost, flushed=flushed)
        return flushed

    def _current_assignment(self) -> Dict[FiveTuple, str]:
        """Which host currently owns each flow that has state."""
        assignment: Dict[FiveTuple, str] = {}
        for host, engine in self.engines.items():
            for key, _entry in engine.flow_state.entries_snapshot():
                assignment[self._tuple_of(key)] = host
        return assignment

    @staticmethod
    def _tuple_of(key) -> FiveTuple:
        """Flow-table keys may be scoped (chains); unwrap to the tuple."""
        return key if isinstance(key, FiveTuple) else key.flow

    def _migrate(self, old_assignment: Dict[FiveTuple, str], removing: Optional[str] = None) -> None:
        """Move entries whose dispatch target changed (state re-homing)."""
        moved_flows = set()
        for host, engine in list(self.engines.items()):
            if host in self._failed:
                # A failed host's state is lost, not migrated; skipping
                # it also keeps a later scale_out from resurrecting
                # ghost entries.
                continue
            for key, entry in engine.flow_state.entries_snapshot():
                flow = self._tuple_of(key)
                new_host = self.dispatcher.host_for(flow)
                if new_host == host:
                    continue
                engine.flow_state.evict(key)
                # adopt() re-homes the entry onto the flow's designated
                # core at the new host (control-plane write, so the
                # single-writer check does not apply — the flow has a
                # fresh writer after migration).
                self.engines[new_host].flow_state.adopt(key, entry)
                self.stats.migrated_entries += 1
                moved_flows.add(flow.canonical())
        if moved_flows:
            self.stats.migrations += 1
            self.stats.flows_moved += len(moved_flows)

    def _trace(self, name: str, **args) -> None:
        if self.telemetry is not None:
            self.telemetry.instant(name, self.sim.now, **args)

    # -- reporting -----------------------------------------------------------

    def summary(self) -> Dict[str, object]:
        per_host = {host: engine.summary() for host, engine in self.engines.items()}
        return {
            "hosts": self.hosts,
            "failed_hosts": sorted(self._failed),
            "dispatched": self.stats.dispatched,
            "per_host_dispatched": dict(self.stats.per_host_dispatched),
            "migrated_entries": self.stats.migrated_entries,
            "flows_moved": self.stats.flows_moved,
            "host_failures": self.stats.host_failures,
            "lost_entries": self.stats.lost_entries,
            "total_forwarded": sum(s["forwarded"] for s in per_host.values()),
            "per_host": per_host,
        }
