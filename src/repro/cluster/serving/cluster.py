"""The serving facade over :class:`ClusterMiddlebox`.

:class:`ServingCluster` is what a deployment actually runs: the
dispatcher front end with in-handoff packet buffering, elastic scaling
through the :class:`~repro.cluster.serving.migration.LiveMigrator`
protocol (scale-in keeps the detached engine draining until its state
and queues are empty, so voluntary rescaling never drops a packet),
per-host latency windows for the autoscaler, cluster telemetry, and an
aggregate packet-conservation ledger.

It duck-types the surface :class:`~repro.faults.injector.ClusterFaultInjector`
needs (``sim``, ``live_hosts``, ``fail_host``), so existing
``host_down`` fault plans drive a serving cluster unchanged — with the
addition that a failure mid-handoff routes through
:meth:`LiveMigrator.on_host_failed` for bounded, accounted state loss.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.cluster.cluster import ClusterMiddlebox
from repro.cluster.serving.migration import (
    DEFAULT_BASE_DELAY,
    DEFAULT_PER_ENTRY_DELAY,
    DEFAULT_RELEASE_BURST,
    DEFAULT_RELEASE_INTERVAL,
    LiveMigrator,
)
from repro.cluster.telemetry import ClusterTelemetry
from repro.core.config import MiddleboxConfig
from repro.core.nf import NetworkFunction
from repro.net.packet import Packet
from repro.sim.engine import Simulator
from repro.sim.timeunits import MICROSECOND


class ServingCluster:
    """N engines, one ring, live migration, and the serving ledger."""

    def __init__(
        self,
        sim: Simulator,
        nf_factory: Callable[[str], NetworkFunction],
        num_hosts: int = 2,
        config_factory: Optional[Callable[[str], MiddleboxConfig]] = None,
        virtual_nodes: int = 64,
        telemetry_trace: bool = True,
        migration_base_delay: int = DEFAULT_BASE_DELAY,
        migration_per_entry_delay: int = DEFAULT_PER_ENTRY_DELAY,
        migration_release_burst: int = DEFAULT_RELEASE_BURST,
        migration_release_interval: int = DEFAULT_RELEASE_INTERVAL,
    ):
        self.sim = sim
        self.cluster = ClusterMiddlebox(
            sim,
            nf_factory,
            num_hosts=num_hosts,
            config_factory=config_factory,
            virtual_nodes=virtual_nodes,
        )
        self.telemetry = ClusterTelemetry(self.cluster, trace=telemetry_trace)
        self.migrator = LiveMigrator(
            self,
            base_delay=migration_base_delay,
            per_entry_delay=migration_per_entry_delay,
            release_burst=migration_release_burst,
            release_interval=migration_release_interval,
        )
        #: Packets offered to the front end (the ledger's top line).
        self.offered = 0
        #: Hosts detached from the ring, engine kept until drained.
        self._draining: List[str] = []
        #: Conservation counters of engines already dropped.
        self._dropped_ledger: Dict[str, int] = {}
        self._egress: Optional[Callable[[Packet], None]] = None
        #: Per-host forward latencies (ps) since the last epoch drain.
        self._latency: Dict[str, List[int]] = {}
        registry = self.telemetry.registry
        stats = self.migrator.stats
        registry.bind("cluster.offered", lambda: self.offered)
        registry.bind("cluster.buffered.packets", lambda: stats.packets_buffered)
        registry.bind("cluster.buffered.bytes", lambda: stats.bytes_buffered)
        registry.bind("cluster.buffered.released", lambda: stats.packets_released)
        registry.bind("cluster.buffered.now", self.migrator.buffered_now)
        registry.bind(
            "cluster.migrations.inflight", lambda: self.migrator.inflight_ops
        )
        registry.bind("cluster.migrations.redirects", lambda: stats.redirects)
        registry.bind("cluster.state_lost.inflight", lambda: stats.state_lost)
        registry.bind("cluster.hosts.draining", lambda: len(self._draining))

    # -- topology ------------------------------------------------------------

    @property
    def ring_hosts(self) -> List[str]:
        """Hosts currently receiving new flows (on the ring)."""
        return self.cluster.dispatcher.ring.nodes()

    @property
    def live_hosts(self) -> List[str]:
        """Fault-injector surface: hosts a ``host_down`` may target."""
        return self.ring_hosts

    @property
    def hosts(self) -> List[str]:
        return self.cluster.hosts

    @property
    def engines(self):
        return self.cluster.engines

    # -- dataplane -----------------------------------------------------------

    def set_egress(self, egress: Callable[[Packet], None]) -> None:
        self._egress = egress
        for host in sorted(self.cluster.engines):
            self._install_egress(host)

    def _install_egress(self, host: str) -> None:
        self._latency.setdefault(host, [])
        self.cluster.engines[host].set_egress(
            lambda packet, _host=host: self._on_forwarded(_host, packet)
        )

    def _on_forwarded(self, host: str, packet: Packet) -> None:
        self._latency[host].append(self.sim.now - packet.created_at)
        if self._egress is not None:
            self._egress(packet)

    def receive(self, packet: Packet, now: int) -> bool:
        self.offered += 1
        return self.dispatch(packet, now)

    def dispatch(self, packet: Packet, now: int) -> bool:
        """Route one packet: buffer if its flow is frozen, else engine.

        Also the re-entry point for released/re-dispatched buffers (not
        counted as fresh offered load).
        """
        migrator = self.migrator
        if migrator.freezing:
            handoff = migrator.handoff_for(packet.five_tuple)
            if handoff is not None:
                migrator.buffer_packet(handoff, packet)
                return True
        return self.cluster.receive(packet, now)

    # -- per-host latency windows (autoscaler signal) ------------------------

    def take_latency_p99_us(self, host: str) -> float:
        """p99 of the host's forward latencies since last call; drains."""
        window = self._latency.get(host)
        if not window:
            return 0.0
        ordered = sorted(window)
        self._latency[host] = []
        return ordered[min(len(ordered) - 1, int(0.99 * len(ordered)))] / MICROSECOND

    # -- elastic scaling -----------------------------------------------------

    def scale_out(self) -> str:
        """Add a host and live-migrate the flows that re-map onto it."""
        host = self.cluster.admit_host()
        if self._egress is not None:
            self._install_egress(host)
        else:
            self._latency.setdefault(host, [])
        self.migrator.rebalance()
        return host

    def scale_in(self, host: str) -> None:
        """Detach a host; its flows live-migrate, its engine drains.

        The engine keeps running until its flow state has moved and its
        queues are empty (checked at each migration commit), then it is
        dropped — so a voluntary scale-in never loses a packet.
        """
        if host not in self.cluster.engines:
            raise ValueError(f"unknown host {host!r}")
        if host in self._draining:
            raise ValueError(f"host {host!r} is already draining")
        self.cluster.detach_host(host)
        self._draining.append(host)
        self.migrator.rebalance()
        self.on_migration_commit()

    def on_migration_commit(self) -> None:
        """Drop draining hosts that are fully drained."""
        still: List[str] = []
        for host in self._draining:
            engine = self.cluster.engines.get(host)
            if engine is None:
                continue
            ledger = engine.conservation()
            drained = (
                engine.flow_state.total_entries() == 0
                and ledger["in_queues"] == 0
                and ledger["in_rings"] == 0
                and ledger["rx_packets"] == ledger["accounted"]
            )
            if drained:
                self._absorb_ledger(ledger)
                self.cluster.drop_host(host)
                self._trace("host_drained", host=host)
            else:
                still.append(host)
        self._draining = still

    # -- fault surface -------------------------------------------------------

    def fail_host(self, host: str) -> int:
        """``host_down``: crash the engine, then settle in-flight moves."""
        flushed = self.cluster.fail_host(host)
        self.migrator.on_host_failed(host)
        if host in self._draining:
            # A draining host that dies can never finish draining; its
            # ledger is frozen where the crash left it.
            self._absorb_ledger(self.cluster.engines[host].conservation())
            self.cluster.drop_host(host)
            self._draining = [h for h in self._draining if h != host]
        return flushed

    # -- ledger --------------------------------------------------------------

    def _absorb_ledger(self, ledger: Dict[str, int]) -> None:
        for key, value in sorted(ledger.items()):
            self._dropped_ledger[key] = self._dropped_ledger.get(key, 0) + value

    def _trace(self, name: str, **args) -> None:
        self.telemetry.instant(name, self.sim.now, **args)

    def conservation(self) -> Dict[str, int]:
        """The cluster-wide packet-conservation ledger.

        Invariants (once the simulation drains):

        - ``offered == dispatched + buffered_now`` — every offered
          packet either reached an engine or is held in a handoff
          buffer;
        - ``rx_packets == accounted`` — every packet an engine ingested
          is forwarded, dropped for a counted reason, or still queued.

        Dropped engines' counters are absorbed into the totals, so the
        ledger survives scale-in.
        """
        totals = dict(self._dropped_ledger)
        for host in sorted(self.cluster.engines):
            for key, value in sorted(self.cluster.engines[host].conservation().items()):
                totals[key] = totals.get(key, 0) + value
        totals["offered"] = self.offered
        totals["dispatched"] = self.cluster.stats.dispatched
        totals["buffered_now"] = self.migrator.buffered_now()
        totals["state_lost_inflight"] = self.migrator.stats.state_lost
        totals["entries_lost"] = self.cluster.stats.lost_entries
        return totals

    def conservation_ok(self) -> bool:
        ledger = self.conservation()
        return (
            ledger["offered"] == ledger["dispatched"] + ledger["buffered_now"]
            and ledger["rx_packets"]
            == ledger["accounted"] + ledger["in_queues"] + ledger["in_rings"]
        )

    def drops_total(self) -> int:
        """Every counted packet drop across the cluster's lifetime."""
        ledger = self.conservation()
        return (
            ledger["nf_drops"]
            + ledger["rx_dropped_queue_full"]
            + ledger["rx_dropped_fd_cap"]
            + ledger["rx_dropped_fault"]
            + ledger["ring_drops"]
            + ledger["fault_drops"]
        )

    # -- reporting -----------------------------------------------------------

    def summary(self) -> Dict[str, Any]:
        base = self.cluster.summary()
        base["draining_hosts"] = list(self._draining)
        base["offered"] = self.offered
        base["migration"] = dict(vars(self.migrator.stats))
        return base
