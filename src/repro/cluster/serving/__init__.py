"""Cluster serving: load, autoscaling, live migration, SLO reporting.

The subsystem that turns :class:`~repro.cluster.cluster.ClusterMiddlebox`
into a measurable serving system:

- :class:`~repro.cluster.serving.cluster.ServingCluster` — the facade:
  dispatch with in-handoff packet buffering, elastic scaling through
  the live-migration protocol, per-host latency windows, an aggregate
  packet-conservation ledger.
- :class:`~repro.cluster.serving.migration.LiveMigrator` — evict/hold/
  adopt with a modelled handoff delay on the sanctioned
  ``entries_snapshot()/evict()/adopt()`` control-plane API.
- :class:`~repro.cluster.serving.autoscaler.Autoscaler` — epoch-driven
  scale decisions from sampler signals, pluggable policy, hysteresis.
- :class:`~repro.cluster.serving.loadgen.ClusterLoadDriver` — a
  deterministic trace-driven packet source built from
  :class:`~repro.trafficgen.trace.SyntheticBackboneTrace`.
- :class:`~repro.cluster.serving.slo.SloRecorder` — bucketed
  throughput/latency timeline plus phase-segmented SLO accounting.
"""

from repro.cluster.serving.autoscaler import (
    Autoscaler,
    AutoscalePolicy,
    HostSignals,
    ThresholdHysteresisPolicy,
)
from repro.cluster.serving.cluster import ServingCluster
from repro.cluster.serving.loadgen import ClusterLoadDriver
from repro.cluster.serving.migration import LiveMigrator, MigrationStats
from repro.cluster.serving.slo import SloRecorder

__all__ = [
    "Autoscaler",
    "AutoscalePolicy",
    "ClusterLoadDriver",
    "HostSignals",
    "LiveMigrator",
    "MigrationStats",
    "ServingCluster",
    "SloRecorder",
    "ThresholdHysteresisPolicy",
]
