"""Deterministic trace-driven cluster load.

:class:`ClusterLoadDriver` turns a
:class:`~repro.trafficgen.trace.SyntheticBackboneTrace` (Poisson flow
arrivals, elephants-and-mice sizes, per-flow rates) into the packet
stream a cluster front end actually sees. Each trace flow gets a
distinct five-tuple; its packets are emitted at the trace's exact
timestamps (flow start + k x inter-packet gap) by a single
self-rescheduling walker event, so the arrival process is a pure
function of the seed — independent of host count, scaling actions, or
anything downstream.

The first packet of every flow is a pure SYN (creating flow state on
its host's designated core); the rest are data-bearing ACKs. Elephant
flows ship MTU frames, mice ship small ones, matching the trace's
calibration. ``max_packets_per_flow`` caps per-flow emission so a run
over O(10^5) flows stays bounded by packets, not by the elephants'
full byte counts.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, List, Optional

from repro.net.packet import Packet
from repro.net.tcp_flags import ACK, SYN
from repro.trafficgen.flows import random_tcp_flows
from repro.trafficgen.trace import (
    ELEPHANT_PACKET_BYTES,
    MICE_PACKET_BYTES,
    SyntheticBackboneTrace,
)


@dataclass
class LoadStats:
    packets_emitted: int = 0
    flows_started: int = 0
    bytes_emitted: int = 0


class ClusterLoadDriver:
    """Replays a synthetic backbone trace into a receive callable."""

    def __init__(
        self,
        sim: Any,
        sink: Callable[[Packet, int], Any],
        trace: SyntheticBackboneTrace,
        seed: int = 1,
        max_packets_per_flow: Optional[int] = None,
        elephant_packet_cap: Optional[int] = None,
        start_at: int = 0,
        cutoff: Optional[int] = None,
    ):
        """``cutoff`` (ps, relative to ``start_at``) truncates emission;
        defaults to the trace duration, so long elephant tails do not
        stretch the run. ``elephant_packet_cap``, when given, replaces
        ``max_packets_per_flow`` for elephant flows: capping everything
        uniformly would flatten the heavy tail that distinguishes the
        steering policies, so the usual setup caps mice tightly and
        leaves elephants bounded only by the horizon."""
        self.sim = sim
        self.sink = sink
        self.trace = trace
        self.stats = LoadStats()
        horizon = trace.duration if cutoff is None else cutoff
        rng = random.Random(seed)
        tuples = random_tcp_flows(len(trace.flows), rng)
        self._tuples = tuples
        # Precompute the full arrival schedule as parallel columns
        # (time, flow index, packet index), sorted once. Ties order by
        # (time, flow, seq) — canonical and backend-independent.
        schedule: List[tuple] = []
        for index, flow in enumerate(trace.flows):
            count = flow.num_packets
            cap = max_packets_per_flow
            if elephant_packet_cap is not None and (
                flow.size_bytes >= trace.elephant_threshold
            ):
                cap = elephant_packet_cap
            if cap is not None:
                count = min(count, cap)
            for k in range(count):
                t = flow.start + k * flow.packet_gap
                if t >= horizon:
                    break
                schedule.append((start_at + t, index, k))
        schedule.sort()
        self._times = [entry[0] for entry in schedule]
        self._flow_idx = [entry[1] for entry in schedule]
        self._seq = [entry[2] for entry in schedule]
        self._frame_len = [
            ELEPHANT_PACKET_BYTES
            if flow.size_bytes >= trace.elephant_threshold
            else MICE_PACKET_BYTES
            for flow in trace.flows
        ]
        self._cursor = 0

    def __len__(self) -> int:
        """Total packets this driver will emit."""
        return len(self._times)

    @property
    def end_time(self) -> int:
        """Arrival time of the last scheduled packet (ps)."""
        return self._times[-1] if self._times else 0

    def start(self) -> None:
        if self._times:
            self.sim.post(self._times[0], self._pump)

    def _pump(self) -> None:
        now = self.sim.now
        times = self._times
        n = len(times)
        i = self._cursor
        while i < n and times[i] <= now:
            self._emit(i)
            i += 1
        self._cursor = i
        if i < n:
            self.sim.post(times[i], self._pump)

    def _emit(self, i: int) -> None:
        flow_index = self._flow_idx[i]
        k = self._seq[i]
        five_tuple = self._tuples[flow_index]
        frame_len = self._frame_len[flow_index]
        now = self._times[i]
        if k == 0:
            flags = SYN
            self.stats.flows_started += 1
        else:
            flags = ACK
        # The TCP checksum is the sprayer's spray entropy (the NIC
        # exhausts its low bits with Flow Director rules); a constant
        # would collapse spraying onto one queue. Mix (flow, seq)
        # through odd multipliers for a deterministic, uniform 16-bit
        # value — the realistic model of checksums over varying payload.
        checksum = ((flow_index + 1) * 2654435761 ^ (k + 1) * 2246822519) & 0xFFFF
        packet = Packet(
            five_tuple,
            flags=flags,
            seq=k,
            payload_len=frame_len - 58,  # TCP_FRAME_HEADERS
            frame_len=frame_len,
            tcp_checksum=checksum,
            created_at=now,
        )
        self.stats.packets_emitted += 1
        self.stats.bytes_emitted += frame_len
        self.sink(packet, now)
