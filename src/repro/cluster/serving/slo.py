"""SLO accounting: bucketed curves plus phase-segmented budgets.

Per "Benchmarking NFV Software Dataplanes" (PAPERS.md), a serving
study reports *curves with explicit SLO accounting*, not single
points. :class:`SloRecorder` produces both halves:

- a bucketed **timeline** (forwarded rate, p50, p99 per bucket) that
  makes the scale-out ramp, the crash dip, and the scale-in visible
  instead of averaged away;
- **phase rows**: the experiment marks named boundaries (``ramp``,
  ``steady``, ``host_down``, ``scale_in`` ...) with a counter
  snapshot; consecutive marks delimit a phase, and the row diffs the
  snapshots — forwarded packets, drops, state lost — and aggregates
  the latency samples that fell inside it. The drop/state-loss budget
  of each phase is then a first-class, asserted number ("zero on
  voluntary rescaling, bounded on ``host_down``"), not a remainder.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.net.packet import Packet
from repro.sim.timeunits import MICROSECOND, MILLISECOND


def _percentile_us(ordered: List[int], q: float) -> float:
    """q-quantile (ps -> us) of an already-sorted sample list."""
    if not ordered:
        return 0.0
    return ordered[min(len(ordered) - 1, int(q * len(ordered)))] / MICROSECOND


class SloRecorder:
    """Egress consumer: buckets, percentiles, and phase marks."""

    def __init__(self, duration: int, bucket: int = MILLISECOND):
        if bucket < 1:
            raise ValueError(f"bucket must be >= 1 ps, got {bucket}")
        if duration < 1:
            raise ValueError(f"duration must be >= 1 ps, got {duration}")
        self.bucket = bucket
        self.n_buckets = (duration + bucket - 1) // bucket
        self._counts = [0] * self.n_buckets
        self._samples: List[List[int]] = [[] for _ in range(self.n_buckets)]
        self.forwarded = 0
        #: Phase marks: {"name", "t_ps", "counters"} in mark order.
        self.marks: List[Dict[str, Any]] = []

    # -- recording -----------------------------------------------------------

    def on_forwarded(self, packet: Packet, now: int) -> None:
        bucket = min(self.n_buckets - 1, now // self.bucket)
        self._counts[bucket] += 1
        self._samples[bucket].append(now - packet.created_at)
        self.forwarded += 1

    def mark(self, name: str, now: int, counters: Dict[str, int]) -> None:
        """A phase boundary: everything before ``now`` since the last
        mark belongs to the previous phase. ``counters`` should carry
        the cumulative budget counters to diff (drops, state lost...)."""
        self.marks.append({"name": name, "t_ps": now, "counters": dict(counters)})

    # -- reporting -----------------------------------------------------------

    def timeline(self) -> List[Dict[str, float]]:
        rows = []
        for i in range(self.n_buckets):
            ordered = sorted(self._samples[i])
            rows.append(
                {
                    "t_ms": i * self.bucket / MILLISECOND,
                    "fwd_mpps": self._counts[i] / (self.bucket / 1e12) / 1e6,
                    "p50_us": _percentile_us(ordered, 0.50),
                    "p99_us": _percentile_us(ordered, 0.99),
                }
            )
        return rows

    def percentiles(self) -> Dict[str, float]:
        """Whole-run p50/p99 over every recorded sample."""
        merged: List[int] = []
        for samples in self._samples:
            merged.extend(samples)
        merged.sort()
        return {
            "p50_us": _percentile_us(merged, 0.50),
            "p99_us": _percentile_us(merged, 0.99),
        }

    def phase_rows(self) -> List[Dict[str, Any]]:
        """One row per phase (between consecutive marks)."""
        rows: List[Dict[str, Any]] = []
        for prev, cur in zip(self.marks, self.marks[1:]):
            start, end = prev["t_ps"], cur["t_ps"]
            samples: List[int] = []
            forwarded = 0
            first = min(self.n_buckets - 1, start // self.bucket)
            last = min(self.n_buckets - 1, max(start, end - 1) // self.bucket)
            for i in range(first, last + 1):
                samples.extend(self._samples[i])
                forwarded += self._counts[i]
            samples.sort()
            row: Dict[str, Any] = {
                "phase": prev["name"],
                "t_ms": start / MILLISECOND,
                "dur_ms": (end - start) / MILLISECOND,
                "forwarded": forwarded,
                "p50_us": _percentile_us(samples, 0.50),
                "p99_us": _percentile_us(samples, 0.99),
            }
            before, after = prev["counters"], cur["counters"]
            for key in sorted(after):
                if key in before:
                    row[key] = after[key] - before[key]
            rows.append(row)
        return rows
