"""Live flow-state migration with in-flight packet buffering.

:class:`ClusterMiddlebox.scale_out`/``scale_in`` migrate instantly — a
modelling shortcut that hides exactly what a serving system must pay:
while an entry is on the wire between hosts, packets for its flow have
no valid home. :class:`LiveMigrator` models the handoff:

1. **Start** (topology just changed): diff current entry placement
   against the updated ring. Entries whose owner changed are *evicted
   immediately* and held by the migrator — the flow is frozen. The
   front end (:class:`~repro.cluster.serving.cluster.ServingCluster`)
   buffers every packet arriving for a frozen flow.
2. **Commit** (``base_delay + per_entry_delay x entries`` later): held
   entries are adopted at the flow's *current* ring owner — if the
   topology changed again mid-handoff the entry follows the ring
   (counted as a redirect), never a stale plan. Buffered packets are
   then *paced* out through the dispatcher — ``release_burst`` packets
   every ``release_interval``, below a host's line rate — because
   dumping the whole buffer in one sim instant would overflow the
   destination's rx queues and turn a lossless protocol into a lossy
   one. A flow stays frozen (new arrivals keep appending to its
   buffer) until its buffer slice drains, so voluntary rescaling loses
   nothing and reorders nothing; the buffering delay is real and shows
   up in the released packets' latency.
3. **Failure** (``host_down`` mid-handoff): a dead *destination* loses
   the held entries — counted in ``stats.state_lost``, mirrored into
   the cluster ledger — and its buffered packets re-dispatch
   immediately to the ring's surviving owner. A dead *source* loses
   nothing: its moving entries were already evicted and held.

Everything rides the sanctioned ``entries_snapshot()/evict()/adopt()``
control-plane API, so ``strict_checks`` ownership auditing stays green
across a migration.

Known modelling edge: a SYN that is already inside the old owner's NIC
queues when its flow freezes creates a fresh entry there; the next
rebalance sweeps it to the ring owner. Data packets are unaffected
(no entry is created for them) and nothing is dropped either way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

from repro.net.five_tuple import FiveTuple
from repro.sim.timeunits import MICROSECOND, NANOSECOND

#: Control-plane round trip to initiate a handoff (ps).
DEFAULT_BASE_DELAY = 200 * MICROSECOND
#: Serialization/installation cost per migrated entry (ps).
DEFAULT_PER_ENTRY_DELAY = 500 * NANOSECOND
#: Buffer-release pacing: at most this many packets per interval. The
#: defaults drain at 2.56 Mpps — below one host's typical line rate, so
#: a release can never overflow the destination's 512-deep rx queues.
DEFAULT_RELEASE_BURST = 64
DEFAULT_RELEASE_INTERVAL = 25 * MICROSECOND


@dataclass
class MigrationStats:
    """Cumulative live-migration accounting."""

    #: Committed rebalance operations that moved at least one flow.
    migrations: int = 0
    flows_moved: int = 0
    entries_moved: int = 0
    #: Entries adopted at a different host than planned because the
    #: ring changed again mid-handoff.
    redirects: int = 0
    packets_buffered: int = 0
    bytes_buffered: int = 0
    #: Buffered packets released at commit, in arrival order.
    packets_released: int = 0
    #: Buffered packets re-dispatched early because their planned
    #: destination died mid-handoff.
    packets_redispatched: int = 0
    #: Held entries lost to a destination that died mid-handoff — the
    #: *bounded* state-loss budget of ``host_down``.
    state_lost: int = 0


class FlowHandoff:
    """One flow frozen mid-migration: held entries plus its buffer."""

    __slots__ = ("flow", "dest", "entries", "buffer", "cancelled", "committed")

    def __init__(self, flow: FiveTuple, dest: str):
        self.flow = flow
        self.dest = dest
        self.entries: List[Tuple[Any, Any]] = []
        self.buffer: List[Any] = []
        self.cancelled = False
        #: Entries adopted; the flow stays frozen only until its buffer
        #: finishes its paced drain.
        self.committed = False


class LiveMigrator:
    """The migration control plane of one serving cluster."""

    def __init__(
        self,
        serving: Any,
        base_delay: int = DEFAULT_BASE_DELAY,
        per_entry_delay: int = DEFAULT_PER_ENTRY_DELAY,
        release_burst: int = DEFAULT_RELEASE_BURST,
        release_interval: int = DEFAULT_RELEASE_INTERVAL,
    ):
        if base_delay < 0 or per_entry_delay < 0:
            raise ValueError("migration delays must be non-negative")
        if release_burst < 1 or release_interval < 0:
            raise ValueError("release pacing must be positive")
        self.serving = serving
        self.base_delay = base_delay
        self.per_entry_delay = per_entry_delay
        self.release_burst = release_burst
        self.release_interval = release_interval
        self.stats = MigrationStats()
        #: canonical flow -> its in-flight handoff. Insertion order is
        #: deterministic (hosts visited sorted, snapshots ordered).
        self._in_handoff: Dict[FiveTuple, FlowHandoff] = {}
        #: Rebalance operations started but not yet committed.
        self.inflight_ops = 0

    # -- dataplane probe -----------------------------------------------------

    @property
    def freezing(self) -> bool:
        """Fast-path guard: any flow currently frozen?"""
        return bool(self._in_handoff)

    def handoff_for(self, flow: FiveTuple) -> FlowHandoff | None:
        return self._in_handoff.get(flow.canonical())

    def buffer_packet(self, handoff: FlowHandoff, packet: Any) -> None:
        handoff.buffer.append(packet)
        self.stats.packets_buffered += 1
        self.stats.bytes_buffered += packet.frame_len

    def buffered_now(self) -> int:
        """Packets currently held in handoff buffers (ledger term)."""
        return sum(len(h.buffer) for h in self._in_handoff.values())

    # -- control plane -------------------------------------------------------

    def rebalance(self) -> int:
        """Diff entry placement against the ring; start the handoffs.

        Call immediately after a topology change. Returns the number of
        entries scheduled to move (0 = nothing changed hands and no
        commit was scheduled).
        """
        cluster = self.serving.cluster
        dispatcher = cluster.dispatcher
        group: List[FlowHandoff] = []
        moves: Dict[FiveTuple, FlowHandoff] = {}
        scheduled = 0
        for host in sorted(cluster.engines):
            if host in cluster._failed:
                continue
            engine = cluster.engines[host]
            for key, entry in engine.flow_state.entries_snapshot():
                flow = cluster._tuple_of(key)
                new_host = dispatcher.host_for(flow)
                if new_host == host:
                    continue
                canonical = flow.canonical()
                if canonical in self._in_handoff:
                    # Still draining a previous handoff's buffer (the
                    # entries are adopted but the flow is frozen until
                    # its paced release finishes). Leave it; the next
                    # topology change sweeps it to the ring owner.
                    continue
                handoff = moves.get(canonical)
                if handoff is None:
                    handoff = FlowHandoff(canonical, new_host)
                    moves[canonical] = handoff
                    group.append(handoff)
                engine.flow_state.evict(key)
                handoff.entries.append((key, entry))
                scheduled += 1
        if not group:
            return 0
        self._in_handoff.update(moves)
        self.inflight_ops += 1
        delay = self.base_delay + self.per_entry_delay * scheduled
        sim = cluster.sim
        if cluster.telemetry is not None:
            cluster.telemetry.instant(
                "migration_start", sim.now, flows=len(group), entries=scheduled
            )
        sim.after(delay, self._commit, group)
        return scheduled

    def _commit(self, group: List[FlowHandoff]) -> None:
        cluster = self.serving.cluster
        sim = cluster.sim
        now = sim.now
        flows_moved = 0
        entries_moved = 0
        buffered = 0
        for handoff in group:
            if handoff.cancelled:
                continue
            dest = cluster.dispatcher.host_for(handoff.flow)
            if dest != handoff.dest:
                self.stats.redirects += 1
            engine = cluster.engines[dest]
            for key, entry in handoff.entries:
                engine.flow_state.adopt(key, entry)
                entries_moved += 1
            handoff.entries = []
            handoff.committed = True
            flows_moved += 1
            buffered += len(handoff.buffer)
        self.inflight_ops -= 1
        if flows_moved:
            self.stats.migrations += 1
            self.stats.flows_moved += flows_moved
            self.stats.entries_moved += entries_moved
            # Mirror into the cluster ledger so the cluster.* telemetry
            # family counts live migrations exactly like instant ones.
            cluster.stats.migrations += 1
            cluster.stats.flows_moved += flows_moved
            cluster.stats.migrated_entries += entries_moved
        if cluster.telemetry is not None:
            cluster.telemetry.instant(
                "migration_commit",
                now,
                flows=flows_moved,
                entries=entries_moved,
                buffered=buffered,
            )
        # Buffers drain *after* all adopts (a buffered packet must
        # never race its own flow's entry), paced so the release can
        # never overflow the destination's rx queues.
        self._release(group)
        self.serving.on_migration_commit()

    def _release(self, group: List[FlowHandoff]) -> None:
        """Paced buffer drain: one burst now, re-arm until empty.

        Handoffs drain in group order, each buffer in arrival order; a
        flow unfreezes the moment its slice empties, so packets that
        arrive after that dispatch directly — behind everything that
        was buffered, never ahead of it.
        """
        sim = self.serving.cluster.sim
        now = sim.now
        budget = self.release_burst
        pending = False
        for handoff in group:
            if handoff.cancelled:
                continue
            taken = handoff.buffer[:budget]
            handoff.buffer = handoff.buffer[len(taken):]
            budget -= len(taken)
            if handoff.buffer:
                pending = True
            elif self._in_handoff.get(handoff.flow) is handoff:
                del self._in_handoff[handoff.flow]
            for packet in taken:
                self.stats.packets_released += 1
                self.serving.dispatch(packet, now)
            if budget == 0 and pending:
                break
        if pending:
            sim.after(self.release_interval, self._release, group)
        else:
            self.serving.on_migration_commit()

    def on_host_failed(self, host: str) -> None:
        """Account for ``host_down`` hitting in-flight handoffs.

        Destinations that died lose their incoming held entries
        (bounded, counted in ``state_lost`` and the cluster's
        ``lost_entries``); their buffered packets re-dispatch to the
        ring's surviving owner right away. Handoffs whose *source* died
        are unaffected — the entries are already held here. Committed
        handoffs still draining their buffer are also unaffected: their
        entries were adopted (the engine's crash flush accounts them)
        and the paced release keeps dispatching through the ring, which
        now routes around the dead host.
        """
        cluster = self.serving.cluster
        now = cluster.sim.now
        doomed = [
            handoff
            for handoff in self._in_handoff.values()
            if not handoff.cancelled
            and not handoff.committed
            and handoff.dest == host
        ]
        for handoff in doomed:
            lost = len(handoff.entries)
            self.stats.state_lost += lost
            cluster.stats.lost_entries += lost
            handoff.cancelled = True
            handoff.entries = []
            del self._in_handoff[handoff.flow]
            buffered = handoff.buffer
            handoff.buffer = []
            if cluster.telemetry is not None:
                cluster.telemetry.instant(
                    "migration_dest_lost",
                    now,
                    host=host,
                    entries_lost=lost,
                    redispatched=len(buffered),
                )
            for packet in buffered:
                self.stats.packets_redispatched += 1
                self.serving.dispatch(packet, now)
