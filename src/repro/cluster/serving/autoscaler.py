"""Telemetry-driven elastic scaling at sim-time epoch boundaries.

The :class:`Autoscaler` ticks on the simulator clock. Each epoch it
samples every on-ring host *through the existing per-engine sampler*
(:meth:`~repro.telemetry.sampler.EngineSampler.sample` — the snapshot
also lands in the engine's own time series), folds the snapshot plus
the serving layer's per-host latency window into a
:class:`HostSignals` row, and asks the policy what to do. Policies are
pluggable; the shipped :class:`ThresholdHysteresisPolicy` requires a
signal to persist for several consecutive epochs before acting and
enforces a cooldown between actions — the standard guard against
flapping on a bursty backbone workload.

Determinism: ticks are ordinary simulator events at fixed epochs; all
signals derive from engine counters; host selection for scale-in is a
deterministic argmin (fewest flow entries, name as tie-break). A
serving run with an autoscaler is exactly as replayable as one
without.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.sim.timeunits import MILLISECOND


@dataclass(frozen=True)
class HostSignals:
    """One host's per-epoch health signals."""

    host: str
    #: Packets waiting in the host's rx queues right now.
    rx_depth: int
    #: Tail drops this epoch (delta of the cumulative counter).
    rx_dropped_delta: int
    flow_entries: int
    #: p99 forward latency over the epoch's window (0 when idle).
    p99_latency_us: float


class AutoscalePolicy:
    """Decide ``"scale_out"``/``"scale_in"``/``"hold"`` from signals."""

    def decide(self, signals: List[HostSignals], num_hosts: int) -> str:
        raise NotImplementedError


class ThresholdHysteresisPolicy(AutoscalePolicy):
    """Thresholds + consecutive-epoch hysteresis + host-count clamps.

    Scale out when any host is *hot* (p99 above target, rx backlog
    above ``max_rx_depth``, or any tail drop) for ``hot_epochs``
    consecutive epochs; scale in when every host is *cold* (p99 under
    ``cold_fraction`` of target and backlog under ``low_rx_depth``) for
    ``cold_epochs`` consecutive epochs. Mixed epochs reset both runs.

    A cluster that has not yet seen traffic (zero flow entries
    everywhere) is never "cold": the quiet epochs before the load ramp
    would otherwise count toward scale-in and the cluster would shed
    hosts just as the ramp arrives.
    """

    def __init__(
        self,
        target_p99_us: float = 100.0,
        max_rx_depth: int = 256,
        low_rx_depth: int = 16,
        cold_fraction: float = 0.3,
        hot_epochs: int = 2,
        cold_epochs: int = 4,
        min_hosts: int = 1,
        max_hosts: int = 64,
    ):
        if not 1 <= min_hosts <= max_hosts:
            raise ValueError(f"need 1 <= min_hosts <= max_hosts, got {min_hosts}, {max_hosts}")
        self.target_p99_us = target_p99_us
        self.max_rx_depth = max_rx_depth
        self.low_rx_depth = low_rx_depth
        self.cold_fraction = cold_fraction
        self.hot_epochs = hot_epochs
        self.cold_epochs = cold_epochs
        self.min_hosts = min_hosts
        self.max_hosts = max_hosts
        self._hot_run = 0
        self._cold_run = 0

    def decide(self, signals: List[HostSignals], num_hosts: int) -> str:
        hot = any(
            s.p99_latency_us > self.target_p99_us
            or s.rx_depth > self.max_rx_depth
            or s.rx_dropped_delta > 0
            for s in signals
        )
        cold = (
            bool(signals)
            and sum(s.flow_entries for s in signals) > 0
            and all(
                s.p99_latency_us < self.cold_fraction * self.target_p99_us
                and s.rx_depth < self.low_rx_depth
                for s in signals
            )
        )
        if hot:
            self._hot_run += 1
            self._cold_run = 0
        elif cold:
            self._cold_run += 1
            self._hot_run = 0
        else:
            self._hot_run = 0
            self._cold_run = 0
        if self._hot_run >= self.hot_epochs and num_hosts < self.max_hosts:
            self._hot_run = 0
            return "scale_out"
        if self._cold_run >= self.cold_epochs and num_hosts > self.min_hosts:
            self._cold_run = 0
            return "scale_in"
        return "hold"


class Autoscaler:
    """Epoch ticker binding a policy to a ServingCluster."""

    def __init__(
        self,
        serving: Any,
        policy: Optional[AutoscalePolicy] = None,
        epoch: int = MILLISECOND,
        cooldown_epochs: int = 2,
    ):
        if epoch < 1:
            raise ValueError(f"epoch must be >= 1 ps, got {epoch}")
        self.serving = serving
        self.policy = policy or ThresholdHysteresisPolicy()
        self.epoch = epoch
        self.cooldown_epochs = cooldown_epochs
        #: Applied decisions: {"t_ms", "action", "host", "hosts_after"}.
        self.decisions: List[Dict[str, Any]] = []
        self._until = 0
        self._prev_drops: Dict[str, int] = {}
        self._epochs_since_action = cooldown_epochs

    def start(self, until: int) -> None:
        """Tick every epoch until sim time ``until`` (exclusive)."""
        self._until = until
        self.serving.sim.after(self.epoch, self._tick)

    # -- signal collection ---------------------------------------------------

    def signals(self) -> List[HostSignals]:
        serving = self.serving
        rows: List[HostSignals] = []
        for host in serving.ring_hosts:
            engine = serving.cluster.engines[host]
            sampler = engine.telemetry.sampler
            if sampler is not None:
                snapshot = sampler.sample()
            else:  # sampling disabled: take an equivalent ad-hoc snapshot
                snapshot = {
                    "flow_entries": engine.flow_state.total_entries(),
                    "cores": [
                        {"rx_depth": len(q), "rx_dropped": q.dropped}
                        for q in engine.nic.queues
                    ],
                }
            rx_depth = sum(core.get("rx_depth", 0) for core in snapshot["cores"])
            rx_dropped = sum(core.get("rx_dropped", 0) for core in snapshot["cores"])
            delta = rx_dropped - self._prev_drops.get(host, 0)
            self._prev_drops[host] = rx_dropped
            rows.append(
                HostSignals(
                    host=host,
                    rx_depth=rx_depth,
                    rx_dropped_delta=delta,
                    flow_entries=snapshot["flow_entries"],
                    p99_latency_us=serving.take_latency_p99_us(host),
                )
            )
        return rows

    # -- the epoch tick ------------------------------------------------------

    def _tick(self) -> None:
        serving = self.serving
        sim = serving.sim
        if sim.now >= self._until:
            return
        signals = self.signals()
        action = self.policy.decide(signals, len(serving.ring_hosts))
        self._epochs_since_action += 1
        if action != "hold" and self._epochs_since_action >= self.cooldown_epochs:
            host = self._apply(action, signals)
            if host is not None:
                self._epochs_since_action = 0
                self.decisions.append(
                    {
                        "t_ms": sim.now / MILLISECOND,
                        "action": action,
                        "host": host,
                        "hosts_after": len(serving.ring_hosts),
                    }
                )
                serving.telemetry.instant(
                    f"autoscale_{action}", sim.now, host=host
                )
        sim.after(self.epoch, self._tick)

    def _apply(self, action: str, signals: List[HostSignals]) -> Optional[str]:
        serving = self.serving
        if action == "scale_out":
            return serving.scale_out()
        # Scale in the emptiest host: least state to migrate. Signals
        # are already in sorted-host order, so the argmin tie-break on
        # the name is deterministic.
        if len(serving.ring_hosts) <= 1 or not signals:
            return None
        victim = min(signals, key=lambda s: (s.flow_entries, s.host)).host
        serving.scale_in(victim)
        return victim
