"""Packet and protocol substrate.

Real header layouts (Ethernet/IPv4/TCP/UDP) with byte-exact pack/unpack
and RFC 1071 checksums, plus a lightweight :class:`~repro.net.packet.Packet`
object used in the simulation hot path. The NIC models (RSS hashing, Flow
Director checksum matching) operate on the same field values a real NIC
would extract from the wire.
"""

from repro.net.addresses import ip_to_int, ip_to_str, mac_to_int, mac_to_str
from repro.net.checksum import (
    fold_checksum,
    internet_checksum,
    ipv4_header_checksum,
    tcp_checksum,
    udp_checksum,
)
from repro.net.five_tuple import PROTO_ICMP, PROTO_TCP, PROTO_UDP, FiveTuple
from repro.net.headers import EthernetHeader, Ipv4Header, TcpHeader, UdpHeader
from repro.net.packet import (
    ETHERNET_OVERHEAD,
    MIN_FRAME_SIZE,
    Packet,
    make_tcp_packet,
    make_udp_packet,
)
from repro.net.tcp_flags import (
    ACK,
    FIN,
    PSH,
    RST,
    SYN,
    URG,
    flags_to_str,
    is_connection_packet,
)

__all__ = [
    "FiveTuple",
    "PROTO_TCP",
    "PROTO_UDP",
    "PROTO_ICMP",
    "Packet",
    "make_tcp_packet",
    "make_udp_packet",
    "MIN_FRAME_SIZE",
    "ETHERNET_OVERHEAD",
    "EthernetHeader",
    "Ipv4Header",
    "TcpHeader",
    "UdpHeader",
    "internet_checksum",
    "fold_checksum",
    "ipv4_header_checksum",
    "tcp_checksum",
    "udp_checksum",
    "SYN",
    "FIN",
    "RST",
    "ACK",
    "PSH",
    "URG",
    "is_connection_packet",
    "flags_to_str",
    "ip_to_int",
    "ip_to_str",
    "mac_to_int",
    "mac_to_str",
]
