"""TCP flag bits and the connection-packet predicate.

Sprayer's central classification (paper §3.2) splits TCP traffic into
*connection packets* — anything flagged SYN, FIN or RST, i.e. packets
that can modify TCP connection state — and *regular packets* (everything
else, including SYN-ACKs' ACK counterpart... note: a SYN-ACK carries SYN,
so it is a connection packet; pure ACKs and data are regular).
"""

from __future__ import annotations

#: TCP header flag bits, standard wire positions.
FIN = 0x01
SYN = 0x02
RST = 0x04
PSH = 0x08
ACK = 0x10
URG = 0x20

#: The connection-packet flag mask (SYN|FIN|RST); public so vectorized
#: classifiers can test a whole flags column without per-packet calls.
CONNECTION_MASK = SYN | FIN | RST
_CONNECTION_MASK = CONNECTION_MASK

_FLAG_NAMES = (
    (URG, "U"),
    (ACK, "A"),
    (PSH, "P"),
    (RST, "R"),
    (SYN, "S"),
    (FIN, "F"),
)


def is_connection_packet(flags: int) -> bool:
    """True if the flags mark a packet that can modify connection state.

    This is the exact predicate from the paper: SYN, FIN or RST set.
    """
    return bool(flags & _CONNECTION_MASK)


def flags_to_str(flags: int) -> str:
    """Human-readable flag string, e.g. ``'SA'`` for a SYN-ACK."""
    return "".join(name for bit, name in _FLAG_NAMES if flags & bit) or "."
