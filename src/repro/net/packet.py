"""The simulation packet object.

A :class:`Packet` carries parsed header fields (five-tuple, TCP flags,
sequence numbers, the TCP checksum value) plus the timestamps the
experiment harness needs (creation, NIC arrival, processing completion).
It deliberately does **not** carry serialized bytes in the hot path —
``to_bytes``/``from_bytes`` exist for grounding tests against the real
wire formats in :mod:`repro.net.headers`.

Sizes: ``frame_len`` is the Ethernet frame including the 4-byte FCS
(minimum 64 bytes, the paper's "64 B packets"). Serialization time on the
wire additionally pays the 8-byte preamble and the 12-byte inter-frame
gap (:data:`ETHERNET_OVERHEAD`).
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.net.five_tuple import PROTO_TCP, PROTO_UDP, FiveTuple
from repro.net.headers import EthernetHeader, Ipv4Header, TcpHeader, UdpHeader
from repro.net.tcp_flags import flags_to_str, is_connection_packet

#: Minimum Ethernet frame size (including FCS) in bytes.
MIN_FRAME_SIZE = 64
#: Preamble (8) + inter-frame gap (12) paid per frame on the wire.
ETHERNET_OVERHEAD = 20
#: Ethernet(14) + IPv4(20) + TCP(20) + FCS(4).
TCP_FRAME_HEADERS = 58
#: Ethernet(14) + IPv4(20) + UDP(8) + FCS(4).
UDP_FRAME_HEADERS = 46

from itertools import count as _count

#: Process-wide packet id stream (itertools.count: one C call per id).
_packet_ids = _count(1)


class Packet:
    """A packet in flight through the simulated middlebox.

    Attributes the pipeline writes:

    - ``nic_rx_time``: when the NIC placed it in an rx queue.
    - ``done_time``: when a core finished processing it.
    - ``processed_core``: index of the core that ran the NF on it.
    - ``rx_queue``: the NIC queue it was steered to.
    """

    __slots__ = (
        "packet_id",
        "five_tuple",
        "flags",
        "seq",
        "ack",
        "payload_len",
        "payload",
        "tcp_checksum",
        "frame_len",
        "created_at",
        "nic_rx_time",
        "done_time",
        "processed_core",
        "rx_queue",
        "window",
        "app_data",
    )

    def __init__(
        self,
        five_tuple: FiveTuple,
        flags: int = 0,
        seq: int = 0,
        ack: int = 0,
        payload_len: int = 0,
        payload: Optional[bytes] = None,
        tcp_checksum: int = 0,
        frame_len: Optional[int] = None,
        created_at: int = 0,
        window: int = 65535,
    ):
        self.packet_id = next(_packet_ids)
        self.five_tuple = five_tuple
        self.flags = flags
        self.seq = seq
        self.ack = ack
        self.payload_len = payload_len
        self.payload = payload
        self.tcp_checksum = tcp_checksum
        if frame_len is None:
            headers = TCP_FRAME_HEADERS if five_tuple.protocol == PROTO_TCP else UDP_FRAME_HEADERS
            frame_len = max(MIN_FRAME_SIZE, headers + payload_len)
        self.frame_len = frame_len
        self.created_at = created_at
        self.nic_rx_time: int = 0
        self.done_time: int = 0
        self.processed_core: int = -1
        self.rx_queue: int = -1
        self.window = window
        self.app_data = None

    @property
    def is_tcp(self) -> bool:
        return self.five_tuple.protocol == PROTO_TCP

    @property
    def is_connection(self) -> bool:
        """Connection packet per the paper: TCP with SYN/FIN/RST set."""
        return self.is_tcp and is_connection_packet(self.flags)

    @property
    def wire_bytes(self) -> int:
        """Bytes occupied on the wire including preamble and IFG."""
        return self.frame_len + ETHERNET_OVERHEAD

    def to_bytes(self) -> bytes:
        """Serialize to a real Ethernet frame (without FCS bytes).

        Payload content defaults to zeros of ``payload_len`` when no
        explicit payload was attached. The embedded TCP/UDP checksum is
        computed for real — after this call ``tcp_checksum`` matches the
        wire bytes.
        """
        payload = self.payload if self.payload is not None else bytes(self.payload_len)
        ft = self.five_tuple
        ip_payload: bytes
        if ft.protocol == PROTO_TCP:
            tcp = TcpHeader(
                src_port=ft.src_port,
                dst_port=ft.dst_port,
                seq=self.seq,
                ack=self.ack,
                flags=self.flags,
                window=self.window,
            )
            ip_payload = tcp.pack_with_checksum(ft.src_ip, ft.dst_ip, payload)
            self.tcp_checksum = int.from_bytes(ip_payload[16:18], "big")
        elif ft.protocol == PROTO_UDP:
            udp = UdpHeader(src_port=ft.src_port, dst_port=ft.dst_port)
            ip_payload = udp.pack_with_checksum(ft.src_ip, ft.dst_ip, payload)
        else:
            ip_payload = payload
        ip = Ipv4Header(
            src_ip=ft.src_ip,
            dst_ip=ft.dst_ip,
            protocol=ft.protocol,
            total_length=Ipv4Header.LENGTH + len(ip_payload),
        )
        eth = EthernetHeader()
        return eth.pack() + ip.pack() + ip_payload

    @classmethod
    def from_bytes(cls, frame: bytes, created_at: int = 0) -> "Packet":
        """Parse a serialized frame back into a :class:`Packet`."""
        eth = EthernetHeader.unpack(frame)
        if eth.ethertype != 0x0800:
            raise ValueError(f"not IPv4: ethertype 0x{eth.ethertype:04x}")
        ip = Ipv4Header.unpack(frame[EthernetHeader.LENGTH:])
        l4 = frame[EthernetHeader.LENGTH + Ipv4Header.LENGTH:]
        flags = 0
        seq = ack = 0
        checksum = 0
        window = 65535
        if ip.protocol == PROTO_TCP:
            tcp, checksum = TcpHeader.unpack(l4)
            src_port, dst_port = tcp.src_port, tcp.dst_port
            flags, seq, ack, window = tcp.flags, tcp.seq, tcp.ack, tcp.window
            payload = l4[TcpHeader.LENGTH:]
        elif ip.protocol == PROTO_UDP:
            udp, checksum = UdpHeader.unpack(l4)
            src_port, dst_port = udp.src_port, udp.dst_port
            payload = l4[UdpHeader.LENGTH:]
        else:
            src_port = dst_port = 0
            payload = l4
        ft = FiveTuple(ip.src_ip, ip.dst_ip, src_port, dst_port, ip.protocol)
        packet = cls(
            ft,
            flags=flags,
            seq=seq,
            ack=ack,
            payload_len=len(payload),
            payload=payload,
            tcp_checksum=checksum,
            frame_len=max(MIN_FRAME_SIZE, len(frame) + 4),
            created_at=created_at,
            window=window,
        )
        return packet

    def clone(self) -> "Packet":
        """A fresh copy with its own packet id (fault-injected duplicate).

        Pipeline-written fields (``nic_rx_time`` etc.) reset to their
        defaults — the duplicate traverses the middlebox independently.
        """
        return Packet(
            self.five_tuple,
            flags=self.flags,
            seq=self.seq,
            ack=self.ack,
            payload_len=self.payload_len,
            payload=self.payload,
            tcp_checksum=self.tcp_checksum,
            frame_len=self.frame_len,
            created_at=self.created_at,
            window=self.window,
        )

    def __repr__(self) -> str:
        return (
            f"<Packet #{self.packet_id} {self.five_tuple} flags={flags_to_str(self.flags)}"
            f" len={self.frame_len}>"
        )


def make_tcp_packet(
    five_tuple: FiveTuple,
    flags: int = 0,
    seq: int = 0,
    ack: int = 0,
    payload_len: int = 0,
    tcp_checksum: int = 0,
    created_at: int = 0,
    frame_len: Optional[int] = None,
) -> Packet:
    """Convenience constructor for a (non-serialized) TCP packet."""
    if five_tuple.protocol != PROTO_TCP:
        raise ValueError(f"not a TCP five-tuple: {five_tuple}")
    return Packet(
        five_tuple,
        flags=flags,
        seq=seq,
        ack=ack,
        payload_len=payload_len,
        tcp_checksum=tcp_checksum,
        created_at=created_at,
        frame_len=frame_len,
    )


def make_udp_packet(
    five_tuple: FiveTuple,
    payload_len: int = 0,
    created_at: int = 0,
    frame_len: Optional[int] = None,
    checksum: int = 0,
) -> Packet:
    """Convenience constructor for a UDP packet.

    ``checksum`` fills the packet's L4-checksum field (stored in
    ``tcp_checksum``, which despite the name holds whichever L4
    checksum the frame carries) — the field UDP spraying keys on.
    """
    if five_tuple.protocol != PROTO_UDP:
        raise ValueError(f"not a UDP five-tuple: {five_tuple}")
    return Packet(
        five_tuple,
        payload_len=payload_len,
        created_at=created_at,
        frame_len=frame_len,
        tcp_checksum=checksum,
    )
