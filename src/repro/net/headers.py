"""Byte-exact protocol headers.

These classes pack to and parse from real wire formats. The simulation
hot path does not serialize packets (it carries parsed field values in
:class:`repro.net.packet.Packet`), but the headers ground the model:
tests assert that the fields the NIC models consume (five-tuple, flags,
TCP checksum) round-trip through genuine byte layouts.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Tuple

from repro.net.checksum import ipv4_header_checksum, tcp_checksum, udp_checksum

ETHERTYPE_IPV4 = 0x0800


@dataclass
class EthernetHeader:
    """14-byte Ethernet II header (no VLAN)."""

    dst_mac: int = 0xFFFFFFFFFFFF
    src_mac: int = 0
    ethertype: int = ETHERTYPE_IPV4

    LENGTH = 14

    def pack(self) -> bytes:
        return (
            self.dst_mac.to_bytes(6, "big")
            + self.src_mac.to_bytes(6, "big")
            + struct.pack("!H", self.ethertype)
        )

    @classmethod
    def unpack(cls, data: bytes) -> "EthernetHeader":
        if len(data) < cls.LENGTH:
            raise ValueError(f"Ethernet header needs {cls.LENGTH} bytes, got {len(data)}")
        dst = int.from_bytes(data[0:6], "big")
        src = int.from_bytes(data[6:12], "big")
        (ethertype,) = struct.unpack("!H", data[12:14])
        return cls(dst_mac=dst, src_mac=src, ethertype=ethertype)


@dataclass
class Ipv4Header:
    """20-byte IPv4 header (no options)."""

    src_ip: int = 0
    dst_ip: int = 0
    protocol: int = 6
    total_length: int = 40
    ttl: int = 64
    identification: int = 0
    dscp: int = 0
    flags_fragment: int = 0x4000  # DF set, like a normal TCP sender

    LENGTH = 20

    def pack(self) -> bytes:
        version_ihl = (4 << 4) | 5
        header = struct.pack(
            "!BBHHHBBHII",
            version_ihl,
            self.dscp,
            self.total_length,
            self.identification,
            self.flags_fragment,
            self.ttl,
            self.protocol,
            0,
            self.src_ip,
            self.dst_ip,
        )
        checksum = ipv4_header_checksum(header)
        return header[:10] + struct.pack("!H", checksum) + header[12:]

    @classmethod
    def unpack(cls, data: bytes) -> "Ipv4Header":
        if len(data) < cls.LENGTH:
            raise ValueError(f"IPv4 header needs {cls.LENGTH} bytes, got {len(data)}")
        (
            version_ihl,
            dscp,
            total_length,
            identification,
            flags_fragment,
            ttl,
            protocol,
            _checksum,
            src_ip,
            dst_ip,
        ) = struct.unpack("!BBHHHBBHII", data[:20])
        if version_ihl >> 4 != 4:
            raise ValueError(f"not an IPv4 packet (version {version_ihl >> 4})")
        return cls(
            src_ip=src_ip,
            dst_ip=dst_ip,
            protocol=protocol,
            total_length=total_length,
            ttl=ttl,
            identification=identification,
            dscp=dscp,
            flags_fragment=flags_fragment,
        )


@dataclass
class TcpHeader:
    """20-byte TCP header (no options in the packed layout)."""

    src_port: int = 0
    dst_port: int = 0
    seq: int = 0
    ack: int = 0
    flags: int = 0
    window: int = 65535
    urgent: int = 0

    LENGTH = 20

    def pack_with_checksum(self, src_ip: int, dst_ip: int, payload: bytes = b"") -> bytes:
        """Pack the header + payload with a correct TCP checksum."""
        data_offset = (5 << 4)
        header = struct.pack(
            "!HHIIBBHHH",
            self.src_port,
            self.dst_port,
            self.seq & 0xFFFFFFFF,
            self.ack & 0xFFFFFFFF,
            data_offset,
            self.flags,
            self.window,
            0,
            self.urgent,
        )
        checksum = tcp_checksum(src_ip, dst_ip, header + payload)
        return header[:16] + struct.pack("!H", checksum) + header[18:] + payload

    @classmethod
    def unpack(cls, data: bytes) -> Tuple["TcpHeader", int]:
        """Parse a TCP header; returns ``(header, embedded_checksum)``."""
        if len(data) < cls.LENGTH:
            raise ValueError(f"TCP header needs {cls.LENGTH} bytes, got {len(data)}")
        (
            src_port,
            dst_port,
            seq,
            ack,
            _offset,
            flags,
            window,
            checksum,
            urgent,
        ) = struct.unpack("!HHIIBBHHH", data[:20])
        header = cls(
            src_port=src_port,
            dst_port=dst_port,
            seq=seq,
            ack=ack,
            flags=flags,
            window=window,
            urgent=urgent,
        )
        return header, checksum


@dataclass
class UdpHeader:
    """8-byte UDP header."""

    src_port: int = 0
    dst_port: int = 0

    LENGTH = 8

    def pack_with_checksum(self, src_ip: int, dst_ip: int, payload: bytes = b"") -> bytes:
        length = self.LENGTH + len(payload)
        header = struct.pack("!HHHH", self.src_port, self.dst_port, length, 0)
        checksum = udp_checksum(src_ip, dst_ip, header + payload)
        return header[:6] + struct.pack("!H", checksum) + payload

    @classmethod
    def unpack(cls, data: bytes) -> Tuple["UdpHeader", int]:
        """Parse a UDP header; returns ``(header, embedded_checksum)``."""
        if len(data) < cls.LENGTH:
            raise ValueError(f"UDP header needs {cls.LENGTH} bytes, got {len(data)}")
        src_port, dst_port, _length, checksum = struct.unpack("!HHHH", data[:8])
        return cls(src_port=src_port, dst_port=dst_port), checksum
