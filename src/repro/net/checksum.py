"""Internet checksum (RFC 1071) and the TCP/UDP pseudo-header variants.

The Flow Director trick at the heart of Sprayer's implementation (paper
§4) matches on the *TCP checksum field*, exploiting the fact that for
varying payloads the checksum is effectively uniform. We therefore
implement the real ones'-complement checksum so that simulated packets
carry exactly the field a NIC would see.
"""

from __future__ import annotations

import struct


def fold_checksum(total: int) -> int:
    """Fold a 32-bit (or larger) sum into 16 bits, ones'-complement style."""
    while total > 0xFFFF:
        total = (total & 0xFFFF) + (total >> 16)
    return total


def internet_checksum(data: bytes) -> int:
    """RFC 1071 checksum over ``data`` (odd lengths are zero-padded)."""
    if len(data) % 2:
        data = data + b"\x00"
    total = sum(struct.unpack(f"!{len(data) // 2}H", data))
    return ~fold_checksum(total) & 0xFFFF


def ipv4_header_checksum(header: bytes) -> int:
    """Checksum of an IPv4 header whose checksum field is zeroed."""
    return internet_checksum(header)


def _pseudo_header(src_ip: int, dst_ip: int, protocol: int, length: int) -> bytes:
    return struct.pack("!IIBBH", src_ip, dst_ip, 0, protocol, length)


def tcp_checksum(src_ip: int, dst_ip: int, segment: bytes) -> int:
    """TCP checksum: pseudo-header + segment with a zeroed checksum field.

    ``segment`` is the full TCP header+payload with bytes 16..18 (the
    checksum field) set to zero.
    """
    pseudo = _pseudo_header(src_ip, dst_ip, 6, len(segment))
    return internet_checksum(pseudo + segment)


def udp_checksum(src_ip: int, dst_ip: int, datagram: bytes) -> int:
    """UDP checksum; per RFC 768 a computed 0 is transmitted as 0xFFFF."""
    pseudo = _pseudo_header(src_ip, dst_ip, 17, len(datagram))
    value = internet_checksum(pseudo + datagram)
    return value if value != 0 else 0xFFFF


def verify_checksum(src_ip: int, dst_ip: int, protocol: int, segment: bytes) -> bool:
    """True if a received segment's embedded checksum is consistent.

    Summing a correct segment *including* its checksum field yields
    0xFFFF before complement, i.e. ``internet_checksum`` returns 0.
    """
    pseudo = _pseudo_header(src_ip, dst_ip, protocol, len(segment))
    return internet_checksum(pseudo + segment) == 0
