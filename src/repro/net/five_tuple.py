"""The five-tuple: the flow identity every middlebox keys on.

Sprayer's designated-core hash, RSS, NAT translations and firewall state
all key on ``(src_ip, dst_ip, src_port, dst_port, protocol)``. The tuple
is immutable and hashable so it can be used directly as a flow-table key.
"""

from __future__ import annotations

from typing import NamedTuple

from repro.net.addresses import ip_to_str

#: IANA protocol numbers used throughout the simulator.
PROTO_ICMP = 1
PROTO_TCP = 6
PROTO_UDP = 17


class FiveTuple(NamedTuple):
    """An immutable five-tuple flow identifier.

    Addresses are 32-bit integers, ports 16-bit integers, ``protocol`` an
    IANA protocol number. ``NamedTuple`` gives free hashing/equality and
    tuple-cheap construction in the packet hot path.
    """

    src_ip: int
    dst_ip: int
    src_port: int
    dst_port: int
    protocol: int

    def reversed(self) -> "FiveTuple":
        """The opposite direction of the same conversation."""
        return FiveTuple(self.dst_ip, self.src_ip, self.dst_port, self.src_port, self.protocol)

    def canonical(self) -> "FiveTuple":
        """A direction-independent representative of the connection.

        Both directions of a TCP connection map to the same canonical
        tuple, which is what a *symmetric* designated-core hash needs.
        The smaller ``(ip, port)`` endpoint is placed first.
        """
        if (self.src_ip, self.src_port) <= (self.dst_ip, self.dst_port):
            return self
        return self.reversed()

    @property
    def is_tcp(self) -> bool:
        return self.protocol == PROTO_TCP

    @property
    def is_udp(self) -> bool:
        return self.protocol == PROTO_UDP

    def __str__(self) -> str:
        name = {PROTO_TCP: "tcp", PROTO_UDP: "udp", PROTO_ICMP: "icmp"}.get(
            self.protocol, str(self.protocol)
        )
        return (
            f"{name} {ip_to_str(self.src_ip)}:{self.src_port}"
            f" -> {ip_to_str(self.dst_ip)}:{self.dst_port}"
        )
