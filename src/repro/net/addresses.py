"""IPv4 and MAC address helpers.

Addresses are stored as plain integers in the hot path (hashing, NIC
steering); these helpers convert to and from the familiar dotted/colon
notations at the edges (construction, logging, tests).
"""

from __future__ import annotations


def ip_to_int(address: str) -> int:
    """Parse dotted-quad IPv4 into a 32-bit integer.

    >>> hex(ip_to_int("10.0.0.1"))
    '0xa000001'
    """
    parts = address.split(".")
    if len(parts) != 4:
        raise ValueError(f"invalid IPv4 address: {address!r}")
    value = 0
    for part in parts:
        octet = int(part)
        if not 0 <= octet <= 255:
            raise ValueError(f"invalid IPv4 octet {part!r} in {address!r}")
        value = (value << 8) | octet
    return value


def ip_to_str(value: int) -> str:
    """Format a 32-bit integer as dotted-quad IPv4."""
    if not 0 <= value <= 0xFFFFFFFF:
        raise ValueError(f"IPv4 address out of range: {value}")
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def mac_to_int(address: str) -> int:
    """Parse ``aa:bb:cc:dd:ee:ff`` into a 48-bit integer."""
    parts = address.split(":")
    if len(parts) != 6:
        raise ValueError(f"invalid MAC address: {address!r}")
    value = 0
    for part in parts:
        octet = int(part, 16)
        if not 0 <= octet <= 255:
            raise ValueError(f"invalid MAC octet {part!r} in {address!r}")
        value = (value << 8) | octet
    return value


def mac_to_str(value: int) -> str:
    """Format a 48-bit integer as ``aa:bb:cc:dd:ee:ff``."""
    if not 0 <= value <= 0xFFFFFFFFFFFF:
        raise ValueError(f"MAC address out of range: {value}")
    return ":".join(f"{(value >> shift) & 0xFF:02x}" for shift in (40, 32, 24, 16, 8, 0))
