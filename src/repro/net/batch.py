"""Struct-of-arrays packet batches: the columnar spine record.

A :class:`PacketBatch` carries one NIC burst as parallel columns —
flow identities (the Toeplitz/spray hash inputs), TCP flags, sequence
numbers, checksum LSBs, frame lengths, and timestamps — instead of a
list of :class:`~repro.net.packet.Packet` objects. This is the DPDK
``rte_mbuf`` vector idiom the paper's whole performance argument rests
on, applied to the simulator itself: steering decisions (Toeplitz,
checksum spray, designated-core) are pure functions of these columns,
so the NIC can classify a whole burst without ever allocating a Python
object per packet — and packets the NIC drops are *never* materialized
at all, which is the dominant saving at overload.

Scalar :class:`Packet` views are materialized lazily, one packet at a
time, exactly when a packet is accepted into an rx queue (see
:mod:`repro.core.batch_spine`). Materialized packets draw fresh ids
from the same process-wide counter scalar construction uses, so
``Packet.clone()`` semantics (fault-injected duplicates get their own
identity) survive the columnar path unchanged.

Columns use :mod:`array` rather than numpy: bursts are ~32 packets, so
C-contiguous appends beat ufunc dispatch overhead, and the simulator
stays importable without optional dependencies.
"""

from __future__ import annotations

from array import array
from typing import Iterator, List, Sequence

from repro.net.five_tuple import FiveTuple
from repro.net.packet import Packet

#: Sentinel arrival for packets the link dropped at the transmit queue
#: (they were never serialized, so they have no far-end arrival time).
NO_ARRIVAL = -1


class PacketBatch:
    """A burst of packets as parallel columns (struct-of-arrays).

    Append-only; one row per packet. ``flows`` holds the immutable
    :class:`FiveTuple` identities (the tuple-hash inputs), the numeric
    columns are typed arrays. ``arrivals`` is filled in by the link
    (``NO_ARRIVAL`` marks a transmit-queue drop) and ``created_at`` is
    the generator timestamp latency is measured from.
    """

    __slots__ = (
        "flows",
        "flags",
        "seqs",
        "checksums",
        "frame_lens",
        "created_ats",
        "arrivals",
    )

    def __init__(self) -> None:
        self.flows: List[FiveTuple] = []
        self.flags = array("H")
        self.seqs = array("q")
        self.checksums = array("H")
        self.frame_lens = array("H")
        self.created_ats = array("q")
        #: Far-end arrival time per packet, set by ``Link.send_batch``.
        self.arrivals = array("q")

    def __len__(self) -> int:
        return len(self.flows)

    def append(
        self,
        flow: FiveTuple,
        flags: int,
        seq: int,
        checksum: int,
        frame_len: int,
        created_at: int,
    ) -> None:
        """Append one packet row (arrival column is left to the link)."""
        self.flows.append(flow)
        self.flags.append(flags)
        self.seqs.append(seq)
        self.checksums.append(checksum)
        self.frame_lens.append(frame_len)
        self.created_ats.append(created_at)

    def materialize(self, i: int) -> Packet:
        """A scalar :class:`Packet` view of row ``i`` (fresh packet id).

        Field-for-field what the scalar generator would have built:
        positional construction, ``payload_len=0``/``payload=None``
        (64 B synthetic frames carry no modelled payload), ``ack=0``.
        """
        return Packet(
            self.flows[i],
            self.flags[i],
            self.seqs[i],
            0,
            0,
            None,
            self.checksums[i],
            self.frame_lens[i],
            self.created_ats[i],
        )

    def materialize_all(self) -> List[Packet]:
        """Scalar views of every row, in order (per-packet fallback)."""
        return [self.materialize(i) for i in range(len(self.flows))]

    # -- pack/unpack roundtrip --------------------------------------------

    @classmethod
    def pack(cls, packets: Sequence[Packet]) -> "PacketBatch":
        """Columnize scalar packets (the inverse of :meth:`materialize`)."""
        batch = cls()
        for packet in packets:
            batch.append(
                packet.five_tuple,
                packet.flags,
                packet.seq,
                packet.tcp_checksum,
                packet.frame_len,
                packet.created_at,
            )
        return batch

    def rows(self) -> Iterator[tuple]:
        """The packet-defining fields per row, for equality checks."""
        for i in range(len(self.flows)):
            yield (
                self.flows[i],
                self.flags[i],
                self.seqs[i],
                self.checksums[i],
                self.frame_lens[i],
                self.created_ats[i],
            )
