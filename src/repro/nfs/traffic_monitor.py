"""A traffic monitor.

Table 1 row: **connection context** (per-flow; written at flow events)
and **statistics** (global; written per packet — but tolerating looser
consistency).

The statistics follow the paper's recommended pattern (§3.4): every
core keeps its own shard — including byte/packet counts for flows whose
designated core is elsewhere — and shards are periodically aggregated
at the designated cores, "similar to the logging mechanism of existing
systems (e.g., Bro Cluster)". Shard updates are core-local (relaxed
consistency), so the per-packet cost stays cheap.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.nf import NetworkFunction, NfContext
from repro.net.five_tuple import FiveTuple
from repro.net.packet import Packet
from repro.net.tcp_flags import ACK, FIN, RST, SYN


class _ConnRecord:
    """Per-connection context kept at the designated core."""

    __slots__ = ("opened_at", "closed_at", "bytes_total", "packets_total", "fins_seen")

    def __init__(self, opened_at: int):
        self.opened_at = opened_at
        self.closed_at = -1
        self.bytes_total = 0
        self.packets_total = 0
        self.fins_seen = 0


class TrafficMonitorNf(NetworkFunction):
    """Connection logging + sharded global statistics."""

    name = "traffic_monitor"

    def __init__(self):
        self.connections_opened = 0
        self.connections_closed = 0
        #: Completed-connection log: (flow, duration_ps, bytes).
        self.connection_log: List[tuple] = []

    def init(self, ctx: NfContext) -> None:
        # Per-core statistic shards (the relaxed-consistency pattern).
        ctx.local["bytes"] = 0
        ctx.local["packets"] = 0
        ctx.local["per_flow"] = {}

    # -- helpers ------------------------------------------------------------

    def _count(self, packet: Packet, ctx: NfContext) -> None:
        ctx.local["bytes"] += packet.frame_len
        ctx.local["packets"] += 1
        per_flow: Dict[FiveTuple, int] = ctx.local["per_flow"]
        key = packet.five_tuple.canonical()
        per_flow[key] = per_flow.get(key, 0) + packet.frame_len
        # Shard update: core-local, relaxed consistency.
        ctx.write_global("monitor_statistics", relaxed=True)

    # -- handlers ------------------------------------------------------------

    def connection_packets(self, packets: List[Packet], ctx: NfContext) -> None:
        for packet in packets:
            flags = packet.flags
            flow = packet.five_tuple
            self._count(packet, ctx)
            if flags & SYN and not flags & ACK:
                if ctx.get_local_flow(flow) is None:
                    record = _ConnRecord(opened_at=ctx.now)
                    ctx.insert_local_flow(flow, record)
                    ctx.insert_local_flow(flow.reversed(), record)
                    self.connections_opened += 1
            elif flags & (FIN | RST):
                record = ctx.get_local_flow(flow)
                if record is None:
                    continue
                record.fins_seen += 1
                closing = bool(flags & RST) or record.fins_seen >= 2
                if closing and record.closed_at < 0:
                    record.closed_at = ctx.now
                    self.connections_closed += 1
                    self.connection_log.append(
                        (flow.canonical(), record.closed_at - record.opened_at,
                         record.bytes_total)
                    )
                    ctx.remove_local_flow(flow)
                    ctx.remove_local_flow(flow.reversed())

    def regular_packets(self, packets: List[Packet], ctx: NfContext) -> None:
        # Read-only flow access (is this a tracked connection?) plus
        # shard counting; never a flow-state write off the designated core.
        # Read-only flow access (is this a tracked connection?) plus
        # shard counting; never a flow-state write off the designated
        # core — per-connection totals come from the shard merge.
        ctx.get_flows([packet.five_tuple for packet in packets])
        for packet in packets:
            self._count(packet, ctx)

    # -- aggregation (the periodic shard merge) --------------------------------

    def aggregate(self, contexts: List[NfContext]) -> Dict[str, int]:
        """Merge the per-core shards (what the periodic task would do)."""
        totals = {"bytes": 0, "packets": 0}
        for ctx in contexts:
            totals["bytes"] += ctx.local.get("bytes", 0)
            totals["packets"] += ctx.local.get("packets", 0)
        return totals

    def per_flow_bytes(self, contexts: List[NfContext]) -> Dict[FiveTuple, int]:
        """Aggregate per-flow byte counts across all core shards."""
        merged: Dict[FiveTuple, int] = {}
        for ctx in contexts:
            for flow, count in ctx.local.get("per_flow", {}).items():
                merged[flow] = merged.get(flow, 0) + count
        return merged
