"""An L4 load balancer (direct-server-return style).

Table 1 row: a **flow-server map** (per-flow; read per packet, written
at flow events), a **pool of servers** and **statistics** (global;
written at flow events).

The balancer is DSR: only client->VIP traffic traverses it; it picks a
backend per connection (least connections), records the assignment in
the flow map, and "rewrites the header" (L2 next-hop toward the
backend — modelled as a header update that leaves the five-tuple
intact, as DSR does). Return traffic goes directly from backend to
client, so no reverse-direction state is needed — which is also what
keeps every write on the flow's designated core.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.nf import NetworkFunction, NfContext
from repro.net.five_tuple import FiveTuple
from repro.net.packet import Packet
from repro.net.tcp_flags import ACK, FIN, RST, SYN


class _Assignment:
    """A flow-map entry: which backend owns this connection."""

    __slots__ = ("backend", "fin_seen")

    def __init__(self, backend: int):
        self.backend = backend
        self.fin_seen = False


class LoadBalancerNf(NetworkFunction):
    """VIP -> backend steering with least-connections assignment."""

    name = "load_balancer"

    def __init__(self, vip: int, backends: List[int]):
        if not backends:
            raise ValueError("need at least one backend")
        self.vip = vip
        self.backends = list(backends)
        #: Global statistics: active connections per backend.
        self.active_connections: Dict[int, int] = {b: 0 for b in self.backends}
        self.total_assigned = 0
        self.drops_no_assignment = 0
        self.drops_not_vip = 0

    def _pick_backend(self, ctx: NfContext) -> int:
        # Reads the global pool + per-server statistics (flow event).
        ctx.read_global("lb_server_pool")
        return min(self.backends, key=lambda b: (self.active_connections[b], b))

    def _steer(self, packet: Packet, backend: int, ctx: NfContext) -> None:
        """Point the packet at the backend (L2 rewrite: tuple unchanged)."""
        ctx.consume_cycles(ctx.engine.costs.header_update)
        packet.app_data = ("lb_backend", backend)

    def connection_packets(self, packets: List[Packet], ctx: NfContext) -> None:
        for packet in packets:
            flags = packet.flags
            flow = packet.five_tuple
            if flow.dst_ip != self.vip:
                self.drops_not_vip += 1
                ctx.drop(packet)
                continue
            if flags & SYN and not flags & ACK:
                existing = ctx.get_local_flow(flow)
                if existing is not None:  # SYN retransmission
                    self._steer(packet, existing.backend, ctx)
                    continue
                backend = self._pick_backend(ctx)
                ctx.write_global("lb_statistics")
                self.active_connections[backend] += 1
                self.total_assigned += 1
                ctx.insert_local_flow(flow, _Assignment(backend))
                self._steer(packet, backend, ctx)
            else:
                entry = ctx.get_local_flow(flow)
                if entry is None:
                    self.drops_no_assignment += 1
                    ctx.drop(packet)
                    continue
                self._steer(packet, entry.backend, ctx)
                if flags & RST or (flags & FIN and entry.fin_seen):
                    ctx.remove_local_flow(flow)
                    ctx.write_global("lb_statistics")
                    self.active_connections[entry.backend] -= 1
                elif flags & FIN:
                    entry.fin_seen = True

    def regular_packets(self, packets: List[Packet], ctx: NfContext) -> None:
        entries = ctx.get_flows([packet.five_tuple for packet in packets])
        for packet, entry in zip(packets, entries):
            if entry is None:
                self.drops_no_assignment += 1
                ctx.drop(packet)
                continue
            self._steer(packet, entry.backend, ctx)
