"""Deep packet inspection with a real Aho-Corasick automaton.

Table 1 row: an **automaton**, per-flow scope, read-write on **every
packet** — the one NF in the paper's survey that must update flow state
per packet, and therefore the NF class the paper flags as a poor fit
for spraying (§7: cross-packet pattern matching would require cores to
share their state machines).

Behaviour by steering mode:

- under **RSS**, every packet of a flow is on the flow's (single) core:
  the automaton state lives in the per-core scratch area and advances
  locally and cheaply;
- under **spraying** modes, the per-flow automaton state must be shared
  across cores: each packet pays a locked read-modify-write of the
  shared state (priced through the coherence model). The ablation bench
  uses this to quantify the paper's claim.

Pattern matching is real: the automaton is built with goto/fail links
and scans actual payload bytes when present; synthetic packets without
payloads charge the per-byte scan cost without advancing matches.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.nf import NetworkFunction, NfContext
from repro.net.five_tuple import FiveTuple
from repro.net.packet import Packet

#: Modelled DFA cost per scanned payload byte.
CYCLES_PER_SCANNED_BYTE = 2.0


class AhoCorasick:
    """A classic Aho-Corasick multi-pattern matcher.

    States are integers; 0 is the root. ``advance`` consumes one byte
    and returns ``(next_state, matches_completed_here)`` so that
    matching can be suspended and resumed across packet boundaries —
    the cross-packet property DPI needs.
    """

    def __init__(self, patterns: Iterable[bytes]):
        self.patterns: List[bytes] = [bytes(p) for p in patterns]
        if any(len(p) == 0 for p in self.patterns):
            raise ValueError("empty patterns are not allowed")
        self._goto: List[Dict[int, int]] = [{}]
        self._fail: List[int] = [0]
        self._output: List[List[int]] = [[]]
        for index, pattern in enumerate(self.patterns):
            self._insert(pattern, index)
        self._build_failure_links()

    def _insert(self, pattern: bytes, pattern_index: int) -> None:
        state = 0
        for byte in pattern:
            nxt = self._goto[state].get(byte)
            if nxt is None:
                self._goto.append({})
                self._fail.append(0)
                self._output.append([])
                nxt = len(self._goto) - 1
                self._goto[state][byte] = nxt
            state = nxt
        self._output[state].append(pattern_index)

    def _build_failure_links(self) -> None:
        queue = deque()
        for byte, state in self._goto[0].items():
            self._fail[state] = 0
            queue.append(state)
        while queue:
            current = queue.popleft()
            for byte, nxt in self._goto[current].items():
                queue.append(nxt)
                fallback = self._fail[current]
                while fallback and byte not in self._goto[fallback]:
                    fallback = self._fail[fallback]
                self._fail[nxt] = self._goto[fallback].get(byte, 0)
                if self._fail[nxt] == nxt:
                    self._fail[nxt] = 0
                self._output[nxt] = self._output[nxt] + self._output[self._fail[nxt]]

    @property
    def num_states(self) -> int:
        return len(self._goto)

    def advance(self, state: int, byte: int) -> Tuple[int, List[int]]:
        """Consume one byte; return (new_state, completed pattern ids)."""
        while state and byte not in self._goto[state]:
            state = self._fail[state]
        state = self._goto[state].get(byte, 0)
        return state, self._output[state]

    def scan(self, state: int, data: bytes) -> Tuple[int, List[Tuple[int, int]]]:
        """Scan ``data`` from ``state``; return (end_state, matches).

        Matches are ``(offset_of_last_byte, pattern_index)`` pairs.
        """
        matches: List[Tuple[int, int]] = []
        for offset, byte in enumerate(data):
            state, found = self.advance(state, byte)
            for pattern_index in found:
                matches.append((offset, pattern_index))
        return state, matches


# The declaration keeps the paper's logical row (automaton: per-flow,
# RW per packet); the implementation *materializes* that state as
# shared global structures under spraying — which is exactly the
# incompatibility §7 describes, so the divergence is the point.
class DpiNf(NetworkFunction):  # repro-lint: disable=SPR007
    """Signature-matching DPI over TCP payload streams."""

    name = "dpi"

    def __init__(self, patterns: Iterable[bytes]):
        self.automaton = AhoCorasick(patterns)
        self.matches: List[Tuple[FiveTuple, int]] = []
        #: Shared per-flow automaton states, used under spraying modes.
        self._shared_states: Dict[FiveTuple, int] = {}

    def _states_are_core_local(self, ctx: NfContext) -> bool:
        """True when every packet of a flow stays on one core (RSS)."""
        return ctx.engine.policy.name == "rss"

    def _scan_packet(self, packet: Packet, ctx: NfContext) -> None:
        flow = packet.five_tuple
        if self._states_are_core_local(ctx):
            states: Dict[FiveTuple, int] = ctx.local.setdefault("dpi_states", {})
            state = states.get(flow, 0)
            state = self._scan_payload(packet, state, ctx)
            states[flow] = state
            # Local automaton-state update: cheap.
            ctx.consume_cycles(ctx.engine.costs.flow_lookup_local)
        else:
            # Sprayed: the state machine is shared across cores — a
            # locked read-modify-write per packet (the paper's warning).
            ctx.write_global(("dpi_state", flow))
            state = self._shared_states.get(flow, 0)
            state = self._scan_payload(packet, state, ctx)
            self._shared_states[flow] = state

    def _scan_payload(self, packet: Packet, state: int, ctx: NfContext) -> int:
        ctx.consume_cycles(CYCLES_PER_SCANNED_BYTE * packet.payload_len)
        if packet.payload:
            state, found = self.automaton.scan(state, packet.payload)
            for _offset, pattern_index in found:
                self.matches.append((packet.five_tuple, pattern_index))
        return state

    def connection_packets(self, packets: List[Packet], ctx: NfContext) -> None:
        for packet in packets:
            flow = packet.five_tuple
            if packet.flags & 0x02 and not packet.flags & 0x10:  # first SYN
                if ctx.get_local_flow(flow) is None:
                    ctx.insert_local_flow(flow, {"scanned": 0})
                    ctx.insert_local_flow(flow.reversed(), {"scanned": 0})
            self._scan_packet(packet, ctx)

    def regular_packets(self, packets: List[Packet], ctx: NfContext) -> None:
        for packet in packets:
            self._scan_packet(packet, ctx)
