"""Network functions built on the Sprayer programming model.

One NF per module, covering every row of the paper's Table 1 plus the
synthetic NF used in its evaluation (§5):

- :class:`SyntheticNf` — flow-state lookup + header touch + busy loop,
  the parameterized NF behind Figures 6-9.
- :class:`NatNf` — the paper's Figure 5 NAT (flow map per-flow,
  port pool global).
- :class:`FirewallNf` — ACL + per-flow connection context.
- :class:`LoadBalancerNf` — L4 load balancer (flow-server map per-flow,
  server pool + statistics global).
- :class:`TrafficMonitorNf` — connection context per-flow, sharded
  global statistics with relaxed consistency.
- :class:`RedundancyEliminationNf` — global packet cache, RW per packet.
- :class:`DpiNf` — per-flow Aho-Corasick automaton, RW per packet; the
  NF class the paper calls out as a poor fit for spraying.
"""

from repro.nfs.dpi import AhoCorasick, DpiNf
from repro.nfs.dpi_ooo import OooDpiNf
from repro.nfs.factory import EXTERNAL_IP, VIP, make_nf
from repro.nfs.firewall import AclRule, FirewallNf
from repro.nfs.load_balancer import LoadBalancerNf
from repro.nfs.nat import NatNf, PortPool
from repro.nfs.redundancy import RedundancyEliminationNf
from repro.nfs.registry import NF_PROFILES, NfProfile, StateDecl, table1_rows
from repro.nfs.synthetic import SyntheticNf
from repro.nfs.traffic_monitor import TrafficMonitorNf

__all__ = [
    "make_nf",
    "VIP",
    "EXTERNAL_IP",
    "SyntheticNf",
    "NatNf",
    "PortPool",
    "FirewallNf",
    "AclRule",
    "LoadBalancerNf",
    "TrafficMonitorNf",
    "RedundancyEliminationNf",
    "DpiNf",
    "OooDpiNf",
    "AhoCorasick",
    "NfProfile",
    "StateDecl",
    "NF_PROFILES",
    "table1_rows",
]
