"""Table 1: state scope and access pattern of popular stateful NFs.

The registry encodes the paper's taxonomy and doubles as ground truth
for two checks: the Table 1 bench runs each implemented NF through the
engine and verifies, from the flow-state manager's counters, that its
*observed* access pattern matches the declared one (e.g. that a NAT
really only writes flow state at flow events); and lint rule SPR007
cross-checks every declaration against the *statically inferred*
profile from :mod:`repro.lint.dataflow` — a declaration that drifts
from the code fails the lint run.

Declarations here were audited against the inference pass; the folding
convention for comparisons is symmetric (connection packets are packets
too, so a per-packet access is also a flow-event access — see
``declared_summary`` in the dataflow module).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: Access-pattern codes as printed in Table 1.
READ = "R"
READ_WRITE = "RW"
NONE = "-"


@dataclass(frozen=True)
class StateDecl:
    """One state item of an NF: its scope and access pattern."""

    state: str
    scope: str  # "Per-flow" | "Global"
    per_packet: str  # R / RW / -
    per_flow_event: str  # R / RW / -
    #: Global items only: per-packet writes commute (per-core shards
    #: merged out of band), so they carry no coherence penalty.
    relaxed: bool = False

    def __post_init__(self) -> None:
        if self.scope not in ("Per-flow", "Global"):
            raise ValueError(f"scope must be Per-flow/Global, got {self.scope!r}")
        for access in (self.per_packet, self.per_flow_event):
            if access not in (READ, READ_WRITE, NONE):
                raise ValueError(f"access must be R/RW/-, got {access!r}")
        if self.relaxed and self.scope != "Global":
            raise ValueError("relaxed only applies to Global state")


@dataclass(frozen=True)
class NfProfile:
    """An NF's Table 1 row(s) plus implementation metadata."""

    nf: str
    states: Tuple[StateDecl, ...]
    #: Does the NF modify per-flow state outside connection events?
    updates_flow_state_per_packet: bool = False
    #: Per-packet flow writes exist but all run under a designated-core
    #: guard (the out-of-order DPI drain pattern), so the writing
    #: partition still holds under spraying.
    per_packet_writes_designated_only: bool = False
    #: Module implementing it in this package (None = taxonomy-only).
    implementation: Optional[str] = None
    #: Paper NFs appear in the printed Table 1; repo-grown NFs
    #: (out-of-order DPI, the synthetic NF) are registered for the
    #: planner and the SPR007 cross-check but not in the table.
    in_table1: bool = True


#: The rows of Table 1, in the paper's order, plus the repo-grown NFs.
NF_PROFILES: Dict[str, NfProfile] = {
    "nat": NfProfile(
        nf="NAT, IPv4 to IPv6",
        states=(
            StateDecl("Flow map", "Per-flow", READ, READ_WRITE),
            StateDecl("Pool of IPs/ports", "Global", NONE, READ_WRITE),
        ),
        implementation="repro.nfs.nat",
    ),
    "firewall": NfProfile(
        nf="Firewall",
        states=(StateDecl("Connection context", "Per-flow", READ, READ_WRITE),),
        implementation="repro.nfs.firewall",
    ),
    "load_balancer": NfProfile(
        nf="Load Balancer",
        states=(
            StateDecl("Flow-server map", "Per-flow", READ, READ_WRITE),
            StateDecl("Pool of servers", "Global", NONE, READ_WRITE),
            # Audited against the code: the per-backend counters are
            # touched at connection setup/teardown only, never on the
            # regular path (the paper's row groups them with the pool).
            StateDecl("Statistics", "Global", NONE, READ_WRITE),
        ),
        implementation="repro.nfs.load_balancer",
    ),
    "traffic_monitor": NfProfile(
        nf="Traffic Monitor",
        states=(
            # Audited: the regular path *reads* flow state ("is this a
            # tracked connection?") even though it only writes at events.
            StateDecl("Connection context", "Per-flow", READ, READ_WRITE),
            # Statistics shards are core-local (§3.4 relaxed pattern).
            StateDecl("Statistics", "Global", READ_WRITE, NONE, relaxed=True),
        ),
        implementation="repro.nfs.traffic_monitor",
    ),
    "redundancy_elimination": NfProfile(
        nf="Redundancy Elimination",
        states=(StateDecl("Packet cache", "Global", READ_WRITE, NONE),),
        implementation="repro.nfs.redundancy",
    ),
    "dpi": NfProfile(
        nf="DPI",
        states=(StateDecl("Automata", "Per-flow", READ_WRITE, NONE),),
        updates_flow_state_per_packet=True,
        implementation="repro.nfs.dpi",
    ),
    # -- repo-grown NFs (not part of the paper's printed table) ------------
    "dpi_ooo": NfProfile(
        nf="DPI, out-of-order tolerant",
        states=(
            StateDecl("Automaton + reorder cursor", "Per-flow", READ_WRITE, READ_WRITE),
            StateDecl("Staging shards", "Global", READ_WRITE, NONE, relaxed=True),
        ),
        updates_flow_state_per_packet=True,
        per_packet_writes_designated_only=True,
        implementation="repro.nfs.dpi_ooo",
        in_table1=False,
    ),
    "synthetic": NfProfile(
        nf="Synthetic NF (§5)",
        states=(StateDecl("Flow table entry", "Per-flow", READ, READ_WRITE),),
        implementation="repro.nfs.synthetic",
        in_table1=False,
    ),
}


def table1_rows() -> List[Dict[str, str]]:
    """The rows of Table 1 as flat dicts (one per state item)."""
    rows: List[Dict[str, str]] = []
    for profile in NF_PROFILES.values():
        if not profile.in_table1:
            continue
        for decl in profile.states:
            rows.append(
                {
                    "NF": profile.nf,
                    "State": decl.state,
                    "Scope": decl.scope,
                    "packet": decl.per_packet,
                    "flow": decl.per_flow_event,
                }
            )
    return rows


def sprayer_compatible(key: str) -> bool:
    """True if the NF fits Sprayer's model: no per-packet flow writes,
    or only designated-core-guarded ones (the writing partition holds)."""
    profile = NF_PROFILES[key]
    return (
        not profile.updates_flow_state_per_packet
        or profile.per_packet_writes_designated_only
    )
