"""Table 1: state scope and access pattern of popular stateful NFs.

The registry encodes the paper's taxonomy and doubles as ground truth
for a runtime check: the Table 1 bench runs each implemented NF through
the engine and verifies, from the flow-state manager's counters, that
its *observed* access pattern matches the declared one (e.g. that a NAT
really only writes flow state at flow events).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: Access-pattern codes as printed in Table 1.
READ = "R"
READ_WRITE = "RW"
NONE = "-"


@dataclass(frozen=True)
class StateDecl:
    """One state item of an NF: its scope and access pattern."""

    state: str
    scope: str  # "Per-flow" | "Global"
    per_packet: str  # R / RW / -
    per_flow_event: str  # R / RW / -

    def __post_init__(self) -> None:
        if self.scope not in ("Per-flow", "Global"):
            raise ValueError(f"scope must be Per-flow/Global, got {self.scope!r}")
        for access in (self.per_packet, self.per_flow_event):
            if access not in (READ, READ_WRITE, NONE):
                raise ValueError(f"access must be R/RW/-, got {access!r}")


@dataclass(frozen=True)
class NfProfile:
    """An NF's Table 1 row(s) plus implementation metadata."""

    nf: str
    states: Tuple[StateDecl, ...]
    #: Does the NF modify per-flow state outside connection events?
    updates_flow_state_per_packet: bool = False
    #: Module implementing it in this package (None = taxonomy-only).
    implementation: Optional[str] = None


#: The rows of Table 1, in the paper's order.
NF_PROFILES: Dict[str, NfProfile] = {
    "nat": NfProfile(
        nf="NAT, IPv4 to IPv6",
        states=(
            StateDecl("Flow map", "Per-flow", READ, READ_WRITE),
            StateDecl("Pool of IPs/ports", "Global", NONE, READ_WRITE),
        ),
        implementation="repro.nfs.nat",
    ),
    "firewall": NfProfile(
        nf="Firewall",
        states=(StateDecl("Connection context", "Per-flow", READ, READ_WRITE),),
        implementation="repro.nfs.firewall",
    ),
    "load_balancer": NfProfile(
        nf="Load Balancer",
        states=(
            StateDecl("Flow-server map", "Per-flow", READ, READ_WRITE),
            StateDecl("Pool of servers", "Global", NONE, READ_WRITE),
            StateDecl("Statistics", "Global", READ_WRITE, NONE),
        ),
        implementation="repro.nfs.load_balancer",
    ),
    "traffic_monitor": NfProfile(
        nf="Traffic Monitor",
        states=(
            StateDecl("Connection context", "Per-flow", NONE, READ_WRITE),
            StateDecl("Statistics", "Global", READ_WRITE, NONE),
        ),
        implementation="repro.nfs.traffic_monitor",
    ),
    "redundancy_elimination": NfProfile(
        nf="Redundancy Elimination",
        states=(StateDecl("Packet cache", "Global", READ_WRITE, NONE),),
        implementation="repro.nfs.redundancy",
    ),
    "dpi": NfProfile(
        nf="DPI",
        states=(StateDecl("Automata", "Per-flow", READ_WRITE, NONE),),
        updates_flow_state_per_packet=True,
        implementation="repro.nfs.dpi",
    ),
}


def table1_rows() -> List[Dict[str, str]]:
    """The rows of Table 1 as flat dicts (one per state item)."""
    rows: List[Dict[str, str]] = []
    for profile in NF_PROFILES.values():
        for decl in profile.states:
            rows.append(
                {
                    "NF": profile.nf,
                    "State": decl.state,
                    "Scope": decl.scope,
                    "packet": decl.per_packet,
                    "flow": decl.per_flow_event,
                }
            )
    return rows


def sprayer_compatible(key: str) -> bool:
    """True if the NF fits Sprayer's model (no per-packet flow writes)."""
    return not NF_PROFILES[key].updates_flow_state_per_packet
