"""A stateful firewall.

Table 1 row: **connection context**, per-flow scope, read per packet,
read-write at flow events. Policy: an ordered ACL decides whether a new
connection (first SYN) may be established; established connections pass;
everything else is dropped (default-deny, established-only).

The ACL itself is static global configuration: read-only after startup,
so per-packet reads are cache-local and priced as compute (a linear
rule walk — the footnote's "a firewall would lookup the flow state and
go through an ACL").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.nf import NetworkFunction, NfContext
from repro.net.five_tuple import FiveTuple
from repro.net.packet import Packet
from repro.net.tcp_flags import ACK, FIN, RST, SYN

#: Modelled cost of evaluating one ACL rule (a few compares).
CYCLES_PER_ACL_RULE = 4


@dataclass(frozen=True)
class AclRule:
    """A match on (src prefix, dst prefix, dst port) with a verdict.

    Prefixes are (address, prefix_len); ``dst_port=None`` matches any.
    """

    action: str  # "permit" | "deny"
    src_prefix: tuple = (0, 0)  # (network, prefix_len); /0 matches all
    dst_prefix: tuple = (0, 0)
    dst_port: Optional[int] = None

    def __post_init__(self) -> None:
        if self.action not in ("permit", "deny"):
            raise ValueError(f"action must be permit/deny, got {self.action!r}")
        for network, length in (self.src_prefix, self.dst_prefix):
            if not 0 <= length <= 32:
                raise ValueError(f"bad prefix length {length}")

    def _prefix_match(self, address: int, prefix: tuple) -> bool:
        network, length = prefix
        if length == 0:
            return True
        mask = ~((1 << (32 - length)) - 1) & 0xFFFFFFFF
        return (address & mask) == (network & mask)

    def matches(self, flow: FiveTuple) -> bool:
        if not self._prefix_match(flow.src_ip, self.src_prefix):
            return False
        if not self._prefix_match(flow.dst_ip, self.dst_prefix):
            return False
        if self.dst_port is not None and flow.dst_port != self.dst_port:
            return False
        return True


class _ConnContext:
    """Per-connection context (both directions share it)."""

    __slots__ = ("established", "fins_seen")

    def __init__(self) -> None:
        self.established = True
        self.fins_seen = 0


class FirewallNf(NetworkFunction):
    """Default-deny stateful firewall with an ordered ACL."""

    name = "firewall"

    def __init__(self, acl: Optional[List[AclRule]] = None, default_action: str = "deny"):
        if default_action not in ("permit", "deny"):
            raise ValueError(f"default_action must be permit/deny, got {default_action!r}")
        self.acl = list(acl) if acl else []
        self.default_action = default_action
        self.connections_admitted = 0
        self.connections_refused = 0
        self.drops_no_state = 0

    def _acl_verdict(self, flow: FiveTuple, ctx: NfContext) -> str:
        for index, rule in enumerate(self.acl):
            if rule.matches(flow):
                ctx.consume_cycles(CYCLES_PER_ACL_RULE * (index + 1))
                return rule.action
        ctx.consume_cycles(CYCLES_PER_ACL_RULE * max(1, len(self.acl)))
        return self.default_action

    def connection_packets(self, packets: List[Packet], ctx: NfContext) -> None:
        for packet in packets:
            flags = packet.flags
            flow = packet.five_tuple
            if flags & SYN and not flags & ACK:
                if ctx.get_local_flow(flow) is not None:
                    continue  # SYN retransmission of an admitted flow
                if self._acl_verdict(flow, ctx) != "permit":
                    self.connections_refused += 1
                    ctx.drop(packet)
                    continue
                context = _ConnContext()
                ctx.insert_local_flow(flow, context)
                ctx.insert_local_flow(flow.reversed(), context)
                self.connections_admitted += 1
            elif flags & RST:
                if ctx.get_local_flow(flow) is None:
                    self.drops_no_state += 1
                    ctx.drop(packet)
                    continue
                ctx.remove_local_flow(flow)
                ctx.remove_local_flow(flow.reversed())
            elif flags & FIN:
                context = ctx.get_local_flow(flow)
                if context is None:
                    self.drops_no_state += 1
                    ctx.drop(packet)
                    continue
                context.fins_seen += 1
                if context.fins_seen >= 2:
                    ctx.remove_local_flow(flow)
                    ctx.remove_local_flow(flow.reversed())
            else:
                # SYN-ACK: forwarded only if the connection was admitted.
                if ctx.get_local_flow(flow) is None:
                    self.drops_no_state += 1
                    ctx.drop(packet)

    def regular_packets(self, packets: List[Packet], ctx: NfContext) -> None:
        entries = ctx.get_flows([packet.five_tuple for packet in packets])
        for packet, entry in zip(packets, entries):
            if entry is None:
                self.drops_no_state += 1
                ctx.drop(packet)
