"""Redundancy elimination.

Table 1 row: a **packet cache**, global scope, read-write on **every
packet** — the hard case for any multicore design, Sprayer or not
("traditional approaches must also deal with shared global state").

The NF fingerprints each payload; a cache hit lets it shrink the packet
to a small shim (the savings), a miss inserts the fingerprint. The
cache is one global structure: every access pays the lock, and the
coherence model charges ownership bounces as cores take turns writing.

It is *stateless* in Sprayer's flow-table sense (no per-flow state), so
it sets the ``stateless`` flag from §3.4 and skips classification,
flow tables and redirection entirely.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List

from repro.core.nf import NetworkFunction, NfContext
from repro.net.packet import Packet

#: Size of the forwarded shim when a payload is eliminated.
SHIM_BYTES = 16
#: Modelled cost of fingerprinting a payload (per byte).
CYCLES_PER_FINGERPRINT_BYTE = 0.25


class RedundancyEliminationNf(NetworkFunction):
    """Global packet-cache RE with LRU eviction."""

    name = "redundancy_elimination"
    stateless = True

    def __init__(self, cache_entries: int = 65536):
        if cache_entries < 1:
            raise ValueError(f"cache_entries must be >= 1, got {cache_entries}")
        self.cache_entries = cache_entries
        #: fingerprint -> payload length (a real RE stores the bytes).
        self.cache: "OrderedDict[int, int]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.bytes_saved = 0

    def _fingerprint(self, packet: Packet) -> int:
        # Real payloads get a real (stable) fingerprint; synthetic
        # packets fall back to the checksum+length proxy.
        if packet.payload:
            return hash(packet.payload)
        return (packet.tcp_checksum << 16) ^ packet.payload_len

    def regular_packets(self, packets: List[Packet], ctx: NfContext) -> None:
        for packet in packets:
            if packet.payload_len == 0:
                continue  # nothing to eliminate (e.g. pure ACKs)
            ctx.consume_cycles(CYCLES_PER_FINGERPRINT_BYTE * packet.payload_len)
            # Global cache: locked, RW per packet.
            ctx.write_global("re_packet_cache")
            fingerprint = self._fingerprint(packet)
            if fingerprint in self.cache:
                self.cache.move_to_end(fingerprint)
                self.hits += 1
                saved = packet.payload_len - SHIM_BYTES
                if saved > 0:
                    self.bytes_saved += saved
                    packet.frame_len = max(64, packet.frame_len - saved)
                    packet.payload_len = SHIM_BYTES
            else:
                self.misses += 1
                self.cache[fingerprint] = packet.payload_len
                if len(self.cache) > self.cache_entries:
                    self.cache.popitem(last=False)
