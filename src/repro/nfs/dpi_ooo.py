"""Out-of-order-tolerant DPI (paper §7, citing O3FA [46]).

"Some NFs that perform DPI need to support cross-packet pattern
matching. Although they can be made to work with out-of-order packets
[46], implementing them on top of Sprayer would require that cores
share their state machines."

This module implements that cited design point: instead of advancing a
per-flow automaton on every packet (impossible without per-packet flow
writes), each core buffers the payload segments it happens to receive,
and the flow's *designated core* drains the contiguous prefix through
the automaton whenever a connection event or a drain poll runs. The
trade-offs O3FA describes appear naturally:

- matching is correct for any arrival order (tests prove equality with
  in-order scanning);
- detection latency grows with reordering (a hole delays everything
  behind it);
- buffering is bounded (``max_buffered_segments`` per flow) — overflow
  falls back to scan-on-arrival for the overflowing segment, trading
  cross-packet coverage for memory, and is counted.

Buffers are per-core shards (core-local writes, like the monitor's
statistics pattern), so the writing partition holds; only the automaton
state itself lives in the flow entry, written exclusively by the
designated core at drain time.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.nf import NetworkFunction, NfContext
from repro.net.five_tuple import FiveTuple
from repro.net.packet import Packet
from repro.net.tcp_flags import ACK, FIN, RST, SYN
from repro.nfs.dpi import CYCLES_PER_SCANNED_BYTE, AhoCorasick


class _DpiFlowEntry:
    """Designated-core-owned automaton state for one direction."""

    __slots__ = ("state", "next_seq")

    def __init__(self) -> None:
        self.state = 0
        self.next_seq = 0


class OooDpiNf(NetworkFunction):
    """Cross-packet DPI that tolerates sprayed (reordered) arrivals."""

    name = "dpi_ooo"

    def __init__(self, patterns, max_buffered_segments: int = 256):
        if max_buffered_segments < 1:
            raise ValueError(
                f"max_buffered_segments must be >= 1, got {max_buffered_segments}"
            )
        self.automaton = AhoCorasick(patterns)
        self.max_buffered_segments = max_buffered_segments
        self.matches: List[Tuple[FiveTuple, int]] = []
        self.segments_scanned = 0
        self.buffer_overflows = 0
        #: Shared staging area the designated core drains from. Each
        #: (flow, seq) is written once by one core and consumed once by
        #: the designated core — a hand-off, not contended state.
        self._staging: Dict[FiveTuple, Dict[int, bytes]] = {}

    # -- helpers ------------------------------------------------------------

    def _entry_for(self, flow: FiveTuple, ctx: NfContext) -> Optional[_DpiFlowEntry]:
        return ctx.get_flow(flow)

    def _stage(self, packet: Packet, ctx: NfContext) -> None:
        """Buffer a payload segment for later in-order scanning."""
        flow = packet.five_tuple
        buffered = self._staging.setdefault(flow, {})
        if len(buffered) >= self.max_buffered_segments:
            # O3FA's memory bound: scan this segment immediately from
            # the root (cross-packet context lost for it) and count it.
            self.buffer_overflows += 1
            self._scan_bytes(flow, 0, packet, ctx)
            return
        payload = packet.payload if packet.payload is not None else b""
        buffered[packet.seq] = payload
        # The hand-off write is core-local (shard semantics).
        ctx.write_global(("dpi_staging", flow, ctx.core_id), relaxed=True)

    def _scan_bytes(self, flow: FiveTuple, state: int, packet: Packet,
                    ctx: NfContext) -> int:
        ctx.consume_cycles(CYCLES_PER_SCANNED_BYTE * packet.payload_len)
        self.segments_scanned += 1
        if packet.payload:
            state, found = self.automaton.scan(state, packet.payload)
            for _offset, _index in found:
                self.matches.append((flow, _index))
        return state

    def _drain(self, flow: FiveTuple, ctx: NfContext) -> None:
        """Run the contiguous prefix through the automaton.

        Only legal on the designated core (it writes the flow entry);
        the engine guarantees connection packets run there.
        """
        entry = ctx.get_local_flow(flow)
        if entry is None:
            return
        buffered = self._staging.get(flow)
        if not buffered:
            return
        while entry.next_seq in buffered:
            payload = buffered.pop(entry.next_seq)
            ctx.consume_cycles(CYCLES_PER_SCANNED_BYTE * len(payload))
            self.segments_scanned += 1
            if payload:
                entry.state, found = self.automaton.scan(entry.state, payload)
                for _offset, index in found:
                    self.matches.append((flow, index))
            entry.next_seq += 1

    # -- handlers ------------------------------------------------------------

    def connection_packets(self, packets: List[Packet], ctx: NfContext) -> None:
        for packet in packets:
            flow = packet.five_tuple
            flags = packet.flags
            if flags & SYN and not flags & ACK:
                if ctx.get_local_flow(flow) is None:
                    ctx.insert_local_flow(flow, _DpiFlowEntry())
                    ctx.insert_local_flow(flow.reversed(), _DpiFlowEntry())
            # Every connection event is a drain opportunity on the
            # designated core (SYN-ACK, FIN, RST included).
            if ctx.get_local_flow(flow) is not None:
                self._drain(flow, ctx)
            if flags & (FIN | RST):
                self._drain(flow, ctx)
                self._staging.pop(flow, None)

    def regular_packets(self, packets: List[Packet], ctx: NfContext) -> None:
        for packet in packets:
            if packet.payload_len == 0 and not packet.payload:
                continue
            flow = packet.five_tuple
            entry = self._entry_for(flow, ctx)
            if entry is None:
                continue  # untracked flow
            self._stage(packet, ctx)
            # If this core *is* the designated core, it may drain now.
            if ctx.designated_core(flow) == ctx.core_id:
                self._drain(flow, ctx)

    # -- maintenance -----------------------------------------------------------

    def pending_segments(self, flow: FiveTuple) -> int:
        """Segments buffered but not yet scanned (diagnostics)."""
        return len(self._staging.get(flow, ()))
