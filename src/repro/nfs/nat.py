"""The paper's sample NF: a NAT (Figure 5).

State, per Table 1: a **flow map** (per-flow; read per packet, written
at flow events) and a **pool of IPs/ports** (global; written at flow
events only).

Faithful to the listing: only the *first SYN* of a connection allocates
a port and installs the translation — for both directions at once,
which is only possible because the symmetric designated-core hash
guarantees this core sees the reverse direction's packets' lookups —
and everything after (including the SYN-ACK) is handled by the regular
path: look up the translation, rewrite the header, forward. No
translation found → drop.

Beyond the listing (which "omits flow removal logic"), this
implementation removes translations and releases ports on RST and on
the second FIN.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Set

from repro.core.nf import NetworkFunction, NfContext
from repro.net.five_tuple import FiveTuple
from repro.net.packet import Packet
from repro.net.tcp_flags import ACK, FIN, RST, SYN


class PortPool:
    """The global pool of external (ip, port) pairs.

    A single shared structure — every allocation/release is a flow-event
    (not per-packet) operation, so the lock the caller pays for is off
    the critical path, exactly the paper's point.
    """

    def __init__(self, external_ip: int, first_port: int = 1024, last_port: int = 65535):
        if not 0 <= first_port <= last_port <= 65535:
            raise ValueError(f"bad port range [{first_port}, {last_port}]")
        self.external_ip = external_ip
        self._free: Deque[int] = deque(range(first_port, last_port + 1))
        self._used: Set[int] = set()

    def __len__(self) -> int:
        return len(self._free)

    def allocate(self) -> Optional[int]:
        if not self._free:
            return None
        port = self._free.popleft()
        self._used.add(port)
        return port

    def allocate_matching(self, predicate, max_tries: int = 256) -> Optional[int]:
        """Allocate a port for which ``predicate(port)`` holds.

        Figure 5's line 24-25 ("we also include the other side") only
        works if the *translated* reverse tuple hashes to the same
        designated core as the original flow — so the NAT must pick its
        external port accordingly, the way affinity-preserving NATs do.
        With ``C`` cores a uniform hash accepts a port with probability
        1/C, so a handful of tries suffice. Rejected ports go back.
        """
        rejected = []
        chosen = None
        for _ in range(min(max_tries, len(self._free))):
            port = self.allocate()
            if port is None:
                break
            if predicate(port):
                chosen = port
                break
            rejected.append(port)
        for port in rejected:
            self.release(port)
        return chosen

    def release(self, port: int) -> None:
        if port not in self._used:
            raise ValueError(f"releasing port {port} that was not allocated")
        self._used.remove(port)
        self._free.append(port)


class _Translation:
    """A flow-map entry: how to rewrite packets of one direction."""

    __slots__ = ("rewritten", "fin_seen", "peer")

    def __init__(self, rewritten: FiveTuple, peer: FiveTuple):
        self.rewritten = rewritten
        self.peer = peer  # the entry key of the opposite direction
        self.fin_seen = False


class NatNf(NetworkFunction):
    """Source NAT for TCP, after the paper's Figure 5."""

    name = "nat"

    def __init__(self, external_ip: int, first_port: int = 1024, last_port: int = 65535):
        self.pool = PortPool(external_ip, first_port, last_port)
        self.translations_active = 0
        self.drops_no_port = 0
        self.drops_no_translation = 0

    # -- connection path (Figure 5, connection_packets) -------------------

    def connection_packets(self, packets: List[Packet], ctx: NfContext) -> None:
        for packet in packets:
            flags = packet.flags
            if flags & SYN and not flags & ACK:
                self._open(packet, ctx)
            elif flags & RST:
                self._handle_rst(packet, ctx)
            elif flags & FIN:
                self._handle_fin(packet, ctx)
            else:
                # e.g. SYN-ACK: "NAT then treats all the packets that
                # come after (including SYN-ACK) as regular packets."
                self.regular_packets([packet], ctx)

    def _open(self, packet: Packet, ctx: NfContext) -> None:
        flow_id = packet.five_tuple
        existing = ctx.get_local_flow(flow_id)
        if existing is not None:
            # SYN retransmission: reuse the installed translation.
            ctx.update_header(packet, existing.rewritten)
            return
        # Select a port from the global pool (lock: flow-event only).
        # The port must keep the translated reverse direction on this
        # same designated core (see PortPool.allocate_matching).
        ctx.write_global("nat_port_pool")

        def preserves_affinity(port: int) -> bool:
            ctx.consume_cycles(20)  # one hash evaluation per candidate
            candidate = FiveTuple(
                flow_id.dst_ip, self.pool.external_ip,
                flow_id.dst_port, port, flow_id.protocol,
            )
            return ctx.designated_core(candidate) == ctx.core_id

        port = self.pool.allocate_matching(preserves_affinity)
        if port is None:
            self.drops_no_port += 1
            ctx.drop(packet)
            return
        translated = FiveTuple(
            self.pool.external_ip, flow_id.dst_ip, port, flow_id.dst_port, flow_id.protocol
        )
        reverse_key = translated.reversed()
        outbound = _Translation(rewritten=translated, peer=reverse_key)
        inbound = _Translation(rewritten=flow_id.reversed(), peer=flow_id)
        ctx.insert_local_flow(flow_id, outbound)
        ctx.insert_local_flow(reverse_key, inbound)
        self.translations_active += 1
        ctx.update_header(packet, translated)

    def _handle_rst(self, packet: Packet, ctx: NfContext) -> None:
        # Capture the lookup key before update_header rewrites the packet.
        flow_id = packet.five_tuple
        entry = ctx.get_local_flow(flow_id)
        if entry is None:
            self.drops_no_translation += 1
            ctx.drop(packet)
            return
        ctx.update_header(packet, entry.rewritten)
        self._teardown(flow_id, entry, ctx)

    def _handle_fin(self, packet: Packet, ctx: NfContext) -> None:
        flow_id = packet.five_tuple
        entry = ctx.get_local_flow(flow_id)
        if entry is None:
            self.drops_no_translation += 1
            ctx.drop(packet)
            return
        ctx.update_header(packet, entry.rewritten)
        entry.fin_seen = True
        peer = ctx.get_local_flow(entry.peer)
        if peer is not None and peer.fin_seen:
            self._teardown(flow_id, entry, ctx)

    def _teardown(self, flow_id: FiveTuple, entry: _Translation, ctx: NfContext) -> None:
        ctx.remove_local_flow(flow_id)
        ctx.remove_local_flow(entry.peer)
        ctx.write_global("nat_port_pool")
        # The external port is the source port of the outbound rewrite,
        # or the destination port of the inbound key.
        if entry.rewritten.src_ip == self.pool.external_ip:
            self.pool.release(entry.rewritten.src_port)
        else:
            self.pool.release(flow_id.dst_port)
        self.translations_active -= 1

    # -- regular path (Figure 5, regular_packets) --------------------------

    def regular_packets(self, packets: List[Packet], ctx: NfContext) -> None:
        entries = ctx.get_flows([packet.five_tuple for packet in packets])
        for packet, entry in zip(packets, entries):
            if entry is None:
                self.drops_no_translation += 1
                ctx.drop(packet)
                continue
            ctx.update_header(packet, entry.rewritten)
