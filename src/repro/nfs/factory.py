"""One place that knows how to instantiate every registered NF.

The Table 1 bench, the chain planner's runtime audit, and the figP
experiment all need "an instance of the NF behind registry key X" with
sensible defaults; before this module each grew its own copy.

Load-balanced traffic must target :data:`VIP` (anything else is dropped
as not-VIP), and NAT rewrites toward :data:`EXTERNAL_IP` — both exported
so traffic builders can construct matching flows.
"""

from __future__ import annotations

from repro.nfs.dpi import DpiNf
from repro.nfs.dpi_ooo import OooDpiNf
from repro.nfs.firewall import AclRule, FirewallNf
from repro.nfs.load_balancer import LoadBalancerNf
from repro.nfs.nat import NatNf
from repro.nfs.redundancy import RedundancyEliminationNf
from repro.nfs.synthetic import SyntheticNf
from repro.nfs.traffic_monitor import TrafficMonitorNf
from repro.trafficgen.flows import SERVER_NET

#: The load balancer's virtual IP (inside the server net, so generated
#: server-bound flows can be retargeted onto it).
VIP = SERVER_NET | 0x0101
#: The NAT's external address.
EXTERNAL_IP = 0x0B000001

#: Default signature set for the DPI variants.
DPI_PATTERNS = (b"attack", b"malware")


def make_nf(key: str, **overrides):
    """Instantiate the implementation behind a registry key.

    ``overrides`` are forwarded to the NF constructor (e.g.
    ``make_nf("synthetic", busy_cycles=500)``).
    """
    if key == "nat":
        overrides.setdefault("external_ip", EXTERNAL_IP)
        return NatNf(**overrides)
    if key == "firewall":
        overrides.setdefault("acl", [AclRule(action="permit")])
        return FirewallNf(**overrides)
    if key == "load_balancer":
        overrides.setdefault("vip", VIP)
        overrides.setdefault("backends", [SERVER_NET | 0x10, SERVER_NET | 0x11])
        return LoadBalancerNf(**overrides)
    if key == "traffic_monitor":
        return TrafficMonitorNf(**overrides)
    if key == "redundancy_elimination":
        return RedundancyEliminationNf(**overrides)
    if key == "dpi":
        overrides.setdefault("patterns", DPI_PATTERNS)
        return DpiNf(**overrides)
    if key == "dpi_ooo":
        overrides.setdefault("patterns", DPI_PATTERNS)
        return OooDpiNf(**overrides)
    if key == "synthetic":
        return SyntheticNf(**overrides)
    raise ValueError(f"no implementation for {key!r}")
