"""The synthetic NF of the paper's evaluation (§5).

"This NF creates a new entry in the flow table at every new connection.
Moreover, for every packet it receives, it retrieves the flow state,
modifies the header, and busy loops for a given number of cycles."

The busy-loop budget is the experiments' sweep parameter (0..10,000
cycles — 10,000 being the maximum per-packet cost among the NFs
surveyed by ResQ [42]). The footnote's claim that this is representative
("a firewall, for example, would lookup the flow state and go through
an ACL") is what the real NFs in this package exist to check.
"""

from __future__ import annotations

from typing import Any, List

from repro.core.nf import NetworkFunction, NfContext
from repro.net.packet import Packet
from repro.net.tcp_flags import ACK, SYN


class SyntheticNf(NetworkFunction):
    """Parameterized stand-in for NFs of arbitrary complexity."""

    name = "synthetic"
    #: The regular path is already vectorized over the burst (one
    #: batched flow lookup, one aggregate cycle charge), so the batch
    #: API is a straight alias — byte-identical cycle totals either way.
    batch_capable = True

    def __init__(self, busy_cycles: int = 0):
        if busy_cycles < 0:
            raise ValueError(f"busy_cycles must be non-negative, got {busy_cycles}")
        self.busy_cycles = busy_cycles
        self.connections_seen = 0

    def connection_packets(self, packets: List[Packet], ctx: NfContext) -> None:
        for packet in packets:
            flags = packet.flags
            if flags & SYN and not flags & ACK:
                # First SYN of a connection: create state for both
                # directions (the designated core is the same for both,
                # thanks to the symmetric hash).
                flow = packet.five_tuple
                if ctx.get_local_flow(flow) is None:
                    ctx.insert_local_flow(flow, {"packets": 0})
                    ctx.insert_local_flow(flow.reversed(), {"packets": 0})
                    self.connections_seen += 1
            else:
                # FIN/RST/SYN-ACK: the per-packet state retrieval the
                # synthetic NF performs for every packet it receives.
                ctx.get_flow(packet.five_tuple)
            self._touch(packet, ctx)

    def regular_packets(self, packets: List[Packet], ctx: NfContext) -> None:
        # The batched lookup is the paper's optimized get_flow variant;
        # ctx.get_flows and ctx.consume_cycles are unrolled (two frames
        # per batch on the hottest path in the simulator). The charge
        # stays two separate += so the float accumulation order matches
        # the unfused pair bit for bit; the per-packet cost is a
        # constant int, so one batched charge equals the _touch loop.
        engine = ctx.engine
        _entries, cycles = engine.flow_state.get_many(
            ctx.core_id, [packet.five_tuple for packet in packets]
        )
        ctx._cycles += cycles
        ctx._cycles += (engine.costs.header_update + self.busy_cycles) * len(packets)

    def process_batch(self, packets: List[Packet], ctx: NfContext) -> None:
        # Dynamic dispatch on purpose: subclasses that override
        # regular_packets (e.g. test doubles) keep their behaviour on
        # the batch spine.
        self.regular_packets(packets, ctx)

    def _touch(self, packet: Packet, ctx: NfContext) -> None:
        ctx.consume_cycles(ctx.engine.costs.header_update)
        if self.busy_cycles:
            ctx.consume_cycles(self.busy_cycles)
