"""Named metrics: counters, gauges, and log-bucketed histograms.

The registry is the flat namespace every component publishes into.
Two flavours of metric coexist:

- *Push* metrics (:class:`Counter`, :class:`Gauge`, :class:`Histogram`)
  are incremented/observed directly on the hot path. They are plain
  attribute updates — cheap enough to stay on by default.
- *Pull* metrics (:meth:`Registry.bind`) wrap a zero-argument callable
  and read it lazily at dump time. The dataplane keeps its existing
  ``@dataclass`` stat structs (``NicStats``, ``CoreStats``,
  ``EngineStats``) as the hot-path storage, and the registry exposes
  them under stable names without adding a single cycle per packet.

Histograms use power-of-two buckets (``bit_length`` of the integer
value), the classic scheme of DPDK/HdrHistogram-style telemetry: O(1)
observation, bounded memory, and relative precision that matches how
latency and batch-size distributions are actually read.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Union


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A point-in-time value that may go up or down."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, delta: float) -> None:
        self.value += delta


class BoundMetric:
    """A pull-mode metric: its value is read from a callable at dump time."""

    __slots__ = ("name", "fn")

    def __init__(self, name: str, fn: Callable[[], Union[int, float]]):
        self.name = name
        self.fn = fn

    @property
    def value(self) -> Union[int, float]:
        return self.fn()


class Histogram:
    """A log2-bucketed histogram of non-negative values.

    Bucket ``i`` holds values whose integer part has ``bit_length == i``,
    i.e. the range ``[2**(i-1), 2**i - 1]`` (bucket 0 holds exactly 0).
    """

    __slots__ = ("name", "count", "total", "min", "max", "buckets")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.buckets: List[int] = []

    def observe(self, value: float) -> None:
        if value < 0:
            raise ValueError(f"histogram {self.name!r} observed negative {value}")
        index = int(value).bit_length()
        buckets = self.buckets
        if index >= len(buckets):
            buckets.extend([0] * (index + 1 - len(buckets)))
        buckets[index] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def bucket_bounds(self) -> List[int]:
        """Inclusive upper bound of each occupied bucket (0, 1, 3, 7, ...)."""
        return [(1 << i) - 1 for i in range(len(self.buckets))]

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "buckets": [
                [bound, count]
                for bound, count in zip(self.bucket_bounds(), self.buckets)
            ],
        }


class Registry:
    """Get-or-create store of named metrics with a deterministic dump."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Any] = {}

    def _get_or_create(self, name: str, cls):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, not {cls.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get_or_create(name, Histogram)

    def bind(self, name: str, fn: Callable[[], Union[int, float]]) -> BoundMetric:
        """Register a pull-mode metric read from ``fn()`` at dump time."""
        if name in self._metrics:
            raise ValueError(f"metric {name!r} already registered")
        metric = BoundMetric(name, fn)
        self._metrics[name] = metric
        return metric

    def get(self, name: str) -> Optional[Any]:
        return self._metrics.get(name)

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def dump(self) -> Dict[str, Any]:
        """All metric values keyed by name, sorted for determinism."""
        out: Dict[str, Any] = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, Histogram):
                out[name] = metric.to_dict()
            else:
                out[name] = metric.value
        return out
