"""Zero-dependency telemetry: counters, histograms, sampling, tracing.

See README.md § Telemetry for the registry name map and knobs.
"""

from repro.telemetry.hub import EngineTelemetry
from repro.telemetry.registry import BoundMetric, Counter, Gauge, Histogram, Registry
from repro.telemetry.sampler import EngineSampler
from repro.telemetry.trace import EventTracer

__all__ = [
    "BoundMetric",
    "Counter",
    "EngineSampler",
    "EngineTelemetry",
    "EventTracer",
    "Gauge",
    "Histogram",
    "Registry",
]
