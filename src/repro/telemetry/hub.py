"""Engine-facing telemetry facade.

:class:`EngineTelemetry` owns the three telemetry pieces — the metric
:class:`~repro.telemetry.registry.Registry`, the periodic
:class:`~repro.telemetry.sampler.EngineSampler`, and the optional
:class:`~repro.telemetry.trace.EventTracer` — and does the wiring:
pull-mode registry bindings over the dataplane's existing stat structs
(zero hot-path cost), the per-batch size histogram, and the NIC/ring
drop trace hooks.

Registry names (documented in README.md § Telemetry):

==========================  ===============================================
``rx.packets``              packets presented to the NIC
``rx.dropped.queue_full``   tail drops on full rx queues
``rx.dropped.fd_cap``       drops from the Flow Director rate cap
``rx.dropped.fault``        drops on fault-disabled queues (dead/paused)
``nic.fd_matched``          packets classified by a Flow Director rule
``nic.rss_fallback``        packets classified by RSS
``tx.forwarded``            packets forwarded out of the middlebox
``nf.drops``                packets dropped by the NF's verdict
``engine.connection_packets`` connection packets seen by classification
``ring.transfers``          descriptors moved to a designated core's ring
``ring.drops``              descriptors lost to a full transfer ring
``engine.fault_drops``      packets flushed/lost to core crashes
``flow.entries``            current flow-table population (gauge)
``core.batch_size``         per-batch packet count (histogram)
``scr.log.appends``         connection packets appended to the SCR log
``scr.log.truncated``       SCR log entries dropped by truncation
``scr.log.depth``           SCR log entries currently retained (gauge)
``scr.log.flows``           flows with an SCR history log (gauge)
``scr.replay.packets``      logged packets replayed onto replicas
``scr.replay.verdicts``     recorded verdicts applied to real packets
==========================  ===============================================

The ``scr.*`` family exists only under the ``scr`` steering policy
(state-compute replication); other policies have no log to measure.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.net.packet import Packet
from repro.telemetry.registry import Registry
from repro.telemetry.sampler import EngineSampler
from repro.telemetry.trace import EventTracer


class EngineTelemetry:
    """All telemetry for one :class:`~repro.core.engine.MiddleboxEngine`."""

    def __init__(self, engine: Any):
        config = engine.config
        self.engine = engine
        self.registry = Registry()
        interval = config.telemetry_sample_interval
        self.sampler: Optional[EngineSampler] = (
            EngineSampler(engine, interval) if interval else None
        )
        self.tracer: Optional[EventTracer] = (
            EventTracer(max_events=config.telemetry_trace_limit)
            if config.telemetry_trace
            else None
        )
        self._bind(engine)

    def _bind(self, engine: Any) -> None:
        registry = self.registry
        nic_stats = engine.nic.stats
        stats = engine.stats
        registry.bind("rx.packets", lambda: nic_stats.rx_packets)
        registry.bind("rx.dropped.queue_full", lambda: nic_stats.rx_dropped_queue_full)
        registry.bind("rx.dropped.fd_cap", lambda: nic_stats.rx_dropped_fd_cap)
        registry.bind("rx.dropped.fault", lambda: nic_stats.rx_dropped_fault)
        registry.bind("nic.fd_matched", lambda: nic_stats.fd_matched)
        registry.bind("nic.rss_fallback", lambda: nic_stats.rss_fallback)
        registry.bind("tx.forwarded", lambda: stats.packets_forwarded)
        registry.bind("nf.drops", lambda: stats.packets_dropped_nf)
        registry.bind("engine.connection_packets", lambda: stats.connection_packets)
        registry.bind("ring.transfers", lambda: stats.transfers)
        registry.bind("ring.drops", lambda: stats.ring_drops)
        registry.bind("engine.fault_drops", lambda: stats.fault_drops)
        registry.bind("flow.entries", engine.flow_state.total_entries)
        scr = getattr(engine, "_scr", None)
        if scr is not None:
            registry.bind("scr.log.appends", lambda: scr.log_appends)
            registry.bind("scr.log.truncated", lambda: scr.truncated_entries)
            registry.bind("scr.log.depth", scr.log_depth)
            registry.bind("scr.log.flows", scr.log_flows)
            registry.bind("scr.replay.packets", lambda: scr.replayed_packets)
            registry.bind("scr.replay.verdicts", lambda: scr.verdicts_applied)

        batch_hist = registry.histogram("core.batch_size")
        tracer = self.tracer
        for core in engine.host.cores:
            core.batch_size_hist = batch_hist
            if tracer is not None:
                core.trace_batch = self._trace_batch
                tracer.thread_name(core.core_id, f"core {core.core_id}")
        if tracer is not None:
            engine.nic.on_drop = self._trace_nic_drop

    # -- hot-path hooks (only installed when tracing is on) ----------------

    def _trace_batch(
        self, core_id: int, start_ps: int, duration_ps: int, foreign: int, local: int
    ) -> None:
        self.tracer.complete(
            "batch", core_id, start_ps, duration_ps, foreign=foreign, local=local
        )

    def _trace_nic_drop(self, kind: str, packet: Packet, now: int) -> None:
        queue = getattr(packet, "rx_queue", None)
        self.tracer.instant(f"rx_drop_{kind}", queue if queue is not None else -1, now)

    def trace_transfer(self, dst_core: int, packet: Packet, now: int) -> None:
        self.tracer.instant("ring_transfer", dst_core, now)

    def trace_ring_drop(self, dst_core: int, packet: Packet, now: int) -> None:
        self.tracer.instant("ring_drop", dst_core, now)

    # -- lifecycle ---------------------------------------------------------

    def notify_activity(self) -> None:
        """Called by the engine on ingress; (re-)arms the sample timer."""
        sampler = self.sampler
        if sampler is not None:
            sampler.notify_activity()

    # -- export ------------------------------------------------------------

    def _settle(self) -> None:
        # On the batch spine, staged arrivals must be applied to the
        # stat structs before any export reads them.
        settle = getattr(self.engine, "_settle_hook", None)
        if settle is not None:
            settle()

    def counters(self) -> Dict[str, Any]:
        """Flat name -> value dict of every registered metric."""
        self._settle()
        return self.registry.dump()

    def dump(self) -> Dict[str, Any]:
        """The plain dict export: counters, time series, and trace events."""
        self._settle()
        sampler = self.sampler
        tracer = self.tracer
        return {
            "counters": self.registry.dump(),
            "sample_interval_ps": sampler.interval_ps if sampler else 0,
            "series": list(sampler.series) if sampler else [],
            "trace": tracer.to_dicts() if tracer else [],
            "trace_dropped_events": tracer.dropped_events if tracer else 0,
        }

    def chrome_trace(self) -> Dict[str, Any]:
        """A Chrome ``trace_event`` JSON object (empty if tracing is off)."""
        if self.tracer is None:
            return {"traceEvents": [], "displayTimeUnit": "ms"}
        return self.tracer.to_chrome_trace()
