"""Event tracing in Chrome ``trace_event`` format.

The tracer records core-batch, transfer, and drop events as plain dicts
that already follow the Chrome trace-event schema (``name``/``ph``/
``ts``/``pid``/``tid``), so the same list serves as both the "plain
dict dump" and the payload of a ``chrome://tracing`` /
https://ui.perfetto.dev file. Timestamps are converted from simulator
picoseconds to the microseconds the format expects.

Tracing every batch is too heavy to be on by default; the engine only
wires the tracer when ``MiddleboxConfig.telemetry_trace`` is set. A
hard event cap bounds memory on long runs — once hit, further events
are counted, not stored.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.sim.timeunits import MICROSECOND


def _ps_to_us(time_ps: int) -> float:
    return time_ps / MICROSECOND


class EventTracer:
    """Bounded recorder of Chrome trace events."""

    def __init__(self, pid: int = 0, max_events: int = 100_000):
        if max_events < 1:
            raise ValueError(f"max_events must be >= 1, got {max_events}")
        self.pid = pid
        self.max_events = max_events
        self.events: List[Dict[str, Any]] = []
        #: Events not recorded because the cap was reached.
        self.dropped_events = 0

    def _record(self, event: Dict[str, Any]) -> None:
        if len(self.events) >= self.max_events:
            self.dropped_events += 1
            return
        self.events.append(event)

    def complete(
        self, name: str, tid: int, start_ps: int, duration_ps: int, **args: Any
    ) -> None:
        """A duration ("X") event, e.g. one core batch."""
        event = {
            "name": name,
            "ph": "X",
            "ts": _ps_to_us(start_ps),
            "dur": _ps_to_us(duration_ps),
            "pid": self.pid,
            "tid": tid,
        }
        if args:
            event["args"] = args
        self._record(event)

    def instant(self, name: str, tid: int, ts_ps: int, **args: Any) -> None:
        """A point-in-time ("i") event, e.g. a drop or a ring transfer."""
        event = {
            "name": name,
            "ph": "i",
            "s": "t",
            "ts": _ps_to_us(ts_ps),
            "pid": self.pid,
            "tid": tid,
        }
        if args:
            event["args"] = args
        self._record(event)

    def thread_name(self, tid: int, name: str) -> None:
        """Metadata ("M") event labelling a tid in trace viewers."""
        self._record(
            {
                "name": "thread_name",
                "ph": "M",
                "ts": 0,
                "pid": self.pid,
                "tid": tid,
                "args": {"name": name},
            }
        )

    def to_dicts(self) -> List[Dict[str, Any]]:
        """The plain dict dump: a copy of the recorded event list."""
        return list(self.events)

    def to_chrome_trace(self) -> Dict[str, Any]:
        """A loadable Chrome ``trace_event`` JSON object."""
        return {
            "traceEvents": self.to_dicts(),
            "displayTimeUnit": "ms",
            "otherData": {"dropped_events": self.dropped_events},
        }
