"""Periodic per-core/per-queue sampling on the simulator clock.

Every ``interval_ps`` the sampler snapshots each core's cumulative
counters, its rx queue and transfer ring occupancy, and the flow-table
population, producing the time series the paper's per-core figures
(load imbalance, queue overflow, ring pressure) are made of. Instant
rx/tx rates are derived from deltas between consecutive snapshots.

Quiescence: a naive repeating timer would keep the event heap non-empty
forever and break ``sim.run()``-until-drain callers. The sampler
instead disarms itself when its tick finds no other live events, and is
re-armed by the engine on the next ingress packet
(:meth:`notify_activity`) — so drains still terminate and sampling
covers exactly the busy periods.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional


class EngineSampler:
    """Samples one :class:`~repro.core.engine.MiddleboxEngine` periodically."""

    def __init__(self, engine: Any, interval_ps: int):
        if interval_ps < 1:
            raise ValueError(f"interval_ps must be >= 1, got {interval_ps}")
        self.engine = engine
        self.sim = engine.sim
        self.interval_ps = interval_ps
        #: Called at tick entry, before the snapshot is taken. The batch
        #: spine hooks this to settle staged arrivals whose scalar
        #: events would have fired before the tick.
        self.pre_sample: Optional[Callable[[], None]] = None
        #: Extra liveness probe ORed into the quiescence check below:
        #: the batch spine defers egress deliveries off the heap, so a
        #: tick must keep re-arming while a deferred delivery's scalar
        #: event would still have been pending (``Link.has_undelivered``).
        self.extra_live: Optional[Callable[[], bool]] = None
        #: The recorded time series, one snapshot dict per tick.
        self.series: List[Dict[str, Any]] = []
        self._armed = False
        self._stopped = False
        self._prev_t: Optional[int] = None
        self._prev_rx: List[int] = []
        self._prev_tx: List[int] = []

    # -- lifecycle ---------------------------------------------------------

    def notify_activity(self) -> None:
        """Arm the sample timer (no-op when already armed or stopped)."""
        if self._armed or self._stopped:
            return
        self._armed = True
        # Baseline for the first rate computation.
        self._prev_t = self.sim.now
        self._prev_rx = [q.enqueued for q in self.engine.nic.queues]
        self._prev_tx = [c.stats.packets_forwarded for c in self.engine.host.cores]
        self.sim.after(self.interval_ps, self._tick)

    def stop(self) -> None:
        """Permanently stop sampling (existing series is kept)."""
        self._stopped = True

    def _tick(self) -> None:
        if self._stopped:
            self._armed = False
            return
        pre_sample = self.pre_sample
        if pre_sample is not None:
            pre_sample()
        self.sample()
        # Keep ticking only while the rest of the simulation is alive;
        # otherwise disarm so drain-style runs can terminate.
        extra_live = self.extra_live
        if self.sim.has_live_events() or (extra_live is not None and extra_live()):
            self.sim.after(self.interval_ps, self._tick)
        else:
            self._armed = False

    # -- sampling ----------------------------------------------------------

    def sample(self) -> Dict[str, Any]:
        """Take one snapshot now and append it to the series."""
        engine = self.engine
        now = self.sim.now
        queues = engine.nic.queues
        rings = engine.rings
        cores = engine.host.cores
        elapsed = now - self._prev_t if self._prev_t is not None else 0

        per_core: List[Dict[str, Any]] = []
        for i, core in enumerate(cores):
            queue = queues[i] if i < len(queues) else None
            ring = rings[i] if i < len(rings) else None
            stats = core.stats
            entry: Dict[str, Any] = {
                "core": i,
                "batches": stats.batches,
                "handled": stats.packets_handled,
                "forwarded": stats.packets_forwarded,
                "transferred": stats.packets_transferred,
                "foreign": stats.foreign_handled,
                "busy_cycles": stats.busy_cycles,
                "busy_time_ps": stats.busy_time_ps,
            }
            if queue is not None:
                entry["rx_depth"] = len(queue)
                entry["rx_peak_depth"] = queue.peak_depth
                entry["rx_enqueued"] = queue.enqueued
                entry["rx_dropped"] = queue.dropped
            if ring is not None:
                entry["ring_depth"] = len(ring)
                entry["ring_peak_depth"] = ring.peak_depth
                entry["ring_enqueued"] = ring.enqueued
                entry["ring_dropped"] = ring.dropped
            if elapsed > 0 and queue is not None:
                rx_delta = queue.enqueued - (
                    self._prev_rx[i] if i < len(self._prev_rx) else 0
                )
                tx_delta = stats.packets_forwarded - (
                    self._prev_tx[i] if i < len(self._prev_tx) else 0
                )
                seconds = elapsed / 1e12
                entry["rx_pps"] = rx_delta / seconds
                entry["tx_pps"] = tx_delta / seconds
            per_core.append(entry)

        snapshot: Dict[str, Any] = {
            "t_ps": now,
            "flow_entries": engine.flow_state.total_entries(),
            "flow_entries_per_core": engine.flow_state.per_core_entries(),
            "cores": per_core,
        }
        self.series.append(snapshot)
        self._prev_t = now
        self._prev_rx = [q.enqueued for q in queues]
        self._prev_tx = [c.stats.packets_forwarded for c in cores]
        return snapshot
