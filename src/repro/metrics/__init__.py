"""Measurement utilities: fairness, latency percentiles, rates, CDFs."""

from repro.metrics.cdf import empirical_cdf, quantile
from repro.metrics.fairness import jain_index
from repro.metrics.latency import LatencyRecorder
from repro.metrics.reordering import ReorderingTracker
from repro.metrics.throughput import RateMeter, gbps, mpps

__all__ = [
    "jain_index",
    "LatencyRecorder",
    "RateMeter",
    "mpps",
    "gbps",
    "empirical_cdf",
    "quantile",
    "ReorderingTracker",
]
