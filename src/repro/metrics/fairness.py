"""Jain's fairness index (Jain, Chiu, Hawe 1984) — the paper's Figure 9 metric."""

from __future__ import annotations

from typing import Iterable


def jain_index(values: Iterable[float]) -> float:
    """``(sum x)^2 / (n * sum x^2)``; 1.0 = perfectly fair.

    An all-zero allocation is vacuously fair (returns 1.0). Negative
    allocations are rejected — they have no fairness interpretation.
    """
    xs = list(values)
    if not xs:
        raise ValueError("jain_index needs at least one value")
    if any(x < 0 for x in xs):
        raise ValueError("jain_index is undefined for negative values")
    total = sum(xs)
    denominator = len(xs) * sum(x * x for x in xs)
    if total == 0 or denominator == 0:
        # All-zero (or subnormal values whose squares underflow to 0):
        # the allocation is degenerate, vacuously fair.
        return 1.0
    return min(1.0, total * total / denominator)
