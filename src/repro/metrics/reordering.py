"""Packet reordering measurement.

Quantifies what spraying does to a flow's packet order at the
middlebox egress — the phenomenon Figures 6b/7b are really about. The
tracker follows RFC 4737's spirit: a packet is *reordered* if it leaves
after some packet with a larger sequence number already left; the
*extent* is how many later packets overtook it.
"""

from __future__ import annotations

from typing import Dict, Hashable, List


class _FlowOrder:
    __slots__ = ("expected", "max_seen", "reordered", "extents")

    def __init__(self) -> None:
        self.expected = 0
        self.max_seen = -1
        self.reordered = 0
        self.extents: List[int] = []


class ReorderingTracker:
    """Counts reordered packets and their extents, per flow."""

    def __init__(self) -> None:
        self._flows: Dict[Hashable, _FlowOrder] = {}
        self.total_packets = 0

    def observe(self, flow_id: Hashable, seq: int) -> bool:
        """Feed one egress packet; returns True if it was reordered."""
        state = self._flows.setdefault(flow_id, _FlowOrder())
        self.total_packets += 1
        if seq < state.max_seen:
            state.reordered += 1
            state.extents.append(state.max_seen - seq)
            return True
        state.max_seen = seq
        return False

    @property
    def reordered_packets(self) -> int:
        return sum(state.reordered for state in self._flows.values())

    def reordering_rate(self) -> float:
        """Fraction of observed packets that were reordered."""
        if self.total_packets == 0:
            return 0.0
        return self.reordered_packets / self.total_packets

    def max_extent(self) -> int:
        """The worst displacement seen across all flows."""
        extents = [e for state in self._flows.values() for e in state.extents]
        return max(extents) if extents else 0

    def mean_extent(self) -> float:
        extents = [e for state in self._flows.values() for e in state.extents]
        if not extents:
            return 0.0
        return sum(extents) / len(extents)
