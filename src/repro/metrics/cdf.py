"""Empirical CDFs and quantiles (Figures 1, 2)."""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple


def quantile(sorted_values: Sequence[float], q: float) -> float:
    """The ``q``-quantile of an ascending-sorted sequence.

    Nearest-rank definition, which is what network-measurement papers
    (and this one's "99th percentile") conventionally report.
    """
    if not sorted_values:
        raise ValueError("quantile of an empty sequence")
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"q must be in [0, 1], got {q}")
    index = min(len(sorted_values) - 1, max(0, int(q * len(sorted_values))))
    return sorted_values[index]


def empirical_cdf(values: Iterable[float], points: int = 100) -> List[Tuple[float, float]]:
    """Down-sampled empirical CDF as ``(value, F(value))`` pairs."""
    data = sorted(values)
    if not data:
        return []
    n = len(data)
    step = max(1, n // points)
    curve = [(data[i], (i + 1) / n) for i in range(0, n, step)]
    if curve[-1][0] != data[-1]:
        curve.append((data[-1], 1.0))
    return curve
