"""Per-packet latency collection (Figure 8's p99 RTT)."""

from __future__ import annotations

from typing import Dict, List

from repro.metrics.cdf import quantile
from repro.sim.timeunits import to_microseconds


class LatencyRecorder:
    """Collects per-packet latencies (ps) and reports percentiles."""

    def __init__(self) -> None:
        self.samples: List[int] = []

    def record(self, latency_ps: int) -> None:
        if latency_ps < 0:
            raise ValueError(f"negative latency: {latency_ps}")
        self.samples.append(latency_ps)

    def __len__(self) -> int:
        return len(self.samples)

    def percentile_us(self, q: float) -> float:
        """The q-quantile in microseconds."""
        return to_microseconds(quantile(sorted(self.samples), q))

    def summary_us(self) -> Dict[str, float]:
        """Median / p99 / mean / max in microseconds."""
        if not self.samples:
            return {"count": 0}
        ordered = sorted(self.samples)
        return {
            "count": len(ordered),
            "mean": to_microseconds(sum(ordered) // len(ordered)),
            "p50": to_microseconds(quantile(ordered, 0.50)),
            "p99": to_microseconds(quantile(ordered, 0.99)),
            "max": to_microseconds(ordered[-1]),
        }
