"""Rate accounting: packets and bits over a measurement window."""

from __future__ import annotations

from repro.sim.timeunits import SECOND


def mpps(packets: int, window_ps: int) -> float:
    """Packets over a window, in millions of packets per second."""
    if window_ps <= 0:
        raise ValueError(f"window must be positive, got {window_ps}")
    return packets / (window_ps / SECOND) / 1e6


def gbps(bytes_count: int, window_ps: int) -> float:
    """Bytes over a window, in gigabits per second."""
    if window_ps <= 0:
        raise ValueError(f"window must be positive, got {window_ps}")
    return bytes_count * 8 / (window_ps / SECOND) / 1e9


class RateMeter:
    """Counts packets/bytes between ``open_window`` and ``close_window``."""

    def __init__(self) -> None:
        self.packets = 0
        self.bytes = 0
        self._window_open: int = -1
        self._window_close: int = -1
        self.measuring = False

    def open_window(self, now: int) -> None:
        self._window_open = now
        self.measuring = True
        self.packets = 0
        self.bytes = 0

    def close_window(self, now: int) -> None:
        if not self.measuring:
            raise RuntimeError("close_window without open_window")
        self._window_close = now
        self.measuring = False

    def record(self, frame_len: int) -> None:
        if self.measuring:
            self.packets += 1
            self.bytes += frame_len

    @property
    def window_ps(self) -> int:
        if self._window_open < 0 or self._window_close < 0:
            raise RuntimeError("measurement window not closed")
        return self._window_close - self._window_open

    @property
    def rate_mpps(self) -> float:
        return mpps(self.packets, self.window_ps)

    @property
    def rate_gbps(self) -> float:
        return gbps(self.bytes, self.window_ps)
