"""Receive-Side Scaling: the Toeplitz hash and indirection table.

This is the baseline the paper argues against: the NIC hashes the
four-tuple (source/destination IP and port) with the Toeplitz function,
indexes a 128-entry indirection table with the low bits, and delivers the
packet to the queue found there. All packets of a flow therefore share a
queue — which is precisely why a single flow can use only one core, and
why hash collisions make core load unfair.

Two standard keys are provided:

- :data:`DEFAULT_RSS_KEY` — the Microsoft verification-suite key used by
  most drivers.
- :data:`SYMMETRIC_RSS_KEY` — ``0x6d5a`` repeated, which makes the hash
  invariant under swapping (src ip, src port) with (dst ip, dst port);
  the paper configures this (citing Woo et al. [44]) so that upstream and
  downstream packets of a connection reach the same core.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.net.five_tuple import FiveTuple

#: Microsoft's RSS verification key (40 bytes), the de-facto default.
DEFAULT_RSS_KEY = bytes(
    [
        0x6D, 0x5A, 0x56, 0xDA, 0x25, 0x5B, 0x0E, 0xC2,
        0x41, 0x67, 0x25, 0x3D, 0x43, 0xA3, 0x8F, 0xB0,
        0xD0, 0xCA, 0x2B, 0xCB, 0xAE, 0x7B, 0x30, 0xB4,
        0x77, 0xCB, 0x2D, 0xA3, 0x80, 0x30, 0xF2, 0x0C,
        0x6A, 0x42, 0xB7, 0x3B, 0xBE, 0xAC, 0x01, 0xFA,
    ]
)

#: The symmetric key of Woo et al.: 0x6d5a repeated 20 times.
SYMMETRIC_RSS_KEY = bytes([0x6D, 0x5A] * 20)

#: 82599 RSS indirection table size.
INDIRECTION_TABLE_SIZE = 128


def toeplitz_hash(key: bytes, data: bytes) -> int:
    """The Toeplitz hash exactly as NICs compute it.

    For each input bit (MSB first), if the bit is set, XOR the current
    leftmost 32 bits of the (left-shifting) key into the result.
    """
    if len(key) * 8 < len(data) * 8 + 32:
        raise ValueError(
            f"key too short: {len(key)} bytes for {len(data)} bytes of input"
        )
    key_int = int.from_bytes(key, "big")
    key_bits = len(key) * 8
    result = 0
    for byte in data:
        for bit_index in range(7, -1, -1):
            if byte >> bit_index & 1:
                result ^= key_int >> (key_bits - 32)
            key_int = (key_int << 1) & ((1 << key_bits) - 1)
    return result & 0xFFFFFFFF


def rss_input_bytes(flow: FiveTuple) -> bytes:
    """The RSS hash input for IPv4 TCP/UDP: src ip, dst ip, src port, dst port."""
    return (
        flow.src_ip.to_bytes(4, "big")
        + flow.dst_ip.to_bytes(4, "big")
        + flow.src_port.to_bytes(2, "big")
        + flow.dst_port.to_bytes(2, "big")
    )


class RssHasher:
    """RSS hash + indirection table, with a per-flow result cache.

    The cache mirrors what happens in hardware (the hash is a pure
    function of the flow) while keeping the pure-Python bit loop off the
    per-packet path.
    """

    def __init__(
        self,
        num_queues: int,
        key: bytes = DEFAULT_RSS_KEY,
        table_size: int = INDIRECTION_TABLE_SIZE,
    ):
        if num_queues < 1:
            raise ValueError(f"num_queues must be >= 1, got {num_queues}")
        self.key = key
        self.num_queues = num_queues
        #: queue id per indirection-table slot, default round-robin fill.
        self.indirection_table: List[int] = [i % num_queues for i in range(table_size)]
        self._cache: dict = {}

    def hash(self, flow: FiveTuple) -> int:
        """32-bit Toeplitz hash of the flow's RSS input."""
        cached = self._cache.get(flow)
        if cached is None:
            cached = toeplitz_hash(self.key, rss_input_bytes(flow))
            self._cache[flow] = cached
        return cached

    def queue_for(self, flow: FiveTuple) -> int:
        """The rx queue RSS steers this flow to."""
        index = self.hash(flow) % len(self.indirection_table)
        return self.indirection_table[index]

    def set_indirection(self, table: Sequence[int]) -> None:
        """Install a custom indirection table (lengths must match)."""
        if len(table) != len(self.indirection_table):
            raise ValueError(
                f"indirection table must have {len(self.indirection_table)} entries"
            )
        bad = [q for q in table if not 0 <= q < self.num_queues]
        if bad:
            raise ValueError(f"queue ids out of range: {bad}")
        self.indirection_table = list(table)

    def is_symmetric(self) -> bool:
        """True if the configured key hashes both directions identically."""
        probe = FiveTuple(0x0A000001, 0x0A000002, 1234, 80, 6)
        return toeplitz_hash(self.key, rss_input_bytes(probe)) == toeplitz_hash(
            self.key, rss_input_bytes(probe.reversed())
        )
