"""Receive-Side Scaling: the Toeplitz hash and indirection table.

This is the baseline the paper argues against: the NIC hashes the
four-tuple (source/destination IP and port) with the Toeplitz function,
indexes a 128-entry indirection table with the low bits, and delivers the
packet to the queue found there. All packets of a flow therefore share a
queue — which is precisely why a single flow can use only one core, and
why hash collisions make core load unfair.

Two standard keys are provided:

- :data:`DEFAULT_RSS_KEY` — the Microsoft verification-suite key used by
  most drivers.
- :data:`SYMMETRIC_RSS_KEY` — ``0x6d5a`` repeated, which makes the hash
  invariant under swapping (src ip, src port) with (dst ip, dst port);
  the paper configures this (citing Woo et al. [44]) so that upstream and
  downstream packets of a connection reach the same core.

Performance: :func:`toeplitz_hash` is the bit-serial reference — exactly
the shift-and-XOR a NIC implements in silicon. The hot path instead uses
:class:`ToeplitzTable`, which precomputes, once per key, the 32-bit
partial hash contributed by every (byte position, byte value) pair; a
12-byte RSS input then hashes in 12 table lookups and XORs. The table is
mathematically identical to the bit-serial function (the Toeplitz hash
is linear over GF(2), so per-byte contributions XOR independently) and
the property tests assert equality on random inputs.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.net.five_tuple import FiveTuple

#: Microsoft's RSS verification key (40 bytes), the de-facto default.
DEFAULT_RSS_KEY = bytes(
    [
        0x6D, 0x5A, 0x56, 0xDA, 0x25, 0x5B, 0x0E, 0xC2,
        0x41, 0x67, 0x25, 0x3D, 0x43, 0xA3, 0x8F, 0xB0,
        0xD0, 0xCA, 0x2B, 0xCB, 0xAE, 0x7B, 0x30, 0xB4,
        0x77, 0xCB, 0x2D, 0xA3, 0x80, 0x30, 0xF2, 0x0C,
        0x6A, 0x42, 0xB7, 0x3B, 0xBE, 0xAC, 0x01, 0xFA,
    ]
)

#: The symmetric key of Woo et al.: 0x6d5a repeated 20 times.
SYMMETRIC_RSS_KEY = bytes([0x6D, 0x5A] * 20)

#: 82599 RSS indirection table size.
INDIRECTION_TABLE_SIZE = 128

#: Entries kept in each per-flow memo before it is reset. Real traffic
#: repeats flows heavily, so hit rates stay near 1; the bound only
#: protects pathological all-distinct-flow workloads from unbounded
#: growth. Resetting (rather than evicting) keeps the memo a pure
#: function of the call sequence, so runs stay deterministic.
FLOW_CACHE_LIMIT = 1 << 16


def toeplitz_hash(key: bytes, data: bytes) -> int:
    """The Toeplitz hash exactly as NICs compute it (bit-serial reference).

    For each input bit (MSB first), if the bit is set, XOR the current
    leftmost 32 bits of the (left-shifting) key into the result.
    """
    if len(key) * 8 < len(data) * 8 + 32:
        raise ValueError(
            f"key too short: {len(key)} bytes for {len(data)} bytes of input"
        )
    key_int = int.from_bytes(key, "big")
    key_bits = len(key) * 8
    result = 0
    for byte in data:
        for bit_index in range(7, -1, -1):
            if byte >> bit_index & 1:
                result ^= key_int >> (key_bits - 32)
            key_int = (key_int << 1) & ((1 << key_bits) - 1)
    return result & 0xFFFFFFFF


class ToeplitzTable:
    """Table-driven Toeplitz: per-(byte position, byte value) partials.

    The Toeplitz hash is GF(2)-linear in its input, so the contribution
    of byte ``b`` at position ``p`` is independent of every other byte:
    ``hash(data) = XOR_p table[p][data[p]]``. Building the table costs
    ``positions × 256`` XOR folds once per key; hashing then costs one
    list index, one byte index and one XOR per input byte — no bit loop.
    """

    def __init__(self, key: bytes, data_len: int):
        if len(key) * 8 < data_len * 8 + 32:
            raise ValueError(
                f"key too short: {len(key)} bytes for {data_len} bytes of input"
            )
        self.key = key
        self.data_len = data_len
        key_int = int.from_bytes(key, "big")
        key_bits = len(key) * 8
        # windows[i]: the 32 key bits aligned with overall input bit i.
        windows = [
            (key_int >> (key_bits - 32 - i)) & 0xFFFFFFFF
            for i in range(data_len * 8)
        ]
        tables: List[List[int]] = []
        for pos in range(data_len):
            bit_windows = windows[pos * 8 : pos * 8 + 8]
            table = [0] * 256
            for value in range(256):
                partial = 0
                for bit in range(8):
                    if value >> (7 - bit) & 1:
                        partial ^= bit_windows[bit]
                table[value] = partial
            tables.append(table)
        self.tables = tables

    def hash(self, data: bytes) -> int:
        """32-bit Toeplitz hash of ``data`` (must be ``data_len`` bytes)."""
        if len(data) != self.data_len:
            raise ValueError(
                f"expected {self.data_len} bytes of input, got {len(data)}"
            )
        result = 0
        for table, byte in zip(self.tables, data):
            result ^= table[byte]
        return result


#: RSS hashes 12 input bytes for IPv4 TCP/UDP (2×IP + 2×port).
RSS_INPUT_LEN = 12

_table_cache: Dict[Tuple[bytes, int], ToeplitzTable] = {}


def toeplitz_table_for(key: bytes, data_len: int = RSS_INPUT_LEN) -> ToeplitzTable:
    """The (process-wide, memoized) expanded table for ``key``.

    Keys are few (two standard ones) and tables are pure functions of
    the key, so sharing them across every hasher instance is safe and
    keeps the one-time expansion cost truly one-time.
    """
    cache_key = (bytes(key), data_len)
    table = _table_cache.get(cache_key)
    if table is None:
        table = ToeplitzTable(cache_key[0], data_len)
        _table_cache[cache_key] = table
    return table


def rss_input_bytes(flow: FiveTuple) -> bytes:
    """The RSS hash input for IPv4 TCP/UDP: src ip, dst ip, src port, dst port."""
    return (
        flow.src_ip.to_bytes(4, "big")
        + flow.dst_ip.to_bytes(4, "big")
        + flow.src_port.to_bytes(2, "big")
        + flow.dst_port.to_bytes(2, "big")
    )


class RssHasher:
    """RSS hash + indirection table, with per-flow result memos.

    Two layers keep the per-packet path to one dict probe, mirroring
    what hardware does (the hash is a pure function of the flow):

    - the table-driven Toeplitz (:class:`ToeplitzTable`) replaces the
      bit loop for memo misses;
    - bounded per-:class:`FiveTuple` memos of the 32-bit hash and of the
      final queue id serve repeats. ``set_indirection`` invalidates the
      queue memo (the hash memo stays valid — only the table changed).
    """

    def __init__(
        self,
        num_queues: int,
        key: bytes = DEFAULT_RSS_KEY,
        table_size: int = INDIRECTION_TABLE_SIZE,
        cache_limit: int = FLOW_CACHE_LIMIT,
    ):
        if num_queues < 1:
            raise ValueError(f"num_queues must be >= 1, got {num_queues}")
        self.key = key
        self.num_queues = num_queues
        #: queue id per indirection-table slot, default round-robin fill.
        self.indirection_table: List[int] = [i % num_queues for i in range(table_size)]
        self._toeplitz = toeplitz_table_for(key)
        self._cache_limit = cache_limit
        self._cache: Dict[FiveTuple, int] = {}
        self._queue_cache: Dict[FiveTuple, int] = {}
        #: Steering-mutation hook: called after :meth:`set_indirection`
        #: rewrites the flow→queue mapping, so the batch spine can
        #: reclassify packets it steered eagerly but has not yet
        #: settled (see :mod:`repro.core.batch_spine`).
        self.on_change: Optional[Callable[[], None]] = None

    def hash(self, flow: FiveTuple) -> int:
        """32-bit Toeplitz hash of the flow's RSS input."""
        cache = self._cache
        cached = cache.get(flow)
        if cached is None:
            cached = self._toeplitz.hash(rss_input_bytes(flow))
            if len(cache) >= self._cache_limit:
                cache.clear()
            cache[flow] = cached
        return cached

    def queue_for(self, flow: FiveTuple) -> int:
        """The rx queue RSS steers this flow to."""
        cache = self._queue_cache
        queue = cache.get(flow)
        if queue is None:
            table = self.indirection_table
            queue = table[self.hash(flow) % len(table)]
            if len(cache) >= self._cache_limit:
                cache.clear()
            cache[flow] = queue
        return queue

    def queue_for_many(self, flows: Sequence[FiveTuple]) -> List[int]:
        """Vectorized :meth:`queue_for` over a column of flows.

        The memo makes the common case (a burst repeating few flows)
        one dict probe per packet with no per-call method dispatch; a
        single-flow burst collapses to one probe plus a list build.
        """
        cache = self._queue_cache
        get = cache.get
        queue_for = self.queue_for
        return [
            queue if (queue := get(flow)) is not None else queue_for(flow)
            for flow in flows
        ]

    def set_indirection(self, table: Sequence[int]) -> None:
        """Install a custom indirection table (lengths must match)."""
        if len(table) != len(self.indirection_table):
            raise ValueError(
                f"indirection table must have {len(self.indirection_table)} entries"
            )
        bad = [q for q in table if not 0 <= q < self.num_queues]
        if bad:
            raise ValueError(f"queue ids out of range: {bad}")
        self.indirection_table = list(table)
        # Flow→queue results derived from the old table are stale.
        self._queue_cache.clear()
        if self.on_change is not None:
            self.on_change()

    def is_symmetric(self) -> bool:
        """True if the configured key hashes both directions identically."""
        probe = FiveTuple(0x0A000001, 0x0A000002, 1234, 80, 6)
        return toeplitz_hash(self.key, rss_input_bytes(probe)) == toeplitz_hash(
            self.key, rss_input_bytes(probe.reversed())
        )
