"""The multi-queue NIC.

Receive path: classify (Flow Director first when enabled, RSS fallback)
and append to the matched bounded rx queue. This is the paper's Figure 3
— the NIC, not software, decides which core sees the packet.

The model includes the empirical classification-rate cap the paper
observed with Flow Director on the 82599 ("Sprayer's processing rate is
limited to about 10 Mpps. This, however, is not fundamental and is a
limitation of the 82599 NIC when using Flow Director"): a token bucket at
``flow_director_pps_cap`` drops packets beyond the sustainable rate when
Flow Director is enabled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.net.packet import Packet
from repro.nic.flow_director import FlowDirectorTable
from repro.nic.queues import RxQueue
from repro.nic.rss import SYMMETRIC_RSS_KEY, RssHasher
from repro.sim.timeunits import SECOND

#: How :meth:`MultiQueueNic.steer_batch` classified each packet — which
#: counter the settlement loop must bump to match scalar :meth:`classify`
#: (custom decisions bump neither ``fd_matched`` nor ``rss_fallback``).
VIA_CUSTOM = 0
VIA_FD = 1
VIA_RSS = 2


@dataclass
class NicConfig:
    """Static NIC configuration.

    The paper configures the RSS hash to be symmetric (upstream and
    downstream of a connection share a core), so the symmetric key is
    the default here.
    """

    num_queues: int = 8
    queue_capacity: int = 512
    rss_key: bytes = SYMMETRIC_RSS_KEY
    flow_director_enabled: bool = False
    #: 82599 Flow Director classification cap, packets per second.
    flow_director_pps_cap: Optional[float] = 10.5e6
    #: Token-bucket burst allowance for the cap, in packets.
    flow_director_burst: int = 64


@dataclass
class NicStats:
    """Receive-path counters."""

    rx_packets: int = 0
    rx_dropped_queue_full: int = 0
    rx_dropped_fd_cap: int = 0
    #: Arrivals dropped because their rx queue was disabled by a fault
    #: (dead core, paused queue) — see :meth:`MultiQueueNic.disable_queue`.
    rx_dropped_fault: int = 0
    fd_matched: int = 0
    rss_fallback: int = 0
    per_queue_rx: List[int] = field(default_factory=list)


class MultiQueueNic:
    """A multi-queue NIC with RSS and Flow Director classification."""

    def __init__(self, config: Optional[NicConfig] = None):
        self.config = config or NicConfig()
        if self.config.num_queues < 1:
            raise ValueError("NIC needs at least one queue")
        self.queues: List[RxQueue] = [
            RxQueue(i, self.config.queue_capacity) for i in range(self.config.num_queues)
        ]
        self.rss = RssHasher(self.config.num_queues, key=self.config.rss_key)
        self.flow_director = FlowDirectorTable()
        self.stats = NicStats(per_queue_rx=[0] * self.config.num_queues)
        #: Optional programmable pipeline consulted before Flow Director
        #: and RSS; return a queue id or None to fall through. Used by
        #: the paper's §7 extensions (programmable NICs, flowlets,
        #: bounded-subset spraying).
        self.custom_classifier: Optional[Callable[[Packet], Optional[int]]] = None
        #: Vectorized counterpart of ``custom_classifier`` for the batch
        #: spine: ``batch_classifier(batch, out)`` fills ``out`` (a list
        #: of Optional[int]) for rows it decides. Installed by the
        #: steering policy alongside ``custom_classifier``; required by
        #: :meth:`steer_batch` whenever a custom classifier exists.
        self.batch_classifier = None
        #: Optional telemetry hook, called as ``on_drop(kind, packet,
        #: now)`` for every rx drop. Every drop path reports a distinct
        #: kind: "fd_cap", "queue_full", or the fault kind a disabled
        #: queue was tagged with ("core_dead", "queue_paused").
        self.on_drop: Optional[Callable[[str, Packet, int], None]] = None
        #: Fault injection: queue id -> drop kind for queues that accept
        #: no arrivals (dead core, paused queue). None = all healthy;
        #: the receive path then pays a single attribute load.
        self._blocked_queues: Optional[dict] = None
        #: Batch-spine hook, fired *before* a queue block/unblock takes
        #: effect so staged arrivals that precede the mutation settle
        #: against the old block set (scalar event order).
        self.on_block_change: Optional[Callable[[], None]] = None
        self._fd_tokens = float(self.config.flow_director_burst)
        self._fd_last_refill = 0
        # Config is static after construction (see NicConfig docstring);
        # the receive path caches what it reads per packet.
        self._fd_enabled = self.config.flow_director_enabled
        self._fd_burst_tokens = float(self.config.flow_director_burst)
        self._fd_cap = self.config.flow_director_pps_cap

    @property
    def num_queues(self) -> int:
        return self.config.num_queues

    def classify(self, packet: Packet) -> int:
        """Pick the rx queue: programmable pipeline, Flow Director, RSS."""
        if self.custom_classifier is not None:
            queue = self.custom_classifier(packet)
            if queue is not None:
                return queue
        if self._fd_enabled:
            queue = self.flow_director.match(packet)
            if queue is not None:
                self.stats.fd_matched += 1
                return queue
        self.stats.rss_fallback += 1
        return self.rss.queue_for(packet.five_tuple)

    def steer_batch(self, batch) -> "tuple[List[int], bytes]":
        """Vectorized :meth:`classify` over a whole :class:`PacketBatch`.

        Returns ``(queues, vias)``: the target rx queue per row plus how
        it was decided (:data:`VIA_CUSTOM` / :data:`VIA_FD` /
        :data:`VIA_RSS`). Pure classification — no counters, no
        timestamps, no queue pushes, no token-bucket consumption; the
        settlement loop (:mod:`repro.core.batch_spine`) replays those
        side effects per packet, in arrival order, so accept/drop
        bookkeeping stays byte-identical to the scalar path.
        """
        flows = batch.flows
        n = len(flows)
        if (
            self.batch_classifier is None
            and self.custom_classifier is None
            and not self._fd_enabled
        ):
            # Pure-RSS NIC (the rss baseline): one memoized probe per row.
            return self.rss.queue_for_many(flows), bytes((VIA_RSS,)) * n
        if self.custom_classifier is not None and self.batch_classifier is None:
            raise RuntimeError(
                "NIC has a custom_classifier but no batch_classifier; the "
                "policy must pair them or declare ingress_batchable = False"
            )
        queues: List[Optional[int]] = [None] * n
        custom_decided = None
        if self.batch_classifier is not None:
            self.batch_classifier(batch, queues)
            custom_decided = [q is not None for q in queues]
        if self._fd_enabled:
            self.flow_director.match_batch(batch, queues)
        vias = bytearray(n)
        queue_for = self.rss.queue_for
        for i in range(n):
            if custom_decided is not None and custom_decided[i]:
                vias[i] = VIA_CUSTOM
            elif queues[i] is not None:
                vias[i] = VIA_FD
            else:
                vias[i] = VIA_RSS
                queues[i] = queue_for(flows[i])
        return queues, bytes(vias)

    def receive(self, packet: Packet, now: int) -> bool:
        """Deliver an arriving packet to an rx queue.

        Returns False when the packet is dropped (classification cap or
        queue overflow).
        """
        stats = self.stats
        stats.rx_packets += 1
        if self._fd_enabled and not self._consume_fd_token(now):
            stats.rx_dropped_fd_cap += 1
            if self.on_drop is not None:
                self.on_drop("fd_cap", packet, now)
            return False
        queue_id = self.classify(packet)
        packet.nic_rx_time = now
        packet.rx_queue = queue_id
        blocked = self._blocked_queues
        if blocked is not None:
            kind = blocked.get(queue_id)
            if kind is not None:
                stats.rx_dropped_fault += 1
                if self.on_drop is not None:
                    self.on_drop(kind, packet, now)
                return False
        if not self.queues[queue_id].push(packet):
            stats.rx_dropped_queue_full += 1
            if self.on_drop is not None:
                self.on_drop("queue_full", packet, now)
            return False
        stats.per_queue_rx[queue_id] += 1
        return True

    def _consume_fd_token(self, now: int) -> bool:
        cap = self._fd_cap
        if cap is None:
            return True
        elapsed = now - self._fd_last_refill
        if elapsed > 0:
            # NB: keep the exact expression `elapsed * cap / SECOND` —
            # refactoring the float arithmetic changes rounding, and
            # with it which packets the cap drops.
            tokens = self._fd_tokens + elapsed * cap / SECOND
            burst = self._fd_burst_tokens
            self._fd_tokens = burst if tokens > burst else tokens
            self._fd_last_refill = now
        if self._fd_tokens >= 1.0:
            self._fd_tokens -= 1.0
            return True
        return False

    def disable_queue(self, queue_id: int, kind: str = "queue_disabled") -> None:
        """Drop every future arrival to ``queue_id``, reported as ``kind``.

        Models a dead core's descriptor ring (nobody posts buffers) or
        a flow-control-stuck queue; the drop is counted in
        ``rx_dropped_fault`` and reported through ``on_drop``.
        """
        if not 0 <= queue_id < self.config.num_queues:
            raise ValueError(
                f"queue_id {queue_id} out of range [0, {self.config.num_queues})"
            )
        if self.on_block_change is not None:
            self.on_block_change()
        if self._blocked_queues is None:
            self._blocked_queues = {}
        self._blocked_queues[queue_id] = kind

    def enable_queue(self, queue_id: int) -> None:
        """Undo :meth:`disable_queue` (no-op if not disabled)."""
        if self.on_block_change is not None:
            self.on_block_change()
        blocked = self._blocked_queues
        if blocked is not None:
            blocked.pop(queue_id, None)
            if not blocked:
                self._blocked_queues = None

    def queue_depths(self) -> List[int]:
        """Current occupancy of every rx queue (diagnostics)."""
        return [len(q) for q in self.queues]

    def queue_peak_depths(self) -> List[int]:
        """High-water mark of every rx queue (telemetry)."""
        return [q.peak_depth for q in self.queues]

    def per_queue_drops(self) -> List[int]:
        """Tail drops per rx queue (telemetry)."""
        return [q.dropped for q in self.queues]
