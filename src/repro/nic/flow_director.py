"""Flow Director: the 82599 feature Sprayer abuses to spray packets.

Flow Director was designed to pin *specific flows* to queues via
field/mask match rules. The paper's implementation trick (§4) is to
match on the **TCP checksum field** instead: because the checksum of
packets with varying payloads is effectively uniform, masking its k
least-significant bits and installing one rule per value sprays TCP
packets uniformly across queues, with no software involvement.

Two real hardware limits are modelled:

- the ~8k rule capacity (:data:`FLOW_DIRECTOR_CAPACITY`) that makes
  conventional per-flow use unattractive and forces the LSB-masking trick
  ("rules that exhaust all possible matches");
- the empirical ~10 Mpps classification cap the paper measured on the
  82599 (enforced by :class:`repro.nic.nic.MultiQueueNic`, not here).

Non-TCP packets match no spray rule and fall back to RSS.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.net.five_tuple import PROTO_TCP
from repro.net.packet import Packet

#: 82599 Flow Director rule capacity (perfect-match filters).
FLOW_DIRECTOR_CAPACITY = 8192

#: Packet fields a rule may match on, with their extraction functions.
_FIELD_GETTERS = {
    "tcp_checksum": lambda p: p.tcp_checksum,
    "src_port": lambda p: p.five_tuple.src_port,
    "dst_port": lambda p: p.five_tuple.dst_port,
    "src_ip": lambda p: p.five_tuple.src_ip,
    "dst_ip": lambda p: p.five_tuple.dst_ip,
}


@dataclass(frozen=True)
class FlowDirectorRule:
    """Match ``field & mask == value`` (for ``protocol``) → ``queue``."""

    field: str
    mask: int
    value: int
    queue: int
    protocol: int = PROTO_TCP

    def __post_init__(self) -> None:
        if self.field not in _FIELD_GETTERS:
            raise ValueError(f"unknown match field {self.field!r}")
        if self.value & ~self.mask:
            raise ValueError(
                f"rule value 0x{self.value:x} has bits outside mask 0x{self.mask:x}"
            )

    def matches(self, packet: Packet) -> bool:
        if packet.five_tuple.protocol != self.protocol:
            return False
        return (_FIELD_GETTERS[self.field](packet) & self.mask) == self.value


class FlowDirectorTable:
    """A capacity-limited rule table with O(1) lookup.

    Rules are grouped by ``(field, mask, protocol)``; each group is a
    hash map from masked value to queue, which models the hardware's
    perfect-match behaviour and keeps per-packet matching cheap. Groups
    are consulted in insertion order (first match wins).
    """

    def __init__(self, capacity: int = FLOW_DIRECTOR_CAPACITY):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._groups: Dict[Tuple[str, int, int], Dict[int, int]] = {}
        #: Per-group (getter, mask, protocol, value→queue) tuples in
        #: insertion order — the per-packet match walks this flat list
        #: instead of re-resolving field getters from the group keys.
        self._compiled: List[Tuple[Callable[[Packet], int], int, int, Dict[int, int]]] = []
        self._rule_count = 0
        #: Steering-mutation hook: called after any rule change
        #: (install, clear, evict), so the batch spine can reclassify
        #: packets it steered eagerly against the old table but has not
        #: yet settled (see :mod:`repro.core.batch_spine`).
        self.on_change: Optional[Callable[[], None]] = None

    def _changed(self) -> None:
        if self.on_change is not None:
            self.on_change()

    def __len__(self) -> int:
        return self._rule_count

    @property
    def free_rules(self) -> int:
        return self.capacity - self._rule_count

    def add_rule(self, rule: FlowDirectorRule) -> None:
        """Install a rule; raises ``OverflowError`` when the table is full.

        Re-installing a rule with the same match replaces the target
        queue without consuming extra capacity (hardware semantics).
        """
        group_key = (rule.field, rule.mask, rule.protocol)
        group = self._groups.get(group_key)
        if group is None:
            group = {}
            self._groups[group_key] = group
            self._compiled.append(
                (_FIELD_GETTERS[rule.field], rule.mask, rule.protocol, group)
            )
        if rule.value not in group:
            if self._rule_count >= self.capacity:
                raise OverflowError(
                    f"Flow Director table full ({self.capacity} rules)"
                )
            self._rule_count += 1
        group[rule.value] = rule.queue
        self._changed()

    def add_rules(self, rules: List[FlowDirectorRule]) -> None:
        for rule in rules:
            self.add_rule(rule)

    def clear(self) -> None:
        self._groups.clear()
        self._compiled.clear()
        self._rule_count = 0
        self._changed()

    def evict(self, fraction: float, rng) -> int:
        """Evict ``fraction`` of installed rules (fault injection).

        Victims are sampled by ``rng`` from the deterministic
        (insertion-ordered groups, sorted values) rule enumeration, so
        the same seed evicts the same rules. Returns how many were
        removed. Evicted spray values fall back to RSS — the partial
        failure mode of a reprogrammed/reset Flow Director table.
        """
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        entries = [
            (group_key, value)
            for group_key, group in self._groups.items()
            for value in sorted(group)
        ]
        if not entries:
            return 0
        count = max(1, int(len(entries) * fraction))
        for group_key, value in rng.sample(entries, count):
            # _compiled shares the group dicts, so deletion is visible
            # to the per-packet match immediately.
            del self._groups[group_key][value]
        self._rule_count -= count
        self._changed()
        return count

    def match(self, packet: Packet) -> Optional[int]:
        """Return the target queue of the first matching rule, or None."""
        protocol = packet.five_tuple.protocol
        for getter, mask, rule_protocol, group in self._compiled:
            if rule_protocol != protocol:
                continue
            queue = group.get(getter(packet) & mask)
            if queue is not None:
                return queue
        return None

    def match_batch(self, batch, out: List[Optional[int]]) -> None:
        """Vectorized :meth:`match` over a :class:`PacketBatch`.

        Writes the matched queue (or None) into ``out`` for every row
        whose ``out`` slot is still None — the batch spine pre-fills
        slots decided by a custom classifier, mirroring the scalar
        consult order. The common table shape (the checksum spray
        configuration: one group over ``tcp_checksum``) matches a whole
        column with one dict probe per packet and no getter dispatch.
        """
        compiled = self._compiled
        if not compiled:
            return
        flows = batch.flows
        if len(compiled) == 1 and compiled[0][0] is _FIELD_GETTERS["tcp_checksum"]:
            _getter, mask, rule_protocol, group = compiled[0]
            group_get = group.get
            checksums = batch.checksums
            for i, flow in enumerate(flows):
                if out[i] is None and flow.protocol == rule_protocol:
                    out[i] = group_get(checksums[i] & mask)
            return
        # General shape: consult groups in insertion order per row.
        # Rare in practice (policies install one spray group), so the
        # row loop materializes a scalar view only when needed.
        for i in range(len(flows)):
            if out[i] is None:
                out[i] = self.match(batch.materialize(i))


def spray_bits_for(num_queues: int, extra_bits: int = 5, max_bits: int = 13) -> int:
    """How many checksum LSBs to match for ``num_queues`` queues.

    At least ``ceil(log2(num_queues))`` bits are needed to name every
    queue; ``extra_bits`` more smooth out the imbalance when the queue
    count does not divide the rule count. ``max_bits`` keeps the rule
    count within the 8k table (2^13 = 8192).
    """
    if num_queues < 1:
        raise ValueError(f"num_queues must be >= 1, got {num_queues}")
    needed = max(1, (num_queues - 1).bit_length())
    return min(max_bits, needed + extra_bits)


def build_checksum_spray_rules(
    num_queues: int,
    bits: Optional[int] = None,
    queues: Optional[List[int]] = None,
) -> List[FlowDirectorRule]:
    """The paper's spraying configuration: one rule per checksum-LSB value.

    ``2**bits`` rules are generated, mapping masked value ``v`` to queue
    ``v % num_queues``. Together the rules exhaust every possible value
    of the masked field, so **every** TCP packet matches some rule — the
    "rules that exhaust all possible matches" of §4.

    ``queues`` restricts the spray targets to a subset (in the given
    order: value ``v`` maps to ``queues[v % len(queues)]``) — how the
    fault path re-steers around dead or degraded cores by reprogramming
    the same table.
    """
    if bits is None:
        bits = spray_bits_for(num_queues)
    if not 1 <= bits <= 16:
        raise ValueError(f"bits must be in [1, 16], got {bits}")
    if 2**bits > FLOW_DIRECTOR_CAPACITY:
        raise ValueError(
            f"2^{bits} rules exceed the Flow Director capacity "
            f"({FLOW_DIRECTOR_CAPACITY})"
        )
    targets = list(queues) if queues is not None else list(range(num_queues))
    if not targets:
        raise ValueError("queues must name at least one spray target")
    for queue in targets:
        if not 0 <= queue < num_queues:
            raise ValueError(f"queue {queue} out of range [0, {num_queues})")
    if 2**bits < len(targets):
        raise ValueError(
            f"2^{bits} rule values cannot cover {len(targets)} queues"
        )
    mask = (1 << bits) - 1
    n_targets = len(targets)
    return [
        FlowDirectorRule(
            field="tcp_checksum", mask=mask, value=value, queue=targets[value % n_targets]
        )
        for value in range(1 << bits)
    ]
