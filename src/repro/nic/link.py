"""Point-to-point link with serialization and propagation delay.

Models the back-to-back 10 GbE cables of the paper's testbed. A link is
unidirectional; a full-duplex cable is two ``Link`` instances. Packets
are serialized FIFO at the line rate (including Ethernet preamble and
inter-frame gap) and delivered to a sink callback after the propagation
delay.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass
from heapq import heappush
from typing import Callable, Deque, Dict, Optional

from repro.net.packet import ETHERNET_OVERHEAD, Packet
from repro.sim.engine import Simulator
from repro.sim.timeunits import MICROSECOND, SECOND


@dataclass
class LinkFault:
    """An active impairment window on a link (fault injection).

    ``loss_p``/``dup_p`` are per-packet Bernoulli probabilities drawn
    from ``rng`` (the fault plan's private RNG — workload randomness is
    untouched); ``jitter_ps`` adds a uniform extra delivery delay in
    [0, jitter_ps]. Loss happens *after* serialization: the transmitter
    still pays the wire time, the far end just never sees the frame.
    """

    loss_p: float = 0.0
    dup_p: float = 0.0
    jitter_ps: int = 0
    rng: Optional[random.Random] = None


class Link:
    """A unidirectional serializing link.

    ``sink(packet, now)`` is invoked at the instant the last bit arrives
    at the far end. Sending while the transmitter is busy queues the
    packet behind the in-flight ones (unbounded: senders in this
    simulator are either paced generators or TCP, both self-limiting).
    """

    def __init__(
        self,
        sim: Simulator,
        rate_bps: float = 10e9,
        propagation_delay: int = MICROSECOND,
        sink: Optional[Callable[[Packet, int], None]] = None,
        name: str = "link",
        queue_limit: Optional[int] = None,
    ):
        if rate_bps <= 0:
            raise ValueError(f"rate_bps must be positive, got {rate_bps}")
        if propagation_delay < 0:
            raise ValueError("propagation_delay must be non-negative")
        if queue_limit is not None and queue_limit < 1:
            raise ValueError(f"queue_limit must be >= 1, got {queue_limit}")
        self.sim = sim
        self.rate_bps = rate_bps
        self.propagation_delay = propagation_delay
        self.sink = sink
        self.name = name
        #: Max packets queued at the transmitter (None = unbounded).
        #: Models the sending host's qdisc (Linux pfifo txqueuelen).
        self.queue_limit = queue_limit
        #: Finish times of frames still occupying the transmit queue.
        #: Expired entries are popped lazily on the next send, so queue
        #: accounting costs no simulator events at all.
        self._pending_finish: Deque[int] = deque()
        #: Serialization time per wire size — frames come in a handful
        #: of sizes, so the division+round runs once per size.
        self._ser_cache: Dict[int, int] = {}
        self._transmitter_free_at = 0
        self.packets_sent = 0
        self.bytes_sent = 0
        self.packets_dropped = 0
        #: Optional telemetry hook, ``on_drop(kind, packet, now)`` —
        #: the same channel the NIC uses, with distinct kinds
        #: ("tx_queue_full", "link_loss").
        self.on_drop: Optional[Callable[[str, Packet, int], None]] = None
        #: Active fault-injection impairment (None = healthy link; the
        #: hot path then pays one attribute load).
        self._fault: Optional[LinkFault] = None
        self.fault_lost = 0
        self.fault_duplicated = 0
        self.fault_jittered = 0

    def set_fault(self, fault: Optional[LinkFault]) -> None:
        """Install (or clear, with None) an impairment window."""
        if fault is not None and (fault.loss_p or fault.dup_p) and fault.rng is None:
            raise ValueError("a lossy/duplicating LinkFault needs an rng")
        if fault is not None and fault.jitter_ps and fault.rng is None:
            raise ValueError("a jittering LinkFault needs an rng")
        self._fault = fault

    def serialization_time(self, packet: Packet) -> int:
        """Picoseconds to clock the frame (incl. preamble + IFG) out."""
        wire_bytes = packet.wire_bytes
        cached = self._ser_cache.get(wire_bytes)
        if cached is None:
            cached = round(wire_bytes * 8 * SECOND / self.rate_bps)
            self._ser_cache[wire_bytes] = cached
        return cached

    def send(self, packet: Packet, now: Optional[int] = None) -> int:
        """Enqueue a packet for transmission.

        Returns the far-end arrival time, or -1 if the transmit queue
        is full (the packet is dropped, as a host qdisc would).

        ``now`` is accepted (and ignored — the link reads simulator
        time itself) so ``link.send`` can be plugged directly into any
        ``sink(packet, now)`` slot without an adapter lambda.
        """
        sink = self.sink
        if sink is None:
            raise RuntimeError(f"link {self.name!r} has no sink attached")
        sim = self.sim
        now = sim._now
        pending = None
        if self.queue_limit is not None:
            pending = self._pending_finish
            while pending and pending[0] <= now:
                pending.popleft()
            if len(pending) >= self.queue_limit:
                self.packets_dropped += 1
                if self.on_drop is not None:
                    self.on_drop("tx_queue_full", packet, now)
                return -1
        free_at = self._transmitter_free_at
        start = free_at if free_at > now else now
        # packet.wire_bytes, inlined (the property call is measurable at
        # millions of sends).
        frame_len = packet.frame_len
        wire_bytes = frame_len + ETHERNET_OVERHEAD
        ser = self._ser_cache.get(wire_bytes)
        if ser is None:
            ser = round(wire_bytes * 8 * SECOND / self.rate_bps)
            self._ser_cache[wire_bytes] = ser
        finish = start + ser
        self._transmitter_free_at = finish
        arrival = finish + self.propagation_delay
        self.packets_sent += 1
        self.bytes_sent += frame_len
        if pending is not None:
            pending.append(finish)
        fault = self._fault
        if fault is not None:
            rng = fault.rng
            if fault.loss_p and rng.random() < fault.loss_p:
                # Wire loss: serialization was paid, delivery never happens.
                self.fault_lost += 1
                if self.on_drop is not None:
                    self.on_drop("link_loss", packet, now)
                return -1
            if fault.jitter_ps:
                arrival += rng.randrange(fault.jitter_ps + 1)
                self.fault_jittered += 1
            if fault.dup_p and rng.random() < fault.dup_p:
                self.fault_duplicated += 1
                duplicate = packet.clone()
                sim._sequence += 1
                sim._live += 1
                heappush(
                    sim._queue,
                    (arrival, sim._sequence, None, sink, (duplicate, arrival)),
                )
        # Arrival events are never cancelled: post() skips the handle.
        sim._sequence += 1
        sim._live += 1
        heappush(sim._queue, (arrival, sim._sequence, None, sink, (packet, arrival)))
        return arrival

    @property
    def backlog(self) -> int:
        """Picoseconds of queued serialization work at the transmitter."""
        return max(0, self._transmitter_free_at - self.sim.now)
