"""Point-to-point link with serialization and propagation delay.

Models the back-to-back 10 GbE cables of the paper's testbed. A link is
unidirectional; a full-duplex cable is two ``Link`` instances. Packets
are serialized FIFO at the line rate (including Ethernet preamble and
inter-frame gap) and delivered to a sink callback after the propagation
delay.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.net.packet import Packet
from repro.sim.engine import Simulator
from repro.sim.timeunits import MICROSECOND, SECOND


class Link:
    """A unidirectional serializing link.

    ``sink(packet, now)`` is invoked at the instant the last bit arrives
    at the far end. Sending while the transmitter is busy queues the
    packet behind the in-flight ones (unbounded: senders in this
    simulator are either paced generators or TCP, both self-limiting).
    """

    def __init__(
        self,
        sim: Simulator,
        rate_bps: float = 10e9,
        propagation_delay: int = MICROSECOND,
        sink: Optional[Callable[[Packet, int], None]] = None,
        name: str = "link",
        queue_limit: Optional[int] = None,
    ):
        if rate_bps <= 0:
            raise ValueError(f"rate_bps must be positive, got {rate_bps}")
        if propagation_delay < 0:
            raise ValueError("propagation_delay must be non-negative")
        if queue_limit is not None and queue_limit < 1:
            raise ValueError(f"queue_limit must be >= 1, got {queue_limit}")
        self.sim = sim
        self.rate_bps = rate_bps
        self.propagation_delay = propagation_delay
        self.sink = sink
        self.name = name
        #: Max packets queued at the transmitter (None = unbounded).
        #: Models the sending host's qdisc (Linux pfifo txqueuelen).
        self.queue_limit = queue_limit
        self._queued = 0
        self._transmitter_free_at = 0
        self.packets_sent = 0
        self.bytes_sent = 0
        self.packets_dropped = 0

    def serialization_time(self, packet: Packet) -> int:
        """Picoseconds to clock the frame (incl. preamble + IFG) out."""
        return round(packet.wire_bytes * 8 * SECOND / self.rate_bps)

    def send(self, packet: Packet) -> int:
        """Enqueue a packet for transmission.

        Returns the far-end arrival time, or -1 if the transmit queue
        is full (the packet is dropped, as a host qdisc would).
        """
        if self.sink is None:
            raise RuntimeError(f"link {self.name!r} has no sink attached")
        now = self.sim.now
        if self.queue_limit is not None and self._queued >= self.queue_limit:
            self.packets_dropped += 1
            return -1
        start = max(now, self._transmitter_free_at)
        finish = start + self.serialization_time(packet)
        self._transmitter_free_at = finish
        arrival = finish + self.propagation_delay
        self.packets_sent += 1
        self.bytes_sent += packet.frame_len
        if self.queue_limit is not None:
            self._queued += 1
            self.sim.at(finish, self._on_serialized)
        self.sim.at(arrival, self.sink, packet, arrival)
        return arrival

    def _on_serialized(self) -> None:
        self._queued -= 1

    @property
    def backlog(self) -> int:
        """Picoseconds of queued serialization work at the transmitter."""
        return max(0, self._transmitter_free_at - self.sim.now)
