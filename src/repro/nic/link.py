"""Point-to-point link with serialization and propagation delay.

Models the back-to-back 10 GbE cables of the paper's testbed. A link is
unidirectional; a full-duplex cable is two ``Link`` instances. Packets
are serialized FIFO at the line rate (including Ethernet preamble and
inter-frame gap) and delivered to a sink callback after the propagation
delay.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass
from heapq import heappush
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.net.batch import NO_ARRIVAL, PacketBatch
from repro.net.packet import ETHERNET_OVERHEAD, Packet
from repro.sim.engine import Simulator
from repro.sim.timeunits import MICROSECOND, SECOND


@dataclass
class LinkFault:
    """An active impairment window on a link (fault injection).

    ``loss_p``/``dup_p`` are per-packet Bernoulli probabilities drawn
    from ``rng`` (the fault plan's private RNG — workload randomness is
    untouched); ``jitter_ps`` adds a uniform extra delivery delay in
    [0, jitter_ps]. Loss happens *after* serialization: the transmitter
    still pays the wire time, the far end just never sees the frame.
    """

    loss_p: float = 0.0
    dup_p: float = 0.0
    jitter_ps: int = 0
    rng: Optional[random.Random] = None


class Link:
    """A unidirectional serializing link.

    ``sink(packet, now)`` is invoked at the instant the last bit arrives
    at the far end. Sending while the transmitter is busy queues the
    packet behind the in-flight ones (unbounded: senders in this
    simulator are either paced generators or TCP, both self-limiting).
    """

    def __init__(
        self,
        sim: Simulator,
        rate_bps: float = 10e9,
        propagation_delay: int = MICROSECOND,
        sink: Optional[Callable[[Packet, int], None]] = None,
        name: str = "link",
        queue_limit: Optional[int] = None,
    ):
        if rate_bps <= 0:
            raise ValueError(f"rate_bps must be positive, got {rate_bps}")
        if propagation_delay < 0:
            raise ValueError("propagation_delay must be non-negative")
        if queue_limit is not None and queue_limit < 1:
            raise ValueError(f"queue_limit must be >= 1, got {queue_limit}")
        self.sim = sim
        self.rate_bps = rate_bps
        self.propagation_delay = propagation_delay
        self.sink = sink
        self.name = name
        #: Max packets queued at the transmitter (None = unbounded).
        #: Models the sending host's qdisc (Linux pfifo txqueuelen).
        self.queue_limit = queue_limit
        #: Finish times of frames still occupying the transmit queue.
        #: Expired entries are popped lazily on the next send, so queue
        #: accounting costs no simulator events at all.
        self._pending_finish: Deque[int] = deque()
        #: Serialization time per wire size — frames come in a handful
        #: of sizes, so the division+round runs once per size.
        self._ser_cache: Dict[int, int] = {}
        self._transmitter_free_at = 0
        self.packets_sent = 0
        self.bytes_sent = 0
        self.packets_dropped = 0
        #: Optional telemetry hook, ``on_drop(kind, packet, now)`` —
        #: the same channel the NIC uses, with distinct kinds
        #: ("tx_queue_full", "link_loss").
        self.on_drop: Optional[Callable[[str, Packet, int], None]] = None
        #: Batch-spine delivery target, called as ``batch_sink(batch,
        #: now)`` synchronously from :meth:`send_batch` once the arrival
        #: column is filled — no per-packet heap events. Scalar sends
        #: keep using ``sink``; both may be wired at once (the fault
        #: fallback relies on it).
        self.batch_sink: Optional[Callable[[PacketBatch, int], None]] = None
        #: Deliveries parked by :meth:`send_many` (batch-spine egress):
        #: ``(packet, arrival)`` rows in arrival order, drained by one
        #: heap event per send and by the :meth:`flush_deferred` seams.
        self._deferred: Deque[Tuple[Packet, int]] = deque()
        #: (arrival, reserved heap sequence) of the newest deferred row.
        self._deferred_tail: Tuple[int, int] = (0, 0)
        #: Active fault-injection impairment (None = healthy link; the
        #: hot path then pays one attribute load).
        self._fault: Optional[LinkFault] = None
        self.fault_lost = 0
        self.fault_duplicated = 0
        self.fault_jittered = 0

    def set_fault(self, fault: Optional[LinkFault]) -> None:
        """Install (or clear, with None) an impairment window."""
        if fault is not None and (fault.loss_p or fault.dup_p) and fault.rng is None:
            raise ValueError("a lossy/duplicating LinkFault needs an rng")
        if fault is not None and fault.jitter_ps and fault.rng is None:
            raise ValueError("a jittering LinkFault needs an rng")
        self._fault = fault

    def serialization_time(self, packet: Packet) -> int:
        """Picoseconds to clock the frame (incl. preamble + IFG) out."""
        wire_bytes = packet.wire_bytes
        cached = self._ser_cache.get(wire_bytes)
        if cached is None:
            cached = round(wire_bytes * 8 * SECOND / self.rate_bps)
            self._ser_cache[wire_bytes] = cached
        return cached

    def send(self, packet: Packet, now: Optional[int] = None) -> int:
        """Enqueue a packet for transmission.

        Returns the far-end arrival time, or -1 if the transmit queue
        is full (the packet is dropped, as a host qdisc would).

        ``now`` is accepted (and ignored — the link reads simulator
        time itself) so ``link.send`` can be plugged directly into any
        ``sink(packet, now)`` slot without an adapter lambda.
        """
        sink = self.sink
        if sink is None:
            raise RuntimeError(f"link {self.name!r} has no sink attached")
        sim = self.sim
        now = sim._now
        pending = None
        if self.queue_limit is not None:
            pending = self._pending_finish
            while pending and pending[0] <= now:
                pending.popleft()
            if len(pending) >= self.queue_limit:
                self.packets_dropped += 1
                if self.on_drop is not None:
                    self.on_drop("tx_queue_full", packet, now)
                return -1
        free_at = self._transmitter_free_at
        start = free_at if free_at > now else now
        # packet.wire_bytes, inlined (the property call is measurable at
        # millions of sends).
        frame_len = packet.frame_len
        wire_bytes = frame_len + ETHERNET_OVERHEAD
        ser = self._ser_cache.get(wire_bytes)
        if ser is None:
            ser = round(wire_bytes * 8 * SECOND / self.rate_bps)
            self._ser_cache[wire_bytes] = ser
        finish = start + ser
        self._transmitter_free_at = finish
        arrival = finish + self.propagation_delay
        self.packets_sent += 1
        self.bytes_sent += frame_len
        if pending is not None:
            pending.append(finish)
        fault = self._fault
        if fault is not None:
            rng = fault.rng
            if fault.loss_p and rng.random() < fault.loss_p:
                # Wire loss: serialization was paid, delivery never happens.
                self.fault_lost += 1
                if self.on_drop is not None:
                    self.on_drop("link_loss", packet, now)
                return -1
            if fault.jitter_ps:
                arrival += rng.randrange(fault.jitter_ps + 1)
                self.fault_jittered += 1
            if fault.dup_p and rng.random() < fault.dup_p:
                self.fault_duplicated += 1
                duplicate = packet.clone()
                sim._sequence += 1
                sim._live += 1
                heappush(
                    sim._queue,
                    (arrival, sim._sequence, None, sink, (duplicate, arrival)),
                )
        # Arrival events are never cancelled: post() skips the handle.
        sim._sequence += 1
        sim._live += 1
        heappush(sim._queue, (arrival, sim._sequence, None, sink, (packet, arrival)))
        return arrival

    def send_many(self, packets: List[Packet], now: Optional[int] = None) -> None:
        """Transmit a completion's outputs with *zero* heap events.

        Per-packet semantics are exactly ``for p in packets: send(p)``
        on a healthy, unbounded link — same FIFO serialization and
        arrival times, same counters, and the sink is still invoked
        once per packet with the same ``(packet, arrival)`` arguments —
        but deliveries are parked on a deferred queue and drained at
        the :meth:`flush_deferred` seams instead of costing one heap
        event each. Deferral is invisible to the simulation: the sink
        is a pure collector (it reads only its arguments plus window
        flags that change exactly at the flush seams), and quiescence
        checks see the scalar picture through :meth:`has_undelivered` —
        the heap sequences the scalar deliveries would have consumed
        are still reserved here, so even same-instant ties against the
        probing event resolve identically.

        A transmit-queue limit or an active impairment needs per-packet
        drop decisions / Bernoulli draws in send order, so those fall
        back to the scalar path.
        """
        if self.sink is None:
            raise RuntimeError(f"link {self.name!r} has no sink attached")
        if self.queue_limit is not None or self._fault is not None:
            send = self.send
            for packet in packets:
                send(packet)
            return
        sim = self.sim
        now = sim._now
        free_at = self._transmitter_free_at
        start = free_at if free_at > now else now
        ser_cache = self._ser_cache
        rate_bps = self.rate_bps
        prop = self.propagation_delay
        deferred = self._deferred
        sent_bytes = 0
        for packet in packets:
            frame_len = packet.frame_len
            wire_bytes = frame_len + ETHERNET_OVERHEAD
            ser = ser_cache.get(wire_bytes)
            if ser is None:
                ser = round(wire_bytes * 8 * SECOND / rate_bps)
                ser_cache[wire_bytes] = ser
            start += ser
            sent_bytes += frame_len
            deferred.append((packet, start + prop))
        self._transmitter_free_at = start
        self.packets_sent += len(packets)
        self.bytes_sent += sent_bytes
        # Reserve the sequences the scalar delivery events would have
        # consumed: later allocations keep their scalar numbers, and
        # the tail sequence makes has_undelivered tie-exact.
        sim._sequence += len(packets)
        self._deferred_tail = (start + prop, sim._sequence)

    def has_undelivered(self) -> bool:
        """Whether a deferred delivery is still "live" in scalar terms.

        O(1) and exact: the deferred rows are arrival-ordered, so only
        the tail matters, and a scalar delivery event at ``(arrival,
        seq)`` would still be pending iff it sorts after the currently
        firing event — the same heap-order comparison the batch spine
        uses for settlement. Self-rescheduling timers (the telemetry
        sampler) OR this into ``sim.has_live_events()`` so quiescence
        detection matches the scalar spine tick for tick.
        """
        if not self._deferred:
            return False
        arrival, seq = self._deferred_tail
        sim = self.sim
        now = sim._now
        return arrival > now or (arrival == now and seq > sim._event_seq)

    def flush_deferred(self, now: Optional[int] = None) -> None:
        """Deliver every deferred packet due by ``now``.

        The delivery seam: measurement code that flips state the sink
        reads (e.g. the rate meter's window flag) must flush first, so
        deliveries the scalar spine would already have made land on the
        correct side of the flip. ``run(until=t)`` fires events with
        time <= t, hence the inclusive comparison. No-op when nothing
        is deferred (scalar spine included).
        """
        deferred = self._deferred
        if not deferred:
            return
        if now is None:
            now = self.sim._now
        sink = self.sink
        while deferred and deferred[0][1] <= now:
            packet, arrival = deferred.popleft()
            sink(packet, arrival)

    def send_batch(self, batch: PacketBatch, now: Optional[int] = None) -> None:
        """Transmit a whole batch: fill its arrival column, hand it on.

        Per-packet semantics are identical to calling :meth:`send` once
        per row at the same instant — same FIFO serialization times,
        same transmit-queue drop decisions (marked :data:`NO_ARRIVAL`
        in the arrival column), same counters — but the far end gets
        the columnar batch synchronously via ``batch_sink`` instead of
        one heap event per packet. During an impairment window the
        Bernoulli draws must happen per packet in send order, so the
        batch is materialized and re-sent scalar (arrival times are
        unchanged: serialization is FIFO either way).
        """
        batch_sink = self.batch_sink
        if batch_sink is None:
            raise RuntimeError(f"link {self.name!r} has no batch_sink attached")
        if self._fault is not None:
            # Audited scalar fallback: Bernoulli draws must happen per
            # packet in send order during an impairment window.
            for packet in batch.materialize_all():  # repro-lint: disable=SPR006
                self.send(packet)
            return
        sim = self.sim
        now = sim._now
        queue_limit = self.queue_limit
        pending = None
        if queue_limit is not None:
            pending = self._pending_finish
            while pending and pending[0] <= now:
                pending.popleft()
        free_at = self._transmitter_free_at
        start = free_at if free_at > now else now
        ser_cache = self._ser_cache
        rate_bps = self.rate_bps
        prop = self.propagation_delay
        on_drop = self.on_drop
        arrivals = batch.arrivals
        frame_lens = batch.frame_lens
        n = len(frame_lens)
        room = n if pending is None else queue_limit - len(pending)
        if room >= n and n and frame_lens.count(frame_lens[0]) == n:
            # Uniform frame size and no possible tx drop (the CBR
            # generator's every burst): the arrival column is an
            # arithmetic series, so extend it with a range instead of
            # running the per-row loop. Values are identical — the loop
            # computes start += ser per row with the same integer ser.
            frame_len = frame_lens[0]
            wire_bytes = frame_len + ETHERNET_OVERHEAD
            ser = ser_cache.get(wire_bytes)
            if ser is None:
                ser = round(wire_bytes * 8 * SECOND / rate_bps)
                ser_cache[wire_bytes] = ser
            if ser > 0:
                first = start + ser
                stop = start + ser * n
                arrivals.extend(range(first + prop, stop + prop + 1, ser))
                if pending is not None:
                    pending.extend(range(first, stop + 1, ser))
                self._transmitter_free_at = stop
                self.packets_sent += n
                self.bytes_sent += frame_len * n
                batch_sink(batch, now)
                return
        sent = 0
        sent_bytes = 0
        dropped = 0
        for i in range(n):
            if pending is not None and len(pending) >= queue_limit:
                dropped += 1
                if on_drop is not None:
                    on_drop("tx_queue_full", batch.materialize(i), now)
                arrivals.append(NO_ARRIVAL)
                continue
            frame_len = frame_lens[i]
            wire_bytes = frame_len + ETHERNET_OVERHEAD
            ser = ser_cache.get(wire_bytes)
            if ser is None:
                ser = round(wire_bytes * 8 * SECOND / rate_bps)
                ser_cache[wire_bytes] = ser
            start += ser
            if pending is not None:
                pending.append(start)
            arrivals.append(start + prop)
            sent += 1
            sent_bytes += frame_len
        self._transmitter_free_at = start
        self.packets_sent += sent
        self.bytes_sent += sent_bytes
        self.packets_dropped += dropped
        batch_sink(batch, now)

    @property
    def backlog(self) -> int:
        """Picoseconds of queued serialization work at the transmitter."""
        return max(0, self._transmitter_free_at - self.sim.now)
