"""Bounded NIC rx queues.

A queue models a descriptor ring: fixed capacity, tail-drop on overflow
(what a real NIC does when software cannot keep up), and an optional
"not empty" callback used to wake the idle core polling it.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Optional

from repro.net.packet import Packet


class RxQueue:
    """A bounded FIFO of packets with drop accounting."""

    def __init__(self, queue_id: int, capacity: int = 512):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.queue_id = queue_id
        self.capacity = capacity
        self._packets: Deque[Packet] = deque()
        self.enqueued = 0
        self.dropped = 0
        #: High-water mark of the queue depth (telemetry).
        self.peak_depth = 0
        #: Called when the queue transitions empty -> non-empty.
        self.on_first_packet: Optional[Callable[[], None]] = None

    def __len__(self) -> int:
        return len(self._packets)

    @property
    def is_empty(self) -> bool:
        return not self._packets

    def push(self, packet: Packet) -> bool:
        """Enqueue; returns False (and counts a drop) when full."""
        packets = self._packets
        depth = len(packets)
        if depth >= self.capacity:
            self.dropped += 1
            return False
        packets.append(packet)
        self.enqueued += 1
        depth += 1
        if depth > self.peak_depth:
            self.peak_depth = depth
        if depth == 1 and self.on_first_packet is not None:
            self.on_first_packet()
        return True

    def pop_batch(self, max_batch: int) -> List[Packet]:
        """Dequeue up to ``max_batch`` packets (DPDK ``rx_burst`` style)."""
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        packets = self._packets
        if len(packets) <= max_batch:
            # Full drain (the common case at sane batch sizes): one
            # C-level copy instead of a popleft-per-packet loop.
            out = list(packets)
            packets.clear()
            return out
        popleft = packets.popleft
        return [popleft() for _ in range(max_batch)]

    def clear(self) -> int:
        """Discard all buffered packets; returns how many were removed.

        The counters are deliberately NOT reset: ``enqueued``,
        ``dropped`` and ``peak_depth`` are *cumulative* telemetry — the
        sampler differentiates ``enqueued`` into an rx rate and the
        conservation ledger counts flushed packets as ``fault_drops``
        on the engine side, so zeroing either here would corrupt both.
        A flush only empties the buffer (the depth term of the ledger).
        """
        count = len(self._packets)
        self._packets.clear()
        return count
