"""Multi-queue NIC model.

Reproduces the two Intel 82599 features the paper builds on:

- **RSS** (:mod:`repro.nic.rss`): the real Toeplitz hash over the
  four-tuple, an indirection table, and the symmetric key of Woo et
  al. [44] that the paper configures so both directions of a connection
  land on the same core.
- **Flow Director** (:mod:`repro.nic.flow_director`): a rule table with
  field/mask matching and the 8k-rule capacity limit. Sprayer programs it
  to match the k least-significant bits of the TCP checksum — the paper's
  trick for making a commodity NIC spray packets — and non-matching
  (non-TCP) packets fall back to RSS.

The :class:`~repro.nic.nic.MultiQueueNic` ties these together with
bounded rx queues (tail-drop) and the empirical ~10 Mpps classification
cap the paper observed when Flow Director is enabled.
"""

from repro.nic.flow_director import (
    FLOW_DIRECTOR_CAPACITY,
    FlowDirectorRule,
    FlowDirectorTable,
    build_checksum_spray_rules,
)
from repro.nic.nic import MultiQueueNic, NicConfig, NicStats
from repro.nic.queues import RxQueue
from repro.nic.rss import (
    DEFAULT_RSS_KEY,
    SYMMETRIC_RSS_KEY,
    RssHasher,
    toeplitz_hash,
)

__all__ = [
    "MultiQueueNic",
    "NicConfig",
    "NicStats",
    "RxQueue",
    "RssHasher",
    "toeplitz_hash",
    "DEFAULT_RSS_KEY",
    "SYMMETRIC_RSS_KEY",
    "FlowDirectorRule",
    "FlowDirectorTable",
    "FLOW_DIRECTOR_CAPACITY",
    "build_checksum_spray_rules",
]
