"""Heavy-tailed samplers for flow sizes and rates.

The flow-size model is the classic "elephants and mice" mixture the
paper's Figure 1 exhibits: the body is lognormal (mice — most flows),
the tail Pareto (elephants — most bytes). Parameters default to values
calibrated so that flows above 10 MB carry well over 75 % of bytes
while being a fraction of a percent of flows, matching §2.
"""

from __future__ import annotations

import math
import random


class BoundedPareto:
    """Pareto(alpha, xm) truncated above at ``upper``."""

    def __init__(self, alpha: float, lower: float, upper: float):
        if alpha <= 0:
            raise ValueError(f"alpha must be positive, got {alpha}")
        if not 0 < lower < upper:
            raise ValueError(f"need 0 < lower < upper, got [{lower}, {upper}]")
        self.alpha = alpha
        self.lower = lower
        self.upper = upper

    def sample(self, rng: random.Random) -> float:
        # Inverse-CDF sampling of the truncated Pareto.
        u = rng.random()
        la = self.lower**self.alpha
        ha = self.upper**self.alpha
        return (-(u * ha - u * la - ha) / (ha * la)) ** (-1.0 / self.alpha)

    def mean(self) -> float:
        a, l, h = self.alpha, self.lower, self.upper
        if a == 1.0:
            return l * math.log(h / l) / (1 - (l / h))
        return (l**a / (1 - (l / h) ** a)) * (a / (a - 1)) * (
            1 / l ** (a - 1) - 1 / h ** (a - 1)
        )


class BoundedLognormal:
    """Lognormal(median, sigma) truncated above at ``upper``."""

    def __init__(self, median: float, sigma: float, upper: float):
        if median <= 0 or sigma <= 0 or upper <= median:
            raise ValueError(
                f"bad lognormal parameters: median={median} sigma={sigma} upper={upper}"
            )
        self.mu = math.log(median)
        self.sigma = sigma
        self.upper = upper

    def sample(self, rng: random.Random) -> float:
        for _ in range(64):
            value = rng.lognormvariate(self.mu, self.sigma)
            if value <= self.upper:
                return value
        return self.upper


class FlowSizeDistribution:
    """The elephants-and-mice mixture behind Figure 1.

    With the defaults, ~0.4 % of flows are elephants (Pareto tail from
    10 MB) yet they carry >80 % of the bytes — the paper's ">10 MB flows
    account for more than 75 % of the traffic".
    """

    def __init__(
        self,
        elephant_probability: float = 0.004,
        mice_median_bytes: float = 8_000.0,
        mice_sigma: float = 1.6,
        elephant_alpha: float = 1.3,
        elephant_min_bytes: float = 10e6,
        elephant_max_bytes: float = 2e9,
        min_bytes: float = 80.0,
    ):
        if not 0 <= elephant_probability <= 1:
            raise ValueError(f"bad elephant probability {elephant_probability}")
        self.elephant_probability = elephant_probability
        self.min_bytes = min_bytes
        self.mice = BoundedLognormal(mice_median_bytes, mice_sigma, elephant_min_bytes)
        self.elephants = BoundedPareto(elephant_alpha, elephant_min_bytes, elephant_max_bytes)

    def sample(self, rng: random.Random) -> float:
        if rng.random() < self.elephant_probability:
            return self.elephants.sample(rng)
        return max(self.min_bytes, self.mice.sample(rng))

    def approximate_mean(self) -> float:
        """Mixture mean (mice mean approximated by the untruncated one)."""
        mice_mean = math.exp(self.mice.mu + self.mice.sigma**2 / 2)
        p = self.elephant_probability
        return (1 - p) * mice_mean + p * self.elephants.mean()


def exponential_interarrival(rng: random.Random, rate_per_s: float) -> float:
    """One Poisson-process interarrival gap, in seconds."""
    if rate_per_s <= 0:
        raise ValueError(f"rate must be positive, got {rate_per_s}")
    return rng.expovariate(rate_per_s)
