"""Synthetic backbone trace for the §2 motivation analysis.

The paper analyses a 48 h MAWI samplepoint-F capture (1 Gbps backbone)
plus enterprise traces; none are redistributable, so this module
implements a calibrated generative model instead:

- flow arrivals: Poisson;
- flow sizes: the elephants-and-mice mixture of
  :class:`repro.trafficgen.distributions.FlowSizeDistribution`;
- per-flow transmit rates: lognormal, with elephants faster than mice
  (backbone flows are bottlenecked elsewhere);
- packets: evenly spaced at the flow's rate (size/1500-byte segments).

Calibration targets (from §2's reported numbers): flows >10 MB carry
>75 % of bytes; the median number of flows with a packet in a 150 µs
window is ~4 and the 99th percentile ~14; restricted to >10 MB flows,
median ~1 and p99 ~6. The ``enterprise`` preset is sparser, matching
the paper's observation that its lab gateway and the M57 corpus show
"even fewer concurrent flows".

Concurrency is computed exactly (no packet enumeration): a flow with
first packet at ``s`` and inter-packet gap ``g`` has a packet in
``[t, t+w)`` iff some arrival index lands in the window — a closed-form
check, evaluated for every sampled window over the flows alive then.
"""

from __future__ import annotations

import bisect
import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.sim.timeunits import MICROSECOND, SECOND
from repro.trafficgen.distributions import FlowSizeDistribution

#: Elephants ship MTU-sized packets; mice (requests, small replies,
#: control traffic) average far smaller ones. The split matters for
#: Figure 2: window concurrency counts *packets*, so the mice's packet
#: rate — not their byte rate — sets the "all flows" curve.
ELEPHANT_PACKET_BYTES = 1500
MICE_PACKET_BYTES = 400


@dataclass(frozen=True)
class TraceFlow:
    """One flow of the synthetic trace (times in picoseconds)."""

    start: int
    size_bytes: float
    rate_bps: float
    num_packets: int
    packet_gap: int  # ps between packet arrivals

    @property
    def end(self) -> int:
        """Arrival time of the last packet."""
        return self.start + self.packet_gap * (self.num_packets - 1)

    def has_packet_in(self, window_start: int, window_len: int) -> bool:
        """True iff some packet arrives in [window_start, window_start+window_len)."""
        w_end = window_start + window_len
        if self.start >= w_end or self.end < window_start:
            return False
        if self.packet_gap == 0:
            return window_start <= self.start < w_end
        # First arrival index >= window_start:
        k = max(0, -(-(window_start - self.start) // self.packet_gap))
        arrival = self.start + k * self.packet_gap
        return k < self.num_packets and arrival < w_end


class SyntheticBackboneTrace:
    """A generated trace plus the Figure 1/2 analysis methods."""

    def __init__(
        self,
        rng: random.Random,
        duration_s: float = 6.0,
        flow_arrival_rate: float = 650.0,
        sizes: Optional[FlowSizeDistribution] = None,
        mice_rate_median_bps: float = 4e6,
        mice_rate_sigma: float = 1.0,
        elephant_rate_median_bps: float = 300e6,
        elephant_rate_sigma: float = 0.5,
        elephant_threshold_bytes: float = 10e6,
    ):
        if duration_s <= 0:
            raise ValueError(f"duration_s must be positive, got {duration_s}")
        self.rng = rng
        self.duration = round(duration_s * SECOND)
        self.elephant_threshold = elephant_threshold_bytes
        sizes = sizes or FlowSizeDistribution(
            elephant_probability=0.002,
            mice_median_bytes=4_000.0,
            mice_sigma=1.6,
            elephant_alpha=1.4,
        )
        self.flows: List[TraceFlow] = []
        t = 0.0
        while True:
            t += rng.expovariate(flow_arrival_rate)
            start = round(t * SECOND)
            if start >= self.duration:
                break
            size = sizes.sample(rng)
            if size >= elephant_threshold_bytes:
                rate = rng.lognormvariate(
                    math.log(elephant_rate_median_bps), elephant_rate_sigma
                )
                packet_bytes = ELEPHANT_PACKET_BYTES
            else:
                rate = rng.lognormvariate(math.log(mice_rate_median_bps), mice_rate_sigma)
                packet_bytes = MICE_PACKET_BYTES
            rate = min(rate, 1e9)  # the link itself is 1 Gbps
            num_packets = max(1, math.ceil(size / packet_bytes))
            flow_duration = size * 8 / rate * SECOND
            gap = round(flow_duration / num_packets)
            self.flows.append(
                TraceFlow(
                    start=start,
                    size_bytes=size,
                    rate_bps=rate,
                    num_packets=num_packets,
                    packet_gap=gap,
                )
            )
        self._starts = [flow.start for flow in self.flows]  # sorted by construction

    @classmethod
    def enterprise(cls, rng: random.Random, duration_s: float = 6.0) -> "SyntheticBackboneTrace":
        """The sparser enterprise-gateway preset (lab/M57 comparison)."""
        return cls(
            rng,
            duration_s=duration_s,
            flow_arrival_rate=250.0,
            sizes=FlowSizeDistribution(
                elephant_probability=0.001,
                mice_median_bytes=4_000.0,
                mice_sigma=1.6,
                elephant_alpha=1.4,
            ),
            mice_rate_median_bps=2e6,
            elephant_rate_median_bps=200e6,
        )

    # -- Figure 1 -----------------------------------------------------------

    def flow_sizes(self) -> List[float]:
        return [flow.size_bytes for flow in self.flows]

    def total_bytes(self) -> float:
        return sum(flow.size_bytes for flow in self.flows)

    def bytes_fraction_above(self, threshold_bytes: float) -> float:
        """Fraction of all bytes in flows of at least ``threshold_bytes``."""
        total = self.total_bytes()
        if total == 0:
            return 0.0
        big = sum(f.size_bytes for f in self.flows if f.size_bytes >= threshold_bytes)
        return big / total

    def size_cdfs(self, points: int = 200) -> Dict[str, List[tuple]]:
        """The two Figure 1 curves: CDF of flows and of bytes over size.

        Returns ``{"flows": [(size, F)], "bytes": [(size, F)]}``.
        """
        sizes = sorted(self.flow_sizes())
        if not sizes:
            return {"flows": [], "bytes": []}
        total_flows = len(sizes)
        total_bytes = sum(sizes)
        flows_curve = []
        bytes_curve = []
        cumulative_bytes = 0.0
        step = max(1, total_flows // points)
        for index, size in enumerate(sizes):
            cumulative_bytes += size
            if index % step == 0 or index == total_flows - 1:
                flows_curve.append((size, (index + 1) / total_flows))
                bytes_curve.append((size, cumulative_bytes / total_bytes))
        return {"flows": flows_curve, "bytes": bytes_curve}

    # -- Figure 2 -----------------------------------------------------------

    def concurrent_flows(
        self,
        window: int = 150 * MICROSECOND,
        samples: int = 2000,
        min_size_bytes: float = 0.0,
        rng: Optional[random.Random] = None,
    ) -> List[int]:
        """Concurrent-flow counts over ``samples`` random windows.

        A flow is concurrent in a window iff it has at least one packet
        arrival inside it — the paper's definition ("flows active in
        the small amount of time it takes for a packet to be processed").
        """
        rng = rng or self.rng
        counts: List[int] = []
        flows = self.flows
        starts = self._starts
        for _ in range(samples):
            t = rng.randrange(0, max(1, self.duration - window))
            # Flows starting after the window cannot participate.
            hi = bisect.bisect_right(starts, t + window)
            count = 0
            for flow in flows[:hi]:
                if flow.size_bytes < min_size_bytes:
                    continue
                if flow.has_packet_in(t, window):
                    count += 1
            counts.append(count)
        return counts

    def concurrency_quantiles(
        self,
        window: int = 150 * MICROSECOND,
        samples: int = 2000,
        min_size_bytes: float = 0.0,
    ) -> Dict[str, float]:
        """Median and p99 of the concurrent-flow distribution."""
        counts = sorted(self.concurrent_flows(window, samples, min_size_bytes))
        if not counts:
            return {"median": 0.0, "p99": 0.0}
        return {
            "median": counts[len(counts) // 2],
            "p99": counts[min(len(counts) - 1, int(len(counts) * 0.99))],
        }
