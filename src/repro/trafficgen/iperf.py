"""The closed-loop TCP testbed (iperf3's role).

Topology, mirroring the paper's two back-to-back servers::

    clients ──10GbE──▶ middlebox ──10GbE──▶ server
       ▲                                      │
       └────────────10GbE (ACK path)──────────┘

All client flows share the client NIC's link (as iperf3 processes share
the generator machine's port); the middlebox forwards both directions,
so data and ACKs both traverse the NF — which is also what makes the
symmetric designated-core hash matter.

Goodput is measured sender-side from cumulative-ACK progress over the
measurement window (warmup excluded), which keeps the measurement
correct even when the NF rewrites five-tuples (NAT).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.core.engine import MiddleboxEngine
from repro.metrics.reordering import ReorderingTracker
from repro.net.five_tuple import FiveTuple
from repro.net.packet import Packet
from repro.nic.link import Link
from repro.sim.engine import Simulator
from repro.sim.timeunits import MICROSECOND, SECOND
from repro.tcpstack.cubic import CubicCongestionControl
from repro.tcpstack.endpoint import (
    TcpConfig,
    TcpFlow,
    TcpReceiverEndpoint,
    TcpSenderEndpoint,
)
from repro.trafficgen.flows import is_toward_server, random_tcp_flows


@dataclass
class TcpTestbedResult:
    """What one closed-loop run produced."""

    duration_s: float
    per_flow_goodput_bps: Dict[FiveTuple, float]
    retransmissions: int
    fast_recoveries: int
    spurious_recoveries: int
    timeouts: int
    reorder_events: int
    final_dupthresh: Dict[FiveTuple, int] = field(default_factory=dict)
    #: Fraction of middlebox-egress data packets that left out of order
    #: (RFC 4737-style, measured by the testbed, not the endpoints).
    egress_reordering_rate: float = 0.0
    egress_reordering_extent: int = 0
    #: Full telemetry export of the middlebox engine, filled in by
    #: :func:`repro.experiments.harness.run_tcp` (empty when the testbed
    #: is driven directly).
    telemetry: Dict[str, object] = field(default_factory=dict)

    @property
    def total_goodput_bps(self) -> float:
        return sum(self.per_flow_goodput_bps.values())

    @property
    def total_goodput_gbps(self) -> float:
        return self.total_goodput_bps / 1e9


class TcpTestbed:
    """Client endpoints + middlebox + server endpoint, fully wired."""

    def __init__(
        self,
        sim: Simulator,
        engine: MiddleboxEngine,
        num_flows: int,
        rng: random.Random,
        cc_factory: Optional[Callable[[], object]] = None,
        link_rate_bps: float = 10e9,
        propagation_delay: int = 1 * MICROSECOND,
        tcp_config: Optional[TcpConfig] = None,
        flows: Optional[List[FiveTuple]] = None,
    ):
        self.sim = sim
        self.engine = engine
        self.rng = rng
        self.tcp_config = tcp_config or TcpConfig()
        cc_factory = cc_factory or (lambda: CubicCongestionControl(
            initial_cwnd=self.tcp_config.initial_cwnd,
            max_cwnd=self.tcp_config.max_cwnd,
        ))

        # Endpoint links carry a host-qdisc bound (Linux pfifo
        # txqueuelen 1000): senders that out-pace the wire drop locally
        # and proportionally to their sending rate, like real hosts.
        self.client_to_mb = Link(sim, link_rate_bps, propagation_delay,
                                 sink=self._into_middlebox, name="client->mb",
                                 queue_limit=1000)
        self.server_to_mb = Link(sim, link_rate_bps, propagation_delay,
                                 sink=self._into_middlebox, name="server->mb",
                                 queue_limit=1000)
        self.mb_to_client = Link(sim, link_rate_bps, propagation_delay,
                                 sink=self._deliver_to_client, name="mb->client")
        self.mb_to_server = Link(sim, link_rate_bps, propagation_delay,
                                 sink=self._deliver_to_server, name="mb->server")
        self.egress_order = ReorderingTracker()
        engine.set_egress(self._egress)

        five_tuples = flows if flows is not None else random_tcp_flows(num_flows, rng)
        self.server = TcpReceiverEndpoint(sim, self.server_to_mb, rng, self.tcp_config)
        self.senders: List[TcpSenderEndpoint] = []
        self._sender_by_ack_tuple: Dict[FiveTuple, TcpSenderEndpoint] = {}
        for index, five_tuple in enumerate(five_tuples):
            # Stagger SYNs so the handshakes and slow starts don't all
            # collide in one burst (launching many iperf3 processes is
            # similarly skewed in practice).
            flow = TcpFlow(five_tuple, start_at=index * 50 * MICROSECOND)
            sender = TcpSenderEndpoint(
                sim, flow, self.client_to_mb, cc_factory(), rng, self.tcp_config
            )
            self.senders.append(sender)
            self._sender_by_ack_tuple[five_tuple.reversed()] = sender

    # -- wiring -----------------------------------------------------------

    def _into_middlebox(self, packet: Packet, now: int) -> None:
        self.engine.receive(packet, now)

    def _egress(self, packet: Packet) -> None:
        if is_toward_server(packet.five_tuple.dst_ip):
            is_rexmit = isinstance(packet.app_data, tuple) and packet.app_data[1]
            if packet.payload_len > 0 and not is_rexmit:
                # Retransmissions legitimately run the sequence backwards;
                # only original transmissions measure middlebox reordering.
                self.egress_order.observe(packet.five_tuple, packet.seq)
            self.mb_to_server.send(packet)
        else:
            self.mb_to_client.send(packet)

    def _deliver_to_server(self, packet: Packet, now: int) -> None:
        self.server.receive(packet, now)

    def _deliver_to_client(self, packet: Packet, now: int) -> None:
        sender = self._sender_by_ack_tuple.get(packet.five_tuple)
        if sender is not None:
            sender.receive(packet, now)

    # -- execution -----------------------------------------------------------

    def run(self, duration: int, warmup: Optional[int] = None) -> TcpTestbedResult:
        """Run for ``duration`` ps; measure goodput after ``warmup``.

        Warmup defaults to a quarter of the duration (slow-start ramp,
        like discarding iperf3's first intervals).
        """
        if warmup is None:
            warmup = duration // 4
        if not 0 <= warmup < duration:
            raise ValueError(f"need 0 <= warmup < duration, got {warmup}, {duration}")
        for sender in self.senders:
            sender.start()
        self.sim.run(until=warmup)
        baseline = {s.flow.five_tuple: s.cum_acked for s in self.senders}
        self.sim.run(until=duration)
        window_s = (duration - warmup) / SECOND
        mss_bits = self.tcp_config.mss_payload * 8
        per_flow = {
            s.flow.five_tuple: (s.cum_acked - baseline[s.flow.five_tuple]) * mss_bits / window_s
            for s in self.senders
        }
        return TcpTestbedResult(
            duration_s=duration / SECOND,
            per_flow_goodput_bps=per_flow,
            retransmissions=sum(s.retransmissions for s in self.senders),
            fast_recoveries=sum(s.fast_recoveries for s in self.senders),
            spurious_recoveries=sum(s.spurious_recoveries for s in self.senders),
            timeouts=sum(s.timeouts for s in self.senders),
            reorder_events=sum(s.reorder_events for s in self.senders),
            final_dupthresh={s.flow.five_tuple: s.dupthresh for s in self.senders},
            egress_reordering_rate=self.egress_order.reordering_rate(),
            egress_reordering_extent=self.egress_order.max_extent(),
        )
