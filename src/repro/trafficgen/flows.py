"""Random flow-set construction.

The paper's Figure 7/9 experiments note that "sources and destinations
change randomly at every execution" — important because RSS fairness
depends entirely on which queues the random five-tuples collide on.
"""

from __future__ import annotations

import random
from typing import List, Set

from repro.net.five_tuple import PROTO_TCP, FiveTuple

#: Client addresses live in 10.0.0.0/16, servers in 10.1.0.0/16 — the
#: experiment harness uses the /16 to pick the egress direction.
CLIENT_NET = 0x0A000000
SERVER_NET = 0x0A010000


def random_tcp_flows(
    count: int,
    rng: random.Random,
    server_port: int = 5201,  # iperf3's default
) -> List[FiveTuple]:
    """``count`` distinct client->server TCP five-tuples."""
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    flows: List[FiveTuple] = []
    seen: Set[FiveTuple] = set()
    while len(flows) < count:
        src_ip = CLIENT_NET | rng.randrange(1, 0xFFFF)
        dst_ip = SERVER_NET | rng.randrange(1, 0xFFFF)
        src_port = rng.randrange(1024, 65536)
        flow = FiveTuple(src_ip, dst_ip, src_port, server_port, PROTO_TCP)
        if flow in seen:
            continue
        seen.add(flow)
        flows.append(flow)
    return flows


def is_toward_server(dst_ip: int) -> bool:
    """True if the address belongs to the server /16."""
    return (dst_ip & 0xFFFF0000) == SERVER_NET
