"""Workload generation.

- :mod:`repro.trafficgen.moongen` — an open-loop constant-rate packet
  generator in the role of MoonGen: 64 B TCP frames whose "variable
  payload content" gives uniformly distributed checksums.
- :mod:`repro.trafficgen.iperf` — the closed-loop TCP testbed harness
  in the role of iperf3: client endpoints, middlebox, server endpoint,
  full-duplex 10 GbE links.
- :mod:`repro.trafficgen.trace` — a synthetic backbone-trace generator
  calibrated to the paper's §2 measurements (MAWI is not shipped with
  this reproduction), driving Figures 1 and 2.
- :mod:`repro.trafficgen.distributions` — the heavy-tailed samplers.
- :mod:`repro.trafficgen.flows` — random flow-set construction
  ("sources and destinations change randomly at every execution").
"""

from repro.trafficgen.distributions import (
    BoundedLognormal,
    BoundedPareto,
    FlowSizeDistribution,
)
from repro.trafficgen.flows import random_tcp_flows
from repro.trafficgen.iperf import TcpTestbed, TcpTestbedResult
from repro.trafficgen.moongen import OpenLoopGenerator
from repro.trafficgen.trace import SyntheticBackboneTrace, TraceFlow

__all__ = [
    "OpenLoopGenerator",
    "TcpTestbed",
    "TcpTestbedResult",
    "SyntheticBackboneTrace",
    "TraceFlow",
    "random_tcp_flows",
    "FlowSizeDistribution",
    "BoundedPareto",
    "BoundedLognormal",
]
