"""An open-loop packet generator in the role of MoonGen.

Generates fixed-size TCP frames at a constant rate, spread over a flow
set. "Variable payload content, and therefore variable checksum" is
modelled by drawing the TCP checksum uniformly per packet — exactly the
property Sprayer's Flow Director configuration relies on.

Packets are emitted in small bursts (one simulator event per burst, the
way a NIC delivers descriptors) to keep event counts tractable at
14.88 Mpps; the burst size bounds the timestamp quantization.
"""

from __future__ import annotations

import random
from array import array
from typing import Callable, List, Optional

from repro.net.batch import PacketBatch
from repro.net.five_tuple import FiveTuple
from repro.net.packet import Packet, make_tcp_packet
from repro.net.tcp_flags import ACK, SYN
from repro.sim.engine import Simulator
from repro.sim.timeunits import SECOND

#: 10 GbE line rate for 64 B frames (84 wire bytes): 14.88 Mpps.
LINE_RATE_64B_PPS = 10e9 / (84 * 8)


class OpenLoopGenerator:
    """Constant-rate, fixed-size packet stream over a set of flows."""

    def __init__(
        self,
        sim: Simulator,
        sink: Callable[[Packet, int], None],
        flows: List[FiveTuple],
        rate_pps: float,
        rng: random.Random,
        frame_len: int = 64,
        burst: Optional[int] = None,
        open_connections: bool = True,
        arrival_process: str = "cbr",
        payload_len: int = 0,
    ):
        if payload_len < 0:
            raise ValueError(f"payload_len must be non-negative, got {payload_len}")
        if rate_pps <= 0:
            raise ValueError(f"rate_pps must be positive, got {rate_pps}")
        if not flows:
            raise ValueError("need at least one flow")
        if arrival_process not in ("cbr", "poisson"):
            raise ValueError(
                f"arrival_process must be 'cbr' or 'poisson', got {arrival_process!r}"
            )
        if arrival_process == "poisson":
            # Poisson arrivals are per-packet by definition.
            burst = 1
        if burst is None:
            # Auto-size: one simulator event per ~15 us of traffic, so
            # low rates are packet-smooth (no artificial burst queueing
            # in latency measurements) and line rate stays tractable.
            burst = min(32, max(1, round(rate_pps * 15e-6)))
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        not_tcp = [flow for flow in flows if flow.protocol != 6]
        if not_tcp:
            raise ValueError(f"not a TCP five-tuple: {not_tcp[0]}")
        self.arrival_process = arrival_process
        self.sim = sim
        self.sink = sink
        self.flows = list(flows)
        self.rate_pps = rate_pps
        self.rng = rng
        self.frame_len = frame_len
        self.burst = burst
        self.open_connections = open_connections
        #: Opt-in payload bytes per data packet (zero keeps the classic
        #: 64 B synthetic stream). One shared immutable buffer: payload
        #: *content* is constant, per-packet variability stays in the
        #: checksum draw, and payload-priced NFs (DPI scan cost, RE
        #: fingerprinting) see real bytes to work on.
        self.payload_len = payload_len
        self._payload: Optional[bytes] = bytes(payload_len) if payload_len else None
        #: Opt-in batch emission (the SoA spine): when set, each CBR
        #: burst is built as one columnar :class:`PacketBatch` and
        #: handed here instead of per-packet ``sink`` calls. The RNG
        #: draw order (one ``getrandbits(16)`` per packet) and the
        #: flow/seq rotation are identical to the scalar loop, so the
        #: packet stream is byte-for-byte the same. SYNs and poisson
        #: arrivals always stay on the scalar ``sink``.
        self.batch_sink: Optional[Callable[[PacketBatch, int], None]] = None
        #: Pre-built constant columns for one burst (see _burst).
        self._flags_col = array("H", (ACK,)) * burst
        self._frame_len_col = array("H", (frame_len,)) * burst
        self.packets_sent = 0
        self._next_flow = 0
        self._seq = [0] * len(self.flows)
        self._running = False
        self._burst_interval = round(burst * SECOND / rate_pps)

    def start(self, at: Optional[int] = None, duration: Optional[int] = None) -> None:
        """Begin generating; optionally stop after ``duration`` ps.

        If ``open_connections`` is set, one SYN per flow is emitted
        first (so stateful NFs have flow entries), then the data stream.
        """
        start_time = self.sim.now if at is None else at
        self._running = True
        self._stop_at = None if duration is None else start_time + duration
        if self.open_connections:
            self.sim.at(start_time, self._send_syns)
        self.sim.at(start_time, self._burst)

    def stop(self) -> None:
        self._running = False

    def _send_syns(self) -> None:
        now = self.sim.now
        for flow in self.flows:
            syn = make_tcp_packet(
                flow,
                flags=SYN,
                seq=0,
                tcp_checksum=self.rng.getrandbits(16),
                created_at=now,
                frame_len=self.frame_len,
            )
            self.sink(syn, now)

    def _burst(self) -> None:
        if not self._running:
            return
        now = self.sim.now
        if self._stop_at is not None and now >= self._stop_at:
            self._running = False
            return
        flows = self.flows
        n_flows = len(flows)
        seqs = self._seq
        getrandbits = self.rng.getrandbits
        sink = self.sink
        frame_len = self.frame_len
        # Constructed via Packet directly — the flows were validated as
        # TCP once at init, so the per-packet make_tcp_packet check is
        # pure overhead at 14.88 Mpps — and with positional arguments
        # (CPython keyword calls cost a dict per call).
        make = Packet
        index = self._next_flow
        batch_sink = self.batch_sink
        # Payload-carrying streams stay scalar: PacketBatch has no
        # payload column (the SoA spine is a headers-only hot path).
        if batch_sink is not None and self.arrival_process == "cbr" and not self.payload_len:
            batch = PacketBatch()
            # Column-wise construction: the per-burst-constant columns
            # (flags, frame length, timestamp) extend in one C call
            # each, so the per-packet loop touches only the columns
            # that actually vary. Row values are identical to
            # batch.append per packet.
            burst = self.burst
            b_flows = batch.flows
            b_seqs = batch.seqs
            b_checksums = batch.checksums
            if n_flows == 1:
                # Single flow (every fig6 point): the flow column is
                # constant and the seq column consecutive, so both
                # extend in one C call. The checksum draws keep the
                # exact per-packet RNG order.
                seq = seqs[0]
                b_flows.extend([flows[0]] * burst)
                b_seqs.extend(range(seq, seq + burst))
                seqs[0] = seq + burst
                b_checksums.extend([getrandbits(16) for _ in range(burst)])
            else:
                for _ in range(burst):
                    seq = seqs[index]
                    seqs[index] = seq + 1
                    b_flows.append(flows[index])
                    b_seqs.append(seq)
                    b_checksums.append(getrandbits(16))
                    index += 1
                    if index == n_flows:
                        index = 0
            batch.flags.extend(self._flags_col)
            batch.frame_lens.extend(self._frame_len_col)
            batch.created_ats.extend(array("q", (now,)) * burst)
            batch_sink(batch, now)
        else:
            payload_len = self.payload_len
            payload = self._payload
            for _ in range(self.burst):
                seq = seqs[index]
                seqs[index] = seq + 1
                packet = make(
                    flows[index], ACK, seq, 0, payload_len, payload,
                    getrandbits(16), frame_len, now
                )
                sink(packet, now)
                index += 1
                if index == n_flows:
                    index = 0
        self._next_flow = index
        self.packets_sent += self.burst
        if self.arrival_process == "poisson":
            gap = round(self.rng.expovariate(self.rate_pps) * SECOND)
            self.sim.post_after(max(1, gap), self._burst)
        else:
            self.sim.post_after(self._burst_interval, self._burst)
