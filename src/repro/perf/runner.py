"""Timing, baseline discovery, and regression comparison.

The runner executes the registered workloads, times each with
``perf_counter``, and assembles a result document::

    {
      "schema": 1,
      "date": "2026-08-06",
      "mode": "full" | "quick",
      "python": "3.12.3",
      "workloads": {
        "fig6a": {"wall_s": 4.83, "ops": 6, "ops_per_s": ...,
                   "fingerprint": "9f3a0c11"},
        ...
      }
    }

Comparison against a baseline flags two kinds of failure:

- a **timing regression**: wall time grew by more than the tolerance
  (wall clocks are noisy, so this is a ratio gate, default +30 %);
- a **fingerprint mismatch**: the workload computed different simulated
  results than the baseline — an exact gate, because the workloads are
  pure functions of pinned seeds. Speed changes are negotiable;
  behaviour changes are not.
"""

from __future__ import annotations

import cProfile
import datetime
import io as _io
import platform
import pstats
import sys
import time
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

from repro.perf.io import bench_filename, find_bench_files, read_json, write_json
from repro.perf.workloads import WORKLOADS

#: Repo root (this file lives at src/repro/perf/runner.py).
REPO_ROOT = Path(__file__).resolve().parents[3]

#: Default allowed wall-time growth before a workload counts as regressed.
DEFAULT_TOLERANCE = 0.30


def run_suite(
    quick: bool = False,
    workload_names: Optional[Iterable[str]] = None,
    profile: bool = False,
    date: Optional[str] = None,
    jobs: int = 1,
) -> Dict:
    """Run the (selected) workloads once and return the result document.

    ``jobs`` fans the macro sweeps out over worker processes; their
    fingerprints are identical at any job count (rows are returned in
    canonical sweep order with execution-order-independent seeds), so
    only the wall times change. With ``profile=True`` each workload runs
    under ``cProfile`` and its top functions by cumulative time are
    printed to stderr — wall times are then inflated and not
    comparable, so profiled runs should not be written as baselines.
    """
    names = list(workload_names) if workload_names else list(WORKLOADS)
    unknown = [n for n in names if n not in WORKLOADS]
    if unknown:
        raise KeyError(f"unknown workloads: {unknown}; have {list(WORKLOADS)}")
    results: Dict[str, Dict] = {}
    for name in names:
        fn = WORKLOADS[name]
        if profile:
            profiler = cProfile.Profile()
            start = time.perf_counter()
            profiler.enable()
            ops, fingerprint = fn(quick, jobs)
            profiler.disable()
            wall = time.perf_counter() - start
            stream = _io.StringIO()
            pstats.Stats(profiler, stream=stream).sort_stats("cumulative").print_stats(15)
            print(f"--- profile: {name} ---\n{stream.getvalue()}", file=sys.stderr)
        else:
            start = time.perf_counter()
            ops, fingerprint = fn(quick, jobs)
            wall = time.perf_counter() - start
        results[name] = {
            "wall_s": round(wall, 4),
            "ops": ops,
            "ops_per_s": round(ops / wall, 1) if wall > 0 else None,
            "fingerprint": fingerprint,
        }
    return {
        "schema": 1,
        # Host tooling: the bench file is stamped with the real date on
        # purpose — it never feeds a simulated result.
        "date": date or datetime.date.today().isoformat(),  # repro-lint: disable=SPR002
        "mode": "quick" if quick else "full",
        "python": platform.python_version(),
        "platform": platform.platform(),
        "profiled": profile,
        "jobs": jobs,
        "workloads": results,
    }


def write_bench(result: Dict, out_dir: Optional[Path] = None) -> Path:
    """Write the result as ``BENCH_<date>[-quick].json`` in ``out_dir``."""
    out_dir = Path(out_dir) if out_dir else REPO_ROOT
    name = bench_filename(result["date"], result["mode"] == "quick")
    return write_json(out_dir / name, result)


def find_baseline(
    quick: bool, out_dir: Optional[Path] = None, today: Optional[str] = None
) -> Optional[Path]:
    """The most recent committed baseline of the same mode, if any.

    A file stamped with today's date is skipped — it is this run's own
    output (or a leftover from a few minutes ago), not a baseline.
    """
    out_dir = Path(out_dir) if out_dir else REPO_ROOT
    today = today or datetime.date.today().isoformat()  # repro-lint: disable=SPR002
    own_name = bench_filename(today, quick)
    candidates = [p for p in find_bench_files(out_dir, quick) if p.name != own_name]
    return candidates[-1] if candidates else None


def load_baseline(path: Path) -> Dict:
    return read_json(Path(path))


def compare_results(
    current: Dict, baseline: Dict, tolerance: float = DEFAULT_TOLERANCE
) -> Tuple[List[str], List[str]]:
    """Compare a run against a baseline.

    Returns ``(failures, notes)``: failures are timing regressions
    beyond ``tolerance`` and fingerprint mismatches; notes are
    informational lines (improvements, workloads without a baseline
    entry, mode mismatches).
    """
    failures: List[str] = []
    notes: List[str] = []
    if current.get("mode") != baseline.get("mode"):
        notes.append(
            f"baseline mode {baseline.get('mode')!r} != current "
            f"{current.get('mode')!r}; timing comparison skipped"
        )
        return failures, notes
    if baseline.get("profiled"):
        notes.append("baseline was recorded under cProfile; timings skipped")
        return failures, notes
    compare_walls = current.get("jobs", 1) == baseline.get("jobs", 1)
    if not compare_walls:
        # Fingerprints must still match across job counts (canonical
        # sweep order), but wall clocks are apples-to-oranges.
        notes.append(
            f"baseline jobs={baseline.get('jobs', 1)} != current "
            f"jobs={current.get('jobs', 1)}; timing comparison skipped"
        )
    base_workloads = baseline.get("workloads", {})
    for name, cur in current.get("workloads", {}).items():
        base = base_workloads.get(name)
        if base is None:
            notes.append(f"{name}: no baseline entry (new workload)")
            continue
        if cur["fingerprint"] != base["fingerprint"]:
            failures.append(
                f"{name}: fingerprint {cur['fingerprint']} != baseline "
                f"{base['fingerprint']} — simulated results changed"
            )
        if not compare_walls:
            continue
        base_wall = base.get("wall_s") or 0.0
        cur_wall = cur.get("wall_s") or 0.0
        if base_wall > 0 and cur_wall > base_wall * (1.0 + tolerance):
            failures.append(
                f"{name}: {cur_wall:.3f}s vs baseline {base_wall:.3f}s "
                f"(+{(cur_wall / base_wall - 1) * 100:.0f}% > +{tolerance * 100:.0f}%)"
            )
        elif base_wall > 0 and cur_wall < base_wall * (1.0 - tolerance):
            notes.append(
                f"{name}: {cur_wall:.3f}s vs baseline {base_wall:.3f}s "
                f"({(1 - cur_wall / base_wall) * 100:.0f}% faster)"
            )
    return failures, notes


def format_report(result: Dict) -> str:
    """A small human-readable table of the run."""
    lines = [f"perf suite ({result['mode']}) — {result['date']}"]
    lines.append(f"{'workload':<12} {'wall_s':>9} {'ops':>9} {'ops/s':>12}  fingerprint")
    for name, entry in result["workloads"].items():
        ops_per_s = entry["ops_per_s"]
        lines.append(
            f"{name:<12} {entry['wall_s']:>9.3f} {entry['ops']:>9} "
            f"{(f'{ops_per_s:,.0f}' if ops_per_s else '-'):>12}  {entry['fingerprint']}"
        )
    return "\n".join(lines)
