"""The pinned benchmark workloads.

Each workload is a plain callable
``fn(quick: bool, jobs: int = 1) -> (ops, fingerprint)`` registered in
:data:`WORKLOADS`. The runner times the call; the workload returns how
many "operations" it performed (for ops/s reporting — what an operation
is varies per workload and only needs to be stable) and a deterministic
fingerprint of its computed results. Fingerprints are pure functions of
the pinned seeds, so they must match across runs and machines — and
across ``jobs`` settings: the macro sweeps return rows in canonical
order with per-point seeds independent of execution order, so a
parallel run fingerprints identically to a serial one. A mismatch
against the baseline means a change altered simulated behaviour, not
just its speed.

Micro workloads isolate one hot subsystem (Toeplitz hashing, steering
decisions, the event loop) and ignore ``jobs``; macro workloads run the
real Figure 6a/7a experiment code at pinned parameters through the
shared sweep runner.
"""

from __future__ import annotations

import json
import os
import random
import zlib
from typing import Callable, Dict, Tuple

from repro.core.designated import DesignatedCoreMap
from repro.nic.rss import DEFAULT_RSS_KEY, SYMMETRIC_RSS_KEY, RssHasher
from repro.sim.engine import Simulator
from repro.trafficgen.flows import random_tcp_flows

Workload = Callable[..., Tuple[int, str]]


def _fingerprint(value) -> str:
    """Stable hex digest of any JSON-serializable value."""
    payload = json.dumps(value, sort_keys=True, default=str).encode()
    return f"{zlib.crc32(payload):08x}"


# -- micro -----------------------------------------------------------------


def micro_hash(quick: bool, jobs: int = 1) -> Tuple[int, str]:
    """Toeplitz hashing: cold (table-driven) plus memoized repeats."""
    n_flows = 2_000 if quick else 20_000
    passes = 3 if quick else 10
    rng = random.Random(42)
    flows = random_tcp_flows(n_flows, rng)
    acc = 0
    ops = 0
    for key in (DEFAULT_RSS_KEY, SYMMETRIC_RSS_KEY):
        hasher = RssHasher(num_queues=8, key=key)
        hash_fn = hasher.hash
        for _ in range(passes):
            for flow in flows:
                acc ^= hash_fn(flow)
                ops += 1
    return ops, _fingerprint(acc)


def micro_steer(quick: bool, jobs: int = 1) -> Tuple[int, str]:
    """Designated-core decisions over a flow set, both directions."""
    n_flows = 2_000 if quick else 20_000
    passes = 3 if quick else 10
    rng = random.Random(43)
    flows = random_tcp_flows(n_flows, rng)
    dmap = DesignatedCoreMap(num_cores=8)
    core_for = dmap.core_for
    acc = 0
    ops = 0
    for _ in range(passes):
        for flow in flows:
            acc = (acc * 31 + core_for(flow)) & 0xFFFFFFFF
            acc = (acc * 31 + core_for(flow.reversed())) & 0xFFFFFFFF
            ops += 2
    return ops, _fingerprint(acc)


def micro_event_loop(quick: bool, jobs: int = 1) -> Tuple[int, str]:
    """Event-loop churn: schedule/fire plus heavy timer cancellation."""
    n_events = 20_000 if quick else 200_000
    sim = Simulator()
    state = {"fired": 0}

    def tick() -> None:
        state["fired"] += 1

    # Fire-and-forget events at distinct times.
    for i in range(n_events):
        sim.post(i * 10, tick)
    # A cancelled timer for every 4 live events, exercising the lazy
    # cancellation and auto-compaction paths.
    for i in range(n_events // 4):
        sim.at(i * 40 + 1, tick).cancel()
    sim.run()
    fired = state["fired"]
    return fired, _fingerprint([fired, sim.now, sim.has_live_events()])


# -- macro -----------------------------------------------------------------


def macro_fig6a(quick: bool, jobs: int = 1) -> Tuple[int, str]:
    """The Figure 6a sweep (processing rate vs NF cycles), pinned."""
    from repro.experiments.fig6 import run_fig6a
    from repro.experiments.runner import SweepRunner
    from repro.sim.timeunits import MILLISECOND

    runner = SweepRunner(jobs=jobs)
    if quick:
        rows = run_fig6a(
            cycles_sweep=(0, 10000),
            duration=4 * MILLISECOND,
            warmup=1 * MILLISECOND,
            seed=1,
            runner=runner,
        )
    else:
        rows = run_fig6a(seed=1, runner=runner)
    return len(rows), _fingerprint(rows)


def macro_fig6a_scalar(quick: bool, jobs: int = 1) -> Tuple[int, str]:
    """Figure 6a on the *scalar* spine: the batch spine's reference.

    The sweep itself is identical to :func:`macro_fig6a`, which runs on
    the default SoA batch spine; pinning ``REPRO_SPINE=scalar`` for the
    duration runs the per-packet data path instead. Because the batch
    spine is byte-identical by construction, both workloads must report
    the *same fingerprint* in every BENCH file (the CI ``soa-smoke``
    job asserts exactly that) — only the wall times differ, and their
    ratio is the committed record of what the SoA spine buys.
    """
    saved = os.environ.get("REPRO_SPINE")
    os.environ["REPRO_SPINE"] = "scalar"
    try:
        return macro_fig6a(quick, jobs)
    finally:
        if saved is None:
            del os.environ["REPRO_SPINE"]
        else:
            os.environ["REPRO_SPINE"] = saved


def macro_fig7a(quick: bool, jobs: int = 1) -> Tuple[int, str]:
    """The Figure 7a sweep (processing rate vs flow count), pinned."""
    from repro.experiments.fig7 import run_fig7a
    from repro.experiments.runner import SweepRunner
    from repro.sim.timeunits import MILLISECOND

    runner = SweepRunner(jobs=jobs)
    if quick:
        rows = run_fig7a(
            flow_sweep=(1, 16, 128),
            duration=4 * MILLISECOND,
            warmup=1 * MILLISECOND,
            seed=1,
            runner=runner,
        )
    else:
        rows = run_fig7a(seed=1, runner=runner)
    return len(rows), _fingerprint(rows)


def macro_figr(quick: bool, jobs: int = 1) -> Tuple[int, str]:
    """The Figure R resilience study (core slowdown, 3 modes), pinned."""
    from repro.experiments.figr import run_figr
    from repro.experiments.runner import SweepRunner
    from repro.sim.timeunits import MILLISECOND

    runner = SweepRunner(jobs=jobs)
    if quick:
        rows, timeline = run_figr(
            duration=6 * MILLISECOND,
            warmup=1 * MILLISECOND,
            fault_at=2 * MILLISECOND,
            fault_until=4 * MILLISECOND,
            seed=1,
            runner=runner,
        )
    else:
        rows, timeline = run_figr(seed=1, runner=runner)
    return len(rows) + len(timeline), _fingerprint([rows, timeline])


def macro_figs(quick: bool, jobs: int = 1) -> Tuple[int, str]:
    """The Figure S head-to-head (SCR vs Sprayer, flood+crash), pinned."""
    from repro.experiments.figs import run_figs
    from repro.experiments.runner import SweepRunner
    from repro.sim.timeunits import MILLISECOND

    runner = SweepRunner(jobs=jobs)
    if quick:
        panels = run_figs(
            duration=6 * MILLISECOND,
            warmup=1 * MILLISECOND,
            fault_at=3 * MILLISECOND,
            seed=1,
            runner=runner,
        )
    else:
        panels = run_figs(seed=1, runner=runner)
    rows = panels["flood"] + panels["crash"]
    return len(rows), _fingerprint(panels)


def macro_figc(quick: bool, jobs: int = 1) -> Tuple[int, str]:
    """The Figure C cluster serving study (autoscale + crash), pinned.

    Both sizes are reduced against the reporting run: the bench tracks
    the serving stack's wall-time cost (dispatch, live migration,
    autoscaler ticks, SLO bucketing), which does not need the full
    O(10^5)-flow trace to regress visibly.
    """
    from repro.experiments.figc import run_figc
    from repro.experiments.runner import SweepRunner

    runner = SweepRunner(jobs=jobs)
    shared = dict(
        num_cores=2,
        nf_cycles=2000,
        crash_ms=2,
        steady_ms=1,
        epoch_ms=0.5,
        min_hosts=1,
        max_hosts=4,
        migration_base_us=50.0,
        seed=1,
        runner=runner,
    )
    if quick:
        rows, timeline, phases = run_figc(
            num_hosts=2,
            arrival_rate=1e5,
            trace_ms=3,
            duration_ms=5,
            drain_ms=4,
            max_packets_per_flow=3,
            **shared,
        )
    else:
        rows, timeline, phases = run_figc(
            num_hosts=3,
            arrival_rate=4e5,
            trace_ms=6,
            duration_ms=9,
            drain_ms=7,
            max_packets_per_flow=4,
            **shared,
        )
    return len(rows) + len(timeline), _fingerprint([rows, timeline, phases])


def macro_figp(quick: bool, jobs: int = 1) -> Tuple[int, str]:
    """The Figure P planner race (seven policies x the chain mix).

    Covers the planner end to end: source inference over every chain
    stage, plan synthesis, chain construction, and the payload-carrying
    scalar open-loop path the race runs on.
    """
    from repro.experiments.figp import run_figp
    from repro.experiments.runner import SweepRunner
    from repro.sim.timeunits import MILLISECOND

    runner = SweepRunner(jobs=jobs)
    if quick:
        panels = run_figp(
            duration=2 * MILLISECOND,
            warmup=1 * MILLISECOND,
            seed=1,
            runner=runner,
        )
    else:
        panels = run_figp(seed=1, runner=runner)
    rows = panels["throughput"] + panels["p99"]
    return len(rows), _fingerprint(panels)


#: Registration order is execution order: micro first (fast feedback),
#: then the macro sweeps.
WORKLOADS: Dict[str, Workload] = {
    "hash": micro_hash,
    "steer": micro_steer,
    "event_loop": micro_event_loop,
    "fig6a": macro_fig6a,
    "fig6a_scalar": macro_fig6a_scalar,
    "fig7a": macro_fig7a,
    "figr": macro_figr,
    "figs": macro_figs,
    "figc": macro_figc,
    "figp": macro_figp,
}
