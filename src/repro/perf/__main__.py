"""``python -m repro.perf`` — run the perf suite and gate regressions.

Examples::

    python -m repro.perf                  # full suite, BENCH_<date>.json
    python -m repro.perf --quick          # CI-sized, BENCH_<date>-quick.json
    python -m repro.perf --workloads fig6a,hash
    python -m repro.perf --baseline BENCH_2026-08-06.json --tolerance 0.2
    python -m repro.perf --profile        # cProfile per workload (no write)

Exit status 1 means a workload regressed beyond the tolerance or
computed different results than the baseline (fingerprint mismatch).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.perf.runner import (
    DEFAULT_TOLERANCE,
    REPO_ROOT,
    compare_results,
    find_baseline,
    format_report,
    load_baseline,
    run_suite,
    write_bench,
)
from repro.perf.workloads import WORKLOADS


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.perf",
        description="Run the pinned perf workloads and compare against a baseline.",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="CI-sized parameters (seconds, not tens of seconds)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for the macro sweeps (default 1 = serial; "
             "fingerprints are identical at any job count)",
    )
    parser.add_argument(
        "--workloads", metavar="NAMES",
        help=f"comma-separated subset of: {', '.join(WORKLOADS)}",
    )
    parser.add_argument(
        "--out", metavar="DIR", type=Path, default=None,
        help="directory for BENCH_<date>.json (default: repo root)",
    )
    parser.add_argument(
        "--baseline", metavar="PATH", type=Path, default=None,
        help="explicit baseline JSON (default: newest same-mode BENCH file)",
    )
    parser.add_argument(
        "--tolerance", type=float, default=DEFAULT_TOLERANCE, metavar="FRAC",
        help="allowed wall-time growth before failing (default %(default)s)",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="run each workload under cProfile (implies --no-write)",
    )
    parser.add_argument(
        "--no-write", action="store_true",
        help="do not write a BENCH file (compare only)",
    )
    args = parser.parse_args(argv)

    names = args.workloads.split(",") if args.workloads else None
    out_dir = args.out or REPO_ROOT

    # Resolve the baseline BEFORE writing this run's file, so a re-run
    # on the same day never compares against itself.
    baseline_path = args.baseline
    if baseline_path is None:
        baseline_path = find_baseline(args.quick, out_dir)

    result = run_suite(
        quick=args.quick, workload_names=names, profile=args.profile, jobs=args.jobs
    )
    print(format_report(result))

    wrote = None
    if not args.no_write and not args.profile:
        wrote = write_bench(result, out_dir)
        print(f"\nwrote {wrote}")

    if baseline_path is None:
        print("no baseline found — this run is the first baseline")
        return 0

    baseline = load_baseline(baseline_path)
    failures, notes = compare_results(result, baseline, tolerance=args.tolerance)
    print(f"\nbaseline: {baseline_path}")
    for note in notes:
        print(f"  note: {note}")
    for failure in failures:
        print(f"  FAIL: {failure}")
    if failures:
        return 1
    print("  OK: within tolerance, fingerprints match")
    return 0


if __name__ == "__main__":
    sys.exit(main())
