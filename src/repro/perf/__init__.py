"""Performance-regression harness for the simulator itself.

The experiments in this repo are CPU-bound pure Python; a careless
change to a hot path (the event loop, the NIC receive chain, the
Toeplitz caches) silently turns a 5-second figure sweep into a
50-second one. This package pins a small suite of micro and macro
workloads, times them, and compares against the last committed
baseline:

- ``python -m repro.perf`` runs the full suite and writes
  ``BENCH_<date>.json`` at the repo root;
- ``python -m repro.perf --quick`` runs the CI-sized variant (writes
  ``BENCH_<date>-quick.json``) and is wired into the ``perf-smoke``
  CI job;
- each workload also reports a deterministic *fingerprint* of its
  simulated results, so a perf run doubles as a check that an
  optimization did not change what the simulator computes.

Timing comparisons are tolerance-gated (wall clocks are noisy);
fingerprint comparisons are exact.
"""

from repro.perf.runner import (
    REPO_ROOT,
    compare_results,
    find_baseline,
    run_suite,
    write_bench,
)
from repro.perf.workloads import WORKLOADS

__all__ = [
    "REPO_ROOT",
    "WORKLOADS",
    "compare_results",
    "find_baseline",
    "run_suite",
    "write_bench",
]
