"""Result serialization shared by the perf CLI and the pytest benchmarks.

One code path writes every benchmark artifact the repo produces:

- ``BENCH_<date>.json`` / ``BENCH_<date>-quick.json`` files at the repo
  root (:func:`bench_filename`, :func:`write_json`, :func:`find_bench_files`);
- the human-readable table log (``benchmarks/latest_tables.txt``)
  appended to by the pytest-benchmark suite (:class:`TableLog`).
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Dict, List, Optional

#: BENCH file name pattern: date stamp, optional -quick marker.
_BENCH_RE = re.compile(r"^BENCH_(\d{4}-\d{2}-\d{2})(-quick)?\.json$")


def bench_filename(date: str, quick: bool) -> str:
    """``BENCH_<date>.json``, with a ``-quick`` marker for CI-sized runs."""
    suffix = "-quick" if quick else ""
    return f"BENCH_{date}{suffix}.json"


def write_json(path: Path, payload: Dict) -> Path:
    """Write ``payload`` as stable, human-diffable JSON."""
    path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    return path


def read_json(path: Path) -> Dict:
    return json.loads(path.read_text())


def find_bench_files(root: Path, quick: bool) -> List[Path]:
    """All baseline files of the given mode under ``root``, oldest first.

    Quick and full baselines never compare against each other — the
    workload parameters differ, so the timings are incommensurable.
    The ISO date stamp makes lexical order chronological.
    """
    matches = []
    for path in root.iterdir() if root.is_dir() else []:
        m = _BENCH_RE.match(path.name)
        if m and bool(m.group(2)) == quick:
            matches.append(path)
    return sorted(matches, key=lambda p: p.name)


class TableLog:
    """Append-per-session table log (first write truncates the file)."""

    def __init__(self, path: Path):
        self.path = Path(path)
        self._titles: List[str] = []

    def add(self, text: str, title: Optional[str] = None) -> None:
        mode = "w" if not self._titles else "a"
        self._titles.append(title or "")
        with open(self.path, mode) as handle:
            handle.write(text + "\n\n")
