"""Analytic models used to validate the simulator.

The cost model and event engine are only trustworthy if they reproduce
what queueing theory predicts in the regimes where theory is exact.
:mod:`repro.analysis.queueing` provides the closed forms (D/D/1, M/D/1,
and the multi-queue spraying analogue); the validation test suite runs
the simulator against them.
"""

from repro.analysis.queueing import (
    md1_mean_sojourn,
    md1_mean_wait,
    mm1_mean_wait,
    sprayed_mean_sojourn,
    utilization,
)

__all__ = [
    "utilization",
    "md1_mean_wait",
    "md1_mean_sojourn",
    "mm1_mean_wait",
    "sprayed_mean_sojourn",
]
