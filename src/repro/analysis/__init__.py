"""Analytic (queueing-theory) models used to validate the simulator.

The cost model and event engine are only trustworthy if they reproduce
what queueing theory predicts in the regimes where theory is exact.
:mod:`repro.analysis.queueing` provides the closed forms (D/D/1, M/D/1,
M/M/1, and the multi-queue spraying analogue); the validation test
suite runs the simulator against them.

Not to be confused with :mod:`repro.lint`, the *static-analysis*
package: ``repro.analysis`` is mathematics about queues,
``repro.lint`` is AST checking of this repo's own source (writing
partition, simulation purity). The two grew up under different PRs and
the names stay as-is so existing imports remain stable — if this
package is ever renamed (``repro.queueing`` would be the natural home),
keep a shim module re-exporting these symbols.
"""

from repro.analysis.queueing import (
    md1_mean_sojourn,
    md1_mean_wait,
    mm1_mean_wait,
    sprayed_mean_sojourn,
    utilization,
)

__all__ = [
    "utilization",
    "md1_mean_wait",
    "md1_mean_sojourn",
    "mm1_mean_wait",
    "sprayed_mean_sojourn",
]
