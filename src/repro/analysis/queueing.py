"""Closed-form queueing results for simulator validation.

All times are in the same (arbitrary) unit as the service time passed
in; the validation tests use picoseconds.

- **D/D/1** (CBR arrivals, deterministic service, rho < 1): no queueing
  at all — sojourn = service time. The simulator must match exactly.
- **M/D/1** (Poisson arrivals, deterministic service): the
  Pollaczek-Khinchine mean wait specializes to
  ``W = rho * s / (2 * (1 - rho))``.
- **Sprayed M/D/1 bank**: uniformly spraying a Poisson stream of rate
  lambda over ``n`` independent single-server queues thins it into
  ``n`` Poisson streams of rate lambda/n (each an M/D/1 with
  rho' = rho). Spraying therefore does *not* reduce per-packet waiting
  at equal utilization — its wins are capacity (n servers for one
  flow) and burst parallelism; the Figure 8 latency gap comes from
  bursts, which is why that experiment uses a bursty generator.
"""

from __future__ import annotations


def utilization(arrival_rate: float, service_time: float) -> float:
    """rho = lambda * s (single server)."""
    if arrival_rate < 0 or service_time < 0:
        raise ValueError("arrival_rate and service_time must be non-negative")
    return arrival_rate * service_time


def md1_mean_wait(arrival_rate: float, service_time: float) -> float:
    """Mean queueing delay (excluding service) of an M/D/1 queue."""
    rho = utilization(arrival_rate, service_time)
    if not 0 <= rho < 1:
        raise ValueError(f"M/D/1 requires 0 <= rho < 1, got {rho}")
    return rho * service_time / (2 * (1 - rho))


def md1_mean_sojourn(arrival_rate: float, service_time: float) -> float:
    """Mean time in system (wait + service) of an M/D/1 queue."""
    return md1_mean_wait(arrival_rate, service_time) + service_time


def mm1_mean_wait(arrival_rate: float, mean_service_time: float) -> float:
    """Mean queueing delay of an M/M/1 queue (for reference)."""
    rho = utilization(arrival_rate, mean_service_time)
    if not 0 <= rho < 1:
        raise ValueError(f"M/M/1 requires 0 <= rho < 1, got {rho}")
    return rho * mean_service_time / (1 - rho)


def sprayed_mean_sojourn(
    arrival_rate: float, service_time: float, num_queues: int
) -> float:
    """Mean sojourn when a Poisson stream is sprayed over ``num_queues``
    independent deterministic servers (thinned M/D/1 per queue)."""
    if num_queues < 1:
        raise ValueError(f"num_queues must be >= 1, got {num_queues}")
    return md1_mean_sojourn(arrival_rate / num_queues, service_time)
