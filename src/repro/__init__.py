"""Sprayer: packet spraying for software middleboxes — a reproduction.

A simulation-based reproduction of "A Case for Spraying Packets in
Software Middleboxes" (Sadok, Campista, Costa — HotNets-XVII, 2018).

Public API tour:

- :mod:`repro.core` — the Sprayer framework: engine, programming model,
  flow-state API, designated cores.
- :mod:`repro.steering` — steering policies (RSS baseline, Sprayer, and
  the §7 extensions).
- :mod:`repro.nfs` — network functions (NAT, firewall, load balancer,
  monitor, redundancy elimination, DPI, the synthetic evaluation NF).
- :mod:`repro.sim`, :mod:`repro.net`, :mod:`repro.nic`, :mod:`repro.cpu`
  — the simulated substrate (event engine, packets, NIC, cores).
- :mod:`repro.tcpstack`, :mod:`repro.trafficgen` — TCP endpoints and
  workload generators.
- :mod:`repro.experiments` — runners that regenerate every figure and
  table of the paper.
"""

from repro.core import MiddleboxConfig, MiddleboxEngine, NetworkFunction, NfContext
from repro.sim import Simulator

__version__ = "1.0.0"

__all__ = [
    "Simulator",
    "MiddleboxEngine",
    "MiddleboxConfig",
    "NetworkFunction",
    "NfContext",
    "__version__",
]
