"""Deterministic random-number streams.

Every stochastic component (traffic generator, flow-size sampler, NF
think-time jitter, ...) draws from its own named stream so that changing
one component's consumption pattern does not perturb the others. Streams
are derived from a single experiment seed, making whole runs reproducible
from one integer.
"""

from __future__ import annotations

import random
import zlib
from typing import Dict


class RngStreams:
    """A family of independent ``random.Random`` streams under one seed.

    >>> streams = RngStreams(seed=42)
    >>> a = streams.get("arrivals")
    >>> b = streams.get("sizes")
    >>> a is streams.get("arrivals")
    True
    """

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._streams: Dict[str, random.Random] = {}

    def get(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use.

        The per-stream seed mixes the experiment seed with a CRC of the
        stream name, so distinct names give uncorrelated streams and the
        mapping is stable across processes (unlike ``hash()``, which is
        salted per interpreter).
        """
        stream = self._streams.get(name)
        if stream is None:
            substream_seed = (self.seed << 32) ^ zlib.crc32(name.encode("utf-8"))
            stream = random.Random(substream_seed)
            self._streams[name] = stream
        return stream

    def fork(self, salt: int) -> "RngStreams":
        """Derive a new independent family (e.g. per experiment repeat)."""
        return RngStreams(seed=(self.seed * 1_000_003 + salt) & 0xFFFFFFFFFFFFFFFF)
