"""Simulation time units.

All simulation timestamps are integers in **picoseconds**. The choice is
deliberate: a CPU cycle at 2.0 GHz is exactly 500 ps, and serialization
times on a 10 Gbps wire are sub-nanosecond-exact, so integer picoseconds
make every latency in the system representable without floating-point
drift. Python integers are unbounded, so a multi-second simulation does
not overflow.
"""

from __future__ import annotations

#: One picosecond — the base unit (1).
PICOSECOND = 1
#: One nanosecond in picoseconds.
NANOSECOND = 1_000
#: One microsecond in picoseconds.
MICROSECOND = 1_000_000
#: One millisecond in picoseconds.
MILLISECOND = 1_000_000_000
#: One second in picoseconds.
SECOND = 1_000_000_000_000


def cycles_to_time(cycles: float, clock_hz: float) -> int:
    """Convert a cycle count at ``clock_hz`` into integer picoseconds.

    The result is rounded to the nearest picosecond; at 2.0 GHz one cycle
    is exactly 500 ps so no rounding occurs for the default clock.
    """
    if clock_hz <= 0:
        raise ValueError(f"clock_hz must be positive, got {clock_hz}")
    return round(cycles * SECOND / clock_hz)


def time_to_cycles(time_ps: int, clock_hz: float) -> float:
    """Convert picoseconds into (fractional) cycles at ``clock_hz``."""
    if clock_hz <= 0:
        raise ValueError(f"clock_hz must be positive, got {clock_hz}")
    return time_ps * clock_hz / SECOND


def to_seconds(time_ps: int) -> float:
    """Picoseconds to (float) seconds."""
    return time_ps / SECOND


def to_milliseconds(time_ps: int) -> float:
    """Picoseconds to (float) milliseconds."""
    return time_ps / MILLISECOND


def to_microseconds(time_ps: int) -> float:
    """Picoseconds to (float) microseconds."""
    return time_ps / MICROSECOND


def seconds(value: float) -> int:
    """(Float) seconds to integer picoseconds."""
    return round(value * SECOND)


def milliseconds(value: float) -> int:
    """(Float) milliseconds to integer picoseconds."""
    return round(value * MILLISECOND)


def microseconds(value: float) -> int:
    """(Float) microseconds to integer picoseconds."""
    return round(value * MICROSECOND)


def nanoseconds(value: float) -> int:
    """(Float) nanoseconds to integer picoseconds."""
    return round(value * NANOSECOND)
