"""The discrete-event simulator.

A minimal, fast event loop: a binary heap of ``(time, sequence, handle)``
entries. Components schedule plain callables; there is no coroutine
machinery, which keeps per-event overhead low enough to push hundreds of
thousands of packet batches through pure Python.

Determinism: events scheduled for the same timestamp fire in scheduling
order (the monotonically increasing sequence number breaks ties), so a
run is a pure function of the RNG seeds.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple


class EventHandle:
    """A scheduled event; ``cancel()`` prevents it from firing.

    Cancellation is lazy: the heap entry stays in place and is skipped
    when popped, which is far cheaper than heap surgery for the common
    timer-reset pattern (e.g. TCP retransmission timers).
    """

    __slots__ = ("callback", "args", "time", "cancelled")

    def __init__(self, callback: Callable[..., None], args: Tuple[Any, ...], time: int):
        self.callback = callback
        self.args = args
        self.time = time
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent this event from firing; safe to call more than once."""
        self.cancelled = True


class Simulator:
    """Discrete-event simulator with an integer-picosecond clock.

    Typical use::

        sim = Simulator()
        sim.after(MICROSECOND, my_callback, arg1, arg2)
        sim.run(until=10 * MILLISECOND)
    """

    def __init__(self) -> None:
        self._now: int = 0
        self._queue: List[Tuple[int, int, EventHandle]] = []
        self._sequence: int = 0
        self._running = False
        self._events_processed: int = 0

    @property
    def now(self) -> int:
        """Current simulation time in picoseconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events fired so far (diagnostics)."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of heap entries, including lazily cancelled ones."""
        return len(self._queue)

    def has_live_events(self) -> bool:
        """Whether any non-cancelled event is pending.

        Used by self-rescheduling timers (e.g. the telemetry sampler) to
        detect quiescence: a timer that kept rescheduling itself against
        an otherwise-empty heap would make drain-style ``run()`` calls
        spin forever. The scan early-exits on the first live entry, so
        it is O(1) in the common busy case.
        """
        for _time, _seq, handle in self._queue:
            if not handle.cancelled:
                return True
        return False

    def at(self, time: int, callback: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute time ``time``.

        Scheduling in the past raises ``ValueError`` — a component doing
        that has a logic bug and silently clamping would hide it.
        """
        if time < self._now:
            raise ValueError(
                f"cannot schedule event at {time} ps; current time is {self._now} ps"
            )
        handle = EventHandle(callback, args, time)
        self._sequence += 1
        heapq.heappush(self._queue, (time, self._sequence, handle))
        return handle

    def after(self, delay: int, callback: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` after ``delay`` picoseconds."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        return self.at(self._now + delay, callback, *args)

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run the event loop.

        Stops when the queue drains, when the clock would pass ``until``,
        or after ``max_events`` events (a runaway-loop backstop). Returns
        the number of events processed by this call. When stopped by
        ``until``, the clock is advanced to exactly ``until`` so that
        measurement windows have precise widths.
        """
        processed = 0
        queue = self._queue
        self._running = True
        try:
            while queue and self._running:
                time, _seq, handle = queue[0]
                if until is not None and time > until:
                    break
                heapq.heappop(queue)
                if handle.cancelled:
                    continue
                self._now = time
                handle.callback(*handle.args)
                processed += 1
                self._events_processed += 1
                if max_events is not None and processed >= max_events:
                    break
        finally:
            self._running = False
        if until is not None and self._now < until:
            has_earlier = bool(queue) and queue[0][0] <= until
            if not has_earlier:
                self._now = until
        return processed

    def stop(self) -> None:
        """Request the loop to stop after the current event."""
        self._running = False

    def drain_cancelled(self) -> int:
        """Compact the heap by dropping cancelled entries; returns count.

        Long simulations with many timer resets can accumulate dead
        entries; calling this occasionally bounds heap growth.
        """
        alive = [entry for entry in self._queue if not entry[2].cancelled]
        dropped = len(self._queue) - len(alive)
        if dropped:
            heapq.heapify(alive)
            self._queue = alive
        return dropped
