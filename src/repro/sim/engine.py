"""The discrete-event simulator.

A minimal, fast event loop: a binary heap of ``(time, sequence, handle,
callback, args)`` entries. Components schedule plain callables; there is
no coroutine machinery, which keeps per-event overhead low enough to
push hundreds of thousands of packet batches through pure Python.

Two scheduling tiers share the heap: ``at``/``after`` return an
:class:`EventHandle` for cancellation, while ``post``/``post_after``
store ``None`` in the handle slot and return nothing — the right choice
for fire-and-forget events (packet arrivals, batch completions), which
dominate event counts and then skip a per-event object allocation.

Determinism: events scheduled for the same timestamp fire in scheduling
order (the monotonically increasing sequence number breaks ties), so a
run is a pure function of the RNG seeds.

Cancellation is lazy (the heap entry stays until popped), but the
simulator keeps an exact live-event counter so ``has_live_events`` is
O(1), and compacts the heap automatically once cancelled entries
dominate it — long runs with heavy timer churn (TCP retransmission
timers) stay bounded without any heap surgery on the cancel path.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple

#: Compact the heap when more than this many cancelled entries have
#: accumulated *and* they outnumber the live ones (so compaction work is
#: amortized against the pops it saves).
COMPACT_THRESHOLD = 1024

#: Value of ``Simulator._event_seq`` outside any event callback: greater
#: than every real sequence, so "scheduled before the current event"
#: comparisons treat code running between ``run()`` calls as running
#: after everything already scheduled.
BOUNDARY_EVENT_SEQ = float("inf")


class EventHandle:
    """A scheduled event; ``cancel()`` prevents it from firing.

    Cancellation is lazy: the heap entry stays in place and is skipped
    when popped, which is far cheaper than heap surgery for the common
    timer-reset pattern (e.g. TCP retransmission timers). The owning
    simulator's live/cancelled counters are kept exact so quiescence
    checks never scan the heap.
    """

    __slots__ = ("callback", "args", "time", "cancelled", "_sim", "_in_heap")

    def __init__(
        self,
        callback: Callable[..., None],
        args: Tuple[Any, ...],
        time: int,
        sim: "Optional[Simulator]" = None,
    ):
        self.callback = callback
        self.args = args
        self.time = time
        self.cancelled = False
        self._sim = sim
        self._in_heap = sim is not None

    def cancel(self) -> None:
        """Prevent this event from firing; safe to call more than once."""
        if self.cancelled:
            return
        self.cancelled = True
        if self._in_heap:
            sim = self._sim
            sim._live -= 1
            sim._cancelled += 1
            sim._maybe_compact()


class Simulator:
    """Discrete-event simulator with an integer-picosecond clock.

    Typical use::

        sim = Simulator()
        sim.after(MICROSECOND, my_callback, arg1, arg2)
        sim.run(until=10 * MILLISECOND)
    """

    def __init__(self) -> None:
        self._now: int = 0
        self._queue: List[Tuple[Any, ...]] = []
        self._sequence: int = 0
        self._running = False
        self._events_processed: int = 0
        #: Non-cancelled entries currently in the heap (exact).
        self._live: int = 0
        #: Cancelled entries still occupying heap slots (exact).
        self._cancelled: int = 0
        #: Heap sequence of the event currently firing (the boundary
        #: sentinel between ``run()`` calls). The batch spine compares
        #: staged arrivals' reserved sequences against this to replay
        #: scalar same-timestamp ordering exactly (see
        #: :mod:`repro.core.batch_spine`).
        self._event_seq = BOUNDARY_EVENT_SEQ

    @property
    def now(self) -> int:
        """Current simulation time in picoseconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events fired so far (diagnostics)."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of heap entries, including lazily cancelled ones."""
        return len(self._queue)

    def has_live_events(self) -> bool:
        """Whether any non-cancelled event is pending.

        Used by self-rescheduling timers (e.g. the telemetry sampler) to
        detect quiescence: a timer that kept rescheduling itself against
        an otherwise-empty heap would make drain-style ``run()`` calls
        spin forever. The simulator counts live entries as they are
        pushed, cancelled, and popped, so this is O(1) always — not just
        in the busy case.
        """
        return self._live > 0

    def at(self, time: int, callback: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute time ``time``.

        Scheduling in the past raises ``ValueError`` — a component doing
        that has a logic bug and silently clamping would hide it.
        """
        if time < self._now:
            raise ValueError(
                f"cannot schedule event at {time} ps; current time is {self._now} ps"
            )
        handle = EventHandle(callback, args, time, self)
        self._sequence += 1
        self._live += 1
        heapq.heappush(self._queue, (time, self._sequence, handle, callback, args))
        return handle

    def after(self, delay: int, callback: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` after ``delay`` picoseconds."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        time = self._now + delay
        handle = EventHandle(callback, args, time, self)
        self._sequence += 1
        self._live += 1
        heapq.heappush(self._queue, (time, self._sequence, handle, callback, args))
        return handle

    def post(self, time: int, callback: Callable[..., None], *args: Any) -> None:
        """Schedule a non-cancellable ``callback(*args)`` at ``time``.

        Identical semantics to :meth:`at` minus the handle: nothing is
        allocated per event, so this is the hot-path scheduler for
        fire-and-forget work (link arrivals, batch completions).
        """
        if time < self._now:
            raise ValueError(
                f"cannot schedule event at {time} ps; current time is {self._now} ps"
            )
        self._sequence += 1
        self._live += 1
        heapq.heappush(self._queue, (time, self._sequence, None, callback, args))

    def post_after(self, delay: int, callback: Callable[..., None], *args: Any) -> None:
        """Schedule a non-cancellable ``callback(*args)`` after ``delay``."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        self._sequence += 1
        self._live += 1
        heapq.heappush(
            self._queue, (self._now + delay, self._sequence, None, callback, args)
        )

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run the event loop.

        Stops when the queue drains, when the clock would pass ``until``,
        or after ``max_events`` events (a runaway-loop backstop). Returns
        the number of events processed by this call. When stopped by
        ``until``, the clock is advanced to exactly ``until`` so that
        measurement windows have precise widths.
        """
        processed = 0
        queue = self._queue
        pop = heapq.heappop
        push = heapq.heappush
        limit = float("inf") if until is None else until
        budget = float("inf") if max_events is None else max_events
        self._running = True
        try:
            # Pop-first (pushing back the rare over-limit entry) avoids
            # touching queue[0] twice per event; ``stop()`` can only be
            # called from inside a callback, so checking _running after
            # the callback is equivalent to checking it in the guard.
            while queue:
                entry = pop(queue)
                time = entry[0]
                if time > limit:
                    push(queue, entry)
                    break
                handle = entry[2]
                if handle is not None:
                    if handle.cancelled:
                        self._cancelled -= 1
                        if (
                            self._cancelled > COMPACT_THRESHOLD
                            and self._cancelled > self._live
                        ):
                            self._compact()
                        continue
                    handle._in_heap = False
                self._live -= 1
                self._now = time
                self._event_seq = entry[1]
                entry[3](*entry[4])
                processed += 1
                if processed >= budget or not self._running:
                    break
        finally:
            self._running = False
            self._event_seq = BOUNDARY_EVENT_SEQ
            self._events_processed += processed
        if until is not None and self._now < until:
            has_earlier = bool(queue) and queue[0][0] <= until
            if not has_earlier:
                self._now = until
        return processed

    def stop(self) -> None:
        """Request the loop to stop after the current event."""
        self._running = False

    def drain_cancelled(self) -> int:
        """Compact the heap by dropping cancelled entries; returns count.

        Long simulations with many timer resets can accumulate dead
        entries; the simulator calls this automatically once cancelled
        entries dominate the heap, and callers may still invoke it
        directly. The queue list is compacted in place so an active
        ``run()`` loop keeps operating on the same object.
        """
        return self._compact()

    def _compact(self) -> int:
        queue = self._queue
        alive = [
            entry for entry in queue if entry[2] is None or not entry[2].cancelled
        ]
        dropped = len(queue) - len(alive)
        if dropped:
            heapq.heapify(alive)
            queue[:] = alive
            self._cancelled = 0
        return dropped

    def _maybe_compact(self) -> None:
        """Auto-compaction check on the cancel path (cheap int compares)."""
        if (
            not self._running
            and self._cancelled > COMPACT_THRESHOLD
            and self._cancelled > self._live
        ):
            self._compact()
