"""Discrete-event simulation engine.

The engine is the substrate everything else runs on: the NIC, the cores,
the TCP endpoints, and the traffic generators are all event-driven
components scheduling callbacks on a shared :class:`Simulator`.

Time is kept as an integer number of **picoseconds** so that CPU cycles at
2.0 GHz (500 ps) and wire times are exact; see :mod:`repro.sim.timeunits`.
"""

from repro.sim.engine import EventHandle, Simulator
from repro.sim.rng import RngStreams
from repro.sim.timeunits import (
    MICROSECOND,
    MILLISECOND,
    NANOSECOND,
    PICOSECOND,
    SECOND,
    cycles_to_time,
    time_to_cycles,
    to_microseconds,
    to_milliseconds,
    to_seconds,
)

__all__ = [
    "EventHandle",
    "Simulator",
    "RngStreams",
    "PICOSECOND",
    "NANOSECOND",
    "MICROSECOND",
    "MILLISECOND",
    "SECOND",
    "cycles_to_time",
    "time_to_cycles",
    "to_seconds",
    "to_milliseconds",
    "to_microseconds",
]
