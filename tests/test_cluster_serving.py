"""Tests for the cluster serving subsystem: live migration with
in-flight buffering, the telemetry-driven autoscaler, cluster
telemetry, the trace-driven load driver, and the figC study."""

import random

import pytest

from repro.cluster.serving import (
    Autoscaler,
    ClusterLoadDriver,
    HostSignals,
    ServingCluster,
    SloRecorder,
    ThresholdHysteresisPolicy,
)
from repro.core.config import MiddleboxConfig
from repro.net import ACK, SYN, make_tcp_packet
from repro.nfs import SyntheticNf
from repro.sim import MILLISECOND, Simulator
from repro.sim.timeunits import MICROSECOND
from repro.trafficgen.flows import random_tcp_flows
from repro.trafficgen.trace import SyntheticBackboneTrace


def make_serving(
    num_hosts=2,
    mode="rss",
    num_cores=4,
    nf_cycles=800,
    strict=False,
    base_delay=50 * MICROSECOND,
):
    sim = Simulator()
    serving = ServingCluster(
        sim,
        nf_factory=lambda host: SyntheticNf(busy_cycles=nf_cycles),
        num_hosts=num_hosts,
        config_factory=lambda host: MiddleboxConfig(
            mode=mode, num_cores=num_cores, strict_checks=strict
        ),
        migration_base_delay=base_delay,
    )
    out = []
    serving.set_egress(out.append)
    return sim, serving, out


def drain(sim, serving):
    """Run the sim dry. Engine samplers must stop first: each pending
    sampler tick counts as a live event for the *other* engines'
    quiescence checks, so with >= 2 engines they keep each other armed
    forever."""
    for host in sorted(serving.engines):
        sampler = serving.engines[host].telemetry.sampler
        if sampler is not None:
            sampler.stop()
    sim.run()


def open_flows(sim, serving, flows, rng):
    for flow in flows:
        serving.receive(
            make_tcp_packet(flow, flags=SYN, tcp_checksum=rng.getrandbits(16)),
            sim.now,
        )
    sim.run(until=sim.now + MILLISECOND)


def send_data(sim, serving, flows, rng, seqs):
    for seq in seqs:
        for flow in flows:
            serving.receive(
                make_tcp_packet(
                    flow, flags=ACK, seq=seq, tcp_checksum=rng.getrandbits(16)
                ),
                sim.now,
            )


class TestLiveMigrationScaleOut:
    def test_zero_loss_zero_drops_and_buffering(self):
        sim, serving, out = make_serving(num_hosts=2)
        rng = random.Random(21)
        flows = random_tcp_flows(40, rng)
        open_flows(sim, serving, flows, rng)
        serving.scale_out()
        assert serving.migrator.freezing
        # Traffic keeps arriving while the handoff is in flight: frozen
        # flows' packets must be buffered, not dropped or misdelivered.
        send_data(sim, serving, flows, rng, seqs=range(3))
        assert serving.migrator.buffered_now() > 0
        drain(sim, serving)
        assert not serving.migrator.freezing
        stats = serving.migrator.stats
        assert stats.packets_buffered > 0
        assert stats.packets_released == stats.packets_buffered
        assert stats.state_lost == 0
        assert serving.drops_total() == 0
        assert len(out) == serving.offered == 40 * 4
        assert serving.conservation_ok()

    def test_no_reorder_within_a_flow(self):
        # rss pins each flow to one core (FIFO), so any reordering at
        # egress could only come from the migration buffering path.
        sim, serving, out = make_serving(num_hosts=2, mode="rss")
        rng = random.Random(23)
        flows = random_tcp_flows(30, rng)
        open_flows(sim, serving, flows, rng)
        serving.scale_out()
        send_data(sim, serving, flows, rng, seqs=range(5))
        drain(sim, serving)
        assert len(out) == 30 * 6
        seqs = {}
        for packet in out:
            if packet.flags & ACK:
                seqs.setdefault(packet.five_tuple.canonical(), []).append(packet.seq)
        for flow, seen in seqs.items():
            assert seen == sorted(seen), f"reordered {flow}"

    def test_conservation_holds_mid_handoff(self):
        sim, serving, out = make_serving(num_hosts=2)
        rng = random.Random(25)
        flows = random_tcp_flows(40, rng)
        open_flows(sim, serving, flows, rng)
        serving.scale_out()
        send_data(sim, serving, flows, rng, seqs=range(2))
        # Mid-handoff: some packets are neither dispatched nor lost —
        # they are in handoff buffers, and the ledger must say so.
        ledger = serving.conservation()
        assert ledger["buffered_now"] > 0
        assert ledger["offered"] == ledger["dispatched"] + ledger["buffered_now"]
        assert serving.conservation_ok()
        drain(sim, serving)
        assert serving.conservation()["buffered_now"] == 0
        assert serving.conservation_ok()

    def test_entries_conserved_across_migration(self):
        sim, serving, out = make_serving(num_hosts=2)
        rng = random.Random(27)
        flows = random_tcp_flows(40, rng)
        open_flows(sim, serving, flows, rng)
        before = sum(
            e.flow_state.total_entries() for e in serving.engines.values()
        )
        serving.scale_out()
        drain(sim, serving)
        after = sum(e.flow_state.total_entries() for e in serving.engines.values())
        assert after == before
        assert serving.migrator.stats.entries_moved > 0


class TestLiveMigrationScaleIn:
    def test_voluntary_scale_in_loses_nothing(self):
        sim, serving, out = make_serving(num_hosts=3)
        rng = random.Random(31)
        flows = random_tcp_flows(45, rng)
        open_flows(sim, serving, flows, rng)
        victim = serving.ring_hosts[0]
        entries_before = sum(
            e.flow_state.total_entries() for e in serving.engines.values()
        )
        serving.scale_in(victim)
        assert victim not in serving.ring_hosts
        send_data(sim, serving, flows, rng, seqs=range(3))
        drain(sim, serving)
        # The detached engine drains, then is dropped entirely.
        assert victim not in serving.engines
        assert serving.summary()["draining_hosts"] == []
        assert serving.migrator.stats.state_lost == 0
        assert serving.drops_total() == 0
        assert len(out) == serving.offered == 45 * 4
        after = sum(e.flow_state.total_entries() for e in serving.engines.values())
        assert after == entries_before
        assert serving.conservation_ok()

    def test_scale_in_guards(self):
        sim, serving, out = make_serving(num_hosts=2)
        with pytest.raises(ValueError):
            serving.scale_in("nope")
        victim = serving.ring_hosts[0]
        serving.scale_in(victim)
        if victim in serving.engines:  # still draining
            with pytest.raises(ValueError):
                serving.scale_in(victim)


class TestHostDownMidMigration:
    def _run_crash_mid_handoff(self):
        sim, serving, out = make_serving(num_hosts=2, strict=True)
        rng = random.Random(41)
        flows = random_tcp_flows(60, rng)
        open_flows(sim, serving, flows, rng)
        newcomer = serving.scale_out()
        assert serving.migrator.freezing
        send_data(sim, serving, flows, rng, seqs=range(2))
        buffered = serving.migrator.buffered_now()
        assert buffered > 0
        held = sum(
            len(h.entries) for h in serving.migrator._in_handoff.values()
        )
        # The migration destination dies while entries are on the wire.
        serving.fail_host(newcomer)
        return sim, serving, out, held, buffered

    def test_ledger_balances_and_loss_is_bounded(self):
        sim, serving, out, held, buffered = self._run_crash_mid_handoff()
        stats = serving.migrator.stats
        assert 0 < stats.state_lost <= held
        # Mirrored into the cluster ledger the host_down budget reads.
        assert serving.cluster.stats.lost_entries >= stats.state_lost
        # Buffered packets for doomed handoffs re-dispatched, not lost.
        assert stats.packets_redispatched > 0
        drain(sim, serving)
        assert serving.migrator.buffered_now() == 0
        ledger = serving.conservation()
        assert ledger["offered"] == ledger["dispatched"] + ledger["buffered_now"]
        # strict_checks armed throughout: reaching here without an
        # OwnershipViolation means the handoff stayed on the sanctioned
        # evict/adopt surface even across the crash.
        assert serving.conservation_ok()

    def test_no_packet_vanishes(self):
        sim, serving, out, held, buffered = self._run_crash_mid_handoff()
        drain(sim, serving)
        ledger = serving.conservation()
        assert ledger["rx_packets"] == ledger["accounted"]
        assert len(out) + serving.drops_total() == serving.offered

    def test_source_failure_does_not_lose_held_entries(self):
        sim, serving, out = make_serving(num_hosts=2, strict=True)
        rng = random.Random(43)
        flows = random_tcp_flows(60, rng)
        open_flows(sim, serving, flows, rng)
        serving.scale_out()
        assert serving.migrator.freezing
        # Fail a *source* host: every in-handoff entry was already
        # evicted and is held by the migrator, so nothing is lost from
        # the handoffs themselves (only that host's unmoved entries).
        dests = {h.dest for h in serving.migrator._in_handoff.values()}
        sources = [h for h in serving.ring_hosts if h not in dests]
        if not sources:
            pytest.skip("every live host is also a migration destination")
        serving.fail_host(sources[0])
        drain(sim, serving)
        assert serving.migrator.stats.state_lost == 0
        assert serving.conservation_ok()


class TestAutoscalerPolicy:
    @staticmethod
    def row(host="host0", depth=0, dropped=0, entries=100, p99=1.0):
        return HostSignals(
            host=host,
            rx_depth=depth,
            rx_dropped_delta=dropped,
            flow_entries=entries,
            p99_latency_us=p99,
        )

    def test_hot_needs_consecutive_epochs(self):
        policy = ThresholdHysteresisPolicy(
            target_p99_us=10.0, hot_epochs=2, min_hosts=1, max_hosts=8
        )
        hot = [self.row(p99=50.0)]
        assert policy.decide(hot, 2) == "hold"
        assert policy.decide(hot, 2) == "scale_out"

    def test_mixed_epochs_reset_runs(self):
        policy = ThresholdHysteresisPolicy(
            target_p99_us=10.0, hot_epochs=2, min_hosts=1, max_hosts=8
        )
        assert policy.decide([self.row(p99=50.0)], 2) == "hold"
        # Neither hot nor cold: rx fine, p99 in the middle band.
        assert policy.decide([self.row(p99=5.0)], 2) == "hold"
        assert policy.decide([self.row(p99=50.0)], 2) == "hold"

    def test_drops_count_as_hot(self):
        policy = ThresholdHysteresisPolicy(hot_epochs=1, min_hosts=1, max_hosts=8)
        assert policy.decide([self.row(dropped=3)], 2) == "scale_out"

    def test_cold_guard_empty_cluster_never_scales_in(self):
        policy = ThresholdHysteresisPolicy(
            target_p99_us=10.0, cold_epochs=1, min_hosts=1, max_hosts=8
        )
        idle = [self.row(entries=0, p99=0.0)]
        for _ in range(10):
            assert policy.decide(idle, 3) == "hold"

    def test_cold_with_state_scales_in(self):
        policy = ThresholdHysteresisPolicy(
            target_p99_us=10.0, cold_epochs=2, min_hosts=1, max_hosts=8
        )
        cold = [self.row(entries=50, p99=0.5)]
        assert policy.decide(cold, 3) == "hold"
        assert policy.decide(cold, 3) == "scale_in"

    def test_host_count_clamps(self):
        policy = ThresholdHysteresisPolicy(
            target_p99_us=10.0, hot_epochs=1, cold_epochs=1, min_hosts=2, max_hosts=3
        )
        assert policy.decide([self.row(p99=50.0)], 3) == "hold"  # at max
        assert policy.decide([self.row(entries=5, p99=0.5)], 2) == "hold"  # at min

    def test_rejects_bad_host_bounds(self):
        with pytest.raises(ValueError):
            ThresholdHysteresisPolicy(min_hosts=5, max_hosts=2)


class TestAutoscalerIntegration:
    def test_scales_out_under_overload_and_in_after(self):
        sim, serving, out = make_serving(
            num_hosts=1, num_cores=2, nf_cycles=20_000
        )
        rng = random.Random(51)
        trace = SyntheticBackboneTrace(
            rng, duration_s=0.002, flow_arrival_rate=6e4
        )
        driver = ClusterLoadDriver(
            sim, serving.receive, trace, seed=52, max_packets_per_flow=12
        )
        policy = ThresholdHysteresisPolicy(
            target_p99_us=5.0,
            max_rx_depth=8,
            low_rx_depth=64,
            hot_epochs=1,
            cold_epochs=2,
            min_hosts=1,
            max_hosts=4,
        )
        autoscaler = Autoscaler(serving, policy, epoch=200 * MICROSECOND)
        driver.start()
        autoscaler.start(until=8 * MILLISECOND)
        sim.run(until=8 * MILLISECOND)
        drain(sim, serving)
        actions = [d["action"] for d in autoscaler.decisions]
        assert "scale_out" in actions, autoscaler.decisions
        # Once the 2 ms trace ends the cluster cools down and shrinks.
        assert "scale_in" in actions, autoscaler.decisions
        for decision in autoscaler.decisions:
            assert decision["hosts_after"] == len(
                serving.ring_hosts
            ) or decision is not autoscaler.decisions[-1]
        assert serving.conservation_ok()

    def test_decisions_are_deterministic(self):
        def run():
            sim, serving, out = make_serving(
                num_hosts=1, num_cores=2, nf_cycles=20_000
            )
            trace = SyntheticBackboneTrace(
                random.Random(51), duration_s=0.002, flow_arrival_rate=6e4
            )
            driver = ClusterLoadDriver(
                sim, serving.receive, trace, seed=52, max_packets_per_flow=12
            )
            autoscaler = Autoscaler(
                serving,
                ThresholdHysteresisPolicy(
                    target_p99_us=5.0,
                    max_rx_depth=8,
                    hot_epochs=1,
                    cold_epochs=2,
                    min_hosts=1,
                    max_hosts=4,
                ),
                epoch=200 * MICROSECOND,
            )
            driver.start()
            autoscaler.start(until=8 * MILLISECOND)
            sim.run(until=8 * MILLISECOND)
            drain(sim, serving)
            return autoscaler.decisions, len(out), serving.summary()

        first = run()
        second = run()
        assert first == second


class TestClusterTelemetry:
    def test_counters_track_the_cluster(self):
        sim, serving, out = make_serving(num_hosts=2)
        rng = random.Random(61)
        flows = random_tcp_flows(20, rng)
        open_flows(sim, serving, flows, rng)
        serving.scale_out()
        drain(sim, serving)
        counters = serving.telemetry.counters()
        assert counters["cluster.hosts.live"] == len(serving.ring_hosts) == 3
        assert counters["cluster.hosts.total"] == 3
        assert counters["cluster.migrations"] == serving.cluster.stats.migrations >= 1
        assert counters["cluster.flows.moved"] == serving.cluster.stats.flows_moved > 0
        assert counters["cluster.offered"] == serving.offered == 20
        assert counters["cluster.flow_entries"] == 40  # fwd + reverse
        assert counters["cluster.state_lost.inflight"] == 0

    def test_migration_instants_in_trace(self):
        sim, serving, out = make_serving(num_hosts=2)
        rng = random.Random(63)
        open_flows(sim, serving, random_tcp_flows(20, rng), rng)
        serving.scale_out()
        drain(sim, serving)
        names = [event["name"] for event in serving.telemetry.dump()["trace"]]
        assert "cluster_scale_out" in names
        assert "migration_start" in names
        assert "migration_commit" in names

    def test_host_down_instants_in_trace(self):
        sim, serving, out = make_serving(num_hosts=3)
        rng = random.Random(65)
        open_flows(sim, serving, random_tcp_flows(20, rng), rng)
        serving.fail_host(serving.ring_hosts[1])
        drain(sim, serving)
        dump = serving.telemetry.dump()
        names = [event["name"] for event in dump["trace"]]
        assert "cluster_host_down" in names
        assert dump["counters"]["cluster.host_failures"] == 1

    def test_sample_builds_series(self):
        sim, serving, out = make_serving(num_hosts=2)
        serving.telemetry.sample(0)
        serving.telemetry.sample(MILLISECOND)
        dump = serving.telemetry.dump()
        assert len(dump["series"]) == 2
        ts, snapshot = dump["series"][1]
        assert ts == MILLISECOND
        assert snapshot["cluster.hosts.live"] == 2


class TestClusterLoadDriver:
    def _drive(self, sink, seed=71):
        sim = Simulator()
        trace = SyntheticBackboneTrace(
            random.Random(7), duration_s=0.002, flow_arrival_rate=5e4
        )
        driver = ClusterLoadDriver(
            sim, sink, trace, seed=seed, max_packets_per_flow=6
        )
        driver.start()
        sim.run()
        return driver

    def test_replay_is_deterministic(self):
        first: list = []
        second: list = []
        self._drive(lambda p, now: first.append((now, str(p.five_tuple), p.seq)))
        self._drive(lambda p, now: second.append((now, str(p.five_tuple), p.seq)))
        assert first == second
        assert len(first) > 0

    def test_emission_matches_schedule(self):
        seen: list = []
        driver = self._drive(lambda p, now: seen.append(p))
        assert len(seen) == len(driver) == driver.stats.packets_emitted
        syns = [p for p in seen if p.flags & SYN]
        assert len(syns) == driver.stats.flows_started
        assert len({p.five_tuple.canonical() for p in syns}) == len(syns)

    def test_arrival_times_monotonic_and_capped(self):
        stamped: list = []
        self._drive(lambda p, now: stamped.append((now, p.five_tuple.canonical())))
        times = [t for t, _ in stamped]
        assert times == sorted(times)
        per_flow: dict = {}
        for _, flow in stamped:
            per_flow[flow] = per_flow.get(flow, 0) + 1
        assert max(per_flow.values()) <= 6


class TestSloRecorder:
    def test_phase_rows_diff_counters(self):
        slo = SloRecorder(duration=4 * MILLISECOND, bucket=MILLISECOND)
        packet = make_tcp_packet(random_tcp_flows(1, random.Random(1))[0])
        slo.mark("ramp", 0, {"drops": 0})
        for i in range(10):
            slo.on_forwarded(packet, i * MILLISECOND // 4)
        slo.mark("steady", 2 * MILLISECOND, {"drops": 3})
        slo.mark("end", 4 * MILLISECOND, {"drops": 3})
        rows = slo.phase_rows()
        assert [row["phase"] for row in rows] == ["ramp", "steady"]
        assert rows[0]["drops"] == 3
        assert rows[1]["drops"] == 0
        assert sum(row["forwarded"] for row in rows) == 10

    def test_rejects_degenerate_sizes(self):
        with pytest.raises(ValueError):
            SloRecorder(duration=0)
        with pytest.raises(ValueError):
            SloRecorder(duration=MILLISECOND, bucket=0)


class TestFigCQuick:
    FAST = dict(
        num_hosts=2,
        num_cores=2,
        nf_cycles=2000,
        arrival_rate=1e5,
        trace_ms=3,
        duration_ms=5,
        crash_ms=2,
        steady_ms=1,
        drain_ms=4,
        max_packets_per_flow=3,
        epoch_ms=0.5,
        min_hosts=1,
        max_hosts=4,
        migration_base_us=50.0,
    )

    def test_budgets_and_conservation(self):
        from repro.experiments.figc import run_figc

        rows, timeline, phases = run_figc(**self.FAST)
        by_mode = {row["mode"]: row for row in rows}
        assert set(by_mode) == {"rss", "sprayer"}
        for mode, row in sorted(by_mode.items()):
            assert row["vol_drops"] == 0, (mode, row)
        # The host_down crash loses only ledger-accounted state.
        assert all(row["state_lost"] >= 0 for row in rows)
        assert len(timeline) == 5
        assert {row["phase"] for row in phases} == {
            "ramp", "steady", "host_down", "drain"
        }

    def test_scenario_values_conserve(self):
        from repro.experiments.figc import run_figc_scenario
        from repro.experiments.spec import Scenario
        from repro.faults.plan import FaultPlan, host_down

        scenario = Scenario.make(
            "cluster_serving",
            label="figC-test",
            mode="sprayer",
            nf_cycles=2000,
            num_cores=2,
            duration=5 * MILLISECOND,
            seed=3,
            num_hosts=2,
            arrival_rate=1e5,
            trace_ms=3,
            steady_at=MILLISECOND,
            drain_at=4 * MILLISECOND,
            max_packets_per_flow=3,
            epoch_ps=MILLISECOND // 2,
            fault_plan=FaultPlan.of(host_down(0, 2 * MILLISECOND), seed=3),
            min_hosts=1,
            max_hosts=4,
            migration_base_delay=50 * MICROSECOND,
        )
        values, dump = run_figc_scenario(scenario)
        assert values["conservation_ok"] is True
        assert values["offered"] == values["forwarded"] + values["drops_total"]
        assert values["voluntary_drops"] == 0
        assert values["hosts_final"] >= 1
        assert len(values["fault_records"]) == 1
        assert "cluster.hosts.live" in dump["counters"]

    def test_rows_identical_across_job_counts(self):
        from repro.experiments.figc import run_figc
        from repro.experiments.runner import SweepRunner

        serial = run_figc(runner=SweepRunner(jobs=1), **self.FAST)
        pooled = run_figc(runner=SweepRunner(jobs=2), **self.FAST)
        assert serial == pooled
