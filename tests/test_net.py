"""Unit tests for addresses, five-tuples, flags, and packets."""

import pytest

from repro.net import (
    ACK,
    ETHERNET_OVERHEAD,
    FIN,
    MIN_FRAME_SIZE,
    PROTO_TCP,
    PROTO_UDP,
    RST,
    SYN,
    FiveTuple,
    Packet,
    flags_to_str,
    ip_to_int,
    ip_to_str,
    is_connection_packet,
    mac_to_int,
    mac_to_str,
    make_tcp_packet,
    make_udp_packet,
)


class TestAddresses:
    def test_ip_roundtrip(self):
        for text in ("0.0.0.0", "10.0.0.1", "255.255.255.255", "192.168.1.77"):
            assert ip_to_str(ip_to_int(text)) == text

    def test_ip_known_value(self):
        assert ip_to_int("10.0.0.1") == 0x0A000001

    def test_ip_rejects_garbage(self):
        for bad in ("1.2.3", "1.2.3.4.5", "256.0.0.1", "a.b.c.d"):
            with pytest.raises(ValueError):
                ip_to_int(bad)

    def test_ip_to_str_range_check(self):
        with pytest.raises(ValueError):
            ip_to_str(-1)
        with pytest.raises(ValueError):
            ip_to_str(1 << 32)

    def test_mac_roundtrip(self):
        assert mac_to_str(mac_to_int("de:ad:be:ef:00:01")) == "de:ad:be:ef:00:01"

    def test_mac_rejects_garbage(self):
        with pytest.raises(ValueError):
            mac_to_int("de:ad:be:ef:00")


class TestFiveTuple:
    def _flow(self):
        return FiveTuple(ip_to_int("10.0.0.1"), ip_to_int("10.1.0.1"), 1234, 80, PROTO_TCP)

    def test_reversed_swaps_endpoints(self):
        flow = self._flow()
        rev = flow.reversed()
        assert rev.src_ip == flow.dst_ip
        assert rev.dst_port == flow.src_port
        assert rev.protocol == flow.protocol

    def test_double_reverse_is_identity(self):
        flow = self._flow()
        assert flow.reversed().reversed() == flow

    def test_canonical_is_direction_independent(self):
        flow = self._flow()
        assert flow.canonical() == flow.reversed().canonical()

    def test_hashable_and_usable_as_dict_key(self):
        flow = self._flow()
        table = {flow: "entry"}
        same = FiveTuple(flow.src_ip, flow.dst_ip, flow.src_port, flow.dst_port, flow.protocol)
        assert table[same] == "entry"

    def test_protocol_predicates(self):
        assert self._flow().is_tcp
        udp = self._flow()._replace(protocol=PROTO_UDP)
        assert udp.is_udp and not udp.is_tcp

    def test_str_is_readable(self):
        assert "tcp 10.0.0.1:1234 -> 10.1.0.1:80" == str(self._flow())


class TestFlags:
    def test_connection_packet_predicate(self):
        assert is_connection_packet(SYN)
        assert is_connection_packet(FIN)
        assert is_connection_packet(RST)
        assert is_connection_packet(SYN | ACK)  # SYN-ACK is a connection packet
        assert is_connection_packet(FIN | ACK)
        assert not is_connection_packet(ACK)
        assert not is_connection_packet(0)

    def test_flags_to_str(self):
        assert flags_to_str(SYN | ACK) == "AS"
        assert flags_to_str(0) == "."


class TestPacket:
    def _flow(self):
        return FiveTuple(ip_to_int("10.0.0.1"), ip_to_int("10.1.0.1"), 1234, 80, PROTO_TCP)

    def test_minimum_frame_size_applies(self):
        packet = make_tcp_packet(self._flow(), payload_len=0)
        assert packet.frame_len == MIN_FRAME_SIZE

    def test_frame_len_grows_with_payload(self):
        packet = make_tcp_packet(self._flow(), payload_len=1448)
        assert packet.frame_len == 58 + 1448  # headers + FCS + payload

    def test_wire_bytes_include_preamble_and_ifg(self):
        packet = make_tcp_packet(self._flow())
        assert packet.wire_bytes == packet.frame_len + ETHERNET_OVERHEAD

    def test_connection_property_follows_flags(self):
        assert make_tcp_packet(self._flow(), flags=SYN).is_connection
        assert make_tcp_packet(self._flow(), flags=FIN | ACK).is_connection
        assert not make_tcp_packet(self._flow(), flags=ACK).is_connection

    def test_udp_packets_are_never_connection_packets(self):
        flow = self._flow()._replace(protocol=PROTO_UDP)
        packet = make_udp_packet(flow)
        assert not packet.is_connection

    def test_make_tcp_rejects_non_tcp_tuple(self):
        flow = self._flow()._replace(protocol=PROTO_UDP)
        with pytest.raises(ValueError):
            make_tcp_packet(flow)

    def test_make_udp_rejects_tcp_tuple(self):
        with pytest.raises(ValueError):
            make_udp_packet(self._flow())

    def test_packet_ids_are_unique(self):
        a = make_tcp_packet(self._flow())
        b = make_tcp_packet(self._flow())
        assert a.packet_id != b.packet_id

    def test_serialization_roundtrip_preserves_headers(self):
        original = make_tcp_packet(
            self._flow(), flags=SYN | ACK, seq=123456, ack=654321, payload_len=32
        )
        frame = original.to_bytes()
        parsed = Packet.from_bytes(frame)
        assert parsed.five_tuple == original.five_tuple
        assert parsed.flags == original.flags
        assert parsed.seq == original.seq
        assert parsed.ack == original.ack
        assert parsed.payload_len == 32

    def test_serialization_embeds_real_checksum(self):
        packet = make_tcp_packet(self._flow(), flags=ACK, payload_len=10)
        frame = packet.to_bytes()
        parsed = Packet.from_bytes(frame)
        # to_bytes computed the real checksum and stored it back
        assert packet.tcp_checksum == parsed.tcp_checksum
        assert 0 <= packet.tcp_checksum <= 0xFFFF

    def test_different_payloads_give_different_checksums(self):
        a = make_tcp_packet(self._flow(), payload_len=8)
        a.payload = b"AAAAAAAA"
        b = make_tcp_packet(self._flow(), payload_len=8)
        b.payload = b"BBBBBBBB"
        a.to_bytes()
        b.to_bytes()
        assert a.tcp_checksum != b.tcp_checksum

    def test_udp_roundtrip(self):
        flow = self._flow()._replace(protocol=PROTO_UDP)
        original = make_udp_packet(flow, payload_len=16)
        parsed = Packet.from_bytes(original.to_bytes())
        assert parsed.five_tuple == flow
        assert parsed.payload_len == 16
