"""Unit tests for the TCP model: RTT estimation, CUBIC/Reno, endpoints."""

import random

import pytest

from repro.net import FiveTuple
from repro.nic.link import Link
from repro.sim import MICROSECOND, MILLISECOND, SECOND, Simulator
from repro.tcpstack import (
    CubicCongestionControl,
    RenoCongestionControl,
    RttEstimator,
    TcpFlow,
    TcpReceiverEndpoint,
    TcpSenderEndpoint,
)
from repro.tcpstack.endpoint import TcpConfig

FLOW = FiveTuple(0x0A000001, 0x0A010001, 40000, 5201, 6)


class TestRttEstimator:
    def test_first_sample_initializes(self):
        est = RttEstimator()
        est.on_sample(100 * MICROSECOND)
        assert est.srtt == 100 * MICROSECOND
        assert est.rttvar == 50 * MICROSECOND

    def test_smoothing_converges(self):
        est = RttEstimator()
        for _ in range(100):
            est.on_sample(200 * MICROSECOND)
        assert est.srtt == pytest.approx(200 * MICROSECOND, rel=0.01)
        assert est.rttvar < 10 * MICROSECOND

    def test_rto_has_floor(self):
        est = RttEstimator(min_rto=20 * MILLISECOND)
        for _ in range(50):
            est.on_sample(10 * MICROSECOND)
        assert est.rto == 20 * MILLISECOND

    def test_rto_tracks_variance(self):
        est = RttEstimator(min_rto=1 * MICROSECOND)
        samples = [100, 500, 100, 500, 100, 500]
        for s in samples:
            est.on_sample(s * MICROSECOND)
        assert est.rto > est.srtt

    def test_negative_sample_rejected(self):
        with pytest.raises(ValueError):
            RttEstimator().on_sample(-1)

    def test_pre_sample_rto_is_conservative(self):
        est = RttEstimator()
        assert est.rto >= est.min_rto


class TestCubic:
    def test_slow_start_doubles_per_rtt_worth_of_acks(self):
        cc = CubicCongestionControl(initial_cwnd=10)
        cc.on_ack(10, now=0, srtt_ps=MILLISECOND)
        assert cc.cwnd == 20

    def test_loss_reduces_by_beta(self):
        cc = CubicCongestionControl(initial_cwnd=100)
        cc.ssthresh = 50  # out of slow start
        cc.cwnd = 100
        cc.on_loss(now=0)
        assert cc.cwnd == pytest.approx(70)
        assert cc.losses == 1

    def test_cubic_growth_toward_w_max(self):
        cc = CubicCongestionControl(initial_cwnd=100)
        cc.cwnd = 100
        cc.on_loss(now=0)
        start = cc.cwnd
        now = 0
        for _ in range(200):
            now += MILLISECOND
            cc.on_ack(10, now=now, srtt_ps=MILLISECOND)
        assert start < cc.cwnd

    def test_timeout_collapses_to_one(self):
        cc = CubicCongestionControl(initial_cwnd=64)
        cc.on_timeout(now=0)
        assert cc.cwnd == 1.0
        assert cc.in_slow_start

    def test_undo_restores_prior_window(self):
        cc = CubicCongestionControl(initial_cwnd=100)
        cc.ssthresh = 50
        cc.cwnd = 100
        prior_cwnd, prior_ssthresh = cc.cwnd, cc.ssthresh
        cc.on_loss(now=0)
        cc.undo(prior_cwnd, prior_ssthresh)
        assert cc.cwnd == 100

    def test_max_cwnd_cap(self):
        cc = CubicCongestionControl(initial_cwnd=10, max_cwnd=32)
        for _ in range(20):
            cc.on_ack(10, now=0, srtt_ps=MILLISECOND)
        assert cc.cwnd <= 32

    def test_hystart_exits_slow_start_on_rtt_rise(self):
        cc = CubicCongestionControl(initial_cwnd=32)
        cc.on_rtt_sample(100 * MICROSECOND, now=0)
        assert cc.in_slow_start
        cc.on_rtt_sample(200 * MICROSECOND, now=MILLISECOND)
        assert not cc.in_slow_start
        assert cc.hystart_exits == 1

    def test_hystart_quiet_below_threshold(self):
        cc = CubicCongestionControl(initial_cwnd=32)
        cc.on_rtt_sample(100 * MICROSECOND, now=0)
        cc.on_rtt_sample(110 * MICROSECOND, now=MILLISECOND)
        assert cc.in_slow_start

    def test_hystart_can_be_disabled(self):
        cc = CubicCongestionControl(initial_cwnd=32, hystart=False)
        cc.on_rtt_sample(100 * MICROSECOND, now=0)
        cc.on_rtt_sample(900 * MICROSECOND, now=MILLISECOND)
        assert cc.in_slow_start


class TestReno:
    def test_additive_increase(self):
        cc = RenoCongestionControl(initial_cwnd=10)
        cc.ssthresh = 5  # congestion avoidance
        before = cc.cwnd
        cc.on_ack(10, now=0, srtt_ps=MILLISECOND)
        assert cc.cwnd == pytest.approx(before + 10 / before)

    def test_halving_on_loss(self):
        cc = RenoCongestionControl(initial_cwnd=100)
        cc.on_loss(now=0)
        assert cc.cwnd == 50

    def test_timeout(self):
        cc = RenoCongestionControl(initial_cwnd=100)
        cc.on_timeout(now=0)
        assert cc.cwnd == 1.0


class _Loopback:
    """Sender and receiver joined by two clean links (no middlebox)."""

    def __init__(self, total_segments=None, rate=10e9, config=None, loss_filter=None):
        self.sim = Simulator()
        rng = random.Random(6)
        self.config = config or TcpConfig()
        self.received = []
        self.loss_filter = loss_filter

        self.c2s = Link(self.sim, rate, 1 * MICROSECOND, sink=self._to_server)
        self.s2c = Link(self.sim, rate, 1 * MICROSECOND, sink=self._to_client)
        self.server = TcpReceiverEndpoint(self.sim, self.s2c, rng, self.config)
        flow = TcpFlow(FLOW, total_segments=total_segments)
        self.done = []
        self.sender = TcpSenderEndpoint(
            self.sim, flow, self.c2s,
            CubicCongestionControl(self.config.initial_cwnd, self.config.max_cwnd),
            rng, self.config, on_done=self.done.append,
        )

    def _to_server(self, packet, now):
        if self.loss_filter is not None and self.loss_filter(packet):
            return
        self.server.receive(packet, now)

    def _to_client(self, packet, now):
        self.sender.receive(packet, now)

    def run(self, duration=200 * MILLISECOND):
        self.sender.start()
        self.sim.run(until=duration)


class TestEndpointsLoopback:
    def test_handshake_establishes(self):
        loop = _Loopback(total_segments=1)
        loop.run(5 * MILLISECOND)
        assert loop.sender.state in ("established", "closing", "done")
        assert loop.server.syns_accepted == 1

    def test_finite_transfer_completes(self):
        loop = _Loopback(total_segments=500)
        loop.run(100 * MILLISECOND)
        assert loop.sender.state == "done"
        assert loop.server.delivered_segments(FLOW) == 500
        assert loop.done  # completion callback fired

    def test_no_spurious_retransmissions_on_clean_path(self):
        loop = _Loopback(total_segments=1000)
        loop.run(200 * MILLISECOND)
        assert loop.sender.retransmissions == 0
        assert loop.sender.timeouts == 0

    def test_throughput_approaches_line_rate(self):
        loop = _Loopback()
        loop.run(50 * MILLISECOND)
        delivered_bits = loop.server.delivered_segments(FLOW) * loop.config.mss_payload * 8
        gbps = delivered_bits / (50 * MILLISECOND / SECOND) / 1e9
        assert gbps > 8.5  # ~9.42 max after overheads and ramp-up

    def test_single_loss_recovers_by_fast_retransmit(self):
        dropped = []

        def drop_seq_100_once(packet):
            if packet.payload_len > 0 and packet.seq == 100 and not dropped:
                dropped.append(packet.seq)
                return True
            return False

        loop = _Loopback(total_segments=400, loss_filter=drop_seq_100_once)
        loop.run(200 * MILLISECOND)
        assert loop.sender.state == "done"
        assert loop.server.delivered_segments(FLOW) == 400
        assert loop.sender.retransmissions == 1
        assert loop.sender.timeouts == 0

    def test_random_loss_still_completes(self):
        rng = random.Random(8)

        def lossy(packet):
            return packet.payload_len > 0 and rng.random() < 0.02

        loop = _Loopback(total_segments=300, loss_filter=lossy)
        loop.run(400 * MILLISECOND)
        assert loop.server.delivered_segments(FLOW) == 300

    def test_delivered_segments_monotone_no_duplication(self):
        loop = _Loopback(total_segments=200)
        loop.run(100 * MILLISECOND)
        assert loop.server.delivered_bytes(FLOW) == 200 * loop.config.mss_payload

    def test_syn_loss_retried(self):
        state = {"dropped": False}

        def drop_first_syn(packet):
            if packet.flags & 0x02 and not state["dropped"]:
                state["dropped"] = True
                return True
            return False

        loop = _Loopback(total_segments=10, loss_filter=drop_first_syn)
        loop.run(3000 * MILLISECOND)
        assert loop.server.delivered_segments(FLOW) == 10
