"""Unit tests for the multi-queue NIC, rx queues, and links."""

import random

import pytest

from repro.net import FiveTuple, make_tcp_packet, make_udp_packet
from repro.net.five_tuple import PROTO_TCP, PROTO_UDP
from repro.nic import MultiQueueNic, NicConfig, RxQueue, build_checksum_spray_rules
from repro.nic.link import Link
from repro.sim import MICROSECOND, SECOND, Simulator

TCP_FLOW = FiveTuple(0x0A000001, 0x0A010001, 1234, 80, PROTO_TCP)
UDP_FLOW = FiveTuple(0x0A000001, 0x0A010001, 1234, 53, PROTO_UDP)


class TestRxQueue:
    def test_fifo_order(self):
        queue = RxQueue(0, capacity=10)
        packets = [make_tcp_packet(TCP_FLOW, seq=i) for i in range(3)]
        for packet in packets:
            queue.push(packet)
        assert queue.pop_batch(10) == packets

    def test_tail_drop_on_overflow(self):
        queue = RxQueue(0, capacity=2)
        assert queue.push(make_tcp_packet(TCP_FLOW))
        assert queue.push(make_tcp_packet(TCP_FLOW))
        assert not queue.push(make_tcp_packet(TCP_FLOW))
        assert queue.dropped == 1
        assert len(queue) == 2

    def test_batch_respects_limit(self):
        queue = RxQueue(0)
        for i in range(10):
            queue.push(make_tcp_packet(TCP_FLOW, seq=i))
        batch = queue.pop_batch(4)
        assert len(batch) == 4
        assert len(queue) == 6

    def test_wake_callback_only_on_empty_transition(self):
        queue = RxQueue(0)
        wakes = []
        queue.on_first_packet = lambda: wakes.append(1)
        queue.push(make_tcp_packet(TCP_FLOW))
        queue.push(make_tcp_packet(TCP_FLOW))
        assert len(wakes) == 1
        queue.pop_batch(10)
        queue.push(make_tcp_packet(TCP_FLOW))
        assert len(wakes) == 2

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            RxQueue(0, capacity=0)
        with pytest.raises(ValueError):
            RxQueue(0).pop_batch(0)


class TestNicClassification:
    def test_rss_steers_flow_to_one_queue(self):
        nic = MultiQueueNic(NicConfig(num_queues=8))
        queues = set()
        for i in range(20):
            packet = make_tcp_packet(TCP_FLOW, seq=i, tcp_checksum=i * 7919)
            assert nic.receive(packet, now=i)
            queues.add(packet.rx_queue)
        assert len(queues) == 1

    def test_symmetric_rss_default(self):
        nic = MultiQueueNic(NicConfig(num_queues=8))
        fwd = make_tcp_packet(TCP_FLOW)
        rev = make_tcp_packet(TCP_FLOW.reversed())
        assert nic.classify(fwd) == nic.classify(rev)

    def test_flow_director_sprays_tcp(self):
        config = NicConfig(num_queues=8, flow_director_enabled=True, flow_director_pps_cap=None)
        nic = MultiQueueNic(config)
        nic.flow_director.add_rules(build_checksum_spray_rules(8))
        rng = random.Random(5)
        queues = set()
        for i in range(200):
            packet = make_tcp_packet(TCP_FLOW, seq=i, tcp_checksum=rng.getrandbits(16))
            nic.receive(packet, now=i)
            queues.add(packet.rx_queue)
        assert len(queues) == 8  # one flow sprayed over every queue

    def test_non_tcp_falls_back_to_rss(self):
        config = NicConfig(num_queues=8, flow_director_enabled=True, flow_director_pps_cap=None)
        nic = MultiQueueNic(config)
        nic.flow_director.add_rules(build_checksum_spray_rules(8))
        queues = set()
        for i in range(20):
            packet = make_udp_packet(UDP_FLOW)
            nic.receive(packet, now=i)
            queues.add(packet.rx_queue)
        assert len(queues) == 1
        assert nic.stats.rss_fallback == 20

    def test_custom_classifier_takes_priority(self):
        nic = MultiQueueNic(NicConfig(num_queues=8))
        nic.custom_classifier = lambda packet: 6
        packet = make_tcp_packet(TCP_FLOW)
        assert nic.classify(packet) == 6

    def test_custom_classifier_none_falls_through(self):
        nic = MultiQueueNic(NicConfig(num_queues=8))
        nic.custom_classifier = lambda packet: None
        packet = make_tcp_packet(TCP_FLOW)
        assert nic.classify(packet) == nic.rss.queue_for(TCP_FLOW)

    def test_queue_overflow_counted(self):
        nic = MultiQueueNic(NicConfig(num_queues=1, queue_capacity=2))
        for i in range(5):
            nic.receive(make_tcp_packet(TCP_FLOW, seq=i), now=i)
        assert nic.stats.rx_dropped_queue_full == 3

    def test_per_queue_rx_accounting(self):
        nic = MultiQueueNic(NicConfig(num_queues=4))
        for i in range(10):
            nic.receive(make_tcp_packet(TCP_FLOW, seq=i), now=i)
        assert sum(nic.stats.per_queue_rx) == 10


class TestFlowDirectorCap:
    def test_cap_drops_beyond_rate(self):
        """The 82599's ~10 Mpps Flow Director ceiling (paper §5)."""
        config = NicConfig(
            num_queues=8,
            flow_director_enabled=True,
            flow_director_pps_cap=1e6,  # 1 Mpps for the test
            flow_director_burst=8,
        )
        nic = MultiQueueNic(config)
        nic.flow_director.add_rules(build_checksum_spray_rules(8))
        # Offer 2 Mpps for a simulated millisecond: 2000 packets.
        interval = round(SECOND / 2e6)
        accepted = sum(
            1 for i in range(2000)
            if nic.receive(make_tcp_packet(TCP_FLOW, seq=i, tcp_checksum=i), now=i * interval)
        )
        # ~1 Mpps sustained => ~1000 accepted (plus the burst allowance).
        assert 900 <= accepted <= 1200
        assert nic.stats.rx_dropped_fd_cap == 2000 - accepted

    def test_cap_disabled_accepts_everything(self):
        config = NicConfig(num_queues=8, flow_director_enabled=True, flow_director_pps_cap=None)
        nic = MultiQueueNic(config)
        nic.flow_director.add_rules(build_checksum_spray_rules(8))
        for i in range(1000):
            assert nic.receive(make_tcp_packet(TCP_FLOW, seq=i, tcp_checksum=i), now=0)

    def test_rss_mode_is_not_capped(self):
        nic = MultiQueueNic(
            NicConfig(num_queues=8, queue_capacity=2048, flow_director_enabled=False)
        )
        for i in range(1000):
            assert nic.receive(make_tcp_packet(TCP_FLOW, seq=i), now=0)
        assert nic.stats.rx_dropped_fd_cap == 0


class TestLink:
    def test_serialization_time_64b_at_10g(self):
        sim = Simulator()
        link = Link(sim, rate_bps=10e9, sink=lambda p, t: None)
        packet = make_tcp_packet(TCP_FLOW)  # 64 B frame -> 84 wire bytes
        assert link.serialization_time(packet) == round(84 * 8 * SECOND / 10e9)

    def test_fifo_serialization_backs_up(self):
        sim = Simulator()
        arrivals = []
        link = Link(sim, rate_bps=10e9, propagation_delay=0,
                    sink=lambda p, t: arrivals.append(t))
        a = make_tcp_packet(TCP_FLOW)
        b = make_tcp_packet(TCP_FLOW)
        link.send(a)
        link.send(b)
        sim.run()
        assert arrivals[1] - arrivals[0] == link.serialization_time(b)

    def test_propagation_delay_added(self):
        sim = Simulator()
        arrivals = []
        link = Link(sim, rate_bps=10e9, propagation_delay=5 * MICROSECOND,
                    sink=lambda p, t: arrivals.append(t))
        packet = make_tcp_packet(TCP_FLOW)
        expected = link.serialization_time(packet) + 5 * MICROSECOND
        link.send(packet)
        sim.run()
        assert arrivals == [expected]

    def test_queue_limit_drops(self):
        sim = Simulator()
        link = Link(sim, rate_bps=10e9, sink=lambda p, t: None, queue_limit=2)
        results = [link.send(make_tcp_packet(TCP_FLOW)) for _ in range(5)]
        assert results.count(-1) == 3
        assert link.packets_dropped == 3

    def test_queue_drains_over_time(self):
        sim = Simulator()
        link = Link(sim, rate_bps=10e9, sink=lambda p, t: None, queue_limit=2)
        link.send(make_tcp_packet(TCP_FLOW))
        link.send(make_tcp_packet(TCP_FLOW))
        assert link.send(make_tcp_packet(TCP_FLOW)) == -1
        sim.run()  # serialize everything out
        assert link.send(make_tcp_packet(TCP_FLOW)) != -1

    def test_no_sink_raises(self):
        sim = Simulator()
        link = Link(sim)
        with pytest.raises(RuntimeError):
            link.send(make_tcp_packet(TCP_FLOW))
