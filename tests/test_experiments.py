"""Smoke tests for every experiment runner (reduced parameters).

Each test asserts the *paper-shape* property of its figure on a small
configuration, so the full benchmark harness regenerating the real
figures is exercised end to end on every test run.
"""

import pytest

from repro.experiments import format_table
from repro.experiments.fig1 import headline, run_fig1
from repro.experiments.fig2 import cdf_points, run_fig2
from repro.experiments.fig6 import run_fig6a, run_fig6b
from repro.experiments.fig7 import run_fig7a, run_fig7b
from repro.experiments.fig8 import run_fig8
from repro.experiments.fig9 import run_fig9
from repro.experiments.harness import measure_capacity, run_open_loop, run_tcp
from repro.experiments.table1 import run_table1, verify_nf
from repro.nfs.registry import NF_PROFILES
from repro.sim.timeunits import MILLISECOND


class TestHarness:
    def test_open_loop_measures_rate(self):
        result = run_open_loop("rss", 10000, duration=4 * MILLISECOND, warmup=MILLISECOND)
        assert result.rate_mpps == pytest.approx(0.197, rel=0.1)

    def test_open_loop_validates_window(self):
        with pytest.raises(ValueError):
            run_open_loop("rss", 0, duration=MILLISECOND, warmup=MILLISECOND)

    def test_measure_capacity_sprayer_hits_fd_cap(self):
        capacity = measure_capacity("sprayer", 0)
        assert capacity == pytest.approx(10.5e6, rel=0.05)

    def test_run_tcp_returns_result(self):
        result = run_tcp("sprayer", 0, duration=20 * MILLISECOND)
        assert result.total_goodput_gbps > 8.0
        assert result.telemetry["counters"] is not None

    def test_run_tcp_validates_window(self):
        """Same contract as run_open_loop: 0 <= warmup < duration."""
        with pytest.raises(ValueError, match="warmup < duration"):
            run_tcp("rss", 0, duration=MILLISECOND, warmup=MILLISECOND)
        with pytest.raises(ValueError, match="warmup < duration"):
            run_tcp("rss", 0, duration=MILLISECOND, warmup=-1)
        with pytest.raises(ValueError, match="warmup < duration"):
            run_tcp("rss", 0, duration=0)


class TestFig1:
    def test_headline_band(self):
        stats = headline(seed=1, duration_s=4.0)
        assert stats["bytes_fraction_over_10MB"] > 0.6
        assert stats["flow_fraction_over_10MB"] < 0.02

    def test_cdf_rows_are_monotone(self):
        rows = run_fig1(seed=1, duration_s=3.0)
        flows = [row["flows_cdf"] for row in rows]
        bytes_ = [row["bytes_cdf"] for row in rows]
        assert flows == sorted(flows)
        assert bytes_ == sorted(bytes_)
        assert flows[-1] == pytest.approx(1.0)


class TestFig2:
    def test_quantile_bands(self):
        rows = run_fig2(seed=1, duration_s=4.0, samples=600)
        all_flows = next(r for r in rows if r["population"] == "all flows")
        big = next(r for r in rows if r["population"] == "> 10 MB")
        assert 2 <= all_flows["median"] <= 9  # paper: 4
        assert big["median"] <= all_flows["median"]  # paper: 1 vs 4

    def test_cdf_points_valid(self):
        points = cdf_points(seed=1, duration_s=3.0, samples=300)
        cdf = [p["cdf"] for p in points]
        assert cdf == sorted(cdf)
        assert cdf[-1] == 1.0


class TestFig6:
    def test_fig6a_shape(self):
        rows = run_fig6a(cycles_sweep=(0, 10000), duration=4 * MILLISECOND,
                         warmup=MILLISECOND)
        low, high = rows[0], rows[1]
        # Sprayer capped near 10.5 Mpps at 0 cycles; RSS single core.
        assert low["sprayer_mpps"] == pytest.approx(10.5, rel=0.1)
        assert low["rss_mpps"] > low["sprayer_mpps"]
        # At 10k cycles Sprayer ~8x RSS.
        assert high["sprayer_mpps"] == pytest.approx(8 * high["rss_mpps"], rel=0.1)

    def test_fig6b_shape(self):
        rows = run_fig6b(cycles_sweep=(0, 10000), duration=40 * MILLISECOND)
        low, high = rows[0], rows[1]
        assert low["rss_gbps"] == pytest.approx(low["sprayer_gbps"], rel=0.1)
        assert high["sprayer_gbps"] > 4 * high["rss_gbps"]


class TestFig7:
    def test_fig7a_shape(self):
        rows = run_fig7a(flow_sweep=(1, 16), duration=5 * MILLISECOND,
                         warmup=2 * MILLISECOND)
        assert rows[0]["sprayer_mpps"] == pytest.approx(rows[1]["sprayer_mpps"], rel=0.05)
        assert rows[1]["rss_mpps"] > 4 * rows[0]["rss_mpps"]

    def test_fig7b_shape(self):
        rows = run_fig7b(flow_sweep=(1, 8), duration=60 * MILLISECOND)
        assert rows[0]["sprayer_gbps"] > 4 * rows[0]["rss_gbps"]
        assert rows[1]["rss_gbps"] > 0.8 * rows[1]["sprayer_gbps"]


class TestFig8:
    def test_latency_ordering(self):
        rows = run_fig8(cycles_sweep=(5000,), duration=6 * MILLISECOND,
                        warmup=2 * MILLISECOND)
        row = rows[0]
        assert row["sprayer_p99_us"] < row["rss_p99_us"]


class TestFig9:
    def test_fairness_ordering(self):
        rows = run_fig9(flow_sweep=(8,), duration=80 * MILLISECOND, seeds=(1, 2))
        row = rows[0]
        assert row["sprayer_jain"] > 0.85
        assert row["sprayer_jain"] >= row["rss_jain"] - 0.05
        assert row["rss_min"] <= row["rss_max"]


class TestTable1:
    def test_rows_match_registry(self):
        rows = run_table1(verify=False)
        assert len(rows) == sum(
            len(p.states) for p in NF_PROFILES.values() if p.in_table1
        )

    def test_all_implemented_nfs_verify(self):
        for key, profile in NF_PROFILES.items():
            if profile.implementation is None:
                continue
            result = verify_nf(key)
            assert result["ok"], f"{key}: {result['checks']}"


class TestFormatting:
    def test_format_table_renders(self):
        rows = [{"a": 1, "b": 2.5}, {"a": 10, "b": 0.001}]
        text = format_table(rows, title="T")
        assert "T" in text and "a" in text and "10" in text

    def test_format_empty(self):
        assert "(no rows)" in format_table([])
