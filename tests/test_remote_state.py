"""Tests for the StatelessNF-style remote state backend (§6)."""

import random

import pytest

from repro.core import MiddleboxConfig, MiddleboxEngine
from repro.core.flow_state import RemoteFlowState
from repro.cpu.costs import CostModel
from repro.net import ACK, SYN, FiveTuple, make_tcp_packet
from repro.nfs import SyntheticNf
from repro.sim import MILLISECOND, Simulator

COSTS = CostModel()


def flow(i: int = 1) -> FiveTuple:
    return FiveTuple(0x0A000000 + i, 0x0A010000 + i, 10000 + i, 80, 6)


class TestRemoteFlowState:
    def test_any_core_may_write_and_read(self):
        state = RemoteFlowState(COSTS)
        state.insert_local(0, flow(1), {"v": 1})
        state.insert_local(5, flow(2), {"v": 2})
        assert state.get(3, flow(1))[0] == {"v": 1}
        assert state.get_local(7, flow(2))[0] == {"v": 2}

    def test_every_access_costs_a_round_trip(self):
        state = RemoteFlowState(COSTS, remote_access_cycles=1234)
        _, insert_cost = state.insert_local(0, flow(1), {})
        _, read_cost = state.get(1, flow(1))
        assert insert_cost == 1234
        assert read_cost == 1234
        assert state.remote_accesses == 2

    def test_batched_reads_amortize(self):
        state = RemoteFlowState(COSTS, remote_access_cycles=1000)
        flows = [flow(i) for i in range(4)]
        for f in flows:
            state.insert_local(0, f, f.src_port)
        entries, cycles = state.get_many(2, flows)
        assert entries == [f.src_port for f in flows]
        assert cycles == 1000 + 3 * 500

    def test_remove(self):
        state = RemoteFlowState(COSTS)
        state.insert_local(0, flow(1), {})
        removed, cycles = state.remove_local(4, flow(1))
        assert removed and cycles == state.remote_access_cycles
        assert state.get(0, flow(1))[0] is None

    def test_default_cost_is_a_microsecond_ish(self):
        state = RemoteFlowState(COSTS)
        assert state.remote_access_cycles == 2000  # 1 us at 2 GHz


class TestEngineWithRemoteBackend:
    def test_engine_runs_end_to_end(self):
        sim = Simulator()
        engine = MiddleboxEngine(
            sim, SyntheticNf(busy_cycles=0),
            MiddleboxConfig(mode="sprayer", num_cores=8, state_backend="remote"),
        )
        out = []
        engine.set_egress(out.append)
        rng = random.Random(2)
        f = flow()
        engine.receive(make_tcp_packet(f, flags=SYN, tcp_checksum=rng.getrandbits(16)), 0)
        sim.run(until=5 * MILLISECOND)
        for seq in range(32):
            engine.receive(
                make_tcp_packet(f, flags=ACK, seq=seq, tcp_checksum=rng.getrandbits(16)),
                sim.now,
            )
        sim.run(until=sim.now + 10 * MILLISECOND)
        assert len(out) == 33
        assert engine.flow_state.remote_accesses > 32

    def test_backend_override_beats_policy_default(self):
        sim = Simulator()
        engine = MiddleboxEngine(
            sim, SyntheticNf(),
            MiddleboxConfig(mode="naive", state_backend="remote"),
        )
        assert isinstance(engine.flow_state, RemoteFlowState)

    def test_explicit_partitioned_backend(self):
        from repro.core.flow_state import PartitionedFlowState

        sim = Simulator()
        engine = MiddleboxEngine(
            sim, SyntheticNf(),
            MiddleboxConfig(mode="sprayer", state_backend="partitioned"),
        )
        assert isinstance(engine.flow_state, PartitionedFlowState)

    def test_bad_backend_rejected(self):
        with pytest.raises(ValueError):
            MiddleboxConfig(state_backend="cloud")
