"""Property-based tests for the extension data structures."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.dispatcher import ConsistentHashRing
from repro.tcpstack.quic import _AckedSet, _PnSpace
from repro.trafficgen.trace import TraceFlow


class TestPnSpaceProperties:
    @given(st.lists(st.integers(min_value=0, max_value=200), max_size=100))
    def test_membership_matches_reference_set(self, values):
        space = _PnSpace()
        reference = set()
        for value in values:
            fresh = space.add(value)
            assert fresh == (value not in reference)
            reference.add(value)
        assert space.count == len(reference)
        if reference:
            assert space.largest == max(reference)

    @given(st.sets(st.integers(min_value=0, max_value=150), max_size=80))
    def test_ranges_cover_exactly_the_members(self, values):
        space = _PnSpace()
        for value in values:
            space.add(value)
        covered = set()
        for start, end in space.ranges(max_ranges=10_000):
            covered.update(range(start, end))
        assert covered == values

    @given(st.lists(st.integers(min_value=0, max_value=60), min_size=1, max_size=200))
    def test_floor_is_first_missing(self, values):
        space = _PnSpace()
        reference = set()
        for value in values:
            space.add(value)
            reference.add(value)
        expected_floor = 0
        while expected_floor in reference:
            expected_floor += 1
        assert space.floor == expected_floor

    @given(st.sets(st.integers(min_value=0, max_value=100), max_size=60))
    def test_acked_set_matches_reference(self, values):
        acked = _AckedSet()
        for value in values:
            acked.add(value)
            acked.add(value)  # idempotent
        for probe in range(110):
            assert (probe in acked) == (probe in values)
        assert len(acked) == len(values)


class TestTraceFlowWindowProperty:
    @given(
        start=st.integers(min_value=0, max_value=10_000),
        gap=st.integers(min_value=1, max_value=500),
        num_packets=st.integers(min_value=1, max_value=40),
        window_start=st.integers(min_value=0, max_value=30_000),
        window_len=st.integers(min_value=1, max_value=2_000),
    )
    @settings(max_examples=200)
    def test_window_check_matches_enumeration(
        self, start, gap, num_packets, window_start, window_len
    ):
        """The closed-form packet-in-window test equals brute force."""
        flow = TraceFlow(
            start=start, size_bytes=1.0, rate_bps=1.0,
            num_packets=num_packets, packet_gap=gap,
        )
        arrivals = [start + k * gap for k in range(num_packets)]
        expected = any(window_start <= t < window_start + window_len for t in arrivals)
        assert flow.has_packet_in(window_start, window_len) == expected

    @given(
        start=st.integers(min_value=0, max_value=1_000),
        window_start=st.integers(min_value=0, max_value=3_000),
        window_len=st.integers(min_value=1, max_value=500),
    )
    def test_single_packet_flow(self, start, window_start, window_len):
        flow = TraceFlow(start=start, size_bytes=1.0, rate_bps=1.0,
                         num_packets=1, packet_gap=0)
        expected = window_start <= start < window_start + window_len
        assert flow.has_packet_in(window_start, window_len) == expected


class TestConsistentHashProperties:
    @given(st.lists(st.text(alphabet="abcdef", min_size=1, max_size=6),
                    min_size=1, max_size=6, unique=True),
           st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=100, deadline=None)
    def test_lookup_always_returns_a_member(self, nodes, key):
        ring = ConsistentHashRing(virtual_nodes=8)
        for node in nodes:
            ring.add_node(node)
        assert ring.lookup(str(key)) in nodes

    @given(st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=50, deadline=None)
    def test_remove_then_readd_is_idempotent(self, key):
        ring = ConsistentHashRing(virtual_nodes=8)
        for node in ("a", "b", "c"):
            ring.add_node(node)
        before = ring.lookup(str(key))
        ring.remove_node("b")
        ring.add_node("b")
        assert ring.lookup(str(key)) == before

    @given(st.integers(min_value=2, max_value=12),
           st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=40, deadline=None)
    def test_add_node_minimal_disruption(self, num_hosts, salt):
        """Adding one of N hosts remaps ~1/(N+1) of keys, and every
        remapped key lands on the newcomer — never between survivors."""
        ring = ConsistentHashRing()
        for i in range(num_hosts):
            ring.add_node(f"host{i}")
        keys = [f"{salt}:{i}" for i in range(400)]
        before = {key: ring.lookup(key) for key in keys}
        ring.add_node("newcomer")
        moved = 0
        for key in keys:
            after = ring.lookup(key)
            if after != before[key]:
                assert after == "newcomer"
                moved += 1
        # Expected fraction is 1/(N+1); with 64 virtual nodes the arc
        # share concentrates tightly, so 2.5x is a vast safety margin.
        assert moved <= 2.5 * len(keys) / (num_hosts + 1)

    @given(st.integers(min_value=2, max_value=12),
           st.integers(min_value=0, max_value=2**32),
           st.integers(min_value=0, max_value=11))
    @settings(max_examples=40, deadline=None)
    def test_remove_node_minimal_disruption(self, num_hosts, salt, victim_index):
        """Removing one host remaps exactly that host's keys; keys on
        survivors never move between survivors."""
        ring = ConsistentHashRing()
        hosts = [f"host{i}" for i in range(num_hosts)]
        for host in hosts:
            ring.add_node(host)
        victim = hosts[victim_index % num_hosts]
        keys = [f"{salt}:{i}" for i in range(400)]
        before = {key: ring.lookup(key) for key in keys}
        ring.remove_node(victim)
        for key in keys:
            after = ring.lookup(key)
            if before[key] == victim:
                assert after != victim
            else:
                assert after == before[key]
