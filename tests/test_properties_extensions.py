"""Property-based tests for the extension data structures."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.dispatcher import ConsistentHashRing
from repro.tcpstack.quic import _AckedSet, _PnSpace
from repro.trafficgen.trace import TraceFlow


class TestPnSpaceProperties:
    @given(st.lists(st.integers(min_value=0, max_value=200), max_size=100))
    def test_membership_matches_reference_set(self, values):
        space = _PnSpace()
        reference = set()
        for value in values:
            fresh = space.add(value)
            assert fresh == (value not in reference)
            reference.add(value)
        assert space.count == len(reference)
        if reference:
            assert space.largest == max(reference)

    @given(st.sets(st.integers(min_value=0, max_value=150), max_size=80))
    def test_ranges_cover_exactly_the_members(self, values):
        space = _PnSpace()
        for value in values:
            space.add(value)
        covered = set()
        for start, end in space.ranges(max_ranges=10_000):
            covered.update(range(start, end))
        assert covered == values

    @given(st.lists(st.integers(min_value=0, max_value=60), min_size=1, max_size=200))
    def test_floor_is_first_missing(self, values):
        space = _PnSpace()
        reference = set()
        for value in values:
            space.add(value)
            reference.add(value)
        expected_floor = 0
        while expected_floor in reference:
            expected_floor += 1
        assert space.floor == expected_floor

    @given(st.sets(st.integers(min_value=0, max_value=100), max_size=60))
    def test_acked_set_matches_reference(self, values):
        acked = _AckedSet()
        for value in values:
            acked.add(value)
            acked.add(value)  # idempotent
        for probe in range(110):
            assert (probe in acked) == (probe in values)
        assert len(acked) == len(values)


class TestTraceFlowWindowProperty:
    @given(
        start=st.integers(min_value=0, max_value=10_000),
        gap=st.integers(min_value=1, max_value=500),
        num_packets=st.integers(min_value=1, max_value=40),
        window_start=st.integers(min_value=0, max_value=30_000),
        window_len=st.integers(min_value=1, max_value=2_000),
    )
    @settings(max_examples=200)
    def test_window_check_matches_enumeration(
        self, start, gap, num_packets, window_start, window_len
    ):
        """The closed-form packet-in-window test equals brute force."""
        flow = TraceFlow(
            start=start, size_bytes=1.0, rate_bps=1.0,
            num_packets=num_packets, packet_gap=gap,
        )
        arrivals = [start + k * gap for k in range(num_packets)]
        expected = any(window_start <= t < window_start + window_len for t in arrivals)
        assert flow.has_packet_in(window_start, window_len) == expected

    @given(
        start=st.integers(min_value=0, max_value=1_000),
        window_start=st.integers(min_value=0, max_value=3_000),
        window_len=st.integers(min_value=1, max_value=500),
    )
    def test_single_packet_flow(self, start, window_start, window_len):
        flow = TraceFlow(start=start, size_bytes=1.0, rate_bps=1.0,
                         num_packets=1, packet_gap=0)
        expected = window_start <= start < window_start + window_len
        assert flow.has_packet_in(window_start, window_len) == expected


class TestConsistentHashProperties:
    @given(st.lists(st.text(alphabet="abcdef", min_size=1, max_size=6),
                    min_size=1, max_size=6, unique=True),
           st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=100, deadline=None)
    def test_lookup_always_returns_a_member(self, nodes, key):
        ring = ConsistentHashRing(virtual_nodes=8)
        for node in nodes:
            ring.add_node(node)
        assert ring.lookup(str(key)) in nodes

    @given(st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=50, deadline=None)
    def test_remove_then_readd_is_idempotent(self, key):
        ring = ConsistentHashRing(virtual_nodes=8)
        for node in ("a", "b", "c"):
            ring.add_node(node)
        before = ring.lookup(str(key))
        ring.remove_node("b")
        ring.add_node("b")
        assert ring.lookup(str(key)) == before
