"""Tests for the auto-parallelization planner (``repro.plan``).

The planner's contract, in order of importance: it is a *pure function
of the inferred access patterns* (deterministic, order-independent), it
never emits an unsound configuration (every plan survives an audited
drive with zero ownership violations), and the audit machinery itself
is live (a deliberately corrupted plan trips the auditor).
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.chain import NfChain, ScopedContext
from repro.lint.dataflow import AccessSummary
from repro.nfs.registry import NF_PROFILES
from repro.plan import (
    ChainPlan,
    Objective,
    audit_chain,
    build_chain,
    classify,
    plan_chain,
    plan_chains,
    verify_plan,
)

#: Every registry key with an implementation to infer from.
IMPLEMENTED = sorted(
    key for key, p in NF_PROFILES.items() if p.implementation is not None
)
#: The Figure P chain mix (without the synthetic compute stage).
FIGP_CHAINS = (
    ("firewall", "nat", "traffic_monitor"),
    ("firewall", "load_balancer"),
    ("traffic_monitor", "redundancy_elimination"),
    ("dpi",),
    ("dpi_ooo", "traffic_monitor"),
)

chains = st.lists(st.sampled_from(IMPLEMENTED), min_size=1, max_size=4)
unique_chains = st.lists(
    st.sampled_from(IMPLEMENTED), min_size=1, max_size=3, unique=True
)


class TestClassify:
    def cases(self):
        return [
            (AccessSummary(), True, "stateless"),
            (AccessSummary(per_flow_packet="R", per_flow_event="RW"), False,
             "read_mostly"),
            (AccessSummary(per_flow_packet="RW", per_flow_event="RW"), False,
             "per_packet_flow_writer"),
            (AccessSummary(per_flow_packet="RW", per_flow_event="RW",
                           designated_only=True), False, "designated_drainer"),
            (AccessSummary(global_packet="RW", global_event="RW",
                           relaxed_only=False), False, "write_hot_global"),
            (AccessSummary(global_packet="RW", global_event="RW",
                           relaxed_only=True), False, "relaxed_writer"),
        ]

    def test_each_branch(self):
        for summary, stateless, expected in self.cases():
            assert classify(summary, stateless) == expected

    def test_unguarded_flow_writes_trump_global_pattern(self):
        summary = AccessSummary(
            per_flow_packet="RW", per_flow_event="RW",
            global_packet="RW", global_event="RW", relaxed_only=False,
        )
        assert classify(summary, False) == "per_packet_flow_writer"


class TestPlannerIsAFunctionOfTheChain:
    @settings(max_examples=30, deadline=None)
    @given(chains)
    def test_deterministic(self, keys):
        assert plan_chain(keys) == plan_chain(keys)

    @settings(max_examples=30, deadline=None)
    @given(chains)
    def test_order_independent(self, keys):
        forward = plan_chain(keys)
        backward = plan_chain(list(reversed(keys)))
        assert forward.mode == backward.mode
        assert forward.designated_policy == backward.designated_policy
        assert forward.ring_policy == backward.ring_policy
        assert forward.rationale == backward.rationale

    @settings(max_examples=30, deadline=None)
    @given(chains)
    def test_never_emits_naive(self, keys):
        assert plan_chain(keys).mode != "naive"

    def test_plan_chains_maps_plan_chain(self):
        plans = plan_chains(FIGP_CHAINS)
        assert [p.chain for p in plans] == [tuple(c) for c in FIGP_CHAINS]
        for plan, keys in zip(plans, FIGP_CHAINS):
            assert plan == plan_chain(keys)

    def test_expect_faults_upgrades_stateful_spray_chain_to_scr(self):
        relaxed = plan_chain(("firewall", "nat"))
        faulted = plan_chain(("firewall", "nat"), Objective(expect_faults=True))
        assert relaxed.mode == "sprayer"
        assert faulted.mode == "scr"
        assert faulted.designated_policy == "replicated_map"

    def test_unknown_and_taxonomy_only_keys_are_rejected(self):
        with pytest.raises(ValueError, match="unknown NF key"):
            plan_chain(("no_such_nf",))
        taxonomy_only = sorted(
            key for key, p in NF_PROFILES.items() if p.implementation is None
        )
        if taxonomy_only:
            with pytest.raises(ValueError, match="taxonomy-only"):
                plan_chain((taxonomy_only[0],))
        with pytest.raises(ValueError, match="at least one"):
            plan_chain(())

    def test_to_dict_is_json_plain(self):
        plan = plan_chain(("dpi_ooo", "traffic_monitor"))
        d = plan.to_dict()
        assert d["mode"] == plan.mode
        assert [s["key"] for s in d["stages"]] == ["dpi_ooo", "traffic_monitor"]
        assert all(isinstance(r, str) for r in d["rationale"])


class TestPlansAreSound:
    @settings(max_examples=8, deadline=None)
    @given(unique_chains)
    def test_every_emitted_plan_audits_clean(self, keys):
        plan = plan_chain(keys)
        audit = verify_plan(plan, num_flows=6, packets_per_flow=6)
        assert audit.sound and audit.violations == 0
        assert audit.forwarded > 0

    @pytest.mark.parametrize("keys", FIGP_CHAINS, ids="+".join)
    def test_figp_chain_plans_audit_clean(self, keys):
        plan = plan_chain(keys)
        audit = verify_plan(plan, num_flows=8, packets_per_flow=8)
        assert audit.violations == 0

    def test_corrupted_plan_trips_the_auditor(self):
        plan = plan_chain(("firewall", "nat"))
        corrupted = dataclasses.replace(plan, mode="naive")
        with pytest.raises(AssertionError, match="unsound"):
            verify_plan(corrupted, num_flows=8, packets_per_flow=8)
        audit = audit_chain(corrupted.chain, corrupted.mode,
                            num_flows=8, packets_per_flow=8)
        assert audit.violations > 0 and not audit.sound


class TestBuildChain:
    def test_single_key_returns_bare_nf(self):
        nf = build_chain(("synthetic",), synthetic={"busy_cycles": 123})
        assert not isinstance(nf, NfChain)
        assert nf.busy_cycles == 123

    def test_multi_key_returns_chain_in_order(self):
        chain = build_chain(("firewall", "nat"))
        assert isinstance(chain, NfChain)
        assert [stage.name for stage in chain.stages] == ["firewall", "nat"]


class TestScopedContextCycleAccounting:
    def test_direct_cycle_writes_reach_the_real_context(self):
        # Regression: an NF's unrolled ``ctx._cycles += n`` fast path
        # must charge the per-core context through the scoped view, not
        # a shadow attribute on the wrapper (which silently uncharged
        # every chained stage's compute).
        class Ctx:
            _cycles = 0.0
            local = {}

        ctx = Ctx()
        scoped = ScopedContext(ctx, "stage")
        scoped._cycles += 1234.0
        assert ctx._cycles == 1234.0
        assert scoped._cycles == 1234.0
