"""Tests for fairness, latency, throughput, reordering, and CDF metrics."""

import pytest

from repro.metrics import (
    LatencyRecorder,
    RateMeter,
    ReorderingTracker,
    empirical_cdf,
    gbps,
    jain_index,
    mpps,
    quantile,
)
from repro.sim.timeunits import MICROSECOND, MILLISECOND, SECOND


class TestJainIndex:
    def test_equal_allocation_is_one(self):
        assert jain_index([5, 5, 5, 5]) == pytest.approx(1.0)

    def test_single_user_hogging(self):
        # One of n gets everything: index = 1/n.
        assert jain_index([10, 0, 0, 0]) == pytest.approx(0.25)

    def test_known_value(self):
        # (1+2+3)^2 / (3 * (1+4+9)) = 36/42
        assert jain_index([1, 2, 3]) == pytest.approx(36 / 42)

    def test_scale_invariance(self):
        assert jain_index([1, 2, 3]) == pytest.approx(jain_index([10, 20, 30]))

    def test_bounds(self):
        import random

        rng = random.Random(5)
        for _ in range(50):
            values = [rng.random() for _ in range(rng.randrange(1, 20))]
            index = jain_index(values)
            assert 1 / len(values) - 1e-9 <= index <= 1.0 + 1e-9

    def test_all_zero_is_vacuously_fair(self):
        assert jain_index([0, 0, 0]) == 1.0

    def test_rejections(self):
        with pytest.raises(ValueError):
            jain_index([])
        with pytest.raises(ValueError):
            jain_index([1, -1])


class TestQuantileAndCdf:
    def test_quantile_nearest_rank(self):
        data = list(range(100))
        assert quantile(data, 0.0) == 0
        assert quantile(data, 0.5) == 50
        assert quantile(data, 0.99) == 99
        assert quantile(data, 1.0) == 99

    def test_quantile_validation(self):
        with pytest.raises(ValueError):
            quantile([], 0.5)
        with pytest.raises(ValueError):
            quantile([1], 1.5)

    def test_empirical_cdf_endpoints(self):
        curve = empirical_cdf([3, 1, 2])
        assert curve[0][0] == 1
        assert curve[-1] == (3, 1.0)

    def test_empirical_cdf_empty(self):
        assert empirical_cdf([]) == []


class TestLatencyRecorder:
    def test_percentiles(self):
        recorder = LatencyRecorder()
        for i in range(1, 101):
            recorder.record(i * MICROSECOND)
        assert recorder.percentile_us(0.99) == pytest.approx(100.0)
        summary = recorder.summary_us()
        assert summary["count"] == 100
        assert summary["p50"] == pytest.approx(51.0)
        assert summary["max"] == pytest.approx(100.0)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            LatencyRecorder().record(-1)

    def test_empty_summary(self):
        assert LatencyRecorder().summary_us() == {"count": 0}


class TestRateMeter:
    def test_rates(self):
        meter = RateMeter()
        meter.open_window(0)
        for _ in range(1000):
            meter.record(64)
        meter.close_window(MILLISECOND)
        assert meter.rate_mpps == pytest.approx(1.0)
        assert meter.rate_gbps == pytest.approx(1000 * 64 * 8 / 1e-3 / 1e9)

    def test_only_counts_inside_window(self):
        meter = RateMeter()
        meter.record(64)  # before open: ignored
        meter.open_window(0)
        meter.record(64)
        meter.close_window(MILLISECOND)
        meter.record(64)  # after close: ignored
        assert meter.packets == 1

    def test_misuse_raises(self):
        meter = RateMeter()
        with pytest.raises(RuntimeError):
            meter.close_window(1)
        with pytest.raises(RuntimeError):
            RateMeter().window_ps

    def test_helpers(self):
        assert mpps(1_000_000, SECOND) == pytest.approx(1.0)
        assert gbps(125_000_000, SECOND) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            mpps(1, 0)


class TestReorderingTracker:
    def test_in_order_stream(self):
        tracker = ReorderingTracker()
        for seq in range(10):
            assert not tracker.observe("flow", seq)
        assert tracker.reordered_packets == 0
        assert tracker.reordering_rate() == 0.0

    def test_detects_late_packet(self):
        tracker = ReorderingTracker()
        for seq in (0, 1, 3, 4, 2):
            tracker.observe("flow", seq)
        assert tracker.reordered_packets == 1
        assert tracker.max_extent() == 2  # overtaken by 3 and 4

    def test_per_flow_isolation(self):
        tracker = ReorderingTracker()
        tracker.observe("a", 5)
        assert not tracker.observe("b", 0)  # different flow: fine

    def test_mean_extent(self):
        tracker = ReorderingTracker()
        for seq in (0, 2, 1, 4, 3):
            tracker.observe("flow", seq)
        assert tracker.mean_extent() == pytest.approx(1.0)
