"""Tests for the multi-host cluster extension (§7)."""

import random

import pytest

from repro.cluster import ClusterMiddlebox, ConsistentHashRing, FlowDispatcher
from repro.core.config import MiddleboxConfig
from repro.net import ACK, SYN, make_tcp_packet
from repro.nfs import NatNf, SyntheticNf
from repro.sim import MILLISECOND, Simulator
from repro.trafficgen.flows import random_tcp_flows


class TestConsistentHashRing:
    def test_lookup_deterministic(self):
        ring = ConsistentHashRing()
        ring.add_node("a")
        ring.add_node("b")
        assert ring.lookup("key1") == ring.lookup("key1")

    def test_all_nodes_get_keys(self):
        ring = ConsistentHashRing()
        for node in ("a", "b", "c"):
            ring.add_node(node)
        owners = {ring.lookup(f"key{i}") for i in range(200)}
        assert owners == {"a", "b", "c"}

    def test_minimal_disruption_on_add(self):
        ring = ConsistentHashRing()
        for node in ("a", "b", "c", "d"):
            ring.add_node(node)
        keys = [f"key{i}" for i in range(1000)]
        before = {key: ring.lookup(key) for key in keys}
        ring.add_node("e")
        moved = sum(1 for key in keys if ring.lookup(key) != before[key])
        # Ideal is 1/5 of keys; allow slack for virtual-node variance.
        assert moved < 0.35 * len(keys)
        # Every moved key went to the new node.
        assert all(ring.lookup(k) == "e" for k in keys if ring.lookup(k) != before[k])

    def test_remove_restores_previous_owners(self):
        ring = ConsistentHashRing()
        for node in ("a", "b", "c"):
            ring.add_node(node)
        keys = [f"key{i}" for i in range(300)]
        before = {key: ring.lookup(key) for key in keys}
        ring.add_node("d")
        ring.remove_node("d")
        assert all(ring.lookup(key) == before[key] for key in keys)

    def test_cached_lookup_consistent_with_fresh_ring(self):
        # Warm the memo, then change topology twice; every answer must
        # match a ring built cold with the final membership.
        ring = ConsistentHashRing()
        for node in ("a", "b", "c"):
            ring.add_node(node)
        keys = [f"key{i}" for i in range(500)]
        for key in keys:
            ring.lookup(key)
        ring.add_node("d")
        ring.remove_node("b")
        fresh = ConsistentHashRing()
        for node in ("a", "c", "d"):
            fresh.add_node(node)
        assert {k: ring.lookup(k) for k in keys} == {k: fresh.lookup(k) for k in keys}

    def test_repeat_lookup_served_from_cache(self):
        ring = ConsistentHashRing()
        ring.add_node("a")
        ring.add_node("b")
        owner = ring.lookup("k")
        ring._points = []  # a cache miss would now raise "ring is empty"
        assert ring.lookup("k") == owner

    def test_cache_cleared_on_topology_change(self):
        ring = ConsistentHashRing()
        ring.add_node("a")
        ring.lookup("k")
        ring.add_node("b")
        assert not ring._lookup_cache
        ring.lookup("k")
        ring.remove_node("b")
        assert not ring._lookup_cache

    def test_cache_size_bounded(self, monkeypatch):
        import repro.cluster.dispatcher as dispatcher_module

        monkeypatch.setattr(dispatcher_module, "RING_CACHE_LIMIT", 8)
        ring = ConsistentHashRing()
        ring.add_node("a")
        for i in range(50):
            ring.lookup(f"key{i}")
        assert len(ring._lookup_cache) <= 8

    def test_duplicate_and_missing_nodes(self):
        ring = ConsistentHashRing()
        ring.add_node("a")
        with pytest.raises(ValueError):
            ring.add_node("a")
        with pytest.raises(ValueError):
            ring.remove_node("zzz")

    def test_empty_ring_lookup_raises(self):
        with pytest.raises(RuntimeError):
            ConsistentHashRing().lookup("key")


class TestFlowDispatcher:
    def test_direction_symmetric(self):
        dispatcher = FlowDispatcher(["h0", "h1", "h2"])
        for flow in random_tcp_flows(100, random.Random(1)):
            assert dispatcher.host_for(flow) == dispatcher.host_for(flow.reversed())

    def test_spreads_flows(self):
        dispatcher = FlowDispatcher(["h0", "h1", "h2", "h3"])
        hosts = [dispatcher.host_for(f) for f in random_tcp_flows(400, random.Random(2))]
        counts = {h: hosts.count(h) for h in set(hosts)}
        assert len(counts) == 4
        assert max(counts.values()) < 3 * min(counts.values())


def make_cluster(num_hosts=2, nf_factory=None):
    sim = Simulator()
    nf_factory = nf_factory or (lambda host: SyntheticNf(busy_cycles=1000))
    cluster = ClusterMiddlebox(sim, nf_factory, num_hosts=num_hosts)
    out = []
    cluster.set_egress(out.append)
    return sim, cluster, out


def open_and_send(sim, cluster, flow, rng, data=16):
    cluster.receive(make_tcp_packet(flow, flags=SYN, tcp_checksum=rng.getrandbits(16)), sim.now)
    sim.run(until=sim.now + MILLISECOND)
    for seq in range(data):
        cluster.receive(
            make_tcp_packet(flow, flags=ACK, seq=seq, tcp_checksum=rng.getrandbits(16)),
            sim.now,
        )
    sim.run(until=sim.now + 3 * MILLISECOND)


class TestClusterDataplane:
    def test_flow_never_sprayed_across_hosts(self):
        """The §7 constraint, by construction."""
        sim, cluster, out = make_cluster(num_hosts=3)
        rng = random.Random(3)
        flows = random_tcp_flows(12, rng)
        for flow in flows:
            open_and_send(sim, cluster, flow, rng, data=12)
        # Replay the dispatch decision: all packets of a flow hit one host.
        for flow in flows:
            assert cluster.host_for(flow) == cluster.host_for(flow.reversed())
        total = sum(cluster.stats.per_host_dispatched.values())
        assert total == cluster.stats.dispatched == 13 * len(flows)

    def test_within_host_spraying_still_happens(self):
        sim, cluster, out = make_cluster(num_hosts=2)
        rng = random.Random(5)
        flow = random_tcp_flows(1, rng)[0]
        open_and_send(sim, cluster, flow, rng, data=200)
        host = cluster.host_for(flow)
        per_core = cluster.engines[host].host.per_core_forwarded()
        assert sum(1 for c in per_core if c > 0) == 8

    def test_aggregate_forwarding(self):
        sim, cluster, out = make_cluster(num_hosts=2)
        rng = random.Random(7)
        for flow in random_tcp_flows(8, rng):
            open_and_send(sim, cluster, flow, rng, data=8)
        assert cluster.summary()["total_forwarded"] == 8 * 9
        assert len(out) == 72


class TestElasticScaling:
    def test_scale_out_migrates_a_fraction(self):
        sim, cluster, out = make_cluster(num_hosts=2)
        rng = random.Random(9)
        flows = random_tcp_flows(40, rng)
        for flow in flows:
            open_and_send(sim, cluster, flow, rng, data=2)
        entries_before = sum(
            e.flow_state.total_entries() for e in cluster.engines.values()
        )
        new_host = cluster.scale_out()
        assert new_host in cluster.hosts
        assert len(cluster.hosts) == 3
        # Some state moved, but far from all of it.
        assert 0 < cluster.stats.migrated_entries < entries_before
        entries_after = sum(
            e.flow_state.total_entries() for e in cluster.engines.values()
        )
        assert entries_after == entries_before  # nothing lost

    def test_traffic_follows_migrated_state(self):
        """After scale-out, a NAT translation keeps working on its new host."""
        sim = Simulator()
        cluster = ClusterMiddlebox(
            sim,
            lambda host: NatNf(external_ip=0x0B000000 | int(host[4:]) + 1),
            num_hosts=2,
        )
        out = []
        cluster.set_egress(out.append)
        rng = random.Random(11)
        flows = random_tcp_flows(20, rng)
        for flow in flows:
            open_and_send(sim, cluster, flow, rng, data=1)
        cluster.scale_out()
        moved = [f for f in flows if cluster.host_for(f) == cluster.hosts[-1]]
        assert moved, "expected some flows to re-map to the new host"
        out.clear()
        for flow in moved:
            cluster.receive(
                make_tcp_packet(flow, flags=ACK, seq=99, tcp_checksum=rng.getrandbits(16)),
                sim.now,
            )
        sim.run(until=sim.now + 5 * MILLISECOND)
        # The migrated translations still applied (packets not dropped).
        assert len(out) == len(moved)
        assert all(p.five_tuple.src_ip >> 24 == 0x0B for p in out)

    def test_scale_in_redistributes(self):
        sim, cluster, out = make_cluster(num_hosts=3)
        rng = random.Random(13)
        flows = random_tcp_flows(30, rng)
        for flow in flows:
            open_and_send(sim, cluster, flow, rng, data=2)
        victim = cluster.hosts[0]
        entries_before = sum(
            e.flow_state.total_entries() for e in cluster.engines.values()
        )
        cluster.scale_in(victim)
        assert victim not in cluster.hosts
        entries_after = sum(
            e.flow_state.total_entries() for e in cluster.engines.values()
        )
        assert entries_after == entries_before

    def test_scale_in_guards(self):
        sim, cluster, out = make_cluster(num_hosts=1)
        with pytest.raises(ValueError):
            cluster.scale_in(cluster.hosts[0])
        with pytest.raises(ValueError):
            cluster.scale_in("nope")


class TestStickyFlowsAndPinning:
    def test_sticky_flows_stay_on_scale_out(self):
        """Connection-draining mode: existing flows never move."""
        sim = Simulator()
        cluster = ClusterMiddlebox(
            sim, lambda host: SyntheticNf(busy_cycles=0), num_hosts=2,
            sticky_flows=True,
        )
        cluster.set_egress(lambda p: None)
        rng = random.Random(21)
        flows = random_tcp_flows(30, rng)
        before = {f: cluster.host_for(f) for f in flows}
        for flow in flows:
            open_and_send(sim, cluster, flow, rng, data=2)
        cluster.scale_out()
        assert all(cluster.host_for(f) == before[f] for f in flows)
        assert cluster.stats.migrated_entries == 0
        # New flows do use the new host eventually.
        new_flows = random_tcp_flows(60, random.Random(99))
        targets = {cluster.host_for(f) for f in new_flows}
        assert cluster.hosts[-1] in targets

    def test_sticky_scale_in_remaps_only_victims(self):
        sim = Simulator()
        cluster = ClusterMiddlebox(
            sim, lambda host: SyntheticNf(busy_cycles=0), num_hosts=3,
            sticky_flows=True,
        )
        cluster.set_egress(lambda p: None)
        flows = random_tcp_flows(60, random.Random(5))
        before = {f: cluster.host_for(f) for f in flows}
        victim = cluster.hosts[0]
        cluster.scale_in(victim)
        for f in flows:
            if before[f] == victim:
                assert cluster.host_for(f) != victim
            else:
                assert cluster.host_for(f) == before[f]

    def test_pinned_address_routes_to_owner(self):
        sim = Simulator()
        cluster = ClusterMiddlebox(
            sim, lambda host: SyntheticNf(busy_cycles=0), num_hosts=3,
        )
        cluster.set_egress(lambda p: None)
        external = 0x0B000001
        cluster.pin_address(external, cluster.hosts[1])
        from repro.net import FiveTuple

        returning = FiveTuple(0x0A010001, external, 80, 4242, 6)
        assert cluster.host_for(returning) == cluster.hosts[1]
        assert cluster.host_for(returning.reversed()) == cluster.hosts[1]

    def test_pin_requires_known_host(self):
        sim = Simulator()
        cluster = ClusterMiddlebox(
            sim, lambda host: SyntheticNf(busy_cycles=0), num_hosts=2,
        )
        with pytest.raises(ValueError):
            cluster.pin_address(1, "ghost")

    def test_pins_removed_with_host(self):
        sim = Simulator()
        cluster = ClusterMiddlebox(
            sim, lambda host: SyntheticNf(busy_cycles=0), num_hosts=2,
        )
        cluster.set_egress(lambda p: None)
        victim = cluster.hosts[0]
        cluster.pin_address(0x0B000001, victim)
        cluster.scale_in(victim)
        from repro.net import FiveTuple

        flow = FiveTuple(0x0A010001, 0x0B000001, 80, 4242, 6)
        assert cluster.host_for(flow) == cluster.hosts[0]  # survivor, via ring
