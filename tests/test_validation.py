"""Simulator validation against closed-form queueing theory.

These tests pin the middlebox model to regimes where theory is exact:
CBR traffic below capacity must see zero queueing; Poisson traffic onto
one core must match the M/D/1 Pollaczek-Khinchine mean; spraying a
Poisson stream must match the thinned-M/D/1 prediction. A cost-model or
engine regression that distorts timing breaks these before it subtly
skews the paper figures.
"""

import math
import random

import pytest

from repro.analysis import (
    md1_mean_sojourn,
    md1_mean_wait,
    mm1_mean_wait,
    sprayed_mean_sojourn,
    utilization,
)
from repro.experiments.harness import build_engine
from repro.metrics.latency import LatencyRecorder
from repro.net.packet import Packet
from repro.nic.link import Link
from repro.sim import MICROSECOND, MILLISECOND, SECOND, Simulator
from repro.trafficgen.flows import random_tcp_flows
from repro.trafficgen.moongen import OpenLoopGenerator


class TestClosedForms:
    def test_md1_known_value(self):
        # rho = 0.5: W = 0.5*s/(2*0.5) = s/2.
        assert md1_mean_wait(0.5, 1.0) == pytest.approx(0.5)

    def test_md1_is_half_of_mm1(self):
        # Deterministic service halves the M/M/1 wait.
        assert md1_mean_wait(0.7, 1.0) == pytest.approx(mm1_mean_wait(0.7, 1.0) / 2)

    def test_sojourn_adds_service(self):
        assert md1_mean_sojourn(0.3, 2.0) == pytest.approx(md1_mean_wait(0.3, 2.0) + 2.0)

    def test_validation_domain(self):
        with pytest.raises(ValueError):
            md1_mean_wait(1.0, 1.0)  # rho == 1
        with pytest.raises(ValueError):
            utilization(-1, 1)

    def test_spraying_thins_poisson(self):
        # Same rho per queue: same sojourn as one queue at lambda/n.
        assert sprayed_mean_sojourn(8e5, 5e-6, 8) == pytest.approx(
            md1_mean_sojourn(1e5, 5e-6)
        )


def _measure_mean_sojourn(mode, nf_cycles, offered_pps, arrival_process, seed=3,
                          duration=40 * MILLISECOND, warmup=10 * MILLISECOND):
    """Drive the engine directly (no wire legs) and time NIC->egress.

    ``batch_size=1`` makes the core a textbook single server (batching
    stamps all members of a batch with the batch's completion time,
    which theory does not model); connections are opened so flow
    lookups are warm local/shared reads in steady state.
    """
    sim = Simulator()
    engine = build_engine(
        mode, nf_cycles=nf_cycles, sim=sim, queue_capacity=4096, batch_size=1
    )
    latency = LatencyRecorder()
    window = {"open": False}

    def egress(packet: Packet) -> None:
        if window["open"] and not packet.is_connection:
            latency.record(packet.done_time - packet.created_at)

    engine.set_egress(egress)
    rng = random.Random(seed)
    generator = OpenLoopGenerator(
        sim,
        lambda p, now: engine.receive(p, now),
        random_tcp_flows(1, rng),
        offered_pps,
        rng,
        arrival_process=arrival_process,
        burst=1,
    )
    generator.start(at=0)
    sim.run(until=warmup)
    window["open"] = True
    sim.run(until=duration)
    assert len(latency.samples) > 1000
    return sum(latency.samples) / len(latency.samples)


class TestSimulatorAgainstTheory:
    #: Per-packet service time at 10k busy cycles with batch_size=1:
    #: rx_batch_fixed(50) + rx(55) + classify(10) + warm flow lookup(30)
    #: + header(25) + busy(10000) + tx_batch_fixed(40) + tx(50)
    #: = 10260 cycles at 2 GHz = 5.13 us.
    SERVICE_PS = 10260 * 500

    def test_cbr_below_capacity_sees_no_queueing(self):
        """D/D/1 at rho=0.6: sojourn == service (+ nothing)."""
        offered = 0.6 / (self.SERVICE_PS / SECOND)
        mean = _measure_mean_sojourn("rss", 10000, offered, "cbr")
        assert mean == pytest.approx(self.SERVICE_PS, rel=0.05)

    @pytest.mark.parametrize("rho", [0.3, 0.6, 0.8])
    def test_poisson_single_core_matches_md1(self, rho):
        offered = rho / (self.SERVICE_PS / SECOND)
        measured = _measure_mean_sojourn("rss", 10000, offered, "poisson")
        predicted = md1_mean_sojourn(offered / SECOND, self.SERVICE_PS)
        assert measured == pytest.approx(predicted, rel=0.12)

    def test_sprayed_poisson_matches_thinned_md1(self):
        # 8 cores at aggregate rho 0.6 per core.
        per_core_rate = 0.6 / (self.SERVICE_PS / SECOND)
        offered = 8 * per_core_rate
        measured = _measure_mean_sojourn("sprayer", 10000, offered, "poisson")
        predicted = sprayed_mean_sojourn(offered / SECOND, self.SERVICE_PS, 8)
        # Spraying adds small extras (FD classification is free, but
        # batching can coalesce); allow a slightly wider band.
        assert measured == pytest.approx(predicted, rel=0.15)
